/**
 * @file
 * Serve-family subcommands: the daemon plus its client verbs.
 *
 *   serve     run the async experiment daemon (SIGTERM drains)
 *   submit    submit one experiment (or a warm-throughput run with
 *             --repeat) and stream its result back
 *   status    query server-wide or per-request state
 *   cancel    cancel a queued or running request
 *   shutdown  ask a daemon to drain and stop
 *
 * The wire protocol is documented in docs/FORMATS.md; these commands
 * are thin wrappers over serve::ServeClient / serve::ExperimentServer.
 */

#include "cli_commands.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "serve/client.h"
#include "serve/server.h"
#include "sim/run_options.h"
#include "trace/mmap_file.h"
#include "util/args.h"
#include "util/json.h"
#include "util/logging.h"

namespace vlp {
namespace cli {

namespace {

/** The daemon being signalled; a lock-free atomic because the
 *  handler reads what the main thread writes (set before the
 *  handlers install, cleared after run() returns). */
std::atomic<serve::ExperimentServer *> activeServer{nullptr};

extern "C" void
onTerminate(int)
{
    // Async-signal-safe: an atomic load plus one write to the
    // daemon's self-pipe (O_NONBLOCK, so a full pipe fails instead
    // of blocking inside the handler).
    if (serve::ExperimentServer *server = activeServer.load())
        server->notifyShutdown();
}

/** --server flag with the VLPSIM_SERVER environment default. */
std::string
serverDefault()
{
    if (const char *env = std::getenv("VLPSIM_SERVER"))
        return env;
    return "";
}

util::net::Endpoint
requireEndpoint(util::ArgParser &parser, const std::string &text)
{
    if (text.empty()) {
        parser.fail("--server is required (or set VLPSIM_SERVER)");
    }
    return util::net::Endpoint::parse(text);
}

void
registerLogLevel(util::ArgParser &parser)
{
    parser.addOption("--log-level", "LEVEL",
                     "log threshold: debug, info, warn, or error "
                     "(default: VLPSIM_LOG_LEVEL or info)",
                     [](const std::string &value) {
                         util::setLogLevel(util::parseLogLevel(value));
                     });
}

/** --timeout flag shared by the client verbs: bounds every receive
 *  so a wedged daemon cannot hang the client; expiry surfaces as
 *  util::net::TimeoutError, which the CLI maps to exit code 3. */
void
registerRecvTimeout(util::ArgParser &parser, std::uint64_t *timeout_ms)
{
    parser.addUint("--timeout", "MS",
                   "receive timeout per read; a silent daemon makes "
                   "the command exit with code 3 (default 0 = wait "
                   "forever)",
                   timeout_ms, 3'600'000);
}

} // anonymous namespace

int
cmdServe(int argc, char **argv)
{
    util::ArgParser parser(
        "vlpsim serve",
        "run the async experiment daemon: newline-delimited JSON "
        "over a local socket, bounded request queue with admission "
        "control, cooperative cancellation, warm answers from the "
        "artifact cache; SIGTERM drains in-flight work, then exits");
    std::string listen = "127.0.0.1:7711";
    std::uint64_t workers = 2;
    std::uint64_t max_queue = 16;
    std::uint64_t max_inflight = 64u << 20;
    std::uint64_t max_jobs = 0;
    std::uint64_t heartbeat_ms = 1000;
    bool chaos_enabled = false;
    std::uint64_t chaos_seed = 1;
    double chaos_activate = 0.25;
    double chaos_fire = 0.25;
    parser.addString("--listen", "EP",
                     "listen endpoint: host:port, :port, or a Unix "
                     "socket path (default 127.0.0.1:7711; port 0 "
                     "picks an ephemeral port)",
                     &listen);
    parser.addUint("--workers", "N",
                   "concurrent experiment slots (default 2)", &workers,
                   256);
    parser.addUint("--max-queue", "N",
                   "queued-request admission limit (default 16; "
                   "0 = unlimited)",
                   &max_queue, 1u << 20);
    parser.addUint("--max-inflight-bytes", "N",
                   "byte budget across queued + running requests "
                   "(default 64 MiB; 0 = unlimited)",
                   &max_inflight, ~std::uint64_t{0});
    parser.addUint("--max-jobs", "N",
                   "clamp on any request's worker threads "
                   "(default 0 = no clamp)",
                   &max_jobs, 4096);
    parser.addUint("--heartbeat-ms", "N",
                   "heartbeat period for running requests "
                   "(default 1000; 0 disables)",
                   &heartbeat_ms, 3'600'000);
    parser.addSwitch("--chaos",
                     "arm the fault-injection switchboard for this "
                     "daemon (DESIGN.md §16)",
                     &chaos_enabled);
    parser.addOption("--chaos-seed", "N",
                     "chaos campaign seed (default 1; implies "
                     "--chaos)",
                     [&](const std::string &value) {
                         chaos_enabled = true;
                         chaos_seed =
                             std::strtoull(value.c_str(), nullptr, 0);
                     });
    parser.addOption("--chaos-activate", "P",
                     "per-run section activation probability "
                     "(default 0.25; implies --chaos)",
                     [&](const std::string &value) {
                         chaos_enabled = true;
                         chaos_activate =
                             std::strtod(value.c_str(), nullptr);
                     });
    parser.addOption("--chaos-fire", "P",
                     "per-reach fire probability for activated "
                     "sections (default 0.25; implies --chaos)",
                     [&](const std::string &value) {
                         chaos_enabled = true;
                         chaos_fire =
                             std::strtod(value.c_str(), nullptr);
                     });
    registerLogLevel(parser);
    sim::RunOptions run;
    run.registerCacheFlags(parser);
    parser.parse(argc, argv, 2);

    // Daemon logs get monotonic timestamps; one-shot CLI output
    // stays unstamped (byte-stable for golden tests).
    util::setLogTimestamps(true);

    serve::ServerOptions options;
    options.listen = util::net::Endpoint::parse(listen);
    options.workers = static_cast<unsigned>(workers);
    options.maxJobsPerRequest = static_cast<unsigned>(max_jobs);
    options.limits.maxDepth = static_cast<std::size_t>(max_queue);
    options.limits.maxInflightBytes =
        static_cast<std::size_t>(max_inflight);
    options.heartbeatMs = static_cast<unsigned>(heartbeat_ms);
    if (run.cacheEnabled()) {
        options.cacheDirectory = run.cacheDirectory;
        options.cacheMaxBytes = run.cacheMaxBytes;
    }
    if (chaos_enabled) {
        options.chaos.enabled = true;
        options.chaos.seed = chaos_seed;
        options.chaos.activateProbability = chaos_activate;
        options.chaos.fireProbability = chaos_fire;
    }

    serve::ExperimentServer server(std::move(options));
    server.start();
    activeServer.store(&server);
    std::signal(SIGTERM, onTerminate);
    std::signal(SIGINT, onTerminate);
    server.run();
    // Default handlers back first: a late signal must not race the
    // server's destruction.
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    activeServer.store(nullptr);
    return 0;
}

namespace {

/** Shared submit/status/cancel spec flags. */
struct SubmitFlags
{
    std::string server = serverDefault();
    std::string op = "suite";
    std::string branch_class = "cond";
    std::uint64_t bytes = 8 * 1024;
    std::string budgets;
    std::uint64_t jobs = 1;
    int priority = 0;
    std::uint64_t sleep_ms = 100;
    std::string traces;
    std::string pairs;
    std::string read_mode = "auto";

    void registerFlags(util::ArgParser &parser)
    {
        parser.addString("--server", "EP",
                         "daemon endpoint (default: VLPSIM_SERVER)",
                         &server);
        parser.addString("--op", "OP",
                         "request op: suite (default), sweep, "
                         "trace-suite, or sleep",
                         &op);
        parser.addString("--class", "C",
                         "branch class: cond (default) or ind",
                         &branch_class);
        parser.addUint("--bytes", "N",
                       "predictor table budget (default 8192)",
                       &bytes, ~std::uint64_t{0});
        parser.addString("--budgets", "LIST",
                         "comma-separated byte budgets (op sweep)",
                         &budgets);
        parser.addUint("--jobs", "N",
                       "worker threads for the request (default 1)",
                       &jobs, 4096);
        parser.addOption("--priority", "P",
                         "scheduling priority, higher first "
                         "(default 0; may be negative)",
                         [this](const std::string &value) {
                             priority = std::atoi(value.c_str());
                         });
        parser.addUint("--ms", "N",
                       "sleep duration for op sleep (default 100)",
                       &sleep_ms, 3'600'000);
        parser.addString("--traces", "DIR",
                         "trace corpus directory (op trace-suite)",
                         &traces);
        parser.addString("--pairs", "FILE",
                         "pair manifest (op trace-suite)", &pairs);
        parser.addString("--read-mode", "M",
                         "trace backend: auto (default), mmap, or "
                         "stdio (op trace-suite)",
                         &read_mode);
    }

    serve::SubmitSpec toSpec(util::ArgParser &parser) const
    {
        serve::SubmitSpec spec;
        spec.op = op;
        spec.priority = priority;
        const bool indirect = branch_class == "ind";
        if (!indirect && branch_class != "cond")
            parser.fail("--class must be 'cond' or 'ind'");
        if (op == "suite") {
            spec.suite.indirect = indirect;
            spec.suite.bytes = static_cast<std::size_t>(bytes);
            spec.suite.jobs = static_cast<unsigned>(jobs);
        } else if (op == "sweep") {
            spec.sweep.indirect = indirect;
            spec.sweep.jobs = static_cast<unsigned>(jobs);
            std::stringstream list(budgets);
            std::string item;
            while (std::getline(list, item, ',')) {
                if (item.empty())
                    continue;
                spec.sweep.budgets.push_back(
                    std::strtoul(item.c_str(), nullptr, 0));
            }
            if (spec.sweep.budgets.empty())
                parser.fail("op sweep needs --budgets N,N,...");
        } else if (op == "trace-suite") {
            if (traces.empty())
                parser.fail("op trace-suite needs --traces DIR");
            spec.tracesDirectory = traces;
            spec.pairsManifest = pairs;
            spec.traceBytes = static_cast<std::size_t>(bytes);
            spec.traceJobs = static_cast<unsigned>(jobs);
            try {
                trace::parseReadMode(read_mode);
            } catch (const std::exception &error) {
                parser.fail(error.what());
            }
            spec.traceReadMode = read_mode;
        } else if (op == "sleep") {
            spec.sleepMs = static_cast<unsigned>(sleep_ms);
        } else {
            parser.fail("--op must be suite, sweep, trace-suite, or "
                        "sleep");
        }
        return spec;
    }
};

/** Run one submit + await; returns the terminal frame. */
util::Json
submitOnce(serve::ServeClient &client, const serve::SubmitSpec &spec,
           bool quiet)
{
    const serve::ServeClient::Submission submission =
        client.submit(spec);
    if (!submission.accepted) {
        throw std::runtime_error(
            "rejected (" + std::to_string(submission.code) + "): "
            + submission.reason);
    }
    if (!quiet) {
        std::cerr << "submitted request " << submission.id
                  << " (queue position " << submission.position
                  << ")\n";
    }
    return client.await(
        submission.id, [&](const util::Json &frame) {
            if (quiet)
                return;
            const util::Json *type = frame.find("type");
            if (type == nullptr || !type->isString())
                return;
            if (type->asString() == "progress") {
                std::cerr << "progress: "
                          << frame.at("stage").asString() << " ("
                          << frame.at("completed").numberText() << "/"
                          << frame.at("total").numberText() << ")\n";
            }
        });
}

} // anonymous namespace

int
cmdSubmit(int argc, char **argv)
{
    util::ArgParser parser(
        "vlpsim submit",
        "submit an experiment to a serve daemon and stream the "
        "result; --repeat N measures warm-request throughput");
    SubmitFlags flags;
    std::string save;
    std::uint64_t repeat = 1;
    std::string bench_out;
    bool quiet = false;
    flags.registerFlags(parser);
    parser.addString("--save", "FILE",
                     "write the result's report document to FILE "
                     "(pretty JSON, byte-identical to "
                     "`vlpsim suite --format json`)",
                     &save);
    parser.addUint("--repeat", "N",
                   "submit the request N times sequentially "
                   "(default 1)",
                   &repeat, 1u << 20);
    parser.addString("--bench-out", "FILE",
                     "write a BENCH_serve.json throughput artifact",
                     &bench_out);
    parser.addSwitch("--quiet", "suppress progress on stderr",
                     &quiet);
    std::uint64_t timeout_ms = 0;
    registerRecvTimeout(parser, &timeout_ms);
    registerLogLevel(parser);
    parser.parse(argc, argv, 2);
    if (repeat == 0)
        repeat = 1;

    serve::ServeClient client(requireEndpoint(parser, flags.server),
                              static_cast<unsigned>(timeout_ms));
    const serve::SubmitSpec spec = flags.toSpec(parser);

    const auto start = std::chrono::steady_clock::now();
    util::Json last;
    std::uint64_t cache_hit_answers = 0;
    for (std::uint64_t i = 0; i < repeat; ++i) {
        last = submitOnce(client, spec, quiet || repeat > 1);
        const std::string &type = last.at("type").asString();
        if (type != "result") {
            std::cerr << "request " << last.at("id").numberText()
                      << " " << type << "\n";
            return 1;
        }
        if (const util::Json *warm = last.find("cacheHit")) {
            if (warm->isBool() && warm->asBool())
                ++cache_hit_answers;
        }
    }
    const double seconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();

    const util::Json &report = last.at("report");
    if (!save.empty()) {
        std::ofstream out(save, std::ios::binary);
        if (!out)
            util::fatal("cannot open output file: " + save);
        out << util::toPrettyJson(report) << "\n";
    }
    std::cout << "request " << last.at("id").numberText()
              << " done: cacheHits="
              << last.at("cacheHits").numberText()
              << " cacheMisses=" << last.at("cacheMisses").numberText()
              << " warm="
              << (last.at("cacheHit").asBool() ? "yes" : "no") << "\n";
    if (repeat > 1) {
        const double per_second =
            seconds > 0.0 ? static_cast<double>(repeat) / seconds
                          : 0.0;
        std::fprintf(stderr,
                     "throughput: %llu requests in %.3f s "
                     "(%.1f req/s, %llu warm)\n",
                     static_cast<unsigned long long>(repeat), seconds,
                     per_second,
                     static_cast<unsigned long long>(
                         cache_hit_answers));
    }
    if (!bench_out.empty()) {
        util::JsonWriter writer;
        writer.beginObject();
        writer.member("benchmark", "serve_warm_requests");
        writer.member("requests", std::uint64_t{repeat});
        writer.member("warmAnswers", cache_hit_answers);
        writer.member("seconds", seconds);
        writer.member("requestsPerSecond",
                      seconds > 0.0
                          ? static_cast<double>(repeat) / seconds
                          : 0.0);
        writer.endObject();
        std::ofstream out(bench_out, std::ios::binary);
        if (!out)
            util::fatal("cannot open output file: " + bench_out);
        out << writer.str() << "\n";
    }
    return 0;
}

int
cmdServeStatus(int argc, char **argv)
{
    util::ArgParser parser(
        "vlpsim status",
        "query a serve daemon: server-wide counters, or one "
        "request's state when an id is given");
    std::string server = serverDefault();
    parser.addString("--server", "EP",
                     "daemon endpoint (default: VLPSIM_SERVER)",
                     &server);
    parser.addPositional("id", "request id (omit for server-wide)",
                         false);
    std::uint64_t timeout_ms = 0;
    registerRecvTimeout(parser, &timeout_ms);
    const auto args = parser.parse(argc, argv, 2);

    serve::ServeClient client(requireEndpoint(parser, server),
                              static_cast<unsigned>(timeout_ms));
    const std::uint64_t id =
        args.empty() ? 0 : std::strtoull(args[0].c_str(), nullptr, 0);
    std::cout << util::toCompactJson(client.status(id)) << "\n";
    return 0;
}

int
cmdServeCancel(int argc, char **argv)
{
    util::ArgParser parser(
        "vlpsim cancel",
        "cancel a request: a queued one is removed immediately, a "
        "running one unwinds at its next step boundary");
    std::string server = serverDefault();
    parser.addString("--server", "EP",
                     "daemon endpoint (default: VLPSIM_SERVER)",
                     &server);
    parser.addPositional("id", "request id");
    std::uint64_t timeout_ms = 0;
    registerRecvTimeout(parser, &timeout_ms);
    const auto args = parser.parse(argc, argv, 2);

    serve::ServeClient client(requireEndpoint(parser, server),
                              static_cast<unsigned>(timeout_ms));
    const std::uint64_t id =
        std::strtoull(args[0].c_str(), nullptr, 0);
    const util::Json ack = client.cancel(id);
    std::cout << util::toCompactJson(ack) << "\n";
    return ack.at("type").asString() == "error" ? 1 : 0;
}

int
cmdServeShutdown(int argc, char **argv)
{
    util::ArgParser parser(
        "vlpsim shutdown",
        "ask a serve daemon to drain in-flight work and stop");
    std::string server = serverDefault();
    parser.addString("--server", "EP",
                     "daemon endpoint (default: VLPSIM_SERVER)",
                     &server);
    std::uint64_t timeout_ms = 0;
    registerRecvTimeout(parser, &timeout_ms);
    parser.parse(argc, argv, 2);

    serve::ServeClient client(requireEndpoint(parser, server),
                              static_cast<unsigned>(timeout_ms));
    client.shutdownServer();
    std::cout << "shutdown acknowledged\n";
    return 0;
}

} // namespace cli
} // namespace vlp
