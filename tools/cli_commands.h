/**
 * @file
 * vlpsim subcommand table.
 *
 * Every subcommand is one Command entry: name, argument synopsis,
 * one-line summary, and handler. The top-level `--help` text is
 * generated from the table, so adding a command means adding exactly
 * one entry (plus its handler) — the dispatch loop and the usage
 * text can never drift apart.
 *
 * Handlers keep the historical signature `int (*)(int argc, char
 * **argv)` with the subcommand name at argv[1], matching
 * util::ArgParser::parse(argc, argv, 2).
 */

#ifndef VLPSIM_TOOLS_CLI_COMMANDS_H
#define VLPSIM_TOOLS_CLI_COMMANDS_H

namespace vlp {
namespace cli {

/** One subcommand: synopsis and summary feed the generated help. */
struct Command
{
    const char *name;
    /** Argument synopsis, e.g. "<trace.vbt> <bytes> [count]". */
    const char *usage;
    /** One-line description for the generated help. */
    const char *summary;
    int (*handler)(int argc, char **argv);
};

// Serve-family handlers (tools/cli_serve.cpp): the daemon itself and
// its client verbs.
int cmdServe(int argc, char **argv);
int cmdSubmit(int argc, char **argv);
int cmdServeStatus(int argc, char **argv);
int cmdServeCancel(int argc, char **argv);
int cmdServeShutdown(int argc, char **argv);

// Chaos campaign driver (tools/cli_chaos.cpp): seeded soak across
// the suite and serve paths with invariant checking.
int cmdChaos(int argc, char **argv);

} // namespace cli
} // namespace vlp

#endif // VLPSIM_TOOLS_CLI_COMMANDS_H
