/**
 * @file
 * vlpsim — command-line driver for the library.
 *
 * Subcommands (every one accepts --help):
 *   list
 *       Print the benchmark suite with its Table-1 parameters.
 *   gen <benchmark> <profile|test> <out.vbt> [scale]
 *       Generate a synthetic branch trace and write it as a .vbt file.
 *   stats <trace.vbt>
 *       Print Table-1-style statistics for a trace file.
 *   profile <trace.vbt> <bytes> <cond|ind> <out.assignment> [--jobs N]
 *       Run the paper's two-step profiling heuristic over a trace and
 *       save the per-branch hash-number assignment. The trace streams
 *       in bounded-memory chunks (zero-copy when it maps; --read-mode
 *       auto|mmap|stdio picks the backend). --jobs N shards the
 *       step-1 length sweep across N worker threads (0 = one per
 *       hardware thread; default serial) with bit-identical output.
 *       The summary goes through the report model, so --format
 *       csv|json exports it machine-readably.
 *   eval <trace.vbt> <bytes> <cond|ind> [assignment]
 *       Evaluate predictors on a trace: the paper's baselines plus
 *       fixed length path, and — when an assignment file is given —
 *       the variable length path predictor.
 *   top <trace.vbt> <bytes> [count]
 *       Rank the conditional branches by their contribution to
 *       gshare's mispredictions and show what a path predictor does
 *       with each — the per-branch view behind the paper's averages.
 *   suite <cond|ind> <bytes> [--jobs N] [cache flags] [output flags]
 *       Profile and compare the paper's predictors over the whole
 *       benchmark suite, sharded benchmark-per-worker across the
 *       parallel experiment engine (--jobs 1 forces the serial path;
 *       the default is one worker per hardware thread). Output is
 *       bit-identical for every --jobs value. With --cache-dir DIR
 *       (or VLPSIM_CACHE_DIR), profiling artifacts are kept in an
 *       on-disk store, so a warm rerun skips the fixed-length sweeps
 *       and prints byte-identical results; --cache-max-bytes N bounds
 *       the store, --no-cache disables it. --format csv|json exports
 *       the comparison through the shared report schema.
 *   suite --traces <dir> [bytes] [--pairs FILE] [--checkpoint FILE]
 *         [--jobs N] [--read-mode auto|mmap|stdio]
 *       External-trace mode: run the paper's methodology over the
 *       .vbt corpus under <dir> through the hardened ingestion
 *       pipeline: every trace is opened once (validation, content
 *       hash, and replay share the open), decoded zero-copy from an
 *       mmap window when possible (--read-mode selects the backend;
 *       reports are byte-identical either way), and prefetched ahead
 *       of the simulation. Traces are grouped into profile/test pairs — via
 *       --pairs (or <dir>/pairs.txt), else the
 *       .profile.vbt/.test.vbt name convention, else a labeled
 *       self-eval fallback — and each pair reports train vs test
 *       accuracy with the generalization delta. Traces stream in
 *       bounded-memory chunks, transient IO errors are retried with
 *       backoff, unreadable pairs are quarantined (listed with their
 *       cause) while the run continues, and with --checkpoint every
 *       completed per-pair cell is journaled so a killed run resumes
 *       where it left off with a byte-identical report. Exits 2 when
 *       the corpus has no .vbt traces, 1 when no pair completed.
 *       Exports carry quarantine/orphan causes and cache counters as
 *       metadata.
 *   validate <report.json>
 *       Check a --format json export against the vlpsim-report schema
 *       (docs/FORMATS.md); prints each problem and exits nonzero on
 *       the first invalid document — the CI gate for export drift.
 *   cache <stats|verify|clear> <dir>
 *       Inspect the artifact cache: stats prints entry counts, bytes,
 *       and lifetime hit/miss counters; verify re-validates every
 *       entry's checksum (removing corrupt ones); clear empties it.
 *   import <in.txt> <out.vbt> / export <in.vbt> <out.txt>
 *       Convert between the text trace format (one branch per line —
 *       the adapter path for external tools) and the binary format.
 *   convert <in.txt> <out.vbt>
 *       Like import, but lenient: malformed lines are skipped and
 *       reported with their line numbers instead of aborting, for
 *       external branch logs (ChampSim-style reduced lines accepted).
 *   serve / submit / status / cancel / shutdown
 *       The async experiment service and its client verbs
 *       (tools/cli_serve.cpp): a daemon on a local socket with a
 *       bounded request queue, admission control, cooperative
 *       cancellation, and warm answers from the artifact cache. Wire
 *       protocol in docs/FORMATS.md.
 *
 *   chaos --seed S [--suite DIR] [--serve] [--requests N]
 *       Seeded fault-injection soak campaign (tools/cli_chaos.cpp):
 *       runs the suite and/or serve paths with the util::chaos
 *       switchboard armed and verifies the robustness invariants —
 *       no hang, every request terminal, quarantines carry causes,
 *       reports replay byte-identically for the same seed.
 *
 * Global flags: --help, --version (build stamp + schema/protocol
 * versions), --log-level LEVEL (also VLPSIM_LOG_LEVEL), and the
 * chaos switchboard knobs --chaos / --chaos-seed N /
 * --chaos-activate P / --chaos-fire P (DESIGN.md §16), which arm
 * fault injection process-wide before the subcommand runs. The
 * subcommand table below generates the top-level help.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cli_commands.h"
#include "core/path_predictor.h"
#include "core/profiler.h"
#include "predictors/btb.h"
#include "predictors/budget.h"
#include "predictors/gshare.h"
#include "predictors/target_cache.h"
#include "sim/experiment.h"
#include "sim/parallel.h"
#include "serve/protocol.h"
#include "sim/report.h"
#include "sim/run_options.h"
#include "sim/service.h"
#include "sim/simulator.h"
#include "sim/suite_runner.h"
#include "store/artifact_store.h"
#include "trace/mmap_file.h"
#include "trace/streaming.h"
#include "trace/text_io.h"
#include "trace/trace_io.h"
#include "trace/trace_stats.h"
#include "util/args.h"
#include "util/chaos.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/socket.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/version.h"
#include "workload/benchmarks.h"

namespace {

using namespace vlp;

/** Register --read-mode on @p parser, parsed into @p mode. */
void
addReadModeFlag(util::ArgParser &parser, trace::ReadMode *mode)
{
    parser.addOption(
        "--read-mode", "auto|mmap|stdio",
        "trace file backend: zero-copy mmap with stdio fallback "
        "(auto, the default), mmap (falls back with a warning when "
        "the file cannot map), or buffered stdio",
        [mode](const std::string &text) {
            *mode = trace::parseReadMode(text);
        });
}

workload::InputKind
parseInput(const std::string &text)
{
    if (text == "profile")
        return workload::InputKind::Profile;
    if (text == "test")
        return workload::InputKind::Test;
    util::fatal("input set must be 'profile' or 'test'");
}

bool
parseIndirect(const std::string &text)
{
    if (text == "cond")
        return false;
    if (text == "ind")
        return true;
    util::fatal("branch class must be 'cond' or 'ind'");
}

int
cmdList(int argc, char **argv)
{
    util::ArgParser parser(
        "vlpsim list",
        "print the benchmark suite with its Table-1 parameters");
    sim::OutputOptions output;
    output.registerFlags(parser);
    parser.parse(argc, argv, 2);

    sim::Report report;
    report.title = "benchmark suite";
    sim::Section &section = report.addSection("benchmarks");
    section.columns = {{"benchmark"}, {"group"}, {"paper cond dyn"},
                       {"paper cond static"}, {"paper ind dyn"},
                       {"paper ind static"}};
    for (const auto &spec : workload::benchmarkSuite()) {
        section.addRow(
            spec.name,
            {sim::Cell::text(spec.name),
             sim::Cell::text(spec.isSpec ? "SPECint95" : "non-SPEC"),
             sim::Cell::scaled(spec.paperDynamicCond),
             sim::Cell::count(spec.paperStaticCond),
             sim::Cell::scaled(spec.paperDynamicIndirect),
             sim::Cell::count(spec.paperStaticInd)});
    }
    output.write(report);
    return 0;
}

int
cmdGen(int argc, char **argv)
{
    util::ArgParser parser(
        "vlpsim gen",
        "generate a synthetic branch trace as a .vbt file");
    parser.addPositional("benchmark",
                         "benchmark name (see 'vlpsim list')");
    parser.addPositional("profile|test", "input set to generate");
    parser.addPositional("out.vbt", "output trace path");
    parser.addPositional("scale", "extra scale factor (default 1)",
                         false);
    const auto args = parser.parse(argc, argv, 2);

    const auto &spec = workload::findBenchmark(args[0]);
    const auto kind = parseInput(args[1]);
    const double extra =
        args.size() > 3 ? std::strtod(args[3].c_str(), nullptr) : 1.0;
    auto trace = workload::generateTrace(spec, kind, extra);
    trace::saveTrace(trace, args[2]);
    std::cout << "wrote " << util::formatScaled(trace.size())
              << " records to " << args[2] << "\n";
    return 0;
}

int
cmdStats(int argc, char **argv)
{
    util::ArgParser parser(
        "vlpsim stats",
        "print Table-1-style statistics for a trace file");
    parser.addPositional("trace.vbt", "input trace");
    const auto args = parser.parse(argc, argv, 2);

    trace::TraceReader reader(args[0]);
    if (reader.formatVersion() < 2) {
        std::cerr << "warning: " << args[0]
                  << " is an unchecksummed VBT1 container; corruption "
                     "would go undetected (re-export to upgrade)\n";
    }
    trace::TraceStats stats;
    stats.observeAll(reader);
    std::cout << stats.summary() << "\n";
    return 0;
}

int
cmdProfile(int argc, char **argv)
{
    util::ArgParser parser(
        "vlpsim profile",
        "run the paper's two-step profiling heuristic over a trace");
    parser.addPositional("trace.vbt", "input trace");
    parser.addPositional("bytes", "predictor table budget in bytes");
    parser.addPositional("cond|ind", "branch class");
    parser.addPositional("out.assignment",
                         "output per-branch hash assignment");
    std::uint64_t jobs = 1;
    parser.addUint("--jobs", "N",
                   "worker threads for the step-1 length sweep "
                   "(0 = one per hardware thread; default 1)",
                   &jobs, 4096);
    trace::ReadMode read_mode = trace::ReadMode::Auto;
    addReadModeFlag(parser, &read_mode);
    sim::OutputOptions output;
    output.registerFlags(parser);
    const auto args = parser.parse(argc, argv, 2);

    // Stream the trace instead of materializing it: profiling replays
    // in bounded-memory chunks (zero-copy when the file maps), so
    // multi-gigabyte inputs profile at a flat memory footprint.
    trace::StreamingTraceReader trace(
        trace::openByteFileFast(args[0], read_mode));
    const std::size_t bytes =
        std::strtoul(args[1].c_str(), nullptr, 0);
    const bool indirect = parseIndirect(args[2]);

    core::ProfileOptions options;
    // The length-sharded step-1 sweep is bit-identical at any worker
    // count, so --jobs only changes wall-clock (default: serial).
    options.jobs = static_cast<unsigned>(jobs);
    core::HashAssignment assignment(1);
    if (indirect) {
        options.indexBits = pred::indirectIndexBits(bytes);
        core::IndirectProfiler profiler(options);
        assignment = profiler.profile(trace);
    } else {
        options.indexBits = pred::conditionalIndexBits(bytes);
        core::ConditionalProfiler profiler(options);
        assignment = profiler.profile(trace);
    }
    assignment.save(args[3]);

    const std::string histogram =
        assignment.lengthHistogram().toString();
    sim::Report report;
    report.title = "profile";
    report.setMeta("trace", args[0]);
    report.setMeta("bytes", std::uint64_t{bytes});
    report.setMeta("class", indirect ? "ind" : "cond");
    report.setMeta("staticBranches",
                   std::uint64_t{assignment.size()});
    report.setMeta("defaultLength",
                   std::uint64_t{assignment.defaultLength()});
    report.setMeta("lengthHistogram", histogram);
    report.addText(
        "summary",
        "profiled " + std::to_string(assignment.size())
            + " static branches (default length "
            + std::to_string(assignment.defaultLength()) + ") -> "
            + args[3] + "\nlength histogram: " + histogram + "\n");
    output.write(report);
    return 0;
}

int
cmdEval(int argc, char **argv)
{
    util::ArgParser parser(
        "vlpsim eval",
        "evaluate the paper's predictors on a trace");
    parser.addPositional("trace.vbt", "input trace");
    parser.addPositional("bytes", "predictor table budget in bytes");
    parser.addPositional("cond|ind", "branch class");
    parser.addPositional("assignment",
                         "profiled hash assignment (adds the "
                         "variable length path predictor)",
                         false);
    const auto args = parser.parse(argc, argv, 2);

    auto trace = trace::loadTrace(args[0]);
    const std::size_t bytes =
        std::strtoul(args[1].c_str(), nullptr, 0);
    const bool indirect = parseIndirect(args[2]);
    const bool have_assignment = args.size() > 3;

    sim::Simulator simulator;

    if (indirect) {
        const unsigned k = pred::indirectIndexBits(bytes);
        pred::BtbPredictor btb(k);
        pred::PathTargetCache chp_path(k);
        pred::PatternTargetCache chp_pattern(k);
        core::PathIndirectPredictor flp(k, 5);
        simulator.addIndirect(&btb);
        simulator.addIndirect(&chp_path);
        simulator.addIndirect(&chp_pattern);
        simulator.addIndirect(&flp);
        core::PathIndirectPredictor vlp(
            k, have_assignment
                   ? core::HashAssignment::load(args[3])
                   : core::HashAssignment(5));
        if (have_assignment)
            simulator.addIndirect(&vlp);
        simulator.run(trace);
        util::TablePrinter table(
            {"predictor", "size (bytes)", "mispredict (%)"});
        for (const auto &result : simulator.indirectResults()) {
            table.addRow({result.name,
                          std::to_string(result.sizeBytes),
                          util::formatDouble(result.rate(), 2)});
        }
        table.print(std::cout);
    } else {
        const unsigned k = pred::conditionalIndexBits(bytes);
        pred::GsharePredictor gshare(k);
        core::PathConditionalPredictor flp(k, 5);
        simulator.addConditional(&gshare);
        simulator.addConditional(&flp);
        core::PathConditionalPredictor vlp(
            k, have_assignment
                   ? core::HashAssignment::load(args[3])
                   : core::HashAssignment(5));
        if (have_assignment)
            simulator.addConditional(&vlp);
        simulator.run(trace);
        util::TablePrinter table(
            {"predictor", "size (bytes)", "mispredict (%)"});
        for (const auto &result : simulator.conditionalResults()) {
            table.addRow({result.name,
                          std::to_string(result.sizeBytes),
                          util::formatDouble(result.rate(), 2)});
        }
        table.print(std::cout);
        const auto ras = simulator.rasResult();
        std::cout << "returns (RAS): "
                  << util::formatDouble(ras.rate(), 2) << "% of "
                  << util::formatScaled(ras.branches) << "\n";
    }
    return 0;
}

int
cmdTop(int argc, char **argv)
{
    util::ArgParser parser(
        "vlpsim top",
        "rank conditional branches by gshare misprediction share");
    parser.addPositional("trace.vbt", "input trace");
    parser.addPositional("bytes", "predictor table budget in bytes");
    parser.addPositional("count", "branches to show (default 15)",
                         false);
    const auto args = parser.parse(argc, argv, 2);

    auto trace = trace::loadTrace(args[0]);
    const std::size_t bytes =
        std::strtoul(args[1].c_str(), nullptr, 0);
    const std::size_t count =
        args.size() > 2 ? std::strtoul(args[2].c_str(), nullptr, 0)
                        : 15;
    const unsigned k = pred::conditionalIndexBits(bytes);

    pred::GsharePredictor gshare(k);
    core::PathConditionalPredictor flp(k, 5);
    sim::Simulator simulator;
    simulator.setTrackPerBranch(true);
    simulator.addConditional(&gshare);
    simulator.addConditional(&flp);
    simulator.run(trace);

    const auto &gshare_stats = simulator.conditionalPerBranch(0);
    const auto &flp_stats = simulator.conditionalPerBranch(1);
    const std::uint64_t total =
        simulator.conditionalResults()[0].branches;

    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranked;
    ranked.reserve(gshare_stats.size());
    for (const auto &[pc, accuracy] : gshare_stats)
        ranked.emplace_back(accuracy.mispredictions, pc);
    std::sort(ranked.rbegin(), ranked.rend());

    util::TablePrinter table({"pc", "executions", "gshare miss (%)",
                              "path(5) miss (%)",
                              "share of gshare misses (%)"});
    const std::uint64_t total_misses =
        simulator.conditionalResults()[0].mispredictions;
    for (std::size_t i = 0; i < count && i < ranked.size(); ++i) {
        const std::uint64_t pc = ranked[i].second;
        const auto &g = gshare_stats.at(pc);
        const auto &f = flp_stats.at(pc);
        char pc_text[32];
        std::snprintf(pc_text, sizeof(pc_text), "0x%llx",
                      static_cast<unsigned long long>(pc));
        table.addRow({
            pc_text,
            std::to_string(g.executions),
            util::formatDouble(
                util::percent(g.mispredictions, g.executions), 1),
            util::formatDouble(
                util::percent(f.mispredictions, f.executions), 1),
            util::formatDouble(
                util::percent(g.mispredictions, total_misses), 1),
        });
    }
    std::cout << "top mispredicted conditional branches under gshare ("
              << util::formatScaled(total) << " branches total):\n";
    table.print(std::cout);
    return 0;
}

/** `suite --traces DIR`: the external-trace ingestion pipeline. */
int
cmdSuiteTraces(int argc, char **argv)
{
    util::ArgParser parser(
        "vlpsim suite --traces",
        "run the paper's methodology over an external .vbt corpus "
        "through the hardened ingestion pipeline");
    std::string directory;
    std::string checkpoint;
    std::string pairs;
    parser.addString("--traces", "DIR",
                     "directory scanned recursively for .vbt traces",
                     &directory);
    parser.addString("--checkpoint", "FILE",
                     "journal completed cells so a killed run "
                     "resumes where it left off",
                     &checkpoint);
    parser.addString("--pairs", "FILE",
                     "profile/test pair manifest (default: DIR/pairs.txt "
                     "when present, else the .profile.vbt/.test.vbt "
                     "name convention)",
                     &pairs);
    trace::ReadMode read_mode = trace::ReadMode::Auto;
    addReadModeFlag(parser, &read_mode);
    sim::RunOptions run;
    run.registerFlags(parser);
    sim::OutputOptions output;
    output.registerFlags(parser);
    parser.addPositional(
        "bytes", "predictor table budget in bytes (default 8192)",
        false);
    const auto args = parser.parse(argc, argv, 2);
    if (directory.empty())
        parser.fail("--traces is required");

    const auto store = run.openStore();
    sim::TraceSuiteOptions options;
    options.directory = directory;
    options.checkpoint = checkpoint;
    options.manifest = pairs;
    options.jobs = static_cast<unsigned>(run.jobs);
    options.readMode = read_mode;
    options.store = store;
    if (!args.empty()) {
        options.bytes = std::strtoul(args[0].c_str(), nullptr, 0);
        if (options.bytes == 0) {
            util::fatal("table budget must be a positive byte "
                        "count");
        }
    }

    sim::TraceSuiteRunner runner(std::move(options));
    const sim::SuiteReport suite = runner.run();
    if (suite.resumedCells > 0) {
        std::cerr << "checkpoint: resumed " << suite.resumedCells
                  << " completed cells\n";
    }

    sim::Report report = suite.toReport();
    if (store) {
        const store::StoreCounters counters = store->counters();
        report.setMeta("cacheHits", counters.hits);
        report.setMeta("cacheMisses", counters.misses);
        report.setMeta("cacheInserts", counters.inserts);
    }
    // Under an armed chaos switchboard the export carries per-section
    // injection counters (docs/FORMATS.md), so a soak artifact records
    // exactly which faults this run exercised.
    if (util::chaos::enabled()) {
        for (const auto &[section, stats] : util::chaos::counters()) {
            report.setMeta(
                "chaos:" + section,
                "activated=" + std::to_string(stats.activated ? 1 : 0)
                    + " reached=" + std::to_string(stats.reached)
                    + " fired=" + std::to_string(stats.fired)
                    + " skipped=" + std::to_string(stats.skipped));
        }
    }
    output.write(report);
    // Exit codes distinguish the three failure shapes: 2 = the corpus
    // had no .vbt traces at all (empty or mistyped directory), 1 =
    // traces were found but every pair failed, 0 = at least one pair
    // produced results (a partially failed corpus still counts).
    if (suite.empty()) {
        std::cerr << "error: no .vbt traces found under " << directory
                  << "\n";
        return 2;
    }
    return suite.allFailed() ? 1 : 0;
}

int
cmdSuite(int argc, char **argv)
{
    for (int i = 2; i < argc; ++i) {
        const std::string argument = argv[i];
        if (argument == "--traces"
            || argument.rfind("--traces=", 0) == 0) {
            return cmdSuiteTraces(argc, argv);
        }
    }

    util::ArgParser parser(
        "vlpsim suite",
        "profile and compare the paper's predictors over the "
        "synthetic benchmark suite (use --traces DIR for the "
        "external-trace mode)");
    parser.addPositional("cond|ind", "branch class");
    parser.addPositional("bytes", "predictor table budget in bytes");
    sim::RunOptions run;
    run.registerFlags(parser);
    sim::OutputOptions output;
    output.registerFlags(parser);
    const auto args = parser.parse(argc, argv, 2);

    sim::SuiteCompareSpec spec;
    spec.indirect = parseIndirect(args[0]);
    spec.bytes = std::strtoul(args[1].c_str(), nullptr, 0);
    spec.jobs = static_cast<unsigned>(run.jobs);
    if (spec.bytes == 0)
        util::fatal("table budget must be a positive byte count");

    const auto start = std::chrono::steady_clock::now();
    // The report comes from the shared service — the same code path
    // the serve daemon runs, which is what keeps daemon answers
    // byte-identical to this subcommand's output.
    const auto cache = run.openStore();
    sim::ServiceResult result = sim::runSuiteCompare(spec, cache);
    sim::Report report = std::move(result.report);
    if (cache) {
        const store::StoreCounters counters = cache->counters();
        report.setMeta("cacheHits", counters.hits);
        report.setMeta("cacheMisses", counters.misses);
        report.setMeta("cacheInserts", counters.inserts);
    }
    output.write(report);

    // Throughput goes to stderr so stdout stays bit-identical across
    // --jobs values.
    const double seconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    const double per_second = seconds > 0.0
        ? static_cast<double>(result.predictions) / seconds
        : 0.0;
    std::cerr << "run summary: "
              << util::formatCount(result.predictions)
              << " branch predictions in "
              << util::formatDouble(seconds, 2) << " s ("
              << util::formatScaled(
                     static_cast<std::uint64_t>(per_second))
              << " branches/s; jobs=" << result.jobs << ")\n";
    sim::reportCacheCounters(cache.get());
    return 0;
}

int
cmdValidate(int argc, char **argv)
{
    util::ArgParser parser(
        "vlpsim validate",
        "check a --format json export against the vlpsim-report "
        "schema (docs/FORMATS.md)");
    parser.addPositional("report.json",
                         "report produced by --format json");
    const auto args = parser.parse(argc, argv, 2);

    std::ifstream in(args[0], std::ios::binary);
    if (!in)
        util::fatal("cannot open report: " + args[0]);
    std::ostringstream buffer;
    buffer << in.rdbuf();

    const util::Json document = util::Json::parse(buffer.str());
    const std::vector<std::string> problems =
        sim::validateReportJson(document);
    if (!problems.empty()) {
        for (const std::string &problem : problems)
            std::cerr << args[0] << ": " << problem << "\n";
        return 1;
    }
    std::cout << args[0] << ": valid vlpsim-report v"
              << sim::reportSchemaVersion << "\n";
    return 0;
}

int
cmdCache(int argc, char **argv)
{
    util::ArgParser parser("vlpsim cache",
                           "inspect or maintain an artifact cache");
    parser.addPositional("stats|verify|clear", "action");
    parser.addPositional("dir", "cache directory");
    const auto args = parser.parse(argc, argv, 2);
    const std::string &action = args[0];
    const std::string &directory = args[1];
    if (action == "stats") {
        const auto summary = store::ArtifactStore::summarize(directory);
        std::cout << "cache " << directory << ": " << summary.entries
                  << " entries, " << summary.bytes << " bytes\n"
                  << "lifetime: " << summary.lifetime.hits << " hits, "
                  << summary.lifetime.misses << " misses, "
                  << summary.lifetime.inserts << " inserts, "
                  << summary.lifetime.corrupt << " corrupt, "
                  << summary.lifetime.evicted << " evicted\n";
        return 0;
    }
    if (action == "verify") {
        const auto result = store::ArtifactStore::verify(directory);
        std::cout << result.ok << " entries ok, " << result.corrupt
                  << " corrupt (removed)\n";
        return result.corrupt == 0 ? 0 : 1;
    }
    if (action == "clear") {
        const std::uint64_t removed =
            store::ArtifactStore::clear(directory);
        std::cout << "removed " << removed << " entries\n";
        return 0;
    }
    parser.fail("action must be 'stats', 'verify', or 'clear'");
}

int
cmdImport(int argc, char **argv)
{
    util::ArgParser parser(
        "vlpsim import",
        "convert a text trace to the binary .vbt format");
    parser.addPositional("in.txt", "text trace (one branch per line)");
    parser.addPositional("out.vbt", "output binary trace");
    const auto args = parser.parse(argc, argv, 2);
    auto trace = trace::loadTextTrace(args[0]);
    trace::saveTrace(trace, args[1]);
    std::cout << "imported " << util::formatScaled(trace.size())
              << " records -> " << args[1] << "\n";
    return 0;
}

int
cmdExport(int argc, char **argv)
{
    util::ArgParser parser(
        "vlpsim export",
        "convert a binary .vbt trace to the text format");
    parser.addPositional("in.vbt", "binary trace");
    parser.addPositional("out.txt", "output text trace");
    const auto args = parser.parse(argc, argv, 2);
    auto trace = trace::loadTrace(args[0]);
    trace::saveTextTrace(trace, args[1]);
    std::cout << "exported " << util::formatScaled(trace.size())
              << " records -> " << args[1] << "\n";
    return 0;
}

int
cmdConvert(int argc, char **argv)
{
    util::ArgParser parser(
        "vlpsim convert",
        "leniently import an external text branch log (malformed "
        "lines are skipped and reported)");
    parser.addPositional("in.txt", "text branch log");
    parser.addPositional("out.vbt", "output binary trace");
    trace::ReadMode read_mode = trace::ReadMode::Auto;
    addReadModeFlag(parser, &read_mode);
    const auto args = parser.parse(argc, argv, 2);
    // The lenient parser wants an istream; ByteFileStreamBuf adapts
    // the fast byte-file (zero-copy windows when the log maps, plain
    // stdio otherwise) without changing the parsing.
    std::unique_ptr<trace::ByteFile> file;
    try {
        file = trace::openByteFileFast(args[0], read_mode);
    } catch (const std::exception &error) {
        util::fatal("cannot open text trace: " + args[0] + " ("
                    + error.what() + ")");
    }
    trace::ByteFileStreamBuf stream_buffer(*file);
    std::istream in(&stream_buffer);
    trace::ConvertReport report;
    auto trace = trace::readTextTraceLenient(in, report);
    for (const std::string &diagnostic : report.diagnostics)
        std::cerr << args[0] << ": " << diagnostic << "\n";
    if (report.skipped > report.diagnostics.size()) {
        std::cerr << args[0] << ": ... and "
                  << report.skipped - report.diagnostics.size()
                  << " more malformed lines\n";
    }
    if (report.imported == 0)
        util::fatal("no usable records in " + args[0]);
    trace::saveTrace(trace, args[1]);
    std::cout << "converted " << util::formatScaled(report.imported)
              << " records (" << report.skipped
              << " malformed lines skipped) -> " << args[1] << "\n";
    return 0;
}

/**
 * The subcommand table. The top-level help below is generated from
 * it, so a new subcommand is one entry here plus its handler.
 */
const cli::Command commandTable[] = {
    {"list", "",
     "print the benchmark suite with its Table-1 parameters",
     cmdList},
    {"gen", "<benchmark> <profile|test> <out.vbt> [scale]",
     "generate a synthetic branch trace as a .vbt file", cmdGen},
    {"stats", "<trace.vbt>",
     "print Table-1-style statistics for a trace file", cmdStats},
    {"profile",
     "<trace.vbt> <bytes> <cond|ind> <out.asgn> [--jobs N] "
     "[--read-mode M]",
     "run the paper's two-step profiling heuristic over a trace",
     cmdProfile},
    {"eval", "<trace.vbt> <bytes> <cond|ind> [assignment]",
     "evaluate the paper's predictors on a trace", cmdEval},
    {"top", "<trace.vbt> <bytes> [count]",
     "rank conditional branches by gshare misprediction share",
     cmdTop},
    {"suite", "<cond|ind> <bytes> | --traces <dir> [bytes]",
     "profile and compare the paper's predictors over a suite",
     cmdSuite},
    {"validate", "<report.json>",
     "check an export against the vlpsim-report schema", cmdValidate},
    {"cache", "<stats|verify|clear> <dir>",
     "inspect or maintain an artifact cache", cmdCache},
    {"import", "<in.txt> <out.vbt>",
     "convert a text trace to the binary .vbt format", cmdImport},
    {"export", "<in.vbt> <out.txt>",
     "convert a binary .vbt trace to the text format", cmdExport},
    {"convert", "<in.txt> <out.vbt>",
     "leniently import an external text branch log", cmdConvert},
    {"serve", "[--listen EP] [--workers N] [cache flags]",
     "run the async experiment daemon (see docs/FORMATS.md)",
     cli::cmdServe},
    {"submit", "--server EP [--op OP] [spec flags]",
     "submit an experiment to a serve daemon", cli::cmdSubmit},
    {"status", "--server EP [id]",
     "query a serve daemon (server-wide or one request)",
     cli::cmdServeStatus},
    {"cancel", "--server EP <id>",
     "cancel a queued or running request", cli::cmdServeCancel},
    {"shutdown", "--server EP",
     "ask a serve daemon to drain and stop", cli::cmdServeShutdown},
    {"chaos", "--seed S [--suite DIR] [--serve] [--requests N]",
     "run a seeded fault-injection soak campaign and verify the "
     "robustness invariants", cli::cmdChaos},
};

void
printCommands(std::ostream &out)
{
    out << "usage: vlpsim [--log-level LEVEL] <command> [args]\n"
        << "commands:\n";
    for (const cli::Command &command : commandTable) {
        out << "  vlpsim " << command.name;
        if (command.usage[0] != '\0')
            out << " " << command.usage;
        out << "\n      " << command.summary << "\n";
    }
    out << "run 'vlpsim <command> --help' for per-command flags "
           "(--format ascii|csv|json, --out FILE, cache flags, ...); "
           "'vlpsim --version' prints build info\n";
}

int
usage()
{
    printCommands(std::cerr);
    return 2;
}

int
printVersion()
{
    std::cout << "vlpsim " << util::buildVersion()
              << " (vlpsim-report schema v" << sim::reportSchemaVersion
              << ", serve protocol v" << serve::protocolVersion
              << ")\n";
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    // Global flags sit before the subcommand; the handlers re-parse
    // from their own argv[1].
    util::chaos::Config chaos_config;
    while (argc >= 2 && argv[1][0] == '-') {
        const std::string flag = argv[1];
        if (flag == "--help" || flag == "-h") {
            printCommands(std::cout);
            return 0;
        }
        if (flag == "--version") {
            return printVersion();
        }
        if (flag == "--log-level" && argc >= 3) {
            try {
                util::setLogLevel(util::parseLogLevel(argv[2]));
            } catch (const std::exception &error) {
                std::cerr << "error: " << error.what() << "\n";
                return 2;
            }
            argv += 2;
            argc -= 2;
            continue;
        }
        if (flag == "--chaos") {
            chaos_config.enabled = true;
            argv += 1;
            argc -= 1;
            continue;
        }
        if (flag == "--chaos-seed" && argc >= 3) {
            chaos_config.enabled = true;
            chaos_config.seed = std::strtoull(argv[2], nullptr, 0);
            argv += 2;
            argc -= 2;
            continue;
        }
        if (flag == "--chaos-activate" && argc >= 3) {
            chaos_config.enabled = true;
            chaos_config.activateProbability =
                std::strtod(argv[2], nullptr);
            argv += 2;
            argc -= 2;
            continue;
        }
        if (flag == "--chaos-fire" && argc >= 3) {
            chaos_config.enabled = true;
            chaos_config.fireProbability = std::strtod(argv[2], nullptr);
            argv += 2;
            argc -= 2;
            continue;
        }
        return usage();
    }
    if (chaos_config.enabled)
        util::chaos::configure(chaos_config);
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    try {
        for (const cli::Command &entry : commandTable) {
            if (command == entry.name)
                return entry.handler(argc, argv);
        }
    } catch (const util::net::TimeoutError &error) {
        // Distinct exit code so scripts can tell "the daemon went
        // silent" from every other failure.
        std::cerr << "error: " << error.what() << "\n";
        return 3;
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
    return usage();
}
