/**
 * @file
 * vlpsim — command-line driver for the library.
 *
 * Subcommands:
 *   list
 *       Print the benchmark suite with its Table-1 parameters.
 *   gen <benchmark> <profile|test> <out.vbt> [scale]
 *       Generate a synthetic branch trace and write it as a .vbt file.
 *   stats <trace.vbt>
 *       Print Table-1-style statistics for a trace file.
 *   profile <trace.vbt> <bytes> <cond|ind> <out.assignment> [--jobs N]
 *       Run the paper's two-step profiling heuristic over a trace and
 *       save the per-branch hash-number assignment. --jobs N shards
 *       the step-1 length sweep across N worker threads (0 = one per
 *       hardware thread; default serial) with bit-identical output.
 *   eval <trace.vbt> <bytes> <cond|ind> [assignment]
 *       Evaluate predictors on a trace: the paper's baselines plus
 *       fixed length path, and — when an assignment file is given —
 *       the variable length path predictor.
 *   top <trace.vbt> <bytes> [count]
 *       Rank the conditional branches by their contribution to
 *       gshare's mispredictions and show what a path predictor does
 *       with each — the per-branch view behind the paper's averages.
 *   suite <cond|ind> <bytes> [--jobs N] [cache flags]
 *       Profile and compare the paper's predictors over the whole
 *       benchmark suite, sharded benchmark-per-worker across the
 *       parallel experiment engine (--jobs 1 forces the serial path;
 *       the default is one worker per hardware thread). Output is
 *       bit-identical for every --jobs value. With --cache-dir DIR
 *       (or VLPSIM_CACHE_DIR), profiling artifacts are kept in an
 *       on-disk store, so a warm rerun skips the fixed-length sweeps
 *       and prints byte-identical results; --cache-max-bytes N bounds
 *       the store, --no-cache disables it.
 *   suite --traces <dir> [bytes] [--checkpoint FILE] [--jobs N]
 *       External-trace mode: run the paper's methodology over every
 *       .vbt file under <dir> through the hardened ingestion pipeline.
 *       Traces stream in bounded-memory chunks, transient IO errors
 *       are retried with backoff, unreadable traces are quarantined
 *       (listed with their cause) while the run continues, and with
 *       --checkpoint every completed per-trace cell is journaled so a
 *       killed run resumes where it left off with a byte-identical
 *       report. Exits nonzero only when no trace completed.
 *   cache <stats|verify|clear> <dir>
 *       Inspect the artifact cache: stats prints entry counts, bytes,
 *       and lifetime hit/miss counters; verify re-validates every
 *       entry's checksum (removing corrupt ones); clear empties it.
 *   import <in.txt> <out.vbt> / export <in.vbt> <out.txt>
 *       Convert between the text trace format (one branch per line —
 *       the adapter path for external tools) and the binary format.
 *   convert <in.txt> <out.vbt>
 *       Like import, but lenient: malformed lines are skipped and
 *       reported with their line numbers instead of aborting, for
 *       external branch logs (ChampSim-style reduced lines accepted).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/path_predictor.h"
#include "core/profiler.h"
#include "predictors/btb.h"
#include "predictors/budget.h"
#include "predictors/gshare.h"
#include "predictors/target_cache.h"
#include "sim/experiment.h"
#include "sim/parallel.h"
#include "sim/simulator.h"
#include "sim/suite_runner.h"
#include "store/artifact_store.h"
#include "trace/text_io.h"
#include "trace/trace_io.h"
#include "trace/trace_stats.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/benchmarks.h"

namespace {

using namespace vlp;

int
usage()
{
    std::cerr <<
        "usage:\n"
        "  vlpsim list\n"
        "  vlpsim gen <benchmark> <profile|test> <out.vbt> [scale]\n"
        "  vlpsim stats <trace.vbt>\n"
        "  vlpsim profile <trace.vbt> <bytes> <cond|ind> <out.asgn>\n"
        "         [--jobs N]\n"
        "  vlpsim eval <trace.vbt> <bytes> <cond|ind> [assignment]\n"
        "  vlpsim top <trace.vbt> <bytes> [count]\n"
        "  vlpsim suite <cond|ind> <bytes> [--jobs N]\n"
        "         [--cache-dir DIR] [--cache-max-bytes N] "
        "[--no-cache]\n"
        "  vlpsim suite --traces <dir> [bytes] [--checkpoint FILE]\n"
        "         [--jobs N] [cache flags]\n"
        "  vlpsim cache <stats|verify|clear> <dir>\n"
        "  vlpsim import <in.txt> <out.vbt>\n"
        "  vlpsim export <in.vbt> <out.txt>\n"
        "  vlpsim convert <in.txt> <out.vbt>\n";
    return 2;
}

/**
 * Parse a `--jobs N` / `--jobs=N` flag anywhere on the command line.
 * Returns @p absent (default 0, one worker per hardware thread) when
 * the flag is not given.
 */
unsigned
parseJobs(int argc, char **argv, unsigned absent = 0)
{
    for (int i = 1; i < argc; ++i) {
        const std::string argument = argv[i];
        std::string value;
        if (argument == "--jobs") {
            if (i + 1 >= argc)
                util::fatal("--jobs requires a worker count");
            value = argv[i + 1];
        } else if (argument.rfind("--jobs=", 0) == 0) {
            value = argument.substr(7);
        } else {
            continue;
        }
        char *end = nullptr;
        const unsigned long jobs = std::strtoul(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0' || jobs > 4096)
            util::fatal("malformed --jobs value: " + value);
        return static_cast<unsigned>(jobs);
    }
    return absent;
}

/** A flag's value at argv[i], advancing @p i for `--flag value`. */
std::string
flagValue(int argc, char **argv, int &i, const std::string &flag)
{
    const std::string argument = argv[i];
    if (argument.size() > flag.size())
        return argument.substr(flag.size() + 1); // "--flag=value"
    if (i + 1 >= argc)
        util::fatal(flag + " requires a value");
    return argv[++i];
}

/**
 * Open the artifact store configured by --cache-dir/--cache-max-bytes/
 * --no-cache (VLPSIM_CACHE_DIR supplies the directory when the flag is
 * absent). Returns null when caching is off.
 */
std::shared_ptr<store::ArtifactStore>
openCache(int argc, char **argv)
{
    store::StoreOptions options;
    if (const char *env = std::getenv("VLPSIM_CACHE_DIR"))
        options.directory = env;
    bool disabled = false;
    for (int i = 1; i < argc; ++i) {
        const std::string argument = argv[i];
        if (argument == "--no-cache") {
            disabled = true;
        } else if (argument == "--cache-dir"
                   || argument.rfind("--cache-dir=", 0) == 0) {
            options.directory =
                flagValue(argc, argv, i, "--cache-dir");
        } else if (argument == "--cache-max-bytes"
                   || argument.rfind("--cache-max-bytes=", 0) == 0) {
            const std::string value =
                flagValue(argc, argv, i, "--cache-max-bytes");
            char *end = nullptr;
            options.maxBytes =
                std::strtoull(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0')
                util::fatal("malformed --cache-max-bytes value: "
                            + value);
        }
    }
    if (disabled || options.directory.empty())
        return nullptr;
    return std::make_shared<store::ArtifactStore>(options);
}

workload::InputKind
parseInput(const std::string &text)
{
    if (text == "profile")
        return workload::InputKind::Profile;
    if (text == "test")
        return workload::InputKind::Test;
    util::fatal("input set must be 'profile' or 'test'");
}

bool
parseIndirect(const std::string &text)
{
    if (text == "cond")
        return false;
    if (text == "ind")
        return true;
    util::fatal("branch class must be 'cond' or 'ind'");
}

int
cmdList()
{
    util::TablePrinter table({"benchmark", "group", "paper cond dyn",
                              "paper cond static", "paper ind dyn",
                              "paper ind static"});
    for (const auto &spec : workload::benchmarkSuite()) {
        table.addRow({
            spec.name,
            spec.isSpec ? "SPECint95" : "non-SPEC",
            util::formatScaled(spec.paperDynamicCond),
            std::to_string(spec.paperStaticCond),
            util::formatScaled(spec.paperDynamicIndirect),
            std::to_string(spec.paperStaticInd),
        });
    }
    table.print(std::cout);
    return 0;
}

int
cmdGen(int argc, char **argv)
{
    if (argc < 5)
        return usage();
    const auto &spec = workload::findBenchmark(argv[2]);
    const auto kind = parseInput(argv[3]);
    const double extra =
        argc > 5 ? std::strtod(argv[5], nullptr) : 1.0;
    auto trace = workload::generateTrace(spec, kind, extra);
    trace::saveTrace(trace, argv[4]);
    std::cout << "wrote " << util::formatScaled(trace.size())
              << " records to " << argv[4] << "\n";
    return 0;
}

int
cmdStats(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    trace::TraceReader reader(argv[2]);
    if (reader.formatVersion() < 2) {
        std::cerr << "warning: " << argv[2]
                  << " is an unchecksummed VBT1 container; corruption "
                     "would go undetected (re-export to upgrade)\n";
    }
    trace::TraceStats stats;
    stats.observeAll(reader);
    std::cout << stats.summary() << "\n";
    return 0;
}

int
cmdProfile(int argc, char **argv)
{
    if (argc < 6)
        return usage();
    auto trace = trace::loadTrace(argv[2]);
    const std::size_t bytes = std::strtoul(argv[3], nullptr, 0);
    const bool indirect = parseIndirect(argv[4]);

    core::ProfileOptions options;
    // The length-sharded step-1 sweep is bit-identical at any worker
    // count, so --jobs only changes wall-clock (default: serial).
    options.jobs = parseJobs(argc, argv, 1);
    core::HashAssignment assignment(1);
    if (indirect) {
        options.indexBits = pred::indirectIndexBits(bytes);
        core::IndirectProfiler profiler(options);
        assignment = profiler.profile(trace);
    } else {
        options.indexBits = pred::conditionalIndexBits(bytes);
        core::ConditionalProfiler profiler(options);
        assignment = profiler.profile(trace);
    }
    assignment.save(argv[5]);
    std::cout << "profiled " << assignment.size()
              << " static branches (default length "
              << assignment.defaultLength() << ") -> " << argv[5]
              << "\n"
              << "length histogram: "
              << assignment.lengthHistogram().toString() << "\n";
    return 0;
}

int
cmdEval(int argc, char **argv)
{
    if (argc < 5)
        return usage();
    auto trace = trace::loadTrace(argv[2]);
    const std::size_t bytes = std::strtoul(argv[3], nullptr, 0);
    const bool indirect = parseIndirect(argv[4]);
    const bool have_assignment = argc > 5;

    sim::Simulator simulator;

    if (indirect) {
        const unsigned k = pred::indirectIndexBits(bytes);
        pred::BtbPredictor btb(k);
        pred::PathTargetCache chp_path(k);
        pred::PatternTargetCache chp_pattern(k);
        core::PathIndirectPredictor flp(k, 5);
        simulator.addIndirect(&btb);
        simulator.addIndirect(&chp_path);
        simulator.addIndirect(&chp_pattern);
        simulator.addIndirect(&flp);
        core::PathIndirectPredictor vlp(
            k, have_assignment ? core::HashAssignment::load(argv[5])
                               : core::HashAssignment(5));
        if (have_assignment)
            simulator.addIndirect(&vlp);
        simulator.run(trace);
        util::TablePrinter table(
            {"predictor", "size (bytes)", "mispredict (%)"});
        for (const auto &result : simulator.indirectResults()) {
            table.addRow({result.name,
                          std::to_string(result.sizeBytes),
                          util::formatDouble(result.rate(), 2)});
        }
        table.print(std::cout);
    } else {
        const unsigned k = pred::conditionalIndexBits(bytes);
        pred::GsharePredictor gshare(k);
        core::PathConditionalPredictor flp(k, 5);
        simulator.addConditional(&gshare);
        simulator.addConditional(&flp);
        core::PathConditionalPredictor vlp(
            k, have_assignment ? core::HashAssignment::load(argv[5])
                               : core::HashAssignment(5));
        if (have_assignment)
            simulator.addConditional(&vlp);
        simulator.run(trace);
        util::TablePrinter table(
            {"predictor", "size (bytes)", "mispredict (%)"});
        for (const auto &result : simulator.conditionalResults()) {
            table.addRow({result.name,
                          std::to_string(result.sizeBytes),
                          util::formatDouble(result.rate(), 2)});
        }
        table.print(std::cout);
        const auto ras = simulator.rasResult();
        std::cout << "returns (RAS): "
                  << util::formatDouble(ras.rate(), 2) << "% of "
                  << util::formatScaled(ras.branches) << "\n";
    }
    return 0;
}

int
cmdTop(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    auto trace = trace::loadTrace(argv[2]);
    const std::size_t bytes = std::strtoul(argv[3], nullptr, 0);
    const std::size_t count =
        argc > 4 ? std::strtoul(argv[4], nullptr, 0) : 15;
    const unsigned k = pred::conditionalIndexBits(bytes);

    pred::GsharePredictor gshare(k);
    core::PathConditionalPredictor flp(k, 5);
    sim::Simulator simulator;
    simulator.setTrackPerBranch(true);
    simulator.addConditional(&gshare);
    simulator.addConditional(&flp);
    simulator.run(trace);

    const auto &gshare_stats = simulator.conditionalPerBranch(0);
    const auto &flp_stats = simulator.conditionalPerBranch(1);
    const std::uint64_t total =
        simulator.conditionalResults()[0].branches;

    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranked;
    ranked.reserve(gshare_stats.size());
    for (const auto &[pc, accuracy] : gshare_stats)
        ranked.emplace_back(accuracy.mispredictions, pc);
    std::sort(ranked.rbegin(), ranked.rend());

    util::TablePrinter table({"pc", "executions", "gshare miss (%)",
                              "path(5) miss (%)",
                              "share of gshare misses (%)"});
    const std::uint64_t total_misses =
        simulator.conditionalResults()[0].mispredictions;
    for (std::size_t i = 0; i < count && i < ranked.size(); ++i) {
        const std::uint64_t pc = ranked[i].second;
        const auto &g = gshare_stats.at(pc);
        const auto &f = flp_stats.at(pc);
        char pc_text[32];
        std::snprintf(pc_text, sizeof(pc_text), "0x%llx",
                      static_cast<unsigned long long>(pc));
        table.addRow({
            pc_text,
            std::to_string(g.executions),
            util::formatDouble(
                util::percent(g.mispredictions, g.executions), 1),
            util::formatDouble(
                util::percent(f.mispredictions, f.executions), 1),
            util::formatDouble(
                util::percent(g.mispredictions, total_misses), 1),
        });
    }
    std::cout << "top mispredicted conditional branches under gshare ("
              << util::formatScaled(total) << " branches total):\n";
    table.print(std::cout);
    return 0;
}

/** `suite --traces DIR`: the external-trace ingestion pipeline. */
int
cmdSuiteTraces(int argc, char **argv)
{
    sim::TraceSuiteOptions options;
    options.jobs = parseJobs(argc, argv);
    options.store = openCache(argc, argv);
    bool have_bytes = false;
    for (int i = 2; i < argc; ++i) {
        const std::string argument = argv[i];
        if (argument == "--traces"
            || argument.rfind("--traces=", 0) == 0) {
            options.directory = flagValue(argc, argv, i, "--traces");
        } else if (argument == "--checkpoint"
                   || argument.rfind("--checkpoint=", 0) == 0) {
            options.checkpoint =
                flagValue(argc, argv, i, "--checkpoint");
        } else if (argument == "--jobs") {
            ++i; // value consumed by parseJobs
        } else if (argument == "--cache-dir"
                   || argument == "--cache-max-bytes") {
            ++i; // value consumed by openCache
        } else if (argument.rfind("--", 0) == 0) {
            continue; // --jobs=N / cache flags / --no-cache
        } else if (!have_bytes) {
            options.bytes = std::strtoul(argv[i], nullptr, 0);
            have_bytes = true;
            if (options.bytes == 0) {
                util::fatal("table budget must be a positive byte "
                            "count");
            }
        } else {
            return usage();
        }
    }
    if (options.directory.empty())
        return usage();

    sim::TraceSuiteRunner runner(std::move(options));
    const sim::SuiteReport report = runner.run();
    if (report.resumedCells > 0) {
        std::cerr << "checkpoint: resumed " << report.resumedCells
                  << " completed cells\n";
    }
    report.print(std::cout);
    // A partially failed corpus still produced results; only a run
    // that completed nothing exits nonzero.
    return report.allFailed() ? 1 : 0;
}

int
cmdSuite(int argc, char **argv)
{
    for (int i = 2; i < argc; ++i) {
        const std::string argument = argv[i];
        if (argument == "--traces"
            || argument.rfind("--traces=", 0) == 0) {
            return cmdSuiteTraces(argc, argv);
        }
    }
    if (argc < 4)
        return usage();
    const bool indirect = parseIndirect(argv[2]);
    const std::size_t bytes = std::strtoul(argv[3], nullptr, 0);
    if (bytes == 0)
        util::fatal("table budget must be a positive byte count");

    const auto start = std::chrono::steady_clock::now();
    sim::ParallelRunner runner(parseJobs(argc, argv));
    const auto cache = openCache(argc, argv);
    if (cache)
        runner.setStore(cache);
    const auto &suite = workload::benchmarkSuite();

    const unsigned global_length = indirect
        ? runner.globalIndirectLength(bytes)
        : runner.globalConditionalLength(bytes);
    const auto rows = indirect
        ? runner.compareIndirectSuite(suite, bytes, global_length)
        : runner.compareConditionalSuite(suite, bytes, global_length);

    std::cout << (indirect ? "indirect" : "conditional")
              << " predictors, " << bytes
              << " byte tables, test inputs (global fixed path length "
              << global_length << "):\n";
    std::vector<std::string> header = {"benchmark"};
    for (const auto &entry : rows.front().entries)
        header.push_back(entry.predictor + " (%)");
    util::TablePrinter table(header);
    for (const auto &row : rows) {
        std::vector<std::string> cells = {row.benchmark};
        for (const auto &entry : row.entries)
            cells.push_back(util::formatDouble(entry.rate, 2));
        table.addRow(std::move(cells));
    }
    table.print(std::cout);

    // Throughput goes to stderr so stdout stays bit-identical across
    // --jobs values.
    const double seconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start).count();
    const double per_second = seconds > 0.0
        ? static_cast<double>(runner.predictions()) / seconds
        : 0.0;
    std::cerr << "run summary: "
              << util::formatCount(runner.predictions())
              << " branch predictions in "
              << util::formatDouble(seconds, 2) << " s ("
              << util::formatScaled(
                     static_cast<std::uint64_t>(per_second))
              << " branches/s; jobs=" << runner.jobs() << ")\n";
    if (cache) {
        const store::StoreCounters counters = cache->counters();
        std::cerr << "cache: " << counters.hits << " hits, "
                  << counters.misses << " misses, "
                  << counters.inserts << " inserts";
        if (counters.corrupt > 0)
            std::cerr << ", " << counters.corrupt << " corrupt";
        if (counters.evicted > 0)
            std::cerr << ", " << counters.evicted << " evicted";
        std::cerr << "\n";
    }
    return 0;
}

int
cmdCache(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    const std::string action = argv[2];
    const std::string directory = argv[3];
    if (action == "stats") {
        const auto summary = store::ArtifactStore::summarize(directory);
        std::cout << "cache " << directory << ": " << summary.entries
                  << " entries, " << summary.bytes << " bytes\n"
                  << "lifetime: " << summary.lifetime.hits << " hits, "
                  << summary.lifetime.misses << " misses, "
                  << summary.lifetime.inserts << " inserts, "
                  << summary.lifetime.corrupt << " corrupt, "
                  << summary.lifetime.evicted << " evicted\n";
        return 0;
    }
    if (action == "verify") {
        const auto result = store::ArtifactStore::verify(directory);
        std::cout << result.ok << " entries ok, " << result.corrupt
                  << " corrupt (removed)\n";
        return result.corrupt == 0 ? 0 : 1;
    }
    if (action == "clear") {
        const std::uint64_t removed =
            store::ArtifactStore::clear(directory);
        std::cout << "removed " << removed << " entries\n";
        return 0;
    }
    return usage();
}

int
cmdImport(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    auto trace = trace::loadTextTrace(argv[2]);
    trace::saveTrace(trace, argv[3]);
    std::cout << "imported " << util::formatScaled(trace.size())
              << " records -> " << argv[3] << "\n";
    return 0;
}

int
cmdExport(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    auto trace = trace::loadTrace(argv[2]);
    trace::saveTextTrace(trace, argv[3]);
    std::cout << "exported " << util::formatScaled(trace.size())
              << " records -> " << argv[3] << "\n";
    return 0;
}

int
cmdConvert(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    std::ifstream in(argv[2], std::ios::binary);
    if (!in)
        util::fatal(std::string("cannot open text trace: ") + argv[2]);
    trace::ConvertReport report;
    auto trace = trace::readTextTraceLenient(in, report);
    for (const std::string &diagnostic : report.diagnostics)
        std::cerr << argv[2] << ": " << diagnostic << "\n";
    if (report.skipped > report.diagnostics.size()) {
        std::cerr << argv[2] << ": ... and "
                  << report.skipped - report.diagnostics.size()
                  << " more malformed lines\n";
    }
    if (report.imported == 0)
        util::fatal(std::string("no usable records in ") + argv[2]);
    trace::saveTrace(trace, argv[3]);
    std::cout << "converted " << util::formatScaled(report.imported)
              << " records (" << report.skipped
              << " malformed lines skipped) -> " << argv[3] << "\n";
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    try {
        if (command == "list")
            return cmdList();
        if (command == "gen")
            return cmdGen(argc, argv);
        if (command == "stats")
            return cmdStats(argc, argv);
        if (command == "profile")
            return cmdProfile(argc, argv);
        if (command == "eval")
            return cmdEval(argc, argv);
        if (command == "top")
            return cmdTop(argc, argv);
        if (command == "suite")
            return cmdSuite(argc, argv);
        if (command == "cache")
            return cmdCache(argc, argv);
        if (command == "import")
            return cmdImport(argc, argv);
        if (command == "export")
            return cmdExport(argc, argv);
        if (command == "convert")
            return cmdConvert(argc, argv);
    } catch (const std::exception &error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
    return usage();
}
