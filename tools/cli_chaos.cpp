/**
 * @file
 * `vlpsim chaos` — the seeded fault-injection soak campaign.
 *
 * Arms the util::chaos switchboard (DESIGN.md §16) and drives the
 * system through its hazard points, then verifies the robustness
 * invariants the rest of the codebase promises:
 *
 *   suite path (--suite DIR)
 *     - a chaos run completes (no hang, no crash) over the corpus
 *     - the same seed replays exactly: per-section fired counters,
 *       the quarantine set, and the rendered report are identical
 *       across two runs from identically-warmed state
 *     - every quarantined pair carries a cause
 *     - with no quarantines the chaos report is byte-identical to
 *       the chaos-off baseline; with quarantines, a chaos-off rerun
 *       pinned to the chaos run's global history lengths matches on
 *       every surviving pair
 *   store GC sweep (runs with --suite)
 *     - a bounded store soaked with torn inserts, checksum faults,
 *       and GC reader races stays functional, and the fault pattern
 *       replays exactly from the seed
 *   serve path (--serve)
 *     - every accepted request reaches a terminal state, through
 *       dropped accepts, queue-full admission, step-boundary
 *       cancellations, heartbeat stalls, and slow writes
 *     - lifetime stats stay consistent: accepted ==
 *       completed + cancelled + failed after a drain
 *     - completed suite answers are byte-identical to a chaos-off
 *       reference report
 *   front end (always runs; synthetic workload, no corpus needed)
 *     - spurious checkpoint restores forced into the speculative
 *       fetch engine (frontend.checkpoint.restore) leave every
 *       predictor statistic identical to a chaos-off run
 *     - the engine's restore counter accounts for exactly one repair
 *       per misprediction plus one per chaos firing
 *     - the fault pattern replays exactly from the seed
 *
 * Any violation prints the seed (the whole campaign is a pure
 * function of it) and exits 1. --out FILE writes a JSON summary —
 * per-section counters plus verdicts — for CI artifact aggregation.
 */

#include "cli_commands.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/path_predictor.h"
#include "predictors/budget.h"
#include "predictors/gshare.h"
#include "serve/client.h"
#include "serve/server.h"
#include "sim/experiment.h"
#include "sim/frontend.h"
#include "sim/report.h"
#include "sim/service.h"
#include "sim/suite_runner.h"
#include "store/artifact_store.h"
#include "store/cache_key.h"
#include "util/args.h"
#include "util/chaos.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/table.h"

namespace fs = std::filesystem;

namespace vlp {
namespace cli {

namespace {

using ChaosCounters = std::map<std::string, util::chaos::SectionStats>;

/** Campaign knobs, straight from the flags. */
struct ChaosArgs
{
    std::uint64_t seed = 1;
    double activate = 0.75;
    double fire = 0.25;
    std::string suiteDirectory;
    bool serve = false;
    unsigned requests = 6;
    unsigned jobs = 2;
    std::size_t bytes = 8 * 1024;
    std::string outFile;
};

/** Everything the campaign learned, for the verdict and --out. */
struct CampaignResult
{
    std::vector<std::string> violations;
    /** Per-section counters merged across phases (sums; OR on
     *  activated). */
    ChaosCounters sections;
    bool suiteRan = false;
    std::size_t suiteOk = 0;
    std::size_t suiteQuarantined = 0;
    bool frontendRan = false;
    std::uint64_t frontendRestores = 0;
    std::uint64_t frontendSpurious = 0;
    bool serveRan = false;
    std::uint64_t serveAccepted = 0;
    std::uint64_t serveRejected = 0;
    std::uint64_t serveCompleted = 0;
    std::uint64_t serveCancelled = 0;
    std::uint64_t serveFailed = 0;

    void flag(const std::string &what)
    {
        violations.push_back(what);
        util::warn("chaos invariant violated: " + what);
    }

    void merge(const ChaosCounters &counters)
    {
        for (const auto &[name, stats] : counters) {
            util::chaos::SectionStats &into = sections[name];
            into.activated = into.activated || stats.activated;
            into.reached += stats.reached;
            into.fired += stats.fired;
            into.skipped += stats.skipped;
        }
    }
};

util::chaos::Config
campaignConfig(const ChaosArgs &args)
{
    util::chaos::Config config;
    config.enabled = true;
    config.seed = args.seed;
    config.activateProbability = args.activate;
    config.fireProbability = args.fire;
    return config;
}

/** Deterministic text rendering of a suite report. */
std::string
renderSuite(const sim::SuiteReport &report)
{
    std::ostringstream out;
    report.print(out);
    return out.str();
}

std::vector<std::string>
quarantinedNames(const sim::SuiteReport &report)
{
    std::vector<std::string> names;
    for (const sim::TraceOutcome &outcome : report.traces) {
        if (outcome.status == sim::TraceStatus::Quarantined)
            names.push_back(outcome.name);
    }
    return names;
}

/** Copy of @p report without the pairs named in @p drop, so two runs
 *  that diverge only by quarantines can be compared byte-for-byte. */
sim::SuiteReport
withoutPairs(const sim::SuiteReport &report,
             const std::set<std::string> &drop)
{
    sim::SuiteReport filtered = report;
    filtered.traces.clear();
    for (const sim::TraceOutcome &outcome : report.traces) {
        if (drop.count(outcome.name) == 0)
            filtered.traces.push_back(outcome);
    }
    return filtered;
}

/** One external-trace suite run over the campaign corpus. */
sim::SuiteReport
runSuiteOnce(const ChaosArgs &args, const fs::path &store_dir,
             const fs::path &checkpoint,
             std::optional<unsigned> force_cond = std::nullopt,
             std::optional<unsigned> force_ind = std::nullopt)
{
    store::StoreOptions store_options;
    store_options.directory = store_dir.string();

    sim::TraceSuiteOptions options;
    options.directory = args.suiteDirectory;
    options.bytes = args.bytes;
    options.jobs = args.jobs;
    options.checkpoint = checkpoint.string();
    options.retryJitterSeed = args.seed;
    options.store = std::make_shared<store::ArtifactStore>(store_options);
    options.forceGlobalConditionalLength = force_cond;
    options.forceGlobalIndirectLength = force_ind;
    sim::TraceSuiteRunner runner(std::move(options));
    return runner.run();
}

/**
 * The suite campaign: chaos-off warm/baseline run, then a chaos run,
 * from identically-prepared state on two independent store/journal
 * sets — so the chaos runs must replay each other exactly.
 */
void
runSuiteCampaign(const ChaosArgs &args, const fs::path &work,
                 CampaignResult &result)
{
    result.suiteRan = true;

    // Leg A: chaos-off baseline (which also warms store-a), then the
    // chaos run over the warmed store.
    util::chaos::disable();
    const sim::SuiteReport baseline = runSuiteOnce(
        args, work / "store-a", work / "journal-base-a");
    const std::string baseline_text = renderSuite(baseline);

    util::chaos::configure(campaignConfig(args));
    const sim::SuiteReport chaos_a = runSuiteOnce(
        args, work / "store-a", work / "journal-a");
    const ChaosCounters counters_a = util::chaos::counters();
    const std::string text_a = renderSuite(chaos_a);

    // Leg B: fresh store, same chaos-off warm-up, same seed.
    util::chaos::disable();
    const sim::SuiteReport warm_b = runSuiteOnce(
        args, work / "store-b", work / "journal-base-b");
    if (renderSuite(warm_b) != baseline_text) {
        result.flag("suite: two chaos-off runs disagree (determinism "
                    "broken before any fault was injected)");
    }

    util::chaos::configure(campaignConfig(args));
    const sim::SuiteReport chaos_b = runSuiteOnce(
        args, work / "store-b", work / "journal-b");
    const ChaosCounters counters_b = util::chaos::counters();
    util::chaos::disable();

    result.suiteOk = chaos_a.okCount();
    result.suiteQuarantined = chaos_a.quarantinedCount();
    result.merge(counters_a);

    // Replay: same seed, same workload, same initial state — the two
    // chaos runs must agree on every count and every byte.
    if (counters_a != counters_b) {
        result.flag("suite: per-section chaos counters differ between "
                    "two runs of seed " + std::to_string(args.seed));
    }
    if (text_a != renderSuite(chaos_b)) {
        result.flag("suite: report text differs between two runs of "
                    "seed " + std::to_string(args.seed));
    }
    const std::vector<std::string> quarantined_a =
        quarantinedNames(chaos_a);
    if (quarantined_a != quarantinedNames(chaos_b)) {
        result.flag("suite: quarantine sets differ between two runs "
                    "of seed " + std::to_string(args.seed));
    }

    // Every quarantine must say why.
    for (const sim::TraceOutcome &outcome : chaos_a.traces) {
        if (outcome.status == sim::TraceStatus::Quarantined
            && outcome.cause.empty()) {
            result.flag("suite: pair '" + outcome.name
                        + "' quarantined without a cause");
        }
    }

    // Chaos-off comparison. Faults may quarantine pairs but must
    // never change a surviving pair's numbers.
    if (quarantined_a.empty()) {
        if (text_a != baseline_text) {
            result.flag("suite: no pair was quarantined, yet the "
                        "chaos report differs from the chaos-off "
                        "baseline");
        }
    } else {
        // A quarantined pair drops out of the suite-average global
        // history lengths, shifting every other row. Pin a chaos-off
        // rerun to the chaos run's globals and compare the survivors.
        const sim::SuiteReport masked = runSuiteOnce(
            args, work / "store-a", work / "journal-mask",
            chaos_a.globalConditionalLength,
            chaos_a.globalIndirectLength);
        const std::set<std::string> drop(quarantined_a.begin(),
                                         quarantined_a.end());
        const std::string survivors_chaos =
            renderSuite(withoutPairs(chaos_a, drop));
        const std::string survivors_masked =
            renderSuite(withoutPairs(masked, drop));
        if (survivors_chaos != survivors_masked) {
            result.flag("suite: a surviving pair's results changed "
                        "under chaos (faults must only quarantine, "
                        "never corrupt)");
            std::ofstream(work / "survivors-chaos.txt")
                << survivors_chaos;
            std::ofstream(work / "survivors-masked.txt")
                << survivors_masked;
        }
    }
}

/**
 * The bounded-store GC sweep: single-threaded inserts and re-fetches
 * over a store small enough that garbage collection runs, so the
 * store.gc.* / store.insert.* / store.fetch.* sections soak under a
 * replay-checked workload.
 */
ChaosCounters
runGcSweepOnce(const ChaosArgs &args, const fs::path &dir)
{
    util::chaos::configure(campaignConfig(args));
    store::StoreOptions options;
    options.directory = dir.string();
    options.maxBytes = 4096;
    store::ArtifactStore store(options);
    const std::vector<std::uint8_t> payload(512, 0xA5);
    for (std::uint64_t i = 0; i < 32; ++i) {
        const store::CacheKey key = store::KeyBuilder("chaos-gc-soak")
                                        .field("i", i)
                                        .build();
        store.insert(key, payload);
        // Re-fetch an older key: a hit goes through checksum
        // validation (and its chaos section); a GC-evicted or
        // chaos-corrupted entry is simply a miss.
        const store::CacheKey old = store::KeyBuilder("chaos-gc-soak")
                                        .field("i", i / 2)
                                        .build();
        const auto fetched = store.fetch(old);
        if (fetched && fetched->size() != payload.size()) {
            throw std::runtime_error(
                "gc sweep: fetch returned a corrupt payload without "
                "flagging it");
        }
    }
    const ChaosCounters counters = util::chaos::counters();
    util::chaos::disable();
    return counters;
}

void
runGcCampaign(const ChaosArgs &args, const fs::path &work,
              CampaignResult &result)
{
    const ChaosCounters first = runGcSweepOnce(args, work / "gc-a");
    const ChaosCounters second = runGcSweepOnce(args, work / "gc-b");
    if (first != second) {
        result.flag("gc sweep: chaos counters differ between two "
                    "runs of seed " + std::to_string(args.seed));
    }
    result.merge(first);
}

/** One fetch-bundle engine pass (gshare + banked VLP) over a
 *  synthetic workload; captures accuracy, repair counts, and — with
 *  chaos armed — the per-section counters. */
struct FrontendRun
{
    std::vector<sim::PredictorResult> results;
    std::uint64_t mispredictions = 0;
    std::uint64_t restores = 0;
    ChaosCounters counters;
};

FrontendRun
runFrontendOnce(const ChaosArgs &args, bool with_chaos)
{
    if (with_chaos)
        util::chaos::configure(campaignConfig(args));
    else
        util::chaos::disable();

    sim::ExperimentContext context;
    const workload::BenchmarkSpec &spec = workload::findBenchmark("go");
    const unsigned k = pred::conditionalIndexBits(args.bytes);
    const core::HashAssignment &assignment =
        context.conditionalAssignment(spec, k);

    pred::GsharePredictor gshare(k);
    core::PathConditionalPredictor vlp(k, assignment);
    vlp.setBanks(4);

    sim::FrontendParameters parameters;
    parameters.mode = sim::FrontendMode::FetchBundle;
    parameters.bundleWidth = 4;
    parameters.chaosIdentity = "chaos-frontend";
    sim::FetchEngine engine(parameters);
    engine.addConditional(&gshare);
    engine.addConditional(&vlp);

    const auto trace = context.trace(spec, workload::InputKind::Test);
    trace->reset();
    engine.run(*trace);

    FrontendRun run;
    run.results = engine.conditionalResults();
    for (std::size_t i = 0; i < run.results.size(); ++i) {
        run.mispredictions += run.results[i].mispredictions;
        run.restores += engine.conditionalTiming(i).checkpointRestores;
    }
    if (with_chaos)
        run.counters = util::chaos::counters();
    util::chaos::disable();
    return run;
}

/**
 * The front-end campaign: spurious checkpoint restores forced into
 * the speculative fetch engine must be invisible — restore-then-replay
 * leaves every statistic exactly as a chaos-off run computes it — and
 * the repair ledger must balance: one restore per misprediction plus
 * one per chaos firing.
 */
void
runFrontendCampaign(const ChaosArgs &args, CampaignResult &result)
{
    result.frontendRan = true;

    const FrontendRun baseline = runFrontendOnce(args, false);
    const FrontendRun chaos_a = runFrontendOnce(args, true);
    const FrontendRun chaos_b = runFrontendOnce(args, true);

    result.frontendRestores = chaos_a.restores;
    result.merge(chaos_a.counters);

    const auto sameResults = [](const FrontendRun &a,
                                const FrontendRun &b) {
        if (a.results.size() != b.results.size())
            return false;
        for (std::size_t i = 0; i < a.results.size(); ++i) {
            if (a.results[i].branches != b.results[i].branches
                || a.results[i].mispredictions
                       != b.results[i].mispredictions)
                return false;
        }
        return true;
    };

    if (!sameResults(baseline, chaos_a)) {
        result.flag("front end: spurious checkpoint restores changed "
                    "predictor statistics (restore-then-replay must "
                    "be invisible)");
    }
    if (!sameResults(chaos_a, chaos_b)
        || chaos_a.counters != chaos_b.counters
        || chaos_a.restores != chaos_b.restores) {
        result.flag("front end: two runs of seed "
                    + std::to_string(args.seed)
                    + " disagree (fault pattern must replay exactly)");
    }

    // Ledger: the baseline repairs once per misprediction; chaos adds
    // exactly its fired count on top.
    if (baseline.restores != baseline.mispredictions) {
        result.flag("front end: chaos-off restore count ("
                    + std::to_string(baseline.restores)
                    + ") does not match mispredictions ("
                    + std::to_string(baseline.mispredictions) + ")");
    }
    std::uint64_t fired = 0;
    const auto section =
        chaos_a.counters.find("frontend.checkpoint.restore");
    if (section != chaos_a.counters.end())
        fired = section->second.fired;
    result.frontendSpurious = fired;
    if (chaos_a.restores != chaos_a.mispredictions + fired) {
        result.flag("front end: restore ledger does not balance ("
                    + std::to_string(chaos_a.restores)
                    + " restores != "
                    + std::to_string(chaos_a.mispredictions)
                    + " mispredictions + "
                    + std::to_string(fired) + " chaos-forced)");
    }
}

/** Connect + handshake with retries: chaos may drop the accept or
 *  stall the hello, and the campaign must ride through it. */
std::unique_ptr<serve::ServeClient>
connectWithRetry(const util::net::Endpoint &endpoint)
{
    for (int attempt = 0;; ++attempt) {
        try {
            return std::make_unique<serve::ServeClient>(endpoint,
                                                        5000);
        } catch (const std::runtime_error &) {
            if (attempt >= 50)
                throw;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

/** Poll one request's state until it is terminal. */
std::string
awaitTerminalState(serve::ServeClient &client, std::uint64_t id)
{
    for (int spin = 0; spin < 400; ++spin) {
        const util::Json frame = client.status(id);
        const util::Json *type = frame.find("type");
        if (type != nullptr && type->isString()
            && type->asString() == "error")
            return "error";
        const util::Json *state = frame.find("state");
        const std::string text =
            state != nullptr && state->isString() ? state->asString()
                                                  : std::string();
        if (text == "done" || text == "cancelled" || text == "failed")
            return text;
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    return "wedged";
}

/**
 * The serve campaign: an in-process daemon with chaos armed, a
 * deterministic request mix (suite answers, sleeps, client
 * cancellations), and the terminal-state/stats/byte-identity
 * invariants checked after a drain. Counter replay is not asserted
 * here — heartbeat and send reaches are timing-dependent by nature —
 * but every lifecycle invariant must hold under any interleaving.
 */
void
runServeCampaign(const ChaosArgs &args, const fs::path &work,
                 CampaignResult &result)
{
    result.serveRan = true;

    // Chaos-off reference for the suite answers, computed before the
    // switchboard arms: the daemon's result frames must match it
    // byte-for-byte no matter which faults fire.
    sim::SuiteCompareSpec suite_spec;
    suite_spec.indirect = false;
    suite_spec.bytes = args.bytes;
    suite_spec.jobs = 1;
    util::chaos::disable();
    sim::Report reference = sim::runSuiteCompare(suite_spec).report;
    sim::stampBuildInfo(reference);
    std::ostringstream reference_json;
    sim::JsonReportSink sink;
    sink.write(reference, reference_json);
    const std::string reference_compact =
        util::toCompactJson(util::Json::parse(reference_json.str()));

    serve::ServerOptions options;
    options.listen = util::net::Endpoint::parse("127.0.0.1:0");
    options.workers = 2;
    options.heartbeatMs = 25;
    options.sendTimeoutMs = 5000;
    options.finishedWindow = 2 * args.requests + 16;
    options.cacheDirectory = (work / "serve-store").string();
    options.chaos = campaignConfig(args);
    serve::ExperimentServer server(std::move(options));
    server.start();

    std::vector<std::uint64_t> accepted_ids;
    std::uint64_t rejected = 0;
    for (unsigned r = 0; r < args.requests; ++r) {
        std::unique_ptr<serve::ServeClient> client =
            connectWithRetry(server.endpoint());

        serve::SubmitSpec spec;
        const bool cancel_it = r % 4 == 2;
        if (r % 4 == 0 || r % 4 == 1) {
            spec.op = "suite";
            spec.suite = suite_spec;
        } else {
            spec.op = "sleep";
            spec.sleepMs = cancel_it ? 400 : 50;
        }

        serve::ServeClient::Submission submission;
        try {
            submission = client->submit(spec);
        } catch (const std::runtime_error &) {
            // The connection died mid-submit (dropped accept raced
            // the handshake, peer reset under a slow write): the
            // request was never accepted, which is a legal outcome.
            ++rejected;
            continue;
        }
        if (!submission.accepted) {
            ++rejected;
            continue;
        }
        accepted_ids.push_back(submission.id);

        try {
            if (cancel_it) {
                client->cancel(submission.id);
                const std::string state =
                    awaitTerminalState(*client, submission.id);
                if (state == "wedged") {
                    result.flag(
                        "serve: request "
                        + std::to_string(submission.id)
                        + " never reached a terminal state after "
                          "cancel");
                }
            } else {
                const util::Json terminal =
                    client->await(submission.id);
                const std::string &type =
                    terminal.at("type").asString();
                if (type == "result" && spec.op == "suite") {
                    const std::string got = util::toCompactJson(
                        terminal.at("report"));
                    if (got != reference_compact) {
                        result.flag(
                            "serve: request "
                            + std::to_string(submission.id)
                            + " returned a report that differs from "
                              "the chaos-off reference");
                    }
                }
            }
        } catch (const std::runtime_error &error) {
            // The stream died after admission (peer dropped, receive
            // timed out). The request is still owned by the daemon;
            // the post-drain sweep below must find it terminal.
            util::warn(std::string("chaos campaign: stream lost for "
                                   "request ")
                       + std::to_string(submission.id) + " ("
                       + error.what() + ")");
        }
    }

    // Drain: everything admitted must finish, and the books must
    // balance exactly.
    server.requestDrain();
    server.awaitIdle();

    std::unique_ptr<serve::ServeClient> checker =
        connectWithRetry(server.endpoint());
    for (const std::uint64_t id : accepted_ids) {
        const std::string state = awaitTerminalState(*checker, id);
        if (state != "done" && state != "cancelled"
            && state != "failed") {
            result.flag("serve: request " + std::to_string(id)
                        + " is '" + state
                        + "' after drain (expected terminal)");
        }
    }
    checker.reset();

    const serve::ServerStats stats = server.stats();
    server.stop();
    result.merge(util::chaos::counters());
    util::chaos::disable();

    result.serveAccepted = stats.accepted;
    result.serveRejected = stats.rejected;
    result.serveCompleted = stats.completed;
    result.serveCancelled = stats.cancelled;
    result.serveFailed = stats.failed;
    if (stats.accepted != accepted_ids.size()) {
        result.flag("serve: daemon counted "
                    + std::to_string(stats.accepted)
                    + " accepted requests, campaign submitted "
                    + std::to_string(accepted_ids.size()));
    }
    if (stats.accepted
        != stats.completed + stats.cancelled + stats.failed) {
        result.flag(
            "serve: stats do not balance after drain (accepted "
            + std::to_string(stats.accepted) + " != completed "
            + std::to_string(stats.completed) + " + cancelled "
            + std::to_string(stats.cancelled) + " + failed "
            + std::to_string(stats.failed) + ")");
    }
    (void)rejected;
}

void
writeSummary(const ChaosArgs &args, const CampaignResult &result)
{
    util::JsonWriter writer;
    writer.beginObject();
    writer.member("seed", args.seed);
    writer.member("activateProbability", args.activate);
    writer.member("fireProbability", args.fire);
    writer.member("ok", result.violations.empty());
    writer.key("violations");
    writer.beginArray();
    for (const std::string &violation : result.violations)
        writer.value(violation);
    writer.endArray();
    writer.key("sections");
    writer.beginObject();
    // Every registered section appears, reached or not, so CI
    // coverage aggregation never has to special-case absence.
    for (const std::string &name : util::chaos::knownSections()) {
        util::chaos::SectionStats stats;
        const auto found = result.sections.find(name);
        if (found != result.sections.end())
            stats = found->second;
        writer.key(name);
        writer.beginObject();
        writer.member("activated", stats.activated);
        writer.member("reached", stats.reached);
        writer.member("fired", stats.fired);
        writer.member("skipped", stats.skipped);
        writer.endObject();
    }
    writer.endObject();
    writer.key("suite");
    writer.beginObject();
    writer.member("ran", result.suiteRan);
    writer.member("ok", std::uint64_t{result.suiteOk});
    writer.member("quarantined",
                  std::uint64_t{result.suiteQuarantined});
    writer.endObject();
    writer.key("frontend");
    writer.beginObject();
    writer.member("ran", result.frontendRan);
    writer.member("restores", result.frontendRestores);
    writer.member("spurious", result.frontendSpurious);
    writer.endObject();
    writer.key("serve");
    writer.beginObject();
    writer.member("ran", result.serveRan);
    writer.member("accepted", result.serveAccepted);
    writer.member("rejected", result.serveRejected);
    writer.member("completed", result.serveCompleted);
    writer.member("cancelled", result.serveCancelled);
    writer.member("failed", result.serveFailed);
    writer.endObject();
    writer.endObject();

    std::ofstream out(args.outFile, std::ios::binary);
    if (!out)
        util::fatal("cannot open output file: " + args.outFile);
    out << writer.str() << "\n";
}

} // anonymous namespace

int
cmdChaos(int argc, char **argv)
{
    util::ArgParser parser(
        "vlpsim chaos",
        "run a seeded fault-injection soak campaign over the suite "
        "and/or serve paths and verify the robustness invariants: "
        "no hangs, terminal states everywhere, causes on every "
        "quarantine, and byte-exact replay from the seed");
    ChaosArgs args;
    std::uint64_t seed = 1;
    std::uint64_t requests = 6;
    std::uint64_t jobs = 2;
    std::uint64_t bytes = 8 * 1024;
    parser.addUint("--seed", "S",
                   "campaign seed; every fault decision derives from "
                   "it (default 1)",
                   &seed, ~std::uint64_t{0});
    parser.addString("--suite", "DIR",
                     "run the external-trace suite campaign over this "
                     ".vbt corpus",
                     &args.suiteDirectory);
    parser.addSwitch("--serve",
                     "run the serve campaign against an in-process "
                     "daemon",
                     &args.serve);
    parser.addUint("--requests", "N",
                   "serve campaign request count (default 6)",
                   &requests, 10'000);
    parser.addOption("--activate", "P",
                     "per-run section activation probability "
                     "(default 0.75)",
                     [&args](const std::string &value) {
                         args.activate =
                             std::strtod(value.c_str(), nullptr);
                     });
    parser.addOption("--fire", "P",
                     "per-reach fire probability for activated "
                     "sections (default 0.25)",
                     [&args](const std::string &value) {
                         args.fire =
                             std::strtod(value.c_str(), nullptr);
                     });
    parser.addUint("--jobs", "N",
                   "suite campaign worker threads (default 2)", &jobs,
                   4096);
    parser.addUint("--bytes", "N",
                   "predictor table budget (default 8192)", &bytes,
                   ~std::uint64_t{0});
    parser.addString("--out", "FILE",
                     "write a JSON campaign summary (counters + "
                     "verdicts) for CI aggregation",
                     &args.outFile);
    parser.parse(argc, argv, 2);
    args.seed = seed;
    args.requests = static_cast<unsigned>(requests);
    args.jobs = static_cast<unsigned>(jobs);
    args.bytes = static_cast<std::size_t>(bytes);
    if (args.suiteDirectory.empty() && !args.serve)
        parser.fail("nothing to soak: pass --suite DIR and/or --serve");

    const fs::path work =
        fs::temp_directory_path()
        / ("vlpsim-chaos-" + std::to_string(::getpid()) + "-"
           + std::to_string(args.seed));
    fs::create_directories(work);

    CampaignResult result;
    try {
        // The front-end leg needs no corpus or daemon, so every
        // campaign soaks it.
        runFrontendCampaign(args, result);
        if (!args.suiteDirectory.empty()) {
            runSuiteCampaign(args, work, result);
            runGcCampaign(args, work, result);
        }
        if (args.serve)
            runServeCampaign(args, work, result);
    } catch (const std::exception &error) {
        // An escaped exception is itself a campaign failure: the
        // system must degrade (retry, quarantine, fail the request),
        // never fall over.
        result.flag(std::string("campaign aborted by exception: ")
                    + error.what());
        util::chaos::disable();
    }

    util::TablePrinter table(
        {"section", "activated", "reached", "fired", "skipped"});
    for (const std::string &name : util::chaos::knownSections()) {
        util::chaos::SectionStats stats;
        const auto found = result.sections.find(name);
        if (found != result.sections.end())
            stats = found->second;
        table.addRow({name, stats.activated ? "yes" : "no",
                      std::to_string(stats.reached),
                      std::to_string(stats.fired),
                      std::to_string(stats.skipped)});
    }
    table.print(std::cout);

    if (!args.outFile.empty())
        writeSummary(args, result);

    if (!result.violations.empty()) {
        std::cout << "chaos campaign seed " << args.seed << ": FAIL ("
                  << result.violations.size() << " violation"
                  << (result.violations.size() == 1 ? "" : "s")
                  << ")\n";
        for (const std::string &violation : result.violations)
            std::cout << "  - " << violation << "\n";
        std::cout << "replay with: vlpsim chaos --seed " << args.seed
                  << "; evidence kept in " << work.string() << "\n";
        return 1;
    }
    std::error_code discard;
    fs::remove_all(work, discard);
    std::cout << "chaos campaign seed " << args.seed << ": PASS\n";
    return 0;
}

} // namespace cli
} // namespace vlp
