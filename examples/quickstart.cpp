/**
 * @file
 * Quickstart: generate a benchmark trace, profile the variable length
 * path predictor on the profile input, and compare it against gshare
 * on the test input — the paper's headline experiment in ~60 lines.
 *
 * Usage: quickstart [benchmark] [table-bytes]
 * Defaults: gcc with a 4K byte conditional predictor (the abstract's
 * configuration: the paper reports VLP 4.3% vs gshare 8.8%).
 */

#include <cstdlib>
#include <iostream>

#include "core/path_predictor.h"
#include "core/profiler.h"
#include "predictors/budget.h"
#include "predictors/gshare.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "workload/benchmarks.h"

int
main(int argc, char **argv)
{
    using namespace vlp;

    const std::string name = argc > 1 ? argv[1] : "gcc";
    const std::size_t bytes = argc > 2 ? std::strtoul(argv[2], nullptr, 0)
                                       : 4096;

    const workload::BenchmarkSpec &spec = workload::findBenchmark(name);
    const unsigned index_bits = pred::conditionalIndexBits(bytes);

    std::cout << "benchmark: " << spec.name << ", table: " << bytes
              << " bytes (k=" << index_bits << ")\n";

    // 1. Generate the profile-input trace and run the paper's two-step
    //    profiling heuristic to pick a hash function number per branch.
    std::cout << "profiling..." << std::flush;
    trace::VectorTraceSource profile_trace =
        workload::generateTrace(spec, workload::InputKind::Profile);
    core::ProfileOptions options;
    options.indexBits = index_bits;
    core::ConditionalProfiler profiler(options);
    const core::HashAssignment assignment =
        profiler.profile(profile_trace);
    std::cout << " assigned " << assignment.size()
              << " branches (default length "
              << assignment.defaultLength() << ")\n";
    std::cout << "length histogram: "
              << assignment.lengthHistogram().toString() << "\n";

    // 2. Evaluate on the (different) test input against gshare.
    trace::VectorTraceSource test_trace =
        workload::generateTrace(spec, workload::InputKind::Test);

    pred::GsharePredictor gshare(index_bits);
    core::PathConditionalPredictor vlp(index_bits, assignment);

    sim::Simulator simulator;
    simulator.addConditional(&gshare);
    simulator.addConditional(&vlp);
    simulator.run(test_trace);

    for (const auto &result : simulator.conditionalResults()) {
        std::cout << result.name << ": "
                  << util::formatDouble(result.rate(), 2)
                  << "% misprediction rate over "
                  << util::formatScaled(result.branches)
                  << " conditional branches\n";
    }
    const auto ras = simulator.rasResult();
    std::cout << ras.name << ": " << util::formatDouble(ras.rate(), 2)
              << "% over " << util::formatScaled(ras.branches)
              << " returns\n";
    return 0;
}
