/**
 * @file
 * Indirect branch prediction on an interpreter workload — the paper's
 * strongest result. Builds a custom bytecode-interpreter program with
 * the workload DSL (a dispatch loop whose next opcode follows an
 * order-2 Markov process, plus handlers with call-site-correlated
 * conditionals) and races every indirect predictor in the repository
 * on it: BTB, the Chang-Hao-Patt pattern and path target caches, a
 * cascaded predictor, and fixed/variable length path predictors.
 *
 * Usage: indirect_interpreter [table-bytes]
 */

#include <cstdlib>
#include <iostream>

#include "core/path_predictor.h"
#include "core/profiler.h"
#include "predictors/btb.h"
#include "predictors/budget.h"
#include "predictors/cascaded.h"
#include "predictors/target_cache.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/engine.h"
#include "workload/program.h"

namespace {

using namespace vlp;
using namespace vlp::workload;

/** Build a small bytecode interpreter with @p handlers opcodes. */
Program
buildInterpreter(unsigned handlers)
{
    ProgramBuilder builder;
    util::Rng rng(0xC0FFEE);

    // A helper the handlers share; its branch depends on which
    // handler called it (path-correlated at shallow depth).
    const FuncId helper = builder.beginFunction();
    builder.addBlock();
    {
        const BlockId cond = builder.addBlock();
        builder.addBlock(); // then-side
        const BlockId join = builder.addBlock();
        builder.setCond(cond, join,
                        std::make_unique<PathCorrelatedBehavior>(
                            3, false, 0.01, rng.next()));
    }
    const BlockId helper_ret = builder.addBlock();
    builder.setReturn(helper_ret);
    builder.endFunction();

    // The interpreter: dispatch over handlers, each handler does a
    // little work and jumps to the back edge.
    const FuncId main_func = builder.beginFunction();
    const BlockId dispatch = builder.addBlock();
    std::vector<BlockId> handler_entries;
    std::vector<BlockId> handler_jumps;
    for (unsigned i = 0; i < handlers; ++i) {
        const BlockId entry = builder.addBlock();
        handler_entries.push_back(entry);
        if (i % 3 == 0) {
            const BlockId call = builder.addBlock();
            builder.setCall(call, helper);
        } else if (i % 3 == 1) {
            const BlockId cond = builder.addBlock();
            builder.addBlock();
            const BlockId join = builder.addBlock();
            builder.setCond(cond, join,
                            std::make_unique<BiasedBehavior>(0.9, 64));
        }
        handler_jumps.push_back(builder.addBlock());
    }
    const BlockId backedge = builder.addBlock();
    for (BlockId jump : handler_jumps)
        builder.setJump(jump, backedge);
    builder.setJump(backedge, dispatch);
    builder.setIndirectJump(dispatch, std::move(handler_entries),
                            std::make_unique<MarkovBehavior>(
                                2, 0.08, rng.next()));
    builder.endFunction();

    return builder.finalize(main_func);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::size_t bytes =
        argc > 1 ? std::strtoul(argv[1], nullptr, 0) : 2048;
    const unsigned index_bits = pred::indirectIndexBits(bytes);

    std::cout << "bytecode interpreter, 48 opcodes, order-2 opcode "
                 "Markov chain; "
              << bytes << "-byte indirect predictors (k=" << index_bits
              << ")\n";

    Program program = buildInterpreter(48);

    // Profile on one input...
    InputSet profile_input{101, 1.0, 1.0};
    RunLimits limits;
    limits.conditionalBudget = 400'000;
    auto profile_trace =
        ExecutionEngine(program, profile_input).runToTrace(limits);

    core::ProfileOptions options;
    options.indexBits = index_bits;
    core::IndirectProfiler profiler(options);
    const core::HashAssignment assignment =
        profiler.profile(profile_trace);
    std::cout << "profiled dispatch length: "
              << assignment.lookup(
                     program.blockAddr(
                         program.entryBlock(program.mainFunction())))
              << " (default " << assignment.defaultLength() << ")\n\n";

    // ...evaluate on another.
    InputSet test_input{202, 1.1, 1.0};
    auto test_trace =
        ExecutionEngine(program, test_input).runToTrace(limits);

    pred::BtbPredictor btb(index_bits);
    pred::PatternTargetCache pattern(index_bits);
    pred::PathTargetCache path(index_bits);
    pred::CascadedPredictor cascaded(index_bits - 1, index_bits - 1);
    core::PathIndirectPredictor flp(index_bits,
                                    assignment.defaultLength());
    core::PathIndirectPredictor vlp(index_bits, assignment);

    sim::Simulator simulator;
    simulator.addIndirect(&btb);
    simulator.addIndirect(&pattern);
    simulator.addIndirect(&path);
    simulator.addIndirect(&cascaded);
    simulator.addIndirect(&flp);
    simulator.addIndirect(&vlp);
    simulator.run(test_trace);

    util::TablePrinter table(
        {"predictor", "size (bytes)", "mispredict (%)"});
    for (const auto &result : simulator.indirectResults()) {
        table.addRow({result.name, std::to_string(result.sizeBytes),
                      util::formatDouble(result.rate(), 2)});
    }
    table.print(std::cout);
    return 0;
}
