/**
 * @file
 * Workload anatomy: dissects where a benchmark's mispredictions come
 * from, by branch behaviour class.
 *
 * The synthetic programs know each conditional branch's ground-truth
 * behaviour (loop / path-correlated / pattern-correlated / biased), so
 * this example attributes every predictor's misses to those classes —
 * the analysis behind Section 5.3's explanation of *why* variable
 * length path prediction works: path-correlated branches are exactly
 * the class gshare cannot fix and VLP can.
 *
 * Usage: workload_anatomy [benchmark] [table-bytes]
 */

#include <cstdlib>
#include <iostream>
#include <map>

#include "core/path_predictor.h"
#include "core/profiler.h"
#include "predictors/budget.h"
#include "predictors/gshare.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/benchmarks.h"
#include "workload/program.h"

int
main(int argc, char **argv)
{
    using namespace vlp;

    const std::string name = argc > 1 ? argv[1] : "gcc";
    const std::size_t bytes =
        argc > 2 ? std::strtoul(argv[2], nullptr, 0) : 16384;
    const auto &spec = workload::findBenchmark(name);
    const unsigned index_bits = pred::conditionalIndexBits(bytes);

    // Ground truth: behaviour class per static conditional branch.
    workload::Program program = workload::buildProgram(spec);
    std::map<std::uint64_t, std::string> classes;
    for (const auto &block : program.blocks()) {
        if (block.term.kind == workload::TermKind::CondBranch)
            classes[block.addr] = block.term.condBehavior->name();
    }

    // Profile, then race gshare vs VLP with per-branch tracking.
    auto profile_trace =
        workload::generateTrace(spec, workload::InputKind::Profile);
    core::ProfileOptions options;
    options.indexBits = index_bits;
    core::ConditionalProfiler profiler(options);
    const core::HashAssignment assignment =
        profiler.profile(profile_trace);

    pred::GsharePredictor gshare(index_bits);
    core::PathConditionalPredictor vlp(index_bits, assignment);
    sim::Simulator simulator;
    simulator.setTrackPerBranch(true);
    simulator.addConditional(&gshare);
    simulator.addConditional(&vlp);
    auto test_trace =
        workload::generateTrace(spec, workload::InputKind::Test);
    simulator.run(test_trace);

    // Aggregate per class: executions, per-predictor misses, and the
    // mean profiled path length.
    struct ClassStats
    {
        std::uint64_t executions = 0;
        std::uint64_t gshareMisses = 0;
        std::uint64_t vlpMisses = 0;
        std::uint64_t lengthSum = 0;
        std::uint64_t statics = 0;
    };
    std::map<std::string, ClassStats> aggregate;
    const auto &gshare_stats = simulator.conditionalPerBranch(0);
    const auto &vlp_stats = simulator.conditionalPerBranch(1);
    for (const auto &[pc, accuracy] : gshare_stats) {
        const auto it = classes.find(pc);
        ClassStats &stats =
            aggregate[it == classes.end() ? "?" : it->second];
        stats.executions += accuracy.executions;
        stats.gshareMisses += accuracy.mispredictions;
        stats.lengthSum += assignment.lookup(pc);
        ++stats.statics;
    }
    for (const auto &[pc, accuracy] : vlp_stats) {
        const auto it = classes.find(pc);
        aggregate[it == classes.end() ? "?" : it->second].vlpMisses +=
            accuracy.mispredictions;
    }

    std::uint64_t total = 0;
    for (const auto &[cls, stats] : aggregate)
        total += stats.executions;

    std::cout << spec.name << " @ " << bytes
              << " bytes: misprediction anatomy by behaviour class\n";
    util::TablePrinter table({"class", "dyn share (%)",
                              "gshare miss (%)", "VLP miss (%)",
                              "gshare pts", "VLP pts",
                              "mean VLP length"});
    for (const auto &[cls, stats] : aggregate) {
        table.addRow({
            cls,
            util::formatDouble(
                util::percent(stats.executions, total), 1),
            util::formatDouble(
                util::percent(stats.gshareMisses, stats.executions),
                2),
            util::formatDouble(
                util::percent(stats.vlpMisses, stats.executions), 2),
            util::formatDouble(
                util::percent(stats.gshareMisses, total), 2),
            util::formatDouble(util::percent(stats.vlpMisses, total),
                               2),
            util::formatDouble(
                stats.statics
                    ? static_cast<double>(stats.lengthSum)
                          / static_cast<double>(stats.statics)
                    : 0.0,
                1),
        });
    }
    table.print(std::cout);
    std::cout << "\n\"pts\" = percentage points of the overall "
                 "misprediction rate contributed by the class.\n"
                 "Section 5.3's claim shows up as the path-correlated "
                 "row: large for gshare, small for VLP.\n";
    return 0;
}
