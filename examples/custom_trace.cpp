/**
 * @file
 * Bring-your-own-trace: shows the .vbt trace file workflow for users
 * who want to evaluate the predictors on branch streams extracted from
 * their own tools (e.g. a ChampSim-style instruction trace reduced to
 * its control-transfer records).
 *
 *  1. If no input file is given, synthesize a demo trace and write it
 *     to /tmp/vlpsim_demo.vbt — the code doubles as a format example.
 *  2. Stream the file back (constant memory) to print Table-1-style
 *     statistics.
 *  3. Load it fully and evaluate gshare vs a fixed length path
 *     predictor on the conditional branches.
 *
 * Usage: custom_trace [trace.vbt]
 */

#include <iostream>

#include "core/path_predictor.h"
#include "predictors/gshare.h"
#include "sim/simulator.h"
#include "trace/trace_io.h"
#include "trace/trace_stats.h"
#include "util/stats.h"
#include "workload/benchmarks.h"

namespace {

/** Write a small demo trace (a scaled-down li run) to @p path. */
void
writeDemoTrace(const std::string &path)
{
    using namespace vlp;
    auto source = workload::generateTrace(
        workload::findBenchmark("li"), workload::InputKind::Test, 0.05);
    trace::TraceWriter writer(path);
    trace::BranchRecord record;
    while (source.next(record))
        writer.write(record);
    writer.close();
    std::cout << "wrote demo trace: " << path << " ("
              << util::formatScaled(writer.count()) << " records)\n";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    using namespace vlp;

    std::string path;
    if (argc > 1) {
        path = argv[1];
    } else {
        path = "/tmp/vlpsim_demo.vbt";
        writeDemoTrace(path);
    }

    // Streaming statistics: TraceReader never holds the whole trace.
    {
        trace::TraceReader reader(path);
        trace::TraceStats stats;
        stats.observeAll(reader);
        std::cout << "\ntrace statistics for " << path << ":\n"
                  << stats.summary() << "\n";
    }

    // Evaluation: load into memory (profiling-style passes need
    // resets) and race two conditional predictors.
    trace::VectorTraceSource source = trace::loadTrace(path);

    pred::GsharePredictor gshare(14);
    core::PathConditionalPredictor flp(14, 6);

    sim::Simulator simulator;
    simulator.addConditional(&gshare);
    simulator.addConditional(&flp);
    simulator.run(source);

    std::cout << "\npredictors at 4K bytes:\n";
    for (const auto &result : simulator.conditionalResults()) {
        std::cout << "  " << result.name << ": "
                  << util::formatDouble(result.rate(), 2) << "% over "
                  << util::formatScaled(result.branches)
                  << " conditional branches\n";
    }
    const auto ras = simulator.rasResult();
    std::cout << "  " << ras.name << ": "
              << util::formatDouble(ras.rate(), 2) << "% over "
              << util::formatScaled(ras.branches) << " returns\n";
    return 0;
}
