/**
 * @file
 * Profile-guided prediction walkthrough: the full workflow of Section
 * 3.5 made visible.
 *
 *  1. Generate a benchmark's *profile*-input trace and run step 1 (the
 *     N fixed-length sweeps), printing the accuracy-vs-length curve.
 *  2. Run step 2 (iterated candidate selection), print the resulting
 *     hash-number distribution, and save the assignment to a file —
 *     the artifact a compiler would encode into branch opcodes
 *     (Section 4.2).
 *  3. Reload the assignment and evaluate fixed vs tuned vs variable
 *     length path predictors on the *test* input.
 *
 * Usage: profile_guided [benchmark] [table-bytes] [assignment-file]
 */

#include <cstdlib>
#include <iostream>

#include "core/path_predictor.h"
#include "core/profiler.h"
#include "predictors/budget.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/benchmarks.h"

int
main(int argc, char **argv)
{
    using namespace vlp;

    const std::string name = argc > 1 ? argv[1] : "perl";
    const std::size_t bytes =
        argc > 2 ? std::strtoul(argv[2], nullptr, 0) : 16384;
    const std::string assignment_path =
        argc > 3 ? argv[3] : "/tmp/vlpsim_assignment.txt";

    const workload::BenchmarkSpec &spec = workload::findBenchmark(name);
    const unsigned index_bits = pred::conditionalIndexBits(bytes);

    // ---- Step 1: sweep all fixed path lengths on the profile input.
    std::cout << "=== step 1: fixed-length sweeps (" << spec.name
              << ", profile input, " << bytes << " bytes) ===\n";
    trace::VectorTraceSource profile_trace =
        workload::generateTrace(spec, workload::InputKind::Profile);

    core::ProfileOptions options;
    options.indexBits = index_bits;
    core::ConditionalProfiler profiler(options);
    const core::FixedLengthSweep &sweep =
        profiler.runStep1(profile_trace);

    std::cout << "path length -> misprediction rate (%):\n";
    for (unsigned length = 1; length <= core::maxPathLength; ++length) {
        std::cout << "  " << length << ": "
                  << util::formatDouble(sweep.rate(length), 2)
                  << (length == sweep.bestLength() ? "   <- best\n"
                                                   : "\n");
    }

    // ---- Step 2: iterated candidate selection.
    std::cout << "\n=== step 2: candidate selection (7 iterations) "
                 "===\n";
    const core::HashAssignment assignment =
        profiler.runStep2(profile_trace);
    std::cout << "assigned " << assignment.size()
              << " static branches; default length "
              << assignment.defaultLength() << "\n"
              << "length histogram: "
              << assignment.lengthHistogram().toString() << "\n";

    assignment.save(assignment_path);
    std::cout << "assignment saved to " << assignment_path << "\n";

    // ---- Evaluate on the test input, from the saved artifact.
    const core::HashAssignment loaded =
        core::HashAssignment::load(assignment_path);

    core::PathConditionalPredictor flp(index_bits,
                                       assignment.defaultLength());
    core::PathConditionalPredictor tuned(index_bits,
                                         sweep.bestLength());
    core::PathConditionalPredictor vlp(index_bits, loaded);

    sim::Simulator simulator;
    simulator.addConditional(&flp);
    simulator.addConditional(&tuned);
    simulator.addConditional(&vlp);

    trace::VectorTraceSource test_trace =
        workload::generateTrace(spec, workload::InputKind::Test);
    simulator.run(test_trace);

    std::cout << "\n=== evaluation on the test input ===\n";
    util::TablePrinter table({"predictor", "mispredict (%)"});
    const auto results = simulator.conditionalResults();
    table.addRow({"fixed length path (default length)",
                  util::formatDouble(results[0].rate(), 2)});
    table.addRow({"fixed length path (tuned length)",
                  util::formatDouble(results[1].rate(), 2)});
    table.addRow({"variable length path (profiled)",
                  util::formatDouble(results[2].rate(), 2)});
    table.print(std::cout);
    return 0;
}
