/**
 * @file
 * Hardware-budget exploration: for one benchmark, sweep the predictor
 * table size and print the misprediction-rate curves of every
 * conditional predictor in the repository — gshare, bimodal, GAs, PAs,
 * DHLF-gshare, a gshare+bimodal hybrid, and fixed/variable length
 * path. A quick way to see where each scheme's budget is best spent.
 *
 * Usage: budget_sweep [benchmark]
 */

#include <iostream>
#include <memory>
#include <vector>

#include "core/path_predictor.h"
#include "core/profiler.h"
#include "predictors/bimodal.h"
#include "predictors/budget.h"
#include "predictors/dhlf.h"
#include "predictors/gshare.h"
#include "predictors/hybrid.h"
#include "predictors/two_level.h"
#include "sim/simulator.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/benchmarks.h"

int
main(int argc, char **argv)
{
    using namespace vlp;

    const std::string name = argc > 1 ? argv[1] : "gcc";
    const workload::BenchmarkSpec &spec = workload::findBenchmark(name);

    std::cout << "conditional predictor budget sweep on " << spec.name
              << " (test input)\n";

    trace::VectorTraceSource profile_trace =
        workload::generateTrace(spec, workload::InputKind::Profile);
    trace::VectorTraceSource test_trace =
        workload::generateTrace(spec, workload::InputKind::Test);

    util::TablePrinter table({"size (KB)", "bimodal", "GAs", "PAs",
                              "gshare", "DHLF-gshare", "hybrid",
                              "FLP(6)", "VLP"});

    for (const std::size_t bytes :
         {std::size_t{1024}, std::size_t{4096}, std::size_t{16384},
          std::size_t{65536}}) {
        const unsigned k = pred::conditionalIndexBits(bytes);

        // Profile a VLP assignment at this size.
        core::ProfileOptions options;
        options.indexBits = k;
        core::ConditionalProfiler profiler(options);
        profile_trace.reset();
        const core::HashAssignment assignment =
            profiler.profile(profile_trace);

        pred::BimodalPredictor bimodal(k);
        // GAs/PAs: split the budget between history pattern bits and
        // PHT selection, the classic organization.
        pred::TwoLevelPredictor gas(pred::HistoryScope::Global, k - 2,
                                    2);
        pred::TwoLevelPredictor pas(pred::HistoryScope::PerAddress,
                                    k - 2, 2, 10);
        pred::GsharePredictor gshare(k);
        pred::DhlfGsharePredictor dhlf(k);
        // Hybrid splits the budget across its components.
        pred::HybridPredictor hybrid(
            std::make_unique<pred::GsharePredictor>(k - 1),
            std::make_unique<pred::BimodalPredictor>(k - 1), k - 1);
        core::PathConditionalPredictor flp(k, 6);
        core::PathConditionalPredictor vlp(k, assignment);

        sim::Simulator simulator;
        simulator.addConditional(&bimodal);
        simulator.addConditional(&gas);
        simulator.addConditional(&pas);
        simulator.addConditional(&gshare);
        simulator.addConditional(&dhlf);
        simulator.addConditional(&hybrid);
        simulator.addConditional(&flp);
        simulator.addConditional(&vlp);

        test_trace.reset();
        simulator.run(test_trace);

        std::vector<std::string> row = {
            util::formatDouble(bytes / 1024.0, 0)};
        for (const auto &result : simulator.conditionalResults())
            row.push_back(util::formatDouble(result.rate(), 2));
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "(hybrid and two-level sizes differ slightly from "
                 "the nominal budget; see sizeBytes() of each)\n";
    return 0;
}
