/**
 * @file
 * Bi-mode predictor implementation.
 */

#include "predictors/bimode.h"

#include "util/bits.h"

namespace vlp {
namespace pred {

BiModePredictor::BiModePredictor(unsigned index_bits,
                                 unsigned choice_index_bits)
    : indexBits_(index_bits),
      choiceIndexBits_(choice_index_bits == 0 ? index_bits
                                              : choice_index_bits),
      history_(index_bits),
      takenBank_(std::size_t{1} << index_bits, 2, 2),
      notTakenBank_(std::size_t{1} << index_bits, 2, 1),
      choice_(std::size_t{1} << choiceIndexBits_, 2)
{
}

std::size_t
BiModePredictor::directionIndex(std::uint64_t pc) const
{
    const std::uint64_t address = util::xorFold(pc >> 2, indexBits_);
    return static_cast<std::size_t>(
        util::truncate(address ^ history_.value(), indexBits_));
}

std::size_t
BiModePredictor::choiceIndex(std::uint64_t pc) const
{
    return static_cast<std::size_t>(
        util::truncate(pc >> 2, choiceIndexBits_));
}

bool
BiModePredictor::predict(const trace::BranchRecord &branch)
{
    const bool use_taken_bank =
        choice_.predictTaken(choiceIndex(branch.pc));
    const auto &bank = use_taken_bank ? takenBank_ : notTakenBank_;
    return bank.predictTaken(directionIndex(branch.pc));
}

void
BiModePredictor::update(const trace::BranchRecord &branch)
{
    const std::size_t choice_slot = choiceIndex(branch.pc);
    const bool use_taken_bank = choice_.predictTaken(choice_slot);
    auto &bank = use_taken_bank ? takenBank_ : notTakenBank_;
    const std::size_t direction_slot = directionIndex(branch.pc);

    // The choice PHT is not updated when it selected the bank whose
    // prediction was correct but disagrees with the outcome direction
    // (the bi-mode partial-update rule).
    const bool bank_correct =
        bank.predictTaken(direction_slot) == branch.taken;
    if (!(bank_correct && use_taken_bank != branch.taken))
        choice_.update(choice_slot, branch.taken);
    bank.update(direction_slot, branch.taken);
}

void
BiModePredictor::observe(const trace::BranchRecord &record)
{
    if (record.isConditional())
        history_.push(record.taken);
}

std::size_t
BiModePredictor::sizeBytes() const
{
    return takenBank_.sizeBytes() + notTakenBank_.sizeBytes()
         + choice_.sizeBytes();
}

} // namespace pred
} // namespace vlp
