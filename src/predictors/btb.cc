/**
 * @file
 * BTB implementation.
 */

#include "predictors/btb.h"

#include "util/bits.h"

namespace vlp {
namespace pred {

BtbPredictor::BtbPredictor(unsigned index_bits)
    : indexBits_(index_bits),
      table_(std::size_t{1} << index_bits, 0)
{
}

std::size_t
BtbPredictor::index(std::uint64_t pc) const
{
    return static_cast<std::size_t>(
        util::truncate(pc >> 2, indexBits_));
}

std::uint64_t
BtbPredictor::predict(const trace::BranchRecord &branch)
{
    return widenTarget(table_[index(branch.pc)], branch.pc);
}

void
BtbPredictor::update(const trace::BranchRecord &branch)
{
    table_[index(branch.pc)] = static_cast<std::uint32_t>(branch.nextPc);
}

std::size_t
BtbPredictor::sizeBytes() const
{
    return table_.size() * sizeof(std::uint32_t);
}

} // namespace pred
} // namespace vlp
