/**
 * @file
 * Return address stack. Returns are excluded from the paper's indirect
 * branch statistics because a RAS predicts them; the simulator models
 * one so return accuracy can still be reported.
 */

#ifndef VLPSIM_PREDICTORS_RAS_H
#define VLPSIM_PREDICTORS_RAS_H

#include <cstdint>
#include <vector>

#include "trace/branch_record.h"

namespace vlp {
namespace pred {

/**
 * A fixed-depth circular return address stack.
 *
 * push() on calls, predictAndPop() on returns. Overflow silently wraps
 * (overwriting the oldest entry), underflow predicts 0 — both as in
 * real hardware.
 */
class ReturnAddressStack
{
  public:
    /** @param depth number of entries (power of two recommended) */
    explicit ReturnAddressStack(std::size_t depth = 32);

    /** Record the return address of a call at @p pc. */
    void push(std::uint64_t return_address);

    /**
     * Predict the target of a return and pop.
     * @return predicted return address, or 0 if empty
     */
    std::uint64_t predictAndPop();

    /** Entries currently live (0..depth). */
    std::size_t occupancy() const { return occupancy_; }

    /** Total capacity. */
    std::size_t depth() const { return stack_.size(); }

    /** Hardware cost: 8 bytes per entry. */
    std::size_t sizeBytes() const { return stack_.size() * 8; }

  private:
    std::vector<std::uint64_t> stack_;
    std::size_t top_ = 0;
    std::size_t occupancy_ = 0;
};

} // namespace pred
} // namespace vlp

#endif // VLPSIM_PREDICTORS_RAS_H
