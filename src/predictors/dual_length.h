/**
 * @file
 * A Driesen & Hölzle style hybrid indirect predictor (ISCA'98, cited
 * by the paper): two components that both use global *path* histories
 * but with different lengths — a short-history component that trains
 * fast and a long-history component that captures deep correlation —
 * plus a per-branch selector. The paper positions its per-branch
 * profiled length as the generalization of exactly this two-length
 * idea.
 */

#ifndef VLPSIM_PREDICTORS_DUAL_LENGTH_H
#define VLPSIM_PREDICTORS_DUAL_LENGTH_H

#include <vector>

#include "predictors/predictor.h"
#include "util/history_register.h"
#include "util/saturating_counter.h"

namespace vlp {
namespace pred {

/** Two path-history target tables with different depths + selector. */
class DualLengthIndirectPredictor : public IndirectPredictor
{
  public:
    /**
     * @param index_bits  log2 of each component's target-table size
     *        (total budget is twice one table plus the selector)
     * @param short_depth branches covered by the short history
     * @param long_depth  branches covered by the long history
     * @param chunk_bits  target bits recorded per branch
     */
    DualLengthIndirectPredictor(unsigned index_bits,
                                unsigned short_depth = 2,
                                unsigned long_depth = 8,
                                unsigned chunk_bits = 4);

    std::uint64_t predict(const trace::BranchRecord &branch) override;

    void update(const trace::BranchRecord &branch) override;

    void observe(const trace::BranchRecord &record) override;

    std::string name() const override
    {
        return "dual-length path hybrid";
    }

    std::size_t sizeBytes() const override;

  private:
    std::size_t indexFor(std::uint64_t pc,
                         const util::ChunkHistoryRegister &history)
        const;
    std::size_t selectorIndex(std::uint64_t pc) const;

    unsigned indexBits_;
    util::ChunkHistoryRegister shortHistory_;
    util::ChunkHistoryRegister longHistory_;
    std::vector<std::uint32_t> shortTable_;
    std::vector<std::uint32_t> longTable_;
    std::vector<util::SaturatingCounter> selector_;

    std::uint64_t lastShort_ = 0;
    std::uint64_t lastLong_ = 0;
};

} // namespace pred
} // namespace vlp

#endif // VLPSIM_PREDICTORS_DUAL_LENGTH_H
