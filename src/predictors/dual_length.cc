/**
 * @file
 * Dual-length hybrid indirect predictor implementation.
 */

#include "predictors/dual_length.h"

#include <algorithm>

#include "util/bits.h"

namespace vlp {
namespace pred {

DualLengthIndirectPredictor::DualLengthIndirectPredictor(
        unsigned index_bits, unsigned short_depth, unsigned long_depth,
        unsigned chunk_bits)
    : indexBits_(index_bits),
      shortHistory_(std::max(1u, short_depth * chunk_bits),
                    chunk_bits),
      longHistory_(std::max(1u, long_depth * chunk_bits), chunk_bits),
      shortTable_(std::size_t{1} << index_bits, 0),
      longTable_(std::size_t{1} << index_bits, 0),
      selector_(std::size_t{1} << index_bits,
                util::SaturatingCounter(2))
{
}

std::size_t
DualLengthIndirectPredictor::indexFor(
        std::uint64_t pc,
        const util::ChunkHistoryRegister &history) const
{
    const std::uint64_t address = util::xorFold(pc >> 2, indexBits_);
    const std::uint64_t folded =
        util::xorFold(history.value(),
                      indexBits_ == 0 ? 1 : indexBits_);
    return static_cast<std::size_t>(
        util::truncate(address ^ folded, indexBits_));
}

std::size_t
DualLengthIndirectPredictor::selectorIndex(std::uint64_t pc) const
{
    return static_cast<std::size_t>(
        util::truncate(pc >> 2, indexBits_));
}

std::uint64_t
DualLengthIndirectPredictor::predict(const trace::BranchRecord &branch)
{
    lastShort_ = widenTarget(
        shortTable_[indexFor(branch.pc, shortHistory_)], branch.pc);
    lastLong_ = widenTarget(
        longTable_[indexFor(branch.pc, longHistory_)], branch.pc);
    const bool use_long =
        selector_[selectorIndex(branch.pc)].predictTaken();
    return use_long ? lastLong_ : lastShort_;
}

void
DualLengthIndirectPredictor::update(const trace::BranchRecord &branch)
{
    const bool short_correct = lastShort_ == branch.nextPc;
    const bool long_correct = lastLong_ == branch.nextPc;
    if (short_correct != long_correct) {
        selector_[selectorIndex(branch.pc)].update(long_correct);
    }
    shortTable_[indexFor(branch.pc, shortHistory_)] =
        static_cast<std::uint32_t>(branch.nextPc);
    longTable_[indexFor(branch.pc, longHistory_)] =
        static_cast<std::uint32_t>(branch.nextPc);
}

void
DualLengthIndirectPredictor::observe(const trace::BranchRecord &record)
{
    if (record.isIndirect()) {
        shortHistory_.push(record.nextPc >> 2);
        longHistory_.push(record.nextPc >> 2);
    }
}

std::size_t
DualLengthIndirectPredictor::sizeBytes() const
{
    return (shortTable_.size() + longTable_.size())
             * sizeof(std::uint32_t)
         + selector_.size() / 4;
}

} // namespace pred
} // namespace vlp
