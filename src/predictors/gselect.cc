/**
 * @file
 * gselect implementation.
 */

#include "predictors/gselect.h"

#include "util/bits.h"

namespace vlp {
namespace pred {

namespace {

/** History snapshot: the global pattern register. */
struct GselectCheckpoint final : Checkpoint
{
    std::uint64_t history = 0;
};

} // anonymous namespace

CheckpointPtr
GselectPredictor::checkpoint() const
{
    auto snapshot = std::make_unique<GselectCheckpoint>();
    snapshot->history = history_.value();
    return snapshot;
}

void
GselectPredictor::restore(const Checkpoint &checkpoint)
{
    history_.set(
        dynamic_cast<const GselectCheckpoint &>(checkpoint).history);
}

GselectPredictor::GselectPredictor(unsigned index_bits,
                                   unsigned history_bits)
    : indexBits_(index_bits),
      historyBits_(history_bits == 0 ? index_bits / 2 : history_bits),
      history_(historyBits_ == 0 ? 1 : historyBits_),
      table_(std::size_t{1} << index_bits, 2)
{
}

std::size_t
GselectPredictor::index(std::uint64_t pc) const
{
    const unsigned pc_bits = indexBits_ - historyBits_;
    const std::uint64_t address = util::truncate(pc >> 2, pc_bits);
    return static_cast<std::size_t>(
        (address << historyBits_)
        | util::truncate(history_.value(), historyBits_));
}

bool
GselectPredictor::predict(const trace::BranchRecord &branch)
{
    return table_.predictTaken(index(branch.pc));
}

void
GselectPredictor::update(const trace::BranchRecord &branch)
{
    table_.update(index(branch.pc), branch.taken);
}

void
GselectPredictor::observe(const trace::BranchRecord &record)
{
    if (record.isConditional())
        history_.push(record.taken);
}

std::size_t
GselectPredictor::sizeBytes() const
{
    return table_.sizeBytes();
}

} // namespace pred
} // namespace vlp
