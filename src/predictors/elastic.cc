/**
 * @file
 * Elastic-history gshare implementation.
 */

#include "predictors/elastic.h"

#include "util/bits.h"

namespace vlp {
namespace pred {

namespace {

/** History snapshot: the global pattern register. */
struct ElasticCheckpoint final : Checkpoint
{
    std::uint64_t history = 0;
};

} // anonymous namespace

CheckpointPtr
ElasticGsharePredictor::checkpoint() const
{
    auto snapshot = std::make_unique<ElasticCheckpoint>();
    snapshot->history = history_.value();
    return snapshot;
}

void
ElasticGsharePredictor::restore(const Checkpoint &checkpoint)
{
    history_.set(
        dynamic_cast<const ElasticCheckpoint &>(checkpoint).history);
}

ElasticGsharePredictor::ElasticGsharePredictor(
        unsigned index_bits, PatternLengthAssignment assignment)
    : indexBits_(index_bits),
      assignment_(std::move(assignment)),
      history_(index_bits),
      table_(std::size_t{1} << index_bits, util::SaturatingCounter(2))
{
}

std::size_t
ElasticGsharePredictor::index(std::uint64_t pc) const
{
    unsigned length = assignment_.lookup(pc);
    if (length > indexBits_)
        length = indexBits_;
    const std::uint64_t address = util::xorFold(pc >> 2, indexBits_);
    const std::uint64_t used =
        length == 0 ? 0 : util::truncate(history_.value(), length);
    return static_cast<std::size_t>(
        util::truncate(address ^ used, indexBits_));
}

bool
ElasticGsharePredictor::predict(const trace::BranchRecord &branch)
{
    return table_[index(branch.pc)].predictTaken();
}

void
ElasticGsharePredictor::update(const trace::BranchRecord &branch)
{
    table_[index(branch.pc)].update(branch.taken);
}

void
ElasticGsharePredictor::observe(const trace::BranchRecord &record)
{
    if (record.isConditional())
        history_.push(record.taken);
}

std::size_t
ElasticGsharePredictor::sizeBytes() const
{
    return table_.size() / 4;
}

ElasticProfiler::ElasticProfiler(unsigned index_bits)
    : indexBits_(index_bits)
{
}

PatternLengthAssignment
ElasticProfiler::profile(trace::TraceSource &profile_trace)
{
    const unsigned num_lengths = indexBits_ + 1; // lengths 0..k
    const std::size_t table_size = std::size_t{1} << indexBits_;

    std::vector<std::vector<util::SaturatingCounter>> tables(
        num_lengths,
        std::vector<util::SaturatingCounter>(
            table_size, util::SaturatingCounter(2)));
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>
        corrects;
    std::vector<std::uint64_t> total_correct(num_lengths, 0);

    util::BitHistoryRegister history(indexBits_);

    profile_trace.reset();
    trace::BranchRecord record;
    while (profile_trace.next(record)) {
        if (!record.isConditional())
            continue;
        const std::uint64_t address =
            util::xorFold(record.pc >> 2, indexBits_);
        auto &per_branch = corrects[record.pc];
        if (per_branch.empty())
            per_branch.assign(num_lengths, 0);
        for (unsigned length = 0; length < num_lengths; ++length) {
            const std::uint64_t used =
                length == 0
                    ? 0
                    : util::truncate(history.value(), length);
            const std::size_t idx = static_cast<std::size_t>(
                util::truncate(address ^ used, indexBits_));
            util::SaturatingCounter &counter = tables[length][idx];
            if (counter.predictTaken() == record.taken) {
                ++per_branch[length];
                ++total_correct[length];
            }
            counter.update(record.taken);
        }
        history.push(record.taken);
    }

    PatternLengthAssignment assignment;
    unsigned best_global = 0;
    for (unsigned length = 1; length < num_lengths; ++length) {
        if (total_correct[length] > total_correct[best_global])
            best_global = length;
    }
    assignment.defaultLength = best_global;
    for (const auto &[pc, per_branch] : corrects) {
        unsigned best = 0;
        for (unsigned length = 1; length < num_lengths; ++length) {
            if (per_branch[length] > per_branch[best])
                best = length;
        }
        assignment.lengths[pc] = best;
    }
    return assignment;
}

} // namespace pred
} // namespace vlp
