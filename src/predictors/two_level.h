/**
 * @file
 * Yeh & Patt two-level adaptive predictors (GAs and PAs), the
 * predecessors of gshare the paper builds its terminology on.
 *
 * First level: one or more k-bit branch history registers (one global
 * register for GAs; a PC-indexed table of registers for PAs). Second
 * level: 2^pht_select_bits pattern history tables of 2-bit counters,
 * selected by low branch-address bits, indexed by the history pattern.
 */

#ifndef VLPSIM_PREDICTORS_TWO_LEVEL_H
#define VLPSIM_PREDICTORS_TWO_LEVEL_H

#include <vector>

#include "predictors/predictor.h"
#include "util/history_register.h"
#include "util/packed_counter_table.h"

namespace vlp {
namespace pred {

/** First-level history organization of a two-level predictor. */
enum class HistoryScope {
    /** One global history register (GAs). */
    Global,
    /** One history register per branch-address set (PAs). */
    PerAddress,
};

/**
 * A configurable two-level adaptive predictor covering the GAs and PAs
 * schemes of Yeh & Patt.
 */
class TwoLevelPredictor : public ConditionalPredictor
{
  public:
    /**
     * @param scope           Global (GAs) or PerAddress (PAs)
     * @param history_bits    history register length k
     * @param pht_select_bits log2 of the number of PHTs (selected by
     *        branch-address bits); 0 means a single shared PHT
     * @param bht_index_bits  for PAs: log2 of the number of first-level
     *        history registers (ignored for GAs)
     */
    TwoLevelPredictor(HistoryScope scope, unsigned history_bits,
                      unsigned pht_select_bits,
                      unsigned bht_index_bits = 10);

    bool predict(const trace::BranchRecord &branch) override;

    void update(const trace::BranchRecord &branch) override;

    void observe(const trace::BranchRecord &record) override;

    /**
     * Snapshot the first-level history: one register for GAs, the
     * whole BHT for PAs (the second-level counters are retirement
     * state and are never captured).
     */
    CheckpointPtr checkpoint() const override;

    /** Rewind the first-level history. */
    void restore(const Checkpoint &checkpoint) override;

    std::string name() const override;

    std::size_t sizeBytes() const override;

  private:
    /** History pattern used for @p pc. */
    std::uint64_t historyFor(std::uint64_t pc) const;

    /** Counter index within the selected PHT arrangement. */
    std::size_t counterIndex(std::uint64_t pc) const;

    HistoryScope scope_;
    unsigned historyBits_;
    unsigned phtSelectBits_;
    unsigned bhtIndexBits_;
    /** GAs: one entry; PAs: 2^bht_index_bits entries. */
    std::vector<util::BitHistoryRegister> histories_;
    /** All PHTs concatenated: pht_select * 2^history_bits + pattern. */
    util::PackedCounterTable counters_;
};

} // namespace pred
} // namespace vlp

#endif // VLPSIM_PREDICTORS_TWO_LEVEL_H
