/**
 * @file
 * A two-stage cascaded indirect predictor in the style of Driesen &
 * Hölzle (TRCS98-07), which the paper mentions as contemporaneous
 * related work. Provided as an extension baseline.
 *
 * Stage 1 is a PC-indexed BTB; stage 2 is a history-indexed table with
 * short tags. Easy (monomorphic) branches are filtered by stage 1 and
 * never pollute stage 2; stage 2 entries are allocated only when stage
 * 1 mispredicts, and are used only on a tag hit.
 */

#ifndef VLPSIM_PREDICTORS_CASCADED_H
#define VLPSIM_PREDICTORS_CASCADED_H

#include <vector>

#include "predictors/predictor.h"
#include "util/history_register.h"

namespace vlp {
namespace pred {

/** Two-stage cascaded indirect predictor with a leaky filter. */
class CascadedPredictor : public IndirectPredictor
{
  public:
    /**
     * @param stage1_index_bits log2 of the BTB stage size
     * @param stage2_index_bits log2 of the history stage size
     * @param chunk_bits        target bits per branch in the history
     * @param tag_bits          tag width in the history stage
     */
    CascadedPredictor(unsigned stage1_index_bits,
                      unsigned stage2_index_bits,
                      unsigned chunk_bits = 3, unsigned tag_bits = 8);

    std::uint64_t predict(const trace::BranchRecord &branch) override;

    void update(const trace::BranchRecord &branch) override;

    void observe(const trace::BranchRecord &record) override;

    std::string name() const override { return "cascaded"; }

    std::size_t sizeBytes() const override;

  private:
    struct Stage2Entry
    {
        std::uint32_t target = 0;
        std::uint16_t tag = 0;
        bool valid = false;
    };

    std::size_t stage1Index(std::uint64_t pc) const;
    std::size_t stage2Index(std::uint64_t pc) const;
    std::uint16_t stage2Tag(std::uint64_t pc) const;

    unsigned stage1IndexBits_;
    unsigned stage2IndexBits_;
    unsigned tagBits_;
    util::ChunkHistoryRegister history_;
    std::vector<std::uint32_t> stage1_;
    std::vector<Stage2Entry> stage2_;

    /** Whether the last prediction came from stage 2 (for update). */
    bool lastFromStage2_ = false;
    std::uint64_t lastPrediction_ = 0;
};

} // namespace pred
} // namespace vlp

#endif // VLPSIM_PREDICTORS_CASCADED_H
