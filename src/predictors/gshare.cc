/**
 * @file
 * gshare implementation.
 */

#include "predictors/gshare.h"

#include "util/bits.h"

namespace vlp {
namespace pred {

namespace {

/** History snapshot: the global pattern register. */
struct GshareCheckpoint final : Checkpoint
{
    std::uint64_t history = 0;
};

} // anonymous namespace

CheckpointPtr
GsharePredictor::checkpoint() const
{
    auto snapshot = std::make_unique<GshareCheckpoint>();
    snapshot->history = history_.value();
    return snapshot;
}

void
GsharePredictor::restore(const Checkpoint &checkpoint)
{
    history_.set(
        dynamic_cast<const GshareCheckpoint &>(checkpoint).history);
}

GsharePredictor::GsharePredictor(unsigned index_bits,
                                 unsigned history_bits)
    : indexBits_(index_bits),
      history_(history_bits == 0 ? index_bits : history_bits),
      table_(std::size_t{1} << index_bits, 2)
{
}

std::size_t
GsharePredictor::index(std::uint64_t pc) const
{
    // Branch addresses are word aligned; drop the always-zero bits
    // before folding so they don't waste index entropy.
    const std::uint64_t address = util::xorFold(pc >> 2, indexBits_);
    return static_cast<std::size_t>(
        util::truncate(address ^ history_.value(), indexBits_));
}

bool
GsharePredictor::predict(const trace::BranchRecord &branch)
{
    return table_.predictTaken(index(branch.pc));
}

void
GsharePredictor::update(const trace::BranchRecord &branch)
{
    table_.update(index(branch.pc), branch.taken);
}

void
GsharePredictor::observe(const trace::BranchRecord &record)
{
    if (record.isConditional())
        history_.push(record.taken);
}

std::size_t
GsharePredictor::sizeBytes() const
{
    return table_.sizeBytes(); // 2-bit counters, packed
}

} // namespace pred
} // namespace vlp
