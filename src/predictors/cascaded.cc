/**
 * @file
 * Cascaded indirect predictor implementation.
 */

#include "predictors/cascaded.h"

#include "util/bits.h"

namespace vlp {
namespace pred {

CascadedPredictor::CascadedPredictor(unsigned stage1_index_bits,
                                     unsigned stage2_index_bits,
                                     unsigned chunk_bits,
                                     unsigned tag_bits)
    : stage1IndexBits_(stage1_index_bits),
      stage2IndexBits_(stage2_index_bits),
      tagBits_(tag_bits),
      history_(stage2_index_bits, chunk_bits),
      stage1_(std::size_t{1} << stage1_index_bits, 0),
      stage2_(std::size_t{1} << stage2_index_bits)
{
}

std::size_t
CascadedPredictor::stage1Index(std::uint64_t pc) const
{
    return static_cast<std::size_t>(
        util::truncate(pc >> 2, stage1IndexBits_));
}

std::size_t
CascadedPredictor::stage2Index(std::uint64_t pc) const
{
    const std::uint64_t address =
        util::xorFold(pc >> 2, stage2IndexBits_);
    return static_cast<std::size_t>(
        util::truncate(address ^ history_.value(), stage2IndexBits_));
}

std::uint16_t
CascadedPredictor::stage2Tag(std::uint64_t pc) const
{
    return static_cast<std::uint16_t>(
        util::truncate(util::xorFold((pc >> 2) ^ history_.value(),
                                     tagBits_), tagBits_));
}

std::uint64_t
CascadedPredictor::predict(const trace::BranchRecord &branch)
{
    const Stage2Entry &entry = stage2_[stage2Index(branch.pc)];
    if (entry.valid && entry.tag == stage2Tag(branch.pc)) {
        lastFromStage2_ = true;
        lastPrediction_ = widenTarget(entry.target, branch.pc);
    } else {
        lastFromStage2_ = false;
        lastPrediction_ =
            widenTarget(stage1_[stage1Index(branch.pc)], branch.pc);
    }
    return lastPrediction_;
}

void
CascadedPredictor::update(const trace::BranchRecord &branch)
{
    const bool correct = lastPrediction_ == branch.nextPc;
    stage1_[stage1Index(branch.pc)] =
        static_cast<std::uint32_t>(branch.nextPc);
    Stage2Entry &entry = stage2_[stage2Index(branch.pc)];
    if (lastFromStage2_ || !correct) {
        // Allocate/overwrite the history entry only for branches the
        // filter stage got wrong (or that already live in stage 2).
        entry.valid = true;
        entry.tag = stage2Tag(branch.pc);
        entry.target = static_cast<std::uint32_t>(branch.nextPc);
    }
}

void
CascadedPredictor::observe(const trace::BranchRecord &record)
{
    if (record.isIndirect())
        history_.push(record.nextPc >> 2);
}

std::size_t
CascadedPredictor::sizeBytes() const
{
    // 4-byte targets in both stages plus tag bits in stage 2.
    const std::size_t stage2_entry =
        sizeof(std::uint32_t) + (tagBits_ + 7) / 8;
    return stage1_.size() * sizeof(std::uint32_t)
         + stage2_.size() * stage2_entry;
}

} // namespace pred
} // namespace vlp
