/**
 * @file
 * gselect (McFarling's concatenation variant): the table index is the
 * concatenation of low branch-address bits and recent global history
 * bits, rather than gshare's XOR. Included for completeness of the
 * two-level family the paper builds on.
 */

#ifndef VLPSIM_PREDICTORS_GSELECT_H
#define VLPSIM_PREDICTORS_GSELECT_H

#include "predictors/predictor.h"
#include "util/history_register.h"
#include "util/packed_counter_table.h"

namespace vlp {
namespace pred {

/** Concatenated PC|history indexed table of 2-bit counters. */
class GselectPredictor : public ConditionalPredictor
{
  public:
    /**
     * @param index_bits   log2 of the counter-table size
     * @param history_bits history bits in the index (rest is PC);
     *        must be < index_bits; 0 means index_bits / 2
     */
    explicit GselectPredictor(unsigned index_bits,
                              unsigned history_bits = 0);

    bool predict(const trace::BranchRecord &branch) override;

    void update(const trace::BranchRecord &branch) override;

    void observe(const trace::BranchRecord &record) override;

    /** Snapshot the global history register. */
    CheckpointPtr checkpoint() const override;

    /** Rewind the global history register. */
    void restore(const Checkpoint &checkpoint) override;

    std::string name() const override { return "gselect"; }

    std::size_t sizeBytes() const override;

  private:
    std::size_t index(std::uint64_t pc) const;

    unsigned indexBits_;
    unsigned historyBits_;
    util::BitHistoryRegister history_;
    util::PackedCounterTable table_;
};

} // namespace pred
} // namespace vlp

#endif // VLPSIM_PREDICTORS_GSELECT_H
