/**
 * @file
 * A tagless branch target buffer used as an indirect predictor: each
 * entry remembers the last target of the branches mapping to it. This
 * is the history-less baseline that Chang, Hao & Patt showed history
 * based target caches dramatically improve upon.
 */

#ifndef VLPSIM_PREDICTORS_BTB_H
#define VLPSIM_PREDICTORS_BTB_H

#include <vector>

#include "predictors/predictor.h"

namespace vlp {
namespace pred {

/** PC-indexed last-target predictor. */
class BtbPredictor : public IndirectPredictor
{
  public:
    /** @param index_bits log2 of the target-table size */
    explicit BtbPredictor(unsigned index_bits);

    std::uint64_t predict(const trace::BranchRecord &branch) override;

    void update(const trace::BranchRecord &branch) override;

    std::string name() const override { return "BTB"; }

    std::size_t sizeBytes() const override;

  private:
    std::size_t index(std::uint64_t pc) const;

    unsigned indexBits_;
    std::vector<std::uint32_t> table_;
};

} // namespace pred
} // namespace vlp

#endif // VLPSIM_PREDICTORS_BTB_H
