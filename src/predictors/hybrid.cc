/**
 * @file
 * Hybrid predictor implementation.
 */

#include "predictors/hybrid.h"

#include "util/bits.h"

namespace vlp {
namespace pred {

namespace {

/** Snapshot pairing both components' checkpoints. */
struct HybridCheckpoint final : Checkpoint
{
    CheckpointPtr first;
    CheckpointPtr second;
    bool lastFirst = false;
    bool lastSecond = false;
};

} // anonymous namespace

void
HybridPredictor::speculate(const trace::BranchRecord &record)
{
    first_->speculate(record);
    second_->speculate(record);
}

CheckpointPtr
HybridPredictor::checkpoint() const
{
    auto snapshot = std::make_unique<HybridCheckpoint>();
    snapshot->first = first_->checkpoint();
    snapshot->second = second_->checkpoint();
    snapshot->lastFirst = lastFirst_;
    snapshot->lastSecond = lastSecond_;
    return snapshot;
}

void
HybridPredictor::restore(const Checkpoint &checkpoint)
{
    const auto &snapshot =
        dynamic_cast<const HybridCheckpoint &>(checkpoint);
    first_->restore(*snapshot.first);
    second_->restore(*snapshot.second);
    lastFirst_ = snapshot.lastFirst;
    lastSecond_ = snapshot.lastSecond;
}

HybridPredictor::HybridPredictor(
        std::unique_ptr<ConditionalPredictor> first,
        std::unique_ptr<ConditionalPredictor> second,
        unsigned selector_index_bits)
    : first_(std::move(first)),
      second_(std::move(second)),
      selectorIndexBits_(selector_index_bits),
      selector_(std::size_t{1} << selector_index_bits,
                util::SaturatingCounter(2))
{
}

std::size_t
HybridPredictor::selectorIndex(std::uint64_t pc) const
{
    return static_cast<std::size_t>(
        util::truncate(pc >> 2, selectorIndexBits_));
}

bool
HybridPredictor::predict(const trace::BranchRecord &branch)
{
    lastFirst_ = first_->predict(branch);
    lastSecond_ = second_->predict(branch);
    const bool use_first =
        selector_[selectorIndex(branch.pc)].predictTaken();
    return use_first ? lastFirst_ : lastSecond_;
}

void
HybridPredictor::update(const trace::BranchRecord &branch)
{
    // Train the selector only when the components disagree, toward the
    // component that was right.
    if (lastFirst_ != lastSecond_) {
        selector_[selectorIndex(branch.pc)].update(
            lastFirst_ == branch.taken);
    }
    first_->update(branch);
    second_->update(branch);
}

void
HybridPredictor::observe(const trace::BranchRecord &record)
{
    first_->observe(record);
    second_->observe(record);
}

std::string
HybridPredictor::name() const
{
    return "hybrid(" + first_->name() + "+" + second_->name() + ")";
}

std::size_t
HybridPredictor::sizeBytes() const
{
    return first_->sizeBytes() + second_->sizeBytes()
         + selector_.size() / 4;
}

} // namespace pred
} // namespace vlp
