/**
 * @file
 * Target cache implementations.
 */

#include "predictors/target_cache.h"

#include "util/bits.h"

namespace vlp {
namespace pred {

PatternTargetCache::PatternTargetCache(unsigned index_bits,
                                       unsigned history_bits)
    : indexBits_(index_bits),
      history_(history_bits == 0 ? index_bits : history_bits),
      table_(std::size_t{1} << index_bits, 0)
{
}

std::size_t
PatternTargetCache::index(std::uint64_t pc) const
{
    const std::uint64_t address = util::xorFold(pc >> 2, indexBits_);
    return static_cast<std::size_t>(
        util::truncate(address ^ history_.value(), indexBits_));
}

std::uint64_t
PatternTargetCache::predict(const trace::BranchRecord &branch)
{
    return widenTarget(table_[index(branch.pc)], branch.pc);
}

void
PatternTargetCache::update(const trace::BranchRecord &branch)
{
    table_[index(branch.pc)] =
        static_cast<std::uint32_t>(branch.nextPc);
}

void
PatternTargetCache::observe(const trace::BranchRecord &record)
{
    if (record.isConditional())
        history_.push(record.taken);
}

std::size_t
PatternTargetCache::sizeBytes() const
{
    return table_.size() * sizeof(std::uint32_t);
}

PathTargetCache::PathTargetCache(unsigned index_bits,
                                 unsigned chunk_bits)
    : indexBits_(index_bits),
      history_(index_bits, chunk_bits),
      table_(std::size_t{1} << index_bits, 0)
{
}

std::size_t
PathTargetCache::index(std::uint64_t pc) const
{
    const std::uint64_t address = util::xorFold(pc >> 2, indexBits_);
    return static_cast<std::size_t>(
        util::truncate(address ^ history_.value(), indexBits_));
}

std::uint64_t
PathTargetCache::predict(const trace::BranchRecord &branch)
{
    return widenTarget(table_[index(branch.pc)], branch.pc);
}

void
PathTargetCache::update(const trace::BranchRecord &branch)
{
    table_[index(branch.pc)] =
        static_cast<std::uint32_t>(branch.nextPc);
}

void
PathTargetCache::observe(const trace::BranchRecord &record)
{
    // The path history records targets of indirect branches (the
    // "history of targets" organization of Chang, Hao & Patt). Word
    // alignment is dropped so the chunk bits carry information.
    if (record.isIndirect())
        history_.push(record.nextPc >> 2);
}

std::size_t
PathTargetCache::sizeBytes() const
{
    return table_.size() * sizeof(std::uint32_t);
}

} // namespace pred
} // namespace vlp
