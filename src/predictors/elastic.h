/**
 * @file
 * The elastic history buffer (Tarlescu, Theobald & Gao, ICCD'97),
 * cited by the paper as the profile-selected *pattern*-history-length
 * predecessor of its idea: a gshare in which the number of global
 * history bits used to form the index is chosen per static branch by
 * profiling. Comparing it against the variable length *path* predictor
 * isolates how much of the paper's gain comes from per-branch length
 * selection versus from using paths instead of patterns.
 */

#ifndef VLPSIM_PREDICTORS_ELASTIC_H
#define VLPSIM_PREDICTORS_ELASTIC_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "predictors/predictor.h"
#include "trace/trace_source.h"
#include "util/history_register.h"
#include "util/saturating_counter.h"

namespace vlp {
namespace pred {

/** Per-static-branch history-length map (0 = bimodal behaviour). */
struct PatternLengthAssignment
{
    std::unordered_map<std::uint64_t, unsigned> lengths;
    unsigned defaultLength = 0;

    /** Length for the branch at @p pc. */
    unsigned
    lookup(std::uint64_t pc) const
    {
        const auto it = lengths.find(pc);
        return it == lengths.end() ? defaultLength : it->second;
    }
};

/** gshare whose history length is selected per branch by profiling. */
class ElasticGsharePredictor : public ConditionalPredictor
{
  public:
    /**
     * @param index_bits log2 of the counter-table size (also the
     *        maximum usable history length)
     * @param assignment per-branch history lengths
     */
    ElasticGsharePredictor(unsigned index_bits,
                           PatternLengthAssignment assignment);

    bool predict(const trace::BranchRecord &branch) override;

    void update(const trace::BranchRecord &branch) override;

    void observe(const trace::BranchRecord &record) override;

    /** Snapshot the global history register. */
    CheckpointPtr checkpoint() const override;

    /** Rewind the global history register. */
    void restore(const Checkpoint &checkpoint) override;

    std::string name() const override { return "elastic gshare"; }

    std::size_t sizeBytes() const override;

  private:
    std::size_t index(std::uint64_t pc) const;

    unsigned indexBits_;
    PatternLengthAssignment assignment_;
    util::BitHistoryRegister history_;
    std::vector<util::SaturatingCounter> table_;
};

/**
 * Profiles per-branch pattern-history lengths: simulates gshare at
 * every length 0..index_bits with private tables and keeps, for each
 * static branch, the length with the most correct predictions (the
 * analogue of the paper's profiling step 1 for pattern history).
 */
class ElasticProfiler
{
  public:
    /** @param index_bits log2 of the counter-table size */
    explicit ElasticProfiler(unsigned index_bits);

    /** Run over @p profile_trace (reset first) and select lengths. */
    PatternLengthAssignment profile(trace::TraceSource &profile_trace);

  private:
    unsigned indexBits_;
};

} // namespace pred
} // namespace vlp

#endif // VLPSIM_PREDICTORS_ELASTIC_H
