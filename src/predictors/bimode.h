/**
 * @file
 * The bi-mode predictor (Lee, Chen & Mudge, MICRO'97), cited by the
 * paper's related work. Two gshare-indexed direction PHTs — a "taken"
 * bank and a "not-taken" bank — plus a PC-indexed choice PHT that
 * selects the bank, separating branches of opposite bias so they stop
 * destructively aliasing.
 */

#ifndef VLPSIM_PREDICTORS_BIMODE_H
#define VLPSIM_PREDICTORS_BIMODE_H

#include "predictors/predictor.h"
#include "util/history_register.h"
#include "util/packed_counter_table.h"

namespace vlp {
namespace pred {

/** Choice PHT + two direction PHTs. */
class BiModePredictor : public ConditionalPredictor
{
  public:
    /**
     * @param index_bits        log2 of each direction bank's size
     * @param choice_index_bits log2 of the choice PHT size
     */
    explicit BiModePredictor(unsigned index_bits,
                             unsigned choice_index_bits = 0);

    bool predict(const trace::BranchRecord &branch) override;

    void update(const trace::BranchRecord &branch) override;

    void observe(const trace::BranchRecord &record) override;

    std::string name() const override { return "bi-mode"; }

    std::size_t sizeBytes() const override;

  private:
    std::size_t directionIndex(std::uint64_t pc) const;
    std::size_t choiceIndex(std::uint64_t pc) const;

    unsigned indexBits_;
    unsigned choiceIndexBits_;
    util::BitHistoryRegister history_;
    util::PackedCounterTable takenBank_;
    util::PackedCounterTable notTakenBank_;
    util::PackedCounterTable choice_;
};

} // namespace pred
} // namespace vlp

#endif // VLPSIM_PREDICTORS_BIMODE_H
