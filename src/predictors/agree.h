/**
 * @file
 * The agree predictor (Sprangle, Chappell, Alsup & Patt, ISCA'97),
 * cited by the paper as a mechanism for reducing negative history
 * interference. Instead of predicting taken/not-taken, the history
 * indexed counters predict whether the branch *agrees* with a
 * per-branch biasing bit, so two branches aliasing to the same counter
 * usually push it the same way.
 */

#ifndef VLPSIM_PREDICTORS_AGREE_H
#define VLPSIM_PREDICTORS_AGREE_H

#include <vector>

#include "predictors/predictor.h"
#include "util/history_register.h"
#include "util/packed_counter_table.h"

namespace vlp {
namespace pred {

/** gshare-indexed agree/disagree counters + PC-indexed biasing bits. */
class AgreePredictor : public ConditionalPredictor
{
  public:
    /**
     * @param index_bits      log2 of the agree-counter table size
     * @param bias_index_bits log2 of the biasing-bit table size
     */
    explicit AgreePredictor(unsigned index_bits,
                            unsigned bias_index_bits = 12);

    bool predict(const trace::BranchRecord &branch) override;

    void update(const trace::BranchRecord &branch) override;

    void observe(const trace::BranchRecord &record) override;

    std::string name() const override { return "agree"; }

    std::size_t sizeBytes() const override;

  private:
    std::size_t counterIndex(std::uint64_t pc) const;
    std::size_t biasIndex(std::uint64_t pc) const;

    unsigned indexBits_;
    unsigned biasIndexBits_;
    util::BitHistoryRegister history_;
    util::PackedCounterTable agree_;
    /** Biasing bit per entry: the first-seen direction. */
    std::vector<std::uint8_t> bias_;
    std::vector<bool> biasSet_;
};

} // namespace pred
} // namespace vlp

#endif // VLPSIM_PREDICTORS_AGREE_H
