/**
 * @file
 * McFarling-style hybrid (tournament) conditional predictor: two
 * component predictors plus a PC-indexed selector table of 2-bit
 * counters that learns which component to trust per branch.
 *
 * The paper cites hybrid prediction as related work; we provide it as a
 * stronger baseline for ablation studies.
 */

#ifndef VLPSIM_PREDICTORS_HYBRID_H
#define VLPSIM_PREDICTORS_HYBRID_H

#include <memory>
#include <vector>

#include "predictors/predictor.h"
#include "util/saturating_counter.h"

namespace vlp {
namespace pred {

/** Selector-based combination of two conditional predictors. */
class HybridPredictor : public ConditionalPredictor
{
  public:
    /**
     * @param first  component favoured when the selector counter is
     *        high
     * @param second component favoured when the selector counter is
     *        low
     * @param selector_index_bits log2 of the selector table size
     */
    HybridPredictor(std::unique_ptr<ConditionalPredictor> first,
                    std::unique_ptr<ConditionalPredictor> second,
                    unsigned selector_index_bits);

    bool predict(const trace::BranchRecord &branch) override;

    void update(const trace::BranchRecord &branch) override;

    void observe(const trace::BranchRecord &record) override;

    /** Forward the speculative history advance to both components. */
    void speculate(const trace::BranchRecord &record) override;

    /** Combined snapshot: both components' checkpoints plus the
     *  captured component predictions the next update() consumes. */
    CheckpointPtr checkpoint() const override;

    /** Rewind both components and the captured predictions. */
    void restore(const Checkpoint &checkpoint) override;

    std::string name() const override;

    std::size_t sizeBytes() const override;

  private:
    std::size_t selectorIndex(std::uint64_t pc) const;

    std::unique_ptr<ConditionalPredictor> first_;
    std::unique_ptr<ConditionalPredictor> second_;
    unsigned selectorIndexBits_;
    std::vector<util::SaturatingCounter> selector_;

    /** Component predictions captured at predict() for the update. */
    bool lastFirst_ = false;
    bool lastSecond_ = false;
};

} // namespace pred
} // namespace vlp

#endif // VLPSIM_PREDICTORS_HYBRID_H
