/**
 * @file
 * Bimodal predictor implementation.
 */

#include "predictors/bimodal.h"

#include "util/bits.h"

namespace vlp {
namespace pred {

BimodalPredictor::BimodalPredictor(unsigned index_bits)
    : indexBits_(index_bits),
      table_(std::size_t{1} << index_bits, 2)
{
}

std::size_t
BimodalPredictor::index(std::uint64_t pc) const
{
    return static_cast<std::size_t>(
        util::truncate(pc >> 2, indexBits_));
}

bool
BimodalPredictor::predict(const trace::BranchRecord &branch)
{
    return table_.predictTaken(index(branch.pc));
}

void
BimodalPredictor::update(const trace::BranchRecord &branch)
{
    table_.update(index(branch.pc), branch.taken);
}

std::size_t
BimodalPredictor::sizeBytes() const
{
    return table_.sizeBytes();
}

} // namespace pred
} // namespace vlp
