/**
 * @file
 * Agree predictor implementation.
 */

#include "predictors/agree.h"

#include "util/bits.h"

namespace vlp {
namespace pred {

AgreePredictor::AgreePredictor(unsigned index_bits,
                               unsigned bias_index_bits)
    : indexBits_(index_bits),
      biasIndexBits_(bias_index_bits),
      history_(index_bits),
      agree_(std::size_t{1} << index_bits, 2, 3), // start strongly agreeing
      bias_(std::size_t{1} << bias_index_bits, 1),
      biasSet_(std::size_t{1} << bias_index_bits, false)
{
}

std::size_t
AgreePredictor::counterIndex(std::uint64_t pc) const
{
    const std::uint64_t address = util::xorFold(pc >> 2, indexBits_);
    return static_cast<std::size_t>(
        util::truncate(address ^ history_.value(), indexBits_));
}

std::size_t
AgreePredictor::biasIndex(std::uint64_t pc) const
{
    return static_cast<std::size_t>(
        util::truncate(pc >> 2, biasIndexBits_));
}

bool
AgreePredictor::predict(const trace::BranchRecord &branch)
{
    const bool bias = bias_[biasIndex(branch.pc)] != 0;
    const bool agrees = agree_.predictTaken(counterIndex(branch.pc));
    return agrees ? bias : !bias;
}

void
AgreePredictor::update(const trace::BranchRecord &branch)
{
    const std::size_t slot = biasIndex(branch.pc);
    if (!biasSet_[slot]) {
        // The biasing bit is set to the first observed outcome (the
        // paper's "first time" policy, a stand-in for a compiler hint).
        bias_[slot] = branch.taken ? 1 : 0;
        biasSet_[slot] = true;
    }
    const bool bias = bias_[slot] != 0;
    agree_.update(counterIndex(branch.pc), branch.taken == bias);
}

void
AgreePredictor::observe(const trace::BranchRecord &record)
{
    if (record.isConditional())
        history_.push(record.taken);
}

std::size_t
AgreePredictor::sizeBytes() const
{
    // 2-bit agree counters plus 1-bit biasing entries.
    return agree_.sizeBytes() + bias_.size() / 8;
}

} // namespace pred
} // namespace vlp
