/**
 * @file
 * Predictor interfaces shared by the baselines (this library) and the
 * paper's fixed/variable length path predictors (src/core).
 *
 * Simulation protocol, enforced by sim::Simulator, per trace record:
 *   1. if the record is a conditional branch, each conditional
 *      predictor's predict() is called, then its update();
 *   2. if the record is an indirect branch (jump or call, not return),
 *      each indirect predictor's predict() is called, then update();
 *   3. every predictor's observe() is called with the record.
 *
 * predict()/update() touch only the predictor *tables*; observe()
 * maintains *history* (branch history registers, target history
 * buffers). The separation mirrors hardware, where history is updated
 * for every fetched branch while tables are written at retirement, and
 * it lets each predictor decide which branch classes feed its history.
 *
 * Speculative protocol (sim::FetchEngine, DESIGN.md §17): a wide
 * front-end advances history at *fetch* with the predicted outcome and
 * must repair it when the branch resolves the other way. Predictors
 * expose that as three additional hooks:
 *   - speculate(record): advance history with a record embodying the
 *     *predicted* outcome (for a correctly predicted branch this is
 *     exactly observe() of the retired record);
 *   - checkpoint(): an opaque snapshot of the history state — tables
 *     are retirement state and are never captured;
 *   - restore(checkpoint): rewind history to a snapshot (mispredict
 *     repair).
 * The defaults keep every existing predictor and caller working: a
 * predictor with no override speculates by observing and has a
 * stateless (no-op) checkpoint. The retirement-order
 * predict→update→observe path is untouched.
 */

#ifndef VLPSIM_PREDICTORS_PREDICTOR_H
#define VLPSIM_PREDICTORS_PREDICTOR_H

#include <cstdint>
#include <memory>
#include <string>

#include "trace/branch_record.h"

namespace vlp {
namespace pred {

/**
 * Opaque snapshot of a predictor's history state, produced by
 * Predictor::checkpoint() and consumed by Predictor::restore(). Each
 * predictor derives its own snapshot type; restore() rejects foreign
 * checkpoints (std::bad_cast). The base class itself is the valid
 * checkpoint of a predictor with no history.
 */
class Checkpoint
{
  public:
    Checkpoint() = default;
    virtual ~Checkpoint() = default;
};

/** Owning handle for an opaque history checkpoint. */
using CheckpointPtr = std::unique_ptr<Checkpoint>;

/** Common base: naming, sizing, and history observation. */
class Predictor
{
  public:
    virtual ~Predictor() = default;

    /**
     * Observe a retired branch of any kind. Called for every trace
     * record, after any predict()/update() for that record. History
     * structures are maintained here.
     */
    virtual void observe(const trace::BranchRecord &record)
    {
        (void)record;
    }

    /**
     * Advance history speculatively at fetch with @p record carrying
     * the *predicted* outcome (taken/nextPc as the front-end guessed
     * them). For a correct prediction the record equals the retired
     * one and this must behave exactly like observe(); the default
     * does precisely that. Wrong-path effects are undone by
     * restore(), never retired.
     */
    virtual void speculate(const trace::BranchRecord &record)
    {
        observe(record);
    }

    /**
     * Snapshot the history state (never the tables). The snapshot is
     * a value: restoring it is valid any number of times, in any
     * order, unless a subclass documents a tighter protocol (the
     * HFNT-style journaled snapshots are LIFO).
     */
    virtual CheckpointPtr checkpoint() const
    {
        return std::make_unique<Checkpoint>();
    }

    /**
     * Rewind history to @p checkpoint (a snapshot this predictor
     * produced). @throws std::bad_cast for a foreign checkpoint.
     */
    virtual void restore(const Checkpoint &checkpoint)
    {
        (void)checkpoint;
    }

    /**
     * Number of table banks modeled for multi-branch-per-cycle
     * prediction; 0 means unbanked (the fetch engine treats the
     * predictor as ideally multiported and never charges a port
     * conflict).
     */
    virtual unsigned bankCount() const { return 0; }

    /**
     * Bank @p record's table lookup falls in, in [0, bankCount()).
     * Only meaningful when bankCount() > 0. Two branches in one fetch
     * bundle must hit disjoint banks or the bundle is split.
     */
    virtual unsigned bankOf(const trace::BranchRecord &record) const
    {
        (void)record;
        return 0;
    }

    /** Short identifying name ("gshare", "variable length path"...). */
    virtual std::string name() const = 0;

    /**
     * Hardware budget of the predictor *table(s)* in bytes, the
     * quantity the paper equalizes when comparing predictors.
     */
    virtual std::size_t sizeBytes() const = 0;
};

/** Predicts conditional branch directions. */
class ConditionalPredictor : public Predictor
{
  public:
    /**
     * Predict the direction of @p branch (record fields other than
     * pc must not be consulted — they are the oracle outcome).
     */
    virtual bool predict(const trace::BranchRecord &branch) = 0;

    /** Train the tables with the resolved outcome. */
    virtual void update(const trace::BranchRecord &branch) = 0;
};

/** Predicts indirect branch targets. */
class IndirectPredictor : public Predictor
{
  public:
    /**
     * Predict the target of @p branch (only pc may be consulted).
     * @return predicted full target address
     */
    virtual std::uint64_t predict(const trace::BranchRecord &branch) = 0;

    /** Train the tables with the resolved target. */
    virtual void update(const trace::BranchRecord &branch) = 0;
};

/**
 * Reconstruct a full 64-bit target from a stored low-32-bit entry,
 * taking the upper bits from the fetch address — the paper stores only
 * the lower 32 bits of Alpha targets in the predictor tables and takes
 * the rest from the current fetch address (footnote, Section 5.2.2).
 */
inline std::uint64_t
widenTarget(std::uint32_t stored, std::uint64_t fetch_pc)
{
    return (fetch_pc & 0xffffffff00000000ULL) | stored;
}

} // namespace pred
} // namespace vlp

#endif // VLPSIM_PREDICTORS_PREDICTOR_H
