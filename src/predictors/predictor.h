/**
 * @file
 * Predictor interfaces shared by the baselines (this library) and the
 * paper's fixed/variable length path predictors (src/core).
 *
 * Simulation protocol, enforced by sim::Simulator, per trace record:
 *   1. if the record is a conditional branch, each conditional
 *      predictor's predict() is called, then its update();
 *   2. if the record is an indirect branch (jump or call, not return),
 *      each indirect predictor's predict() is called, then update();
 *   3. every predictor's observe() is called with the record.
 *
 * predict()/update() touch only the predictor *tables*; observe()
 * maintains *history* (branch history registers, target history
 * buffers). The separation mirrors hardware, where history is updated
 * for every fetched branch while tables are written at retirement, and
 * it lets each predictor decide which branch classes feed its history.
 */

#ifndef VLPSIM_PREDICTORS_PREDICTOR_H
#define VLPSIM_PREDICTORS_PREDICTOR_H

#include <cstdint>
#include <string>

#include "trace/branch_record.h"

namespace vlp {
namespace pred {

/** Common base: naming, sizing, and history observation. */
class Predictor
{
  public:
    virtual ~Predictor() = default;

    /**
     * Observe a retired branch of any kind. Called for every trace
     * record, after any predict()/update() for that record. History
     * structures are maintained here.
     */
    virtual void observe(const trace::BranchRecord &record)
    {
        (void)record;
    }

    /** Short identifying name ("gshare", "variable length path"...). */
    virtual std::string name() const = 0;

    /**
     * Hardware budget of the predictor *table(s)* in bytes, the
     * quantity the paper equalizes when comparing predictors.
     */
    virtual std::size_t sizeBytes() const = 0;
};

/** Predicts conditional branch directions. */
class ConditionalPredictor : public Predictor
{
  public:
    /**
     * Predict the direction of @p branch (record fields other than
     * pc must not be consulted — they are the oracle outcome).
     */
    virtual bool predict(const trace::BranchRecord &branch) = 0;

    /** Train the tables with the resolved outcome. */
    virtual void update(const trace::BranchRecord &branch) = 0;
};

/** Predicts indirect branch targets. */
class IndirectPredictor : public Predictor
{
  public:
    /**
     * Predict the target of @p branch (only pc may be consulted).
     * @return predicted full target address
     */
    virtual std::uint64_t predict(const trace::BranchRecord &branch) = 0;

    /** Train the tables with the resolved target. */
    virtual void update(const trace::BranchRecord &branch) = 0;
};

/**
 * Reconstruct a full 64-bit target from a stored low-32-bit entry,
 * taking the upper bits from the fetch address — the paper stores only
 * the lower 32 bits of Alpha targets in the predictor tables and takes
 * the rest from the current fetch address (footnote, Section 5.2.2).
 */
inline std::uint64_t
widenTarget(std::uint32_t stored, std::uint64_t fetch_pc)
{
    return (fetch_pc & 0xffffffff00000000ULL) | stored;
}

} // namespace pred
} // namespace vlp

#endif // VLPSIM_PREDICTORS_PREDICTOR_H
