/**
 * @file
 * Bimodal conditional predictor: one 2-bit counter per branch-address
 * index, no history. The simplest dynamic predictor; used as a hybrid
 * component and as a sanity baseline.
 */

#ifndef VLPSIM_PREDICTORS_BIMODAL_H
#define VLPSIM_PREDICTORS_BIMODAL_H

#include "predictors/predictor.h"
#include "util/packed_counter_table.h"

namespace vlp {
namespace pred {

/** PC-indexed table of 2-bit counters. */
class BimodalPredictor : public ConditionalPredictor
{
  public:
    /** @param index_bits log2 of the counter-table size */
    explicit BimodalPredictor(unsigned index_bits);

    bool predict(const trace::BranchRecord &branch) override;

    void update(const trace::BranchRecord &branch) override;

    std::string name() const override { return "bimodal"; }

    std::size_t sizeBytes() const override;

  private:
    std::size_t index(std::uint64_t pc) const;

    unsigned indexBits_;
    util::PackedCounterTable table_;
};

} // namespace pred
} // namespace vlp

#endif // VLPSIM_PREDICTORS_BIMODAL_H
