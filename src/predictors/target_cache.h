/**
 * @file
 * The Chang, Hao & Patt "target cache" indirect branch predictors
 * (ISCA'97), in their tagless form — the paper's baselines for indirect
 * branch prediction (Figures 7, 8, 10 and Table 3).
 *
 * Both variants index one table of target registers with a hash of the
 * branch address and a global history register; they differ in what the
 * history records:
 *  - pattern variant: taken/not-taken outcomes of recent conditional
 *    branches (one bit per branch);
 *  - path variant: q low-order bits of the targets of recent indirect
 *    branches (Nair-style compressed path).
 */

#ifndef VLPSIM_PREDICTORS_TARGET_CACHE_H
#define VLPSIM_PREDICTORS_TARGET_CACHE_H

#include <vector>

#include "predictors/predictor.h"
#include "util/history_register.h"

namespace vlp {
namespace pred {

/** Pattern-based (conditional-outcome history) tagless target cache. */
class PatternTargetCache : public IndirectPredictor
{
  public:
    /**
     * @param index_bits   log2 of the target-table size
     * @param history_bits pattern history length; 0 means index_bits
     */
    explicit PatternTargetCache(unsigned index_bits,
                                unsigned history_bits = 0);

    std::uint64_t predict(const trace::BranchRecord &branch) override;

    void update(const trace::BranchRecord &branch) override;

    void observe(const trace::BranchRecord &record) override;

    std::string name() const override
    {
        return "pattern (Chang, Hao, and Patt)";
    }

    std::size_t sizeBytes() const override;

  private:
    std::size_t index(std::uint64_t pc) const;

    unsigned indexBits_;
    util::BitHistoryRegister history_;
    std::vector<std::uint32_t> table_;
};

/** Path-based (compressed-target history) tagless target cache. */
class PathTargetCache : public IndirectPredictor
{
  public:
    /**
     * @param index_bits log2 of the target-table size
     * @param chunk_bits low-order target bits shifted into the history
     *        per indirect branch (q)
     */
    explicit PathTargetCache(unsigned index_bits,
                             unsigned chunk_bits = 2);

    std::uint64_t predict(const trace::BranchRecord &branch) override;

    void update(const trace::BranchRecord &branch) override;

    void observe(const trace::BranchRecord &record) override;

    std::string name() const override
    {
        return "path (Chang, Hao, and Patt)";
    }

    std::size_t sizeBytes() const override;

  private:
    std::size_t index(std::uint64_t pc) const;

    unsigned indexBits_;
    util::ChunkHistoryRegister history_;
    std::vector<std::uint32_t> table_;
};

} // namespace pred
} // namespace vlp

#endif // VLPSIM_PREDICTORS_TARGET_CACHE_H
