/**
 * @file
 * DHLF-gshare implementation.
 */

#include "predictors/dhlf.h"

#include "util/bits.h"

namespace vlp {
namespace pred {

DhlfGsharePredictor::DhlfGsharePredictor(unsigned index_bits,
                                         std::uint64_t interval)
    : indexBits_(index_bits),
      interval_(interval),
      history_(index_bits),
      table_(std::size_t{1} << index_bits, util::SaturatingCounter(2)),
      length_(index_bits / 2)
{
}

std::size_t
DhlfGsharePredictor::index(std::uint64_t pc) const
{
    const std::uint64_t address = util::xorFold(pc >> 2, indexBits_);
    const std::uint64_t used =
        util::truncate(history_.value(), length_);
    return static_cast<std::size_t>(
        util::truncate(address ^ used, indexBits_));
}

bool
DhlfGsharePredictor::predict(const trace::BranchRecord &branch)
{
    return table_[index(branch.pc)].predictTaken();
}

void
DhlfGsharePredictor::update(const trace::BranchRecord &branch)
{
    util::SaturatingCounter &counter = table_[index(branch.pc)];
    if (counter.predictTaken() != branch.taken)
        ++intervalMispredictions_;
    counter.update(branch.taken);
    if (++intervalPredictions_ >= interval_)
        endInterval();
}

void
DhlfGsharePredictor::endInterval()
{
    if (haveBest_ && intervalMispredictions_ > bestMispredictions_) {
        // Got worse: reverse the search direction.
        direction_ = -direction_;
    }
    bestMispredictions_ = intervalMispredictions_;
    haveBest_ = true;

    const int proposed = static_cast<int>(length_) + direction_;
    if (proposed < 0) {
        length_ = 0;
        direction_ = 1;
    } else if (proposed > static_cast<int>(indexBits_)) {
        length_ = indexBits_;
        direction_ = -1;
    } else {
        length_ = static_cast<unsigned>(proposed);
    }

    intervalPredictions_ = 0;
    intervalMispredictions_ = 0;
}

void
DhlfGsharePredictor::observe(const trace::BranchRecord &record)
{
    if (record.isConditional())
        history_.push(record.taken);
}

std::size_t
DhlfGsharePredictor::sizeBytes() const
{
    return table_.size() / 4;
}

} // namespace pred
} // namespace vlp
