/**
 * @file
 * The gshare conditional branch predictor (McFarling, WRL TN-36) — the
 * paper's baseline for conditional branch prediction.
 */

#ifndef VLPSIM_PREDICTORS_GSHARE_H
#define VLPSIM_PREDICTORS_GSHARE_H

#include "predictors/predictor.h"
#include "util/history_register.h"
#include "util/packed_counter_table.h"

namespace vlp {
namespace pred {

/**
 * gshare: a global branch-outcome history register XORed with the
 * branch address to index one table of 2-bit saturating counters.
 *
 * The history length defaults to the index width, which maximizes the
 * history captured for a given table budget (the classic
 * configuration).
 */
class GsharePredictor : public ConditionalPredictor
{
  public:
    /**
     * @param index_bits  log2 of the counter-table size
     * @param history_bits global history length; 0 means index_bits
     */
    explicit GsharePredictor(unsigned index_bits,
                             unsigned history_bits = 0);

    bool predict(const trace::BranchRecord &branch) override;

    void update(const trace::BranchRecord &branch) override;

    void observe(const trace::BranchRecord &record) override;

    // speculate() is inherited: pushing the *predicted* outcome is
    // exactly observe() of a record carrying it.

    /** Snapshot the global history register. */
    CheckpointPtr checkpoint() const override;

    /** Rewind the global history register. */
    void restore(const Checkpoint &checkpoint) override;

    std::string name() const override { return "gshare"; }

    std::size_t sizeBytes() const override;

    /** Index width in bits. */
    unsigned indexBits() const { return indexBits_; }

    /** Current global history pattern (for tests). */
    std::uint64_t history() const { return history_.value(); }

  private:
    /** Table index for @p pc under the current history. */
    std::size_t index(std::uint64_t pc) const;

    unsigned indexBits_;
    util::BitHistoryRegister history_;
    util::PackedCounterTable table_;
};

} // namespace pred
} // namespace vlp

#endif // VLPSIM_PREDICTORS_GSHARE_H
