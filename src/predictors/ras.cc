/**
 * @file
 * Return address stack implementation.
 */

#include "predictors/ras.h"

#include <cassert>

namespace vlp {
namespace pred {

ReturnAddressStack::ReturnAddressStack(std::size_t depth)
    : stack_(depth, 0)
{
    assert(depth >= 1);
}

void
ReturnAddressStack::push(std::uint64_t return_address)
{
    top_ = (top_ + 1) % stack_.size();
    stack_[top_] = return_address;
    if (occupancy_ < stack_.size())
        ++occupancy_;
}

std::uint64_t
ReturnAddressStack::predictAndPop()
{
    if (occupancy_ == 0)
        return 0;
    const std::uint64_t prediction = stack_[top_];
    top_ = (top_ + stack_.size() - 1) % stack_.size();
    --occupancy_;
    return prediction;
}

} // namespace pred
} // namespace vlp
