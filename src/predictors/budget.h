/**
 * @file
 * Hardware-budget arithmetic: converting between table sizes in bytes
 * (how the paper states budgets) and index widths in bits (how the
 * structures are built).
 *
 * Conditional predictor tables hold 2-bit saturating counters, so a
 * table of B bytes has 4*B entries. Indirect predictor tables hold
 * 32-bit target registers (the paper stores the lower 32 bits of the
 * 64-bit Alpha target), so a table of B bytes has B/4 entries.
 */

#ifndef VLPSIM_PREDICTORS_BUDGET_H
#define VLPSIM_PREDICTORS_BUDGET_H

#include <cstddef>

#include "util/bits.h"
#include "util/logging.h"

namespace vlp {
namespace pred {

/** Bytes per indirect predictor table entry (a 32-bit target). */
constexpr std::size_t indirectEntryBytes = 4;

/**
 * Index bits of a conditional predictor table of @p bytes.
 * @throws std::runtime_error unless bytes is a power of two >= 1
 */
inline unsigned
conditionalIndexBits(std::size_t bytes)
{
    if (bytes == 0 || !util::isPowerOf2(bytes))
        util::fatal("conditional table size must be a power of two");
    return util::floorLog2(bytes) + 2; // 4 two-bit counters per byte
}

/** Bytes of a conditional predictor table with @p index_bits. */
inline std::size_t
conditionalTableBytes(unsigned index_bits)
{
    return index_bits >= 2 ? (std::size_t{1} << (index_bits - 2)) : 1;
}

/**
 * Index bits of an indirect predictor table of @p bytes.
 * @throws std::runtime_error unless bytes is a power of two >= 4
 */
inline unsigned
indirectIndexBits(std::size_t bytes)
{
    if (bytes < indirectEntryBytes || !util::isPowerOf2(bytes))
        util::fatal("indirect table size must be a power of two >= 4");
    return util::floorLog2(bytes / indirectEntryBytes);
}

/** Bytes of an indirect predictor table with @p index_bits. */
inline std::size_t
indirectTableBytes(unsigned index_bits)
{
    return (std::size_t{1} << index_bits) * indirectEntryBytes;
}

} // namespace pred
} // namespace vlp

#endif // VLPSIM_PREDICTORS_BUDGET_H
