/**
 * @file
 * Dynamic history-length fitting (Juan, Sanjeevan & Navarro, ISCA'98),
 * which the paper discusses as the hardware-adaptive alternative to its
 * profile-selected path lengths. Provided as an extension baseline: a
 * gshare whose global-history length is re-selected by hardware at
 * fixed intervals.
 */

#ifndef VLPSIM_PREDICTORS_DHLF_H
#define VLPSIM_PREDICTORS_DHLF_H

#include <vector>

#include "predictors/predictor.h"
#include "util/history_register.h"
#include "util/saturating_counter.h"

namespace vlp {
namespace pred {

/**
 * gshare with interval-based history-length adaptation.
 *
 * During each interval the predictor uses one history length for all
 * predictions and counts its mispredictions. At interval boundaries it
 * compares the count against the best seen so far and steps the length
 * (hill climbing with occasional exploration resets, following the
 * spirit of the DHLF paper).
 */
class DhlfGsharePredictor : public ConditionalPredictor
{
  public:
    /**
     * @param index_bits log2 of the counter-table size
     * @param interval   predictions per adaptation interval
     */
    explicit DhlfGsharePredictor(unsigned index_bits,
                                 std::uint64_t interval = 16384);

    bool predict(const trace::BranchRecord &branch) override;

    void update(const trace::BranchRecord &branch) override;

    void observe(const trace::BranchRecord &record) override;

    std::string name() const override { return "DHLF-gshare"; }

    std::size_t sizeBytes() const override;

    /** History length currently in use (for tests/diagnostics). */
    unsigned currentLength() const { return length_; }

  private:
    std::size_t index(std::uint64_t pc) const;
    void endInterval();

    unsigned indexBits_;
    std::uint64_t interval_;
    util::BitHistoryRegister history_;
    std::vector<util::SaturatingCounter> table_;

    unsigned length_;
    int direction_ = 1;
    std::uint64_t intervalPredictions_ = 0;
    std::uint64_t intervalMispredictions_ = 0;
    std::uint64_t bestMispredictions_ = 0;
    bool haveBest_ = false;
};

} // namespace pred
} // namespace vlp

#endif // VLPSIM_PREDICTORS_DHLF_H
