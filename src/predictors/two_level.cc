/**
 * @file
 * Two-level adaptive predictor implementation.
 */

#include "predictors/two_level.h"

#include <cassert>

#include "util/bits.h"

namespace vlp {
namespace pred {

namespace {

/** First-level history snapshot: every register's pattern. */
struct TwoLevelCheckpoint final : Checkpoint
{
    std::vector<std::uint64_t> patterns;
};

} // anonymous namespace

CheckpointPtr
TwoLevelPredictor::checkpoint() const
{
    auto snapshot = std::make_unique<TwoLevelCheckpoint>();
    snapshot->patterns.reserve(histories_.size());
    for (const util::BitHistoryRegister &history : histories_)
        snapshot->patterns.push_back(history.value());
    return snapshot;
}

void
TwoLevelPredictor::restore(const Checkpoint &checkpoint)
{
    const auto &snapshot =
        dynamic_cast<const TwoLevelCheckpoint &>(checkpoint);
    assert(snapshot.patterns.size() == histories_.size());
    for (std::size_t i = 0; i < histories_.size(); ++i)
        histories_[i].set(snapshot.patterns[i]);
}

TwoLevelPredictor::TwoLevelPredictor(HistoryScope scope,
                                     unsigned history_bits,
                                     unsigned pht_select_bits,
                                     unsigned bht_index_bits)
    : scope_(scope),
      historyBits_(history_bits),
      phtSelectBits_(pht_select_bits),
      bhtIndexBits_(bht_index_bits),
      histories_(scope == HistoryScope::Global
                     ? 1 : (std::size_t{1} << bht_index_bits),
                 util::BitHistoryRegister(history_bits)),
      counters_(std::size_t{1} << (history_bits + pht_select_bits), 2)
{
}

std::uint64_t
TwoLevelPredictor::historyFor(std::uint64_t pc) const
{
    if (scope_ == HistoryScope::Global)
        return histories_[0].value();
    const std::size_t slot = static_cast<std::size_t>(
        util::truncate(pc >> 2, bhtIndexBits_));
    return histories_[slot].value();
}

std::size_t
TwoLevelPredictor::counterIndex(std::uint64_t pc) const
{
    const std::uint64_t pattern = historyFor(pc);
    const std::uint64_t pht = util::truncate(pc >> 2, phtSelectBits_);
    return static_cast<std::size_t>((pht << historyBits_) | pattern);
}

bool
TwoLevelPredictor::predict(const trace::BranchRecord &branch)
{
    return counters_.predictTaken(counterIndex(branch.pc));
}

void
TwoLevelPredictor::update(const trace::BranchRecord &branch)
{
    counters_.update(counterIndex(branch.pc), branch.taken);
}

void
TwoLevelPredictor::observe(const trace::BranchRecord &record)
{
    if (!record.isConditional())
        return;
    if (scope_ == HistoryScope::Global) {
        histories_[0].push(record.taken);
    } else {
        const std::size_t slot = static_cast<std::size_t>(
            util::truncate(record.pc >> 2, bhtIndexBits_));
        histories_[slot].push(record.taken);
    }
}

std::string
TwoLevelPredictor::name() const
{
    return scope_ == HistoryScope::Global ? "GAs" : "PAs";
}

std::size_t
TwoLevelPredictor::sizeBytes() const
{
    // Count the second level only, consistent with the budget
    // accounting used for all predictors in this repository.
    return counters_.sizeBytes();
}

} // namespace pred
} // namespace vlp
