/**
 * @file
 * The Target History Buffer (THB) and the incremental hash-index bank —
 * the first-level history of the paper's path predictors (Sections 3.1
 * through 3.3 and 4.1).
 *
 * The THB records the k-bit-compressed executed destinations of the
 * most recent history-eligible branches (conditional and indirect; not
 * unconditional; returns optional and off by default, as in the paper's
 * experiments). For every path length X in 1..N, hash function HF_X
 * XORs the X most recent compressed targets, each target T_i rotated
 * left by i-1 bits as a k-bit number, producing index I_X.
 *
 * Evaluating HF_X from scratch needs X rotators and an XOR tree; the
 * paper's hardware solution (Section 4.1) keeps a "partial sum"
 * register per hash function and updates all of them with a single
 * rotate-by-one and XOR per inserted target:
 *
 *     I_X(new) = rotl(I_{X-1}(old), 1) XOR T_new
 *
 * PathIndexBank implements exactly this recurrence; directIndex()
 * recomputes an index from the buffered targets the slow way so tests
 * can prove the two always agree.
 */

#ifndef VLPSIM_CORE_PATH_HISTORY_H
#define VLPSIM_CORE_PATH_HISTORY_H

#include <cstdint>
#include <vector>

#include "trace/branch_record.h"

namespace vlp {
namespace core {

/** Maximum THB depth / number of hash functions (as in the paper). */
constexpr unsigned maxPathLength = 32;

/** Options controlling path-history construction. */
struct PathHistoryOptions
{
    /** THB depth N / number of hash functions implemented. */
    unsigned depth = maxPathLength;
    /**
     * Rotate T_i by i-1 bits before XORing (Section 3.3). Turning
     * this off loses the ordering information — an ablation knob.
     */
    bool rotateTargets = true;
    /** Also insert return targets (Section 3.2 ablation; paper: no). */
    bool includeReturns = false;
    /**
     * The paper's Section 6 extension idea (after Jacobson et al.):
     * snapshot the history on every subroutine call and restore it on
     * the matching return, so branches after a call see the same path
     * regardless of what the callee did. Off in the paper's
     * experiments; measured by bench_ablation.
     */
    bool historyStack = false;
    /** Snapshot stack depth when historyStack is on. */
    unsigned historyStackDepth = 64;
};

/**
 * THB plus the bank of N incrementally-maintained hash indices, all
 * compressed to @c indexBits() bits.
 */
class PathIndexBank
{
  public:
    /**
     * @param index_bits k: predictor-table index width the targets are
     *        compressed to
     * @param options    history construction options
     */
    explicit PathIndexBank(unsigned index_bits,
                           PathHistoryOptions options = {});

    /**
     * Compress a target address to k bits by discarding high-order
     * bits (after dropping the always-zero word-alignment bits).
     */
    std::uint64_t compress(std::uint64_t target) const;

    /**
     * Insert the destination of a retired branch if the paper's THB
     * policy admits it (conditional/indirect; optionally returns).
     */
    void observe(const trace::BranchRecord &record);

    /** Unconditionally insert a (pre-compression) target address. */
    void insert(std::uint64_t target);

    /**
     * Index produced by hash function HF_length.
     * @param length path length, 1..depth()
     */
    std::uint64_t index(unsigned length) const;

    /**
     * Reference recomputation of HF_length directly from the buffered
     * targets (rotate-and-XOR tree). Used by tests to validate the
     * incremental "partial sum" maintenance; O(length).
     */
    std::uint64_t directIndex(unsigned length) const;

    /** The i-th most recent compressed target, i in 1..depth(). */
    std::uint64_t target(unsigned i) const;

    /** Number of targets inserted so far (saturating at depth). */
    unsigned occupancy() const { return occupancy_; }

    /** Index width k in bits. */
    unsigned indexBits() const { return indexBits_; }

    /** THB depth N. */
    unsigned depth() const { return options_.depth; }

    /** History construction options. */
    const PathHistoryOptions &options() const { return options_; }

    /** Clear all history. */
    void clear();

    /**
     * Hardware cost of the first-level history: the THB (N targets of
     * k bits) plus the N partial-sum registers of k bits. Reported
     * separately from predictor-table budgets, as the paper does.
     */
    std::size_t historyBytes() const;

  private:
    /** One saved history snapshot (historyStack extension). */
    struct Snapshot
    {
        std::vector<std::uint64_t> thb;
        std::vector<std::uint64_t> indices;
        unsigned occupancy = 0;
    };

    unsigned indexBits_;
    PathHistoryOptions options_;
    /** thb_[0] is the most recent compressed target. */
    std::vector<std::uint64_t> thb_;
    /** indices_[x] holds I_{x+1}. */
    std::vector<std::uint64_t> indices_;
    unsigned occupancy_ = 0;
    /** Saved snapshots, newest last (historyStack extension). */
    std::vector<Snapshot> snapshots_;
};

} // namespace core
} // namespace vlp

#endif // VLPSIM_CORE_PATH_HISTORY_H
