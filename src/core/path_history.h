/**
 * @file
 * The Target History Buffer (THB) and the incremental hash-index bank —
 * the first-level history of the paper's path predictors (Sections 3.1
 * through 3.3 and 4.1).
 *
 * The THB records the k-bit-compressed executed destinations of the
 * most recent history-eligible branches (conditional and indirect; not
 * unconditional; returns optional and off by default, as in the paper's
 * experiments). For every path length X in 1..N, hash function HF_X
 * XORs the X most recent compressed targets, each target T_i rotated
 * left by i-1 bits as a k-bit number, producing index I_X.
 *
 * Evaluating HF_X from scratch needs X rotators and an XOR tree; the
 * paper's hardware solution (Section 4.1) keeps a "partial sum"
 * register per hash function and updates all of them with a single
 * rotate-by-one and XOR per inserted target:
 *
 *     I_X(new) = rotl(I_{X-1}(old), 1) XOR T_new
 *
 * PathIndexBank computes the same values with O(1) work per insert
 * instead of O(N): because rotation distributes over XOR, the single
 * running sum
 *
 *     S_t = rotl(S_{t-1}, 1) XOR T_t
 *
 * satisfies I_X(t) = S_t XOR rotl(S_{t-X}, X), so one register plus a
 * ring of the last N sums replaces the N-register update (the
 * hardware still pays N registers — historyBytes() is unchanged).
 * directIndex() recomputes an index from the buffered targets the
 * slow way so tests can prove the representations always agree.
 */

#ifndef VLPSIM_CORE_PATH_HISTORY_H
#define VLPSIM_CORE_PATH_HISTORY_H

#include <cassert>
#include <cstdint>
#include <vector>

#include "trace/branch_record.h"

namespace vlp {
namespace core {

/** Maximum THB depth / number of hash functions (as in the paper). */
constexpr unsigned maxPathLength = 32;

/** Options controlling path-history construction. */
struct PathHistoryOptions
{
    /** THB depth N / number of hash functions implemented. */
    unsigned depth = maxPathLength;
    /**
     * Rotate T_i by i-1 bits before XORing (Section 3.3). Turning
     * this off loses the ordering information — an ablation knob.
     */
    bool rotateTargets = true;
    /** Also insert return targets (Section 3.2 ablation; paper: no). */
    bool includeReturns = false;
    /**
     * The paper's Section 6 extension idea (after Jacobson et al.):
     * snapshot the history on every subroutine call and restore it on
     * the matching return, so branches after a call see the same path
     * regardless of what the callee did. Off in the paper's
     * experiments; measured by bench_ablation.
     */
    bool historyStack = false;
    /** Snapshot stack depth when historyStack is on. */
    unsigned historyStackDepth = 64;
};

/**
 * THB plus the bank of N incrementally-maintained hash indices, all
 * compressed to @c indexBits() bits.
 */
class PathIndexBank
{
  public:
    /**
     * @param index_bits k: predictor-table index width the targets are
     *        compressed to
     * @param options    history construction options
     */
    explicit PathIndexBank(unsigned index_bits,
                           PathHistoryOptions options = {});

    /**
     * Compress a target address to k bits by discarding high-order
     * bits (after dropping the always-zero word-alignment bits).
     */
    std::uint64_t compress(std::uint64_t target) const;

    /**
     * Insert the destination of a retired branch if the paper's THB
     * policy admits it (conditional/indirect; optionally returns).
     */
    void observe(const trace::BranchRecord &record);

    /** Unconditionally insert a (pre-compression) target address. */
    void insert(std::uint64_t target);

    /**
     * Index produced by hash function HF_length: the running path sum
     * XOR the rotated sum from @p length inserts ago (see the file
     * comment). Inline — this is the profiling kernel's hot read.
     * @param length path length, 1..depth()
     */
    std::uint64_t
    index(unsigned length) const
    {
        assert(length >= 1 && length <= options_.depth);
        // Sums are k-bit clean, so the rotate is two shifts and a
        // mask; a zero amount degenerates correctly (s >> k == 0).
        const std::uint64_t s = sums_[(head_ + length) & thbMask_];
        const unsigned amount = rotAmounts_[length - 1];
        return pathSum_
            ^ (((s << amount) | (s >> (indexBits_ - amount)))
               & indexMask_);
    }

    /**
     * Reference recomputation of HF_length directly from the buffered
     * targets (rotate-and-XOR tree). Used by tests to validate the
     * incremental running-sum maintenance; O(length).
     */
    std::uint64_t directIndex(unsigned length) const;

    /** The i-th most recent compressed target, i in 1..depth(). */
    std::uint64_t target(unsigned i) const;

    /** Number of targets inserted so far (saturating at depth). */
    unsigned occupancy() const { return occupancy_; }

    /** Index width k in bits. */
    unsigned indexBits() const { return indexBits_; }

    /** THB depth N. */
    unsigned depth() const { return options_.depth; }

    /** History construction options. */
    const PathHistoryOptions &options() const { return options_; }

    /**
     * Raw state snapshot for vectorized profiling kernels: everything
     * index() reads, as plain pointers and scalars. sums[(head + L) &
     * mask] rotated left by rotAmounts[L - 1] (as an indexBits-bit
     * value) XOR pathSum reproduces index(L) exactly. Take a fresh
     * view after every insert.
     */
    struct RawView
    {
        const std::uint64_t *sums;
        const unsigned *rotAmounts;
        std::uint64_t pathSum;
        std::uint64_t indexMask;
        unsigned head;
        unsigned mask;
        unsigned indexBits;
    };

    /** See RawView. */
    RawView
    rawView() const
    {
        return {sums_.data(), rotAmounts_.data(), pathSum_,
                indexMask_,   head_,              thbMask_, indexBits_};
    }

    /** Clear all history. */
    void clear();

    /**
     * Hardware cost of the first-level history: the THB (N targets of
     * k bits) plus the N partial-sum registers of k bits. Reported
     * separately from predictor-table budgets, as the paper does.
     */
    std::size_t historyBytes() const;

  private:
    /** One saved history snapshot (historyStack extension). */
    struct Snapshot
    {
        std::vector<std::uint64_t> thb;
        std::vector<std::uint64_t> sums;
        std::uint64_t pathSum = 0;
        unsigned head = 0;
        unsigned occupancy = 0;
    };

  public:
    /**
     * Value snapshot of the first-level history for speculative
     * checkpoint/repair (DESIGN.md §17): the THB and partial-sum
     * rings — O(depth) words, never a predictor-table copy — plus,
     * when the historyStack extension is on, the saved call
     * snapshots. Restoring a checkpoint is valid any number of
     * times, in any order.
     */
    struct HistoryCheckpoint
    {
        std::vector<std::uint64_t> thb;
        std::vector<std::uint64_t> sums;
        std::uint64_t pathSum = 0;
        unsigned head = 0;
        unsigned occupancy = 0;
        std::vector<Snapshot> callStack;
    };

    /** Snapshot the history state. */
    HistoryCheckpoint checkpoint() const;

    /**
     * Rewind to @p checkpoint (taken from this bank — the ring sizes
     * must match).
     */
    void restore(const HistoryCheckpoint &checkpoint);

  private:
    unsigned indexBits_;
    PathHistoryOptions options_;
    /**
     * The THB as a ring buffer: thb_[head_] is the most recent
     * compressed target and older targets follow at ascending
     * (masked) offsets. The capacity is depth + 1 rounded up to a
     * power of two so target() is a masked read, and insert() is a
     * single head decrement instead of an O(depth) shift.
     */
    std::vector<std::uint64_t> thb_;
    /** Capacity mask for thb_ and sums_ (capacity - 1). */
    unsigned thbMask_;
    /** Ring position of the most recent target. */
    unsigned head_ = 0;
    /** Running path sum S_t (k-bit clean). */
    std::uint64_t pathSum_ = 0;
    /** Past path sums, sharing head_: sums_[(head_ + X) & thbMask_]
     *  is S_{t-X} (the capacity leaves room for S_{t-depth}). */
    std::vector<std::uint64_t> sums_;
    /** rotAmounts_[X - 1] = X mod k, or 0 with rotateTargets off. */
    std::vector<unsigned> rotAmounts_;
    /** Mask of the low indexBits_ bits. */
    std::uint64_t indexMask_;
    unsigned occupancy_ = 0;
    /** Saved snapshots, newest last (historyStack extension). */
    std::vector<Snapshot> snapshots_;
};

} // namespace core
} // namespace vlp

#endif // VLPSIM_CORE_PATH_HISTORY_H
