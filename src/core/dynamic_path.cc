/**
 * @file
 * Hardware-selected VLP implementation.
 */

#include "core/dynamic_path.h"

#include <algorithm>

#include "util/bits.h"
#include "util/logging.h"

namespace vlp {
namespace core {

namespace {

void
validateCandidates(const std::vector<unsigned> &candidates,
                   unsigned depth)
{
    if (candidates.empty())
        util::fatal("dynamic path predictor needs candidates");
    for (unsigned length : candidates) {
        if (length < 1 || length > depth)
            util::fatal("candidate hash number out of range");
    }
}

} // anonymous namespace

DynamicPathConditionalPredictor::DynamicPathConditionalPredictor(
        unsigned index_bits, std::vector<unsigned> candidates,
        unsigned score_index_bits, unsigned score_bits)
    : bank_(index_bits),
      candidates_(std::move(candidates)),
      scoreIndexBits_(score_index_bits),
      table_(std::size_t{1} << index_bits, util::SaturatingCounter(2)),
      scores_((std::size_t{1} << score_index_bits)
                  * candidates_.size(),
              util::SaturatingCounter(score_bits))
{
    validateCandidates(candidates_, bank_.depth());
}

std::size_t
DynamicPathConditionalPredictor::scoreIndex(std::uint64_t pc) const
{
    return static_cast<std::size_t>(
               util::truncate(pc >> 2, scoreIndexBits_))
         * candidates_.size();
}

std::size_t
DynamicPathConditionalPredictor::selectedCandidate(
        std::uint64_t pc) const
{
    const std::size_t base = scoreIndex(pc);
    std::size_t best = 0;
    for (std::size_t c = 1; c < candidates_.size(); ++c) {
        if (scores_[base + c].value() > scores_[base + best].value())
            best = c;
    }
    return best;
}

bool
DynamicPathConditionalPredictor::predict(
        const trace::BranchRecord &branch)
{
    const unsigned length =
        candidates_[selectedCandidate(branch.pc)];
    return table_[bank_.index(length)].predictTaken();
}

void
DynamicPathConditionalPredictor::update(
        const trace::BranchRecord &branch)
{
    const std::size_t base = scoreIndex(branch.pc);
    const std::size_t selected = selectedCandidate(branch.pc);
    const bool selected_correct =
        table_[bank_.index(candidates_[selected])].predictTaken()
        == branch.taken;

    // Tournament scoring (the §3.4 accuracy-recording structures): a
    // challenger's score moves only when its correctness *differs*
    // from the selected candidate's, so branches every length handles
    // don't saturate all scores into indistinguishable ties. Every
    // candidate's table entry keeps training — otherwise its score
    // could never reveal it. This is the hardware trade the paper
    // describes: no profiling or ISA support, but extra table
    // pressure and score storage.
    for (std::size_t c = 0; c < candidates_.size(); ++c) {
        util::SaturatingCounter &counter =
            table_[bank_.index(candidates_[c])];
        const bool correct = counter.predictTaken() == branch.taken;
        if (correct != selected_correct)
            scores_[base + c].update(correct);
        counter.update(branch.taken);
    }
}

void
DynamicPathConditionalPredictor::observe(
        const trace::BranchRecord &record)
{
    bank_.observe(record);
}

std::size_t
DynamicPathConditionalPredictor::sizeBytes() const
{
    // The predictor table; the paper compares equal table budgets and
    // reports selector structures as overhead. Score storage is
    // scoreBytes() below... kept simple: counted here so honest
    // comparisons are possible.
    const std::size_t score_bits = scores_.size() * 4;
    return table_.size() / 4 + (score_bits + 7) / 8;
}

DynamicPathIndirectPredictor::DynamicPathIndirectPredictor(
        unsigned index_bits, std::vector<unsigned> candidates,
        unsigned score_index_bits, unsigned score_bits)
    : bank_(index_bits),
      candidates_(std::move(candidates)),
      scoreIndexBits_(score_index_bits),
      table_(std::size_t{1} << index_bits, 0),
      scores_((std::size_t{1} << score_index_bits)
                  * candidates_.size(),
              util::SaturatingCounter(score_bits))
{
    validateCandidates(candidates_, bank_.depth());
}

std::size_t
DynamicPathIndirectPredictor::scoreIndex(std::uint64_t pc) const
{
    return static_cast<std::size_t>(
               util::truncate(pc >> 2, scoreIndexBits_))
         * candidates_.size();
}

std::size_t
DynamicPathIndirectPredictor::selectedCandidate(std::uint64_t pc) const
{
    const std::size_t base = scoreIndex(pc);
    std::size_t best = 0;
    for (std::size_t c = 1; c < candidates_.size(); ++c) {
        if (scores_[base + c].value() > scores_[base + best].value())
            best = c;
    }
    return best;
}

std::uint64_t
DynamicPathIndirectPredictor::predict(const trace::BranchRecord &branch)
{
    const unsigned length =
        candidates_[selectedCandidate(branch.pc)];
    return pred::widenTarget(table_[bank_.index(length)], branch.pc);
}

void
DynamicPathIndirectPredictor::update(const trace::BranchRecord &branch)
{
    const std::size_t base = scoreIndex(branch.pc);
    const std::size_t selected = selectedCandidate(branch.pc);
    const bool selected_correct =
        pred::widenTarget(table_[bank_.index(candidates_[selected])],
                          branch.pc)
        == branch.nextPc;

    for (std::size_t c = 0; c < candidates_.size(); ++c) {
        std::uint32_t &entry = table_[bank_.index(candidates_[c])];
        const bool correct =
            pred::widenTarget(entry, branch.pc) == branch.nextPc;
        if (correct != selected_correct)
            scores_[base + c].update(correct);
        entry = static_cast<std::uint32_t>(branch.nextPc);
    }
}

void
DynamicPathIndirectPredictor::observe(const trace::BranchRecord &record)
{
    bank_.observe(record);
}

std::size_t
DynamicPathIndirectPredictor::sizeBytes() const
{
    const std::size_t score_bits = scores_.size() * 4;
    return table_.size() * sizeof(std::uint32_t)
         + (score_bits + 7) / 8;
}

} // namespace core
} // namespace vlp
