/**
 * @file
 * The Hash Function Number Table (HFNT) of Section 4.3.
 *
 * A variable length path prediction needs the branch's hash function
 * number before the branch is even decoded. The HFNT — a small table
 * indexed by low branch-address bits — predicts that number; when
 * decode later reveals the actual number (from the opcode) and it
 * differs, the branch must be re-predicted, costing a pipeline bubble
 * but not a misprediction.
 *
 * The HFNT affects timing, not accuracy, so the paper's misprediction
 * results don't involve it; we model it to quantify how often the
 * re-predict path would fire (bench_ablation).
 */

#ifndef VLPSIM_CORE_HFNT_H
#define VLPSIM_CORE_HFNT_H

#include <cstdint>
#include <utility>
#include <vector>

#include "util/stats.h"

namespace vlp {
namespace core {

/** Direct-mapped table of predicted hash function numbers. */
class HashFunctionNumberTable
{
  public:
    /** @param index_bits log2 of the number of entries (j) */
    explicit HashFunctionNumberTable(unsigned index_bits);

    /**
     * Predict the hash function number of the branch at @p pc.
     * Cold entries predict 1 (the shortest path).
     */
    unsigned predictNumber(std::uint64_t pc);

    /**
     * Record the actual number at retirement; counts a mismatch (a
     * re-predict event) if the prediction had been wrong.
     */
    void update(std::uint64_t pc, unsigned actual_number);

    /** Fraction of lookups whose predicted number was wrong, in %. */
    double mismatchRate() const;

    /** Total lookups performed. */
    std::uint64_t lookups() const { return lookups_; }

    /** Total mismatches (re-predict events). */
    std::uint64_t mismatches() const { return mismatches_; }

    /** Hardware cost: 5 bits per entry (numbers 1..32). */
    std::size_t sizeBytes() const;

    /** Index width j in bits. */
    unsigned indexBits() const { return indexBits_; }

    /** Raw table contents (serialization hook for the artifact
     *  store). */
    const std::vector<std::uint8_t> &rawTable() const { return table_; }

    /**
     * Adopt previously captured contents and counters (the inverse of
     * rawTable()/lookups()/mismatches()). Drops any outstanding
     * speculative checkpoints.
     * @throws std::runtime_error if the table size does not match
     *         this table's index width
     */
    void restore(std::vector<std::uint8_t> table, std::uint64_t lookups,
                 std::uint64_t mismatches);

    /**
     * Speculative checkpoint (DESIGN.md §17): a journal mark plus the
     * statistics counters. While any checkpoint is outstanding,
     * update() logs the old value of each overwritten entry, so
     * restoring costs O(writes since the checkpoint) — never a
     * full-table copy. Checkpoints are LIFO: release each one with
     * restore() or discard(), newest first.
     */
    struct Checkpoint
    {
        std::uint64_t lookups = 0;
        std::uint64_t mismatches = 0;
        std::size_t journalMark = 0;
    };

    /** Open a checkpoint and start journaling writes. */
    Checkpoint checkpoint();

    /** Unwind the journal back to @p checkpoint and release it. */
    void restore(const Checkpoint &checkpoint);

    /** Release @p checkpoint, keeping the writes made since. */
    void discard(const Checkpoint &checkpoint);

    /**
     * Model the table as @p banks independent single-ported banks
     * (bank = low entry-index bits) for the fetch-bundle front end.
     * Must be a power of two between 1 and the entry count; 1 (the
     * default) means an ideally multiported table — the front end
     * models conflicts only when banks > 1.
     */
    void setBanks(unsigned banks);

    /** Configured bank count. */
    unsigned banks() const { return banks_; }

    /** Bank serving the entry for @p pc. */
    unsigned
    bankOf(std::uint64_t pc) const
    {
        return static_cast<unsigned>(index(pc)) & (banks_ - 1);
    }

  private:
    std::size_t index(std::uint64_t pc) const;

    unsigned indexBits_;
    std::vector<std::uint8_t> table_;
    std::uint64_t lookups_ = 0;
    std::uint64_t mismatches_ = 0;
    unsigned banks_ = 1;
    /** Undo log: (entry index, value before the write), oldest
     *  first. Populated only while checkpoints are outstanding. */
    std::vector<std::pair<std::uint32_t, std::uint8_t>> journal_;
    /** Number of open checkpoints (LIFO). */
    unsigned outstanding_ = 0;
};

} // namespace core
} // namespace vlp

#endif // VLPSIM_CORE_HFNT_H
