/**
 * @file
 * HashAssignment implementation.
 */

#include "core/hash_assignment.h"

#include <cstdio>
#include <cinttypes>

#include "core/path_history.h"
#include "util/logging.h"

namespace vlp {
namespace core {

HashAssignment::HashAssignment(unsigned default_length)
    : defaultLength_(default_length)
{
    setDefaultLength(default_length);
}

unsigned
HashAssignment::lookup(std::uint64_t pc) const
{
    const auto it = table_.find(pc);
    return it == table_.end() ? defaultLength_ : it->second;
}

void
HashAssignment::assign(std::uint64_t pc, unsigned length)
{
    if (length < 1 || length > maxPathLength)
        util::fatal("hash function number out of range");
    table_[pc] = length;
}

bool
HashAssignment::contains(std::uint64_t pc) const
{
    return table_.find(pc) != table_.end();
}

void
HashAssignment::setDefaultLength(unsigned length)
{
    if (length < 1 || length > maxPathLength)
        util::fatal("default hash function number out of range");
    defaultLength_ = length;
}

util::Histogram
HashAssignment::lengthHistogram() const
{
    util::Histogram histogram(maxPathLength + 1);
    for (const auto &[pc, length] : table_) {
        (void)pc;
        histogram.add(length);
    }
    return histogram;
}

void
HashAssignment::save(const std::string &path) const
{
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr)
        util::fatal("cannot create assignment file: " + path);
    std::fprintf(file, "default %u\n", defaultLength_);
    for (const auto &[pc, length] : table_)
        std::fprintf(file, "%" PRIx64 " %u\n", pc, length);
    std::fclose(file);
}

HashAssignment
HashAssignment::load(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "r");
    if (file == nullptr)
        util::fatal("cannot open assignment file: " + path);

    unsigned default_length = 0;
    if (std::fscanf(file, "default %u\n", &default_length) != 1) {
        std::fclose(file);
        util::fatal("malformed assignment file header: " + path);
    }
    HashAssignment assignment(default_length);

    std::uint64_t pc = 0;
    unsigned length = 0;
    while (std::fscanf(file, "%" SCNx64 " %u\n", &pc, &length) == 2)
        assignment.assign(pc, length);
    std::fclose(file);
    return assignment;
}

} // namespace core
} // namespace vlp
