/**
 * @file
 * The paper's predictors: fixed length path (FLP) and variable length
 * path (VLP), for conditional and for indirect branches.
 *
 * Both share the same machinery — a PathIndexBank producing indices
 * I_1..I_N and one predictor table — and differ only in how the hash
 * function number is chosen per branch: a single global number for FLP
 * (the "default value" of Section 3.4), a profiled per-branch number
 * (a HashAssignment) for VLP.
 */

#ifndef VLPSIM_CORE_PATH_PREDICTOR_H
#define VLPSIM_CORE_PATH_PREDICTOR_H

#include <vector>

#include "core/hash_assignment.h"
#include "core/path_history.h"
#include "predictors/predictor.h"
#include "util/packed_counter_table.h"

namespace vlp {
namespace core {

/**
 * Path-based conditional branch predictor: the selected hash index
 * addresses a table of 2-bit saturating up/down counters.
 */
class PathConditionalPredictor : public pred::ConditionalPredictor
{
  public:
    /**
     * Fixed length path predictor: every branch uses @p fixed_length.
     */
    PathConditionalPredictor(unsigned index_bits, unsigned fixed_length,
                             PathHistoryOptions options = {});

    /**
     * Variable length path predictor: per-branch lengths from
     * @p assignment (profiled), default for unassigned branches.
     */
    PathConditionalPredictor(unsigned index_bits,
                             HashAssignment assignment,
                             PathHistoryOptions options = {});

    bool predict(const trace::BranchRecord &branch) override;

    void update(const trace::BranchRecord &branch) override;

    void observe(const trace::BranchRecord &record) override;

    /** Snapshot of the first-level history (THB + sum rings); the
     *  counter table is retirement state and is never captured. */
    pred::CheckpointPtr checkpoint() const override;

    /** Rewind the first-level history. */
    void restore(const pred::Checkpoint &checkpoint) override;

    /**
     * Model the counter table as @p banks independent single-ported
     * banks (bank = low table-index bits) for the fetch-bundle front
     * end. Power of two between 1 and the table size; 0 restores the
     * unbanked (ideally multiported) default.
     */
    void setBanks(unsigned banks);

    unsigned bankCount() const override { return banks_; }

    unsigned bankOf(const trace::BranchRecord &record) const override;

    std::string name() const override;

    std::size_t sizeBytes() const override;

    /** The hash-number assignment in force. */
    const HashAssignment &assignment() const { return assignment_; }

    /** The shared first-level history (exposed for tests/profiling). */
    const PathIndexBank &bank() const { return bank_; }

    /** First-level history hardware cost (reported separately). */
    std::size_t historyBytes() const { return bank_.historyBytes(); }

  private:
    std::size_t tableIndex(std::uint64_t pc) const;

    PathIndexBank bank_;
    HashAssignment assignment_;
    bool variable_;
    util::PackedCounterTable table_;
    unsigned banks_ = 0;
};

/**
 * Path-based indirect branch predictor: the selected hash index
 * addresses a table of target registers holding the 32 low-order bits
 * of the last target written (Section 3.1 and the footnote in 5.2.2).
 */
class PathIndirectPredictor : public pred::IndirectPredictor
{
  public:
    /** Fixed length path predictor for indirect branches. */
    PathIndirectPredictor(unsigned index_bits, unsigned fixed_length,
                          PathHistoryOptions options = {});

    /** Variable length path predictor for indirect branches. */
    PathIndirectPredictor(unsigned index_bits,
                          HashAssignment assignment,
                          PathHistoryOptions options = {});

    std::uint64_t predict(const trace::BranchRecord &branch) override;

    void update(const trace::BranchRecord &branch) override;

    void observe(const trace::BranchRecord &record) override;

    /** Snapshot of the first-level history (THB + sum rings); the
     *  target table is retirement state and is never captured. */
    pred::CheckpointPtr checkpoint() const override;

    /** Rewind the first-level history. */
    void restore(const pred::Checkpoint &checkpoint) override;

    /** See PathConditionalPredictor::setBanks(). */
    void setBanks(unsigned banks);

    unsigned bankCount() const override { return banks_; }

    unsigned bankOf(const trace::BranchRecord &record) const override;

    std::string name() const override;

    std::size_t sizeBytes() const override;

    /** The hash-number assignment in force. */
    const HashAssignment &assignment() const { return assignment_; }

    /** The shared first-level history (exposed for tests/profiling). */
    const PathIndexBank &bank() const { return bank_; }

    /** First-level history hardware cost (reported separately). */
    std::size_t historyBytes() const { return bank_.historyBytes(); }

  private:
    std::size_t tableIndex(std::uint64_t pc) const;

    PathIndexBank bank_;
    HashAssignment assignment_;
    bool variable_;
    std::vector<std::uint32_t> table_;
    unsigned banks_ = 0;
};

} // namespace core
} // namespace vlp

#endif // VLPSIM_CORE_PATH_PREDICTOR_H
