/**
 * @file
 * PathIndexBank implementation.
 */

#include "core/path_history.h"

#include <cassert>

#include "util/bits.h"
#include "util/logging.h"

namespace vlp {
namespace core {

PathIndexBank::PathIndexBank(unsigned index_bits,
                             PathHistoryOptions options)
    : indexBits_(index_bits), options_(options)
{
    if (index_bits < 1 || index_bits > 32)
        util::fatal("path index width must be 1..32 bits");
    if (options_.depth < 1 || options_.depth > maxPathLength)
        util::fatal("THB depth must be 1..32");
    thb_.assign(options_.depth, 0);
    indices_.assign(options_.depth, 0);
}

std::uint64_t
PathIndexBank::compress(std::uint64_t target) const
{
    // Drop the word-alignment bits, then the high-order bits
    // ("we compressed the target addresses by simply discarding the
    // higher order bits", Section 3.1).
    return util::truncate(target >> 2, indexBits_);
}

void
PathIndexBank::observe(const trace::BranchRecord &record)
{
    if (options_.historyStack) {
        if (record.isCall()) {
            // Save the caller's history; the indirect-call target (if
            // any) is inserted below, *after* the snapshot, so the
            // callee still sees which call site it came from.
            if (snapshots_.size() >= options_.historyStackDepth)
                snapshots_.erase(snapshots_.begin());
            snapshots_.push_back(
                Snapshot{thb_, indices_, occupancy_});
        } else if (record.isReturn() && !snapshots_.empty()) {
            Snapshot &saved = snapshots_.back();
            thb_ = std::move(saved.thb);
            indices_ = std::move(saved.indices);
            occupancy_ = saved.occupancy;
            snapshots_.pop_back();
            return;
        }
    }
    if (record.entersPathHistory(options_.includeReturns))
        insert(record.nextPc);
}

void
PathIndexBank::insert(std::uint64_t target)
{
    const std::uint64_t compressed = compress(target);

    // Update the partial-sum registers, longest first so each reads
    // its predecessor's pre-insertion value:
    //   I_X(new) = rotl(I_{X-1}(old), 1) XOR T_new.
    // Without rotation the ordering information is lost (ablation).
    for (unsigned x = options_.depth; x-- > 1;) {
        const std::uint64_t prev = indices_[x - 1];
        indices_[x] = options_.rotateTargets
            ? util::rotl(prev, 1, indexBits_) ^ compressed
            : prev ^ compressed;
    }
    indices_[0] = compressed;

    // Shift the THB itself.
    for (unsigned i = options_.depth; i-- > 1;)
        thb_[i] = thb_[i - 1];
    thb_[0] = compressed;

    if (occupancy_ < options_.depth)
        ++occupancy_;
}

std::uint64_t
PathIndexBank::index(unsigned length) const
{
    assert(length >= 1 && length <= options_.depth);
    return indices_[length - 1];
}

std::uint64_t
PathIndexBank::directIndex(unsigned length) const
{
    assert(length >= 1 && length <= options_.depth);
    std::uint64_t result = 0;
    for (unsigned i = 0; i < length; ++i) {
        result ^= options_.rotateTargets
            ? util::rotl(thb_[i], i, indexBits_)
            : thb_[i];
    }
    return result;
}

std::uint64_t
PathIndexBank::target(unsigned i) const
{
    assert(i >= 1 && i <= options_.depth);
    return thb_[i - 1];
}

void
PathIndexBank::clear()
{
    thb_.assign(options_.depth, 0);
    indices_.assign(options_.depth, 0);
    occupancy_ = 0;
    snapshots_.clear();
}

std::size_t
PathIndexBank::historyBytes() const
{
    // N k-bit targets plus N k-bit partial-sum registers.
    return (2 * options_.depth * indexBits_ + 7) / 8;
}

} // namespace core
} // namespace vlp
