/**
 * @file
 * PathIndexBank implementation.
 */

#include "core/path_history.h"

#include <bit>
#include <cassert>

#include "util/bits.h"
#include "util/logging.h"

namespace vlp {
namespace core {

PathIndexBank::PathIndexBank(unsigned index_bits,
                             PathHistoryOptions options)
    : indexBits_(index_bits), options_(options)
{
    if (index_bits < 1 || index_bits > 32)
        util::fatal("path index width must be 1..32 bits");
    if (options_.depth < 1 || options_.depth > maxPathLength)
        util::fatal("THB depth must be 1..32");
    // depth + 1 slots: the current sum plus the depth past sums the
    // index() reconstruction reaches back to.
    const unsigned capacity = std::bit_ceil(options_.depth + 1);
    thbMask_ = capacity - 1;
    thb_.assign(capacity, 0);
    sums_.assign(capacity, 0);
    indexMask_ = util::mask(indexBits_);
    rotAmounts_.resize(options_.depth);
    for (unsigned length = 1; length <= options_.depth; ++length)
        rotAmounts_[length - 1] =
            options_.rotateTargets ? length % indexBits_ : 0;
}

std::uint64_t
PathIndexBank::compress(std::uint64_t target) const
{
    // Drop the word-alignment bits, then the high-order bits
    // ("we compressed the target addresses by simply discarding the
    // higher order bits", Section 3.1).
    return util::truncate(target >> 2, indexBits_);
}

void
PathIndexBank::observe(const trace::BranchRecord &record)
{
    if (options_.historyStack) {
        if (record.isCall()) {
            // Save the caller's history; the indirect-call target (if
            // any) is inserted below, *after* the snapshot, so the
            // callee still sees which call site it came from.
            if (snapshots_.size() >= options_.historyStackDepth)
                snapshots_.erase(snapshots_.begin());
            snapshots_.push_back(
                Snapshot{thb_, sums_, pathSum_, head_, occupancy_});
        } else if (record.isReturn() && !snapshots_.empty()) {
            Snapshot &saved = snapshots_.back();
            thb_ = std::move(saved.thb);
            sums_ = std::move(saved.sums);
            pathSum_ = saved.pathSum;
            head_ = saved.head;
            occupancy_ = saved.occupancy;
            snapshots_.pop_back();
            return;
        }
    }
    if (record.entersPathHistory(options_.includeReturns))
        insert(record.nextPc);
}

void
PathIndexBank::insert(std::uint64_t target)
{
    const std::uint64_t compressed = compress(target);

    // One rotate-and-XOR maintains every hash function at once:
    //   S_t = rotl(S_{t-1}, 1) XOR T_t,
    //   I_X = S_t XOR rotl(S_{t-X}, X)     (see the header comment).
    // Without rotation the ordering information is lost (ablation).
    // The k=1 edge case degenerates correctly: (s << 1 | s) & 1 == s,
    // matching rotl(s, 1, 1) == s.
    if (options_.rotateTargets)
        pathSum_ = ((pathSum_ << 1) | (pathSum_ >> (indexBits_ - 1)))
                 & indexMask_;
    pathSum_ ^= compressed;

    // Ring-buffer insert: step the head back one slot instead of
    // shifting all depth entries.
    head_ = (head_ - 1) & thbMask_;
    thb_[head_] = compressed;
    sums_[head_] = pathSum_;

    if (occupancy_ < options_.depth)
        ++occupancy_;
}

std::uint64_t
PathIndexBank::directIndex(unsigned length) const
{
    assert(length >= 1 && length <= options_.depth);
    std::uint64_t result = 0;
    for (unsigned i = 0; i < length; ++i) {
        const std::uint64_t entry = thb_[(head_ + i) & thbMask_];
        result ^= options_.rotateTargets
            ? util::rotl(entry, i, indexBits_)
            : entry;
    }
    return result;
}

std::uint64_t
PathIndexBank::target(unsigned i) const
{
    assert(i >= 1 && i <= options_.depth);
    return thb_[(head_ + i - 1) & thbMask_];
}

PathIndexBank::HistoryCheckpoint
PathIndexBank::checkpoint() const
{
    return {thb_, sums_, pathSum_, head_, occupancy_, snapshots_};
}

void
PathIndexBank::restore(const HistoryCheckpoint &checkpoint)
{
    assert(checkpoint.thb.size() == thb_.size());
    assert(checkpoint.sums.size() == sums_.size());
    thb_ = checkpoint.thb;
    sums_ = checkpoint.sums;
    pathSum_ = checkpoint.pathSum;
    head_ = checkpoint.head;
    occupancy_ = checkpoint.occupancy;
    snapshots_ = checkpoint.callStack;
}

void
PathIndexBank::clear()
{
    thb_.assign(thb_.size(), 0);
    sums_.assign(sums_.size(), 0);
    pathSum_ = 0;
    head_ = 0;
    occupancy_ = 0;
    snapshots_.clear();
}

std::size_t
PathIndexBank::historyBytes() const
{
    // N k-bit targets plus N k-bit partial-sum registers.
    return (2 * options_.depth * indexBits_ + 7) / 8;
}

} // namespace core
} // namespace vlp
