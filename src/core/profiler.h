/**
 * @file
 * The paper's profiling heuristic (Section 3.5) and fixed-length
 * sweeps.
 *
 * Step 1 simulates N fixed length path predictors — one per hash
 * function, each with a private predictor table but all sharing one
 * THB — on the profile input, recording per static branch how many
 * times each predictor was correct. The top C (default 3) hash numbers
 * per branch become its candidates.
 *
 * Step 2 simulates one variable length path predictor (N hash
 * functions, one shared table) for a fixed number of iterations
 * (default 7). Each iteration selects, per branch, the candidate with
 * the fewest recorded mispredictions so far — untested candidates
 * count as zero so they are tried first — and then records the chosen
 * candidate's actual misprediction count. The final assignment takes,
 * per branch, the candidate with the fewest recorded mispredictions.
 * Step 2 exists to reduce the branch interference that appears when
 * all hash functions share one table.
 *
 * Branches not exercised during profiling get the default number: the
 * hash function with the highest overall accuracy on the profiled
 * branches. The same sweep machinery also yields the global fixed
 * length (Table 2) and the per-benchmark "tuned" fixed length of
 * Figures 9 and 10.
 */

#ifndef VLPSIM_CORE_PROFILER_H
#define VLPSIM_CORE_PROFILER_H

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/hash_assignment.h"
#include "core/path_history.h"
#include "trace/trace_source.h"

namespace vlp {
namespace core {

/**
 * Profiling parameters.
 *
 * Validated when a profiler is constructed: a zero or descending
 * length range (minLength == 0, or minLength > maxLength) is rejected
 * with an error instead of silently producing an empty sweep, and
 * indexBits must be 1..30 so the per-length tables stay allocatable.
 */
struct ProfileOptions
{
    /** Predictor-table index width k (1..30). */
    unsigned indexBits = 14;
    /** Shortest path length swept in step 1 (>= 1). */
    unsigned minLength = 1;
    /** Number of hash functions N (minLength..32). */
    unsigned maxLength = maxPathLength;
    /** Candidates kept per static branch after step 1. */
    unsigned candidates = 3;
    /** Step-2 iterations (must be >= 1; the paper uses 7). */
    unsigned iterations = 7;
    /**
     * Worker threads for the step-1 fixed-length sweep: the
     * [minLength, maxLength] range is sharded across this many
     * workers, each replaying the trace with its own PathIndexBank
     * and private tables (per-length results are independent, so the
     * merged output is bit-identical to a serial sweep). 1 runs the
     * sweep inline; 0 means one worker per hardware thread. Not part
     * of any cache key — it never changes results, only wall-clock.
     */
    unsigned jobs = 1;
    /** Path history construction options (depth is forced to
     *  maxLength). */
    PathHistoryOptions history = {};
};

/**
 * Result of simulating the fixed-length predictors for every path
 * length in [minLength, maxLength] over a trace.
 */
struct FixedLengthSweep
{
    /** mispredictions[L-1]: total mispredictions at path length L.
     *  Entries below minLength were not simulated and stay zero. */
    std::vector<std::uint64_t> mispredictions;
    /** Dynamic branches of the profiled class seen. */
    std::uint64_t branches = 0;
    /** First path length actually swept. */
    unsigned minLength = 1;

    /** Misprediction rate (%) at path length @p length (must be in
     *  [minLength, mispredictions.size()]). */
    double rate(unsigned length) const;

    /** Swept path length with the fewest mispredictions (ties:
     *  shortest). */
    unsigned bestLength() const;
};

/** Per-static-branch step-1 profile record. */
struct BranchProfile
{
    /** Counter ceiling: counts stick here instead of wrapping. */
    static constexpr std::uint32_t saturated = ~std::uint32_t{0};

    /** correct[L-1]: correct predictions at path length L. */
    std::array<std::uint32_t, maxPathLength> correct{};
    /** Dynamic executions seen while profiling (saturating). */
    std::uint32_t executions = 0;

    /**
     * Count one execution, saturating at the ceiling so very long
     * profile traces cannot wrap the counter and scramble candidate
     * ranking.
     */
    void
    addExecution()
    {
        executions += executions != saturated;
    }

    /** Count one correct prediction at path length @p length,
     *  saturating. */
    void
    addCorrect(unsigned length)
    {
        std::uint32_t &count = correct[length - 1];
        count += count != saturated;
    }
};

/**
 * Profiles conditional branches and produces a HashAssignment.
 */
class ConditionalProfiler
{
  public:
    explicit ConditionalProfiler(ProfileOptions options);

    /**
     * Step 1: simulate the N fixed-length predictors, populating the
     * per-branch records and the aggregate sweep (also retrievable
     * later via step1Sweep()). With options().jobs != 1 the length
     * range is sharded across a thread pool; the result is
     * bit-identical to a serial run.
     */
    const FixedLengthSweep &runStep1(trace::TraceSource &profile_trace);

    /**
     * Step 2: iterate candidate selection. Requires runStep1() first.
     * @return the final per-branch assignment
     */
    HashAssignment runStep2(trace::TraceSource &profile_trace);

    /**
     * Run both steps over @p profile_trace (reset before each pass)
     * and return the per-branch hash-number assignment.
     */
    HashAssignment profile(trace::TraceSource &profile_trace);

    /** Aggregate sweep from the last runStep1(). */
    const FixedLengthSweep &step1Sweep() const { return sweep_; }

    /** Per-branch step-1 records from the last runStep1(). */
    const std::unordered_map<std::uint64_t, BranchProfile> &
    branchProfiles() const
    {
        return profiles_;
    }

    /**
     * Adopt step-1 results computed earlier (e.g. loaded from the
     * artifact store) instead of running runStep1(). The sweep must
     * match this profiler's configured length range.
     */
    void restoreStep1(
        FixedLengthSweep sweep,
        std::unordered_map<std::uint64_t, BranchProfile> profiles);

    /** The options this profiler was constructed with. */
    const ProfileOptions &options() const { return options_; }

  private:
    ProfileOptions options_;
    std::unordered_map<std::uint64_t, BranchProfile> profiles_;
    FixedLengthSweep sweep_;
    bool step1Done_ = false;
};

/**
 * Profiles indirect branches (jumps and calls; returns excluded) and
 * produces a HashAssignment.
 */
class IndirectProfiler
{
  public:
    explicit IndirectProfiler(ProfileOptions options);

    /** Step 1: simulate the N fixed-length predictors. */
    const FixedLengthSweep &runStep1(trace::TraceSource &profile_trace);

    /** Step 2: iterate candidate selection (requires runStep1()). */
    HashAssignment runStep2(trace::TraceSource &profile_trace);

    /** Run both steps and return the assignment. */
    HashAssignment profile(trace::TraceSource &profile_trace);

    /** Aggregate sweep from the last runStep1(). */
    const FixedLengthSweep &step1Sweep() const { return sweep_; }

    /** Per-branch step-1 records from the last runStep1(). */
    const std::unordered_map<std::uint64_t, BranchProfile> &
    branchProfiles() const
    {
        return profiles_;
    }

    /** Adopt step-1 results computed earlier (see
     *  ConditionalProfiler::restoreStep1()). */
    void restoreStep1(
        FixedLengthSweep sweep,
        std::unordered_map<std::uint64_t, BranchProfile> profiles);

    /** The options this profiler was constructed with. */
    const ProfileOptions &options() const { return options_; }

  private:
    ProfileOptions options_;
    std::unordered_map<std::uint64_t, BranchProfile> profiles_;
    FixedLengthSweep sweep_;
    bool step1Done_ = false;
};

/**
 * Shared by both profilers: turn step-1 per-branch records into
 * candidate lists, run step 2 with the given simulation callback, and
 * assemble the final assignment.
 *
 * Exposed for white-box testing; regular users call
 * ConditionalProfiler::profile() / IndirectProfiler::profile().
 */
class CandidateSelector
{
  public:
    /**
     * @param profiles   step-1 per-branch records
     * @param sweep      step-1 aggregate (defines the default length)
     * @param candidates candidates kept per branch
     * @param max_length number of hash functions N
     */
    CandidateSelector(
        const std::unordered_map<std::uint64_t, BranchProfile> &profiles,
        const FixedLengthSweep &sweep, unsigned candidates,
        unsigned max_length);

    /**
     * The assignment to test in the next step-2 iteration: per branch
     * the candidate with the fewest recorded mispredictions, untested
     * candidates first.
     */
    HashAssignment nextAssignment() const;

    /**
     * Record the result of testing @p tested: per-branch misprediction
     * counts observed with that assignment.
     */
    void recordResults(
        const HashAssignment &tested,
        const std::unordered_map<std::uint64_t, std::uint64_t>
            &mispredictions);

    /** Final assignment after all iterations. */
    HashAssignment finalAssignment() const;

    /** Default (global best) hash number. */
    unsigned defaultLength() const { return defaultLength_; }

  private:
    static constexpr std::uint64_t untested =
        ~std::uint64_t{0};

    struct Entry
    {
        /** Candidate hash numbers, best step-1 accuracy first. */
        std::vector<unsigned> lengths;
        /** Recorded mispredictions per candidate (untested marker). */
        std::vector<std::uint64_t> recorded;
    };

    /** Index of the candidate nextAssignment() picks for @p entry. */
    std::size_t chooseCandidate(const Entry &entry) const;

    std::unordered_map<std::uint64_t, Entry> entries_;
    unsigned defaultLength_;
};

} // namespace core
} // namespace vlp

#endif // VLPSIM_CORE_PROFILER_H
