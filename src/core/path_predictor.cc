/**
 * @file
 * FLP/VLP predictor implementations.
 */

#include "core/path_predictor.h"

namespace vlp {
namespace core {

PathConditionalPredictor::PathConditionalPredictor(
        unsigned index_bits, unsigned fixed_length,
        PathHistoryOptions options)
    : bank_(index_bits, options),
      assignment_(fixed_length),
      variable_(false),
      table_(std::size_t{1} << index_bits, 2)
{
}

PathConditionalPredictor::PathConditionalPredictor(
        unsigned index_bits, HashAssignment assignment,
        PathHistoryOptions options)
    : bank_(index_bits, options),
      assignment_(std::move(assignment)),
      variable_(true),
      table_(std::size_t{1} << index_bits, 2)
{
}

std::size_t
PathConditionalPredictor::tableIndex(std::uint64_t pc) const
{
    unsigned length = assignment_.lookup(pc);
    if (length > bank_.depth())
        length = bank_.depth();
    return static_cast<std::size_t>(bank_.index(length));
}

bool
PathConditionalPredictor::predict(const trace::BranchRecord &branch)
{
    return table_.predictTaken(tableIndex(branch.pc));
}

void
PathConditionalPredictor::update(const trace::BranchRecord &branch)
{
    table_.update(tableIndex(branch.pc), branch.taken);
}

void
PathConditionalPredictor::observe(const trace::BranchRecord &record)
{
    bank_.observe(record);
}

std::string
PathConditionalPredictor::name() const
{
    return variable_ ? "variable length path" : "fixed length path";
}

std::size_t
PathConditionalPredictor::sizeBytes() const
{
    return table_.sizeBytes();
}

PathIndirectPredictor::PathIndirectPredictor(unsigned index_bits,
                                             unsigned fixed_length,
                                             PathHistoryOptions options)
    : bank_(index_bits, options),
      assignment_(fixed_length),
      variable_(false),
      table_(std::size_t{1} << index_bits, 0)
{
}

PathIndirectPredictor::PathIndirectPredictor(unsigned index_bits,
                                             HashAssignment assignment,
                                             PathHistoryOptions options)
    : bank_(index_bits, options),
      assignment_(std::move(assignment)),
      variable_(true),
      table_(std::size_t{1} << index_bits, 0)
{
}

std::size_t
PathIndirectPredictor::tableIndex(std::uint64_t pc) const
{
    unsigned length = assignment_.lookup(pc);
    if (length > bank_.depth())
        length = bank_.depth();
    return static_cast<std::size_t>(bank_.index(length));
}

std::uint64_t
PathIndirectPredictor::predict(const trace::BranchRecord &branch)
{
    return pred::widenTarget(table_[tableIndex(branch.pc)], branch.pc);
}

void
PathIndirectPredictor::update(const trace::BranchRecord &branch)
{
    table_[tableIndex(branch.pc)] =
        static_cast<std::uint32_t>(branch.nextPc);
}

void
PathIndirectPredictor::observe(const trace::BranchRecord &record)
{
    bank_.observe(record);
}

std::string
PathIndirectPredictor::name() const
{
    return variable_ ? "variable length path" : "fixed length path";
}

std::size_t
PathIndirectPredictor::sizeBytes() const
{
    return table_.size() * sizeof(std::uint32_t);
}

} // namespace core
} // namespace vlp
