/**
 * @file
 * FLP/VLP predictor implementations.
 */

#include "core/path_predictor.h"

#include <memory>

#include "util/logging.h"

namespace vlp {
namespace core {

namespace {

/** Shared checkpoint type: the first-level history snapshot. */
struct PathCheckpoint final : pred::Checkpoint
{
    PathIndexBank::HistoryCheckpoint history;
};

/** Validate a bank count against a table of @p table_size entries. */
void
validateBanks(unsigned banks, std::size_t table_size)
{
    if (banks != 0
        && ((banks & (banks - 1)) != 0 || banks > table_size))
        util::fatal("predictor bank count must be 0 or a power of two "
                    "no larger than the table size");
}

} // anonymous namespace

PathConditionalPredictor::PathConditionalPredictor(
        unsigned index_bits, unsigned fixed_length,
        PathHistoryOptions options)
    : bank_(index_bits, options),
      assignment_(fixed_length),
      variable_(false),
      table_(std::size_t{1} << index_bits, 2)
{
}

PathConditionalPredictor::PathConditionalPredictor(
        unsigned index_bits, HashAssignment assignment,
        PathHistoryOptions options)
    : bank_(index_bits, options),
      assignment_(std::move(assignment)),
      variable_(true),
      table_(std::size_t{1} << index_bits, 2)
{
}

std::size_t
PathConditionalPredictor::tableIndex(std::uint64_t pc) const
{
    unsigned length = assignment_.lookup(pc);
    if (length > bank_.depth())
        length = bank_.depth();
    return static_cast<std::size_t>(bank_.index(length));
}

bool
PathConditionalPredictor::predict(const trace::BranchRecord &branch)
{
    return table_.predictTaken(tableIndex(branch.pc));
}

void
PathConditionalPredictor::update(const trace::BranchRecord &branch)
{
    table_.update(tableIndex(branch.pc), branch.taken);
}

void
PathConditionalPredictor::observe(const trace::BranchRecord &record)
{
    bank_.observe(record);
}

pred::CheckpointPtr
PathConditionalPredictor::checkpoint() const
{
    auto snapshot = std::make_unique<PathCheckpoint>();
    snapshot->history = bank_.checkpoint();
    return snapshot;
}

void
PathConditionalPredictor::restore(const pred::Checkpoint &checkpoint)
{
    bank_.restore(
        dynamic_cast<const PathCheckpoint &>(checkpoint).history);
}

void
PathConditionalPredictor::setBanks(unsigned banks)
{
    validateBanks(banks, table_.size());
    banks_ = banks;
}

unsigned
PathConditionalPredictor::bankOf(const trace::BranchRecord &record) const
{
    return banks_ == 0
        ? 0
        : static_cast<unsigned>(tableIndex(record.pc)) & (banks_ - 1);
}

std::string
PathConditionalPredictor::name() const
{
    return variable_ ? "variable length path" : "fixed length path";
}

std::size_t
PathConditionalPredictor::sizeBytes() const
{
    return table_.sizeBytes();
}

PathIndirectPredictor::PathIndirectPredictor(unsigned index_bits,
                                             unsigned fixed_length,
                                             PathHistoryOptions options)
    : bank_(index_bits, options),
      assignment_(fixed_length),
      variable_(false),
      table_(std::size_t{1} << index_bits, 0)
{
}

PathIndirectPredictor::PathIndirectPredictor(unsigned index_bits,
                                             HashAssignment assignment,
                                             PathHistoryOptions options)
    : bank_(index_bits, options),
      assignment_(std::move(assignment)),
      variable_(true),
      table_(std::size_t{1} << index_bits, 0)
{
}

std::size_t
PathIndirectPredictor::tableIndex(std::uint64_t pc) const
{
    unsigned length = assignment_.lookup(pc);
    if (length > bank_.depth())
        length = bank_.depth();
    return static_cast<std::size_t>(bank_.index(length));
}

std::uint64_t
PathIndirectPredictor::predict(const trace::BranchRecord &branch)
{
    return pred::widenTarget(table_[tableIndex(branch.pc)], branch.pc);
}

void
PathIndirectPredictor::update(const trace::BranchRecord &branch)
{
    table_[tableIndex(branch.pc)] =
        static_cast<std::uint32_t>(branch.nextPc);
}

void
PathIndirectPredictor::observe(const trace::BranchRecord &record)
{
    bank_.observe(record);
}

pred::CheckpointPtr
PathIndirectPredictor::checkpoint() const
{
    auto snapshot = std::make_unique<PathCheckpoint>();
    snapshot->history = bank_.checkpoint();
    return snapshot;
}

void
PathIndirectPredictor::restore(const pred::Checkpoint &checkpoint)
{
    bank_.restore(
        dynamic_cast<const PathCheckpoint &>(checkpoint).history);
}

void
PathIndirectPredictor::setBanks(unsigned banks)
{
    validateBanks(banks, table_.size());
    banks_ = banks;
}

unsigned
PathIndirectPredictor::bankOf(const trace::BranchRecord &record) const
{
    return banks_ == 0
        ? 0
        : static_cast<unsigned>(tableIndex(record.pc)) & (banks_ - 1);
}

std::string
PathIndirectPredictor::name() const
{
    return variable_ ? "variable length path" : "fixed length path";
}

std::size_t
PathIndirectPredictor::sizeBytes() const
{
    return table_.size() * sizeof(std::uint32_t);
}

} // namespace core
} // namespace vlp
