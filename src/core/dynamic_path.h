/**
 * @file
 * Hardware-selected variable length path prediction — the paper's
 * Section 3.4 alternative to profiling: "storage structures are added
 * to the branch predictor that record how accurately the hash
 * functions have predicted each past branch... the hardware uses the
 * information to dynamically select the hash function that has
 * provided the highest accuracy in the past."
 *
 * The paper only evaluates the profiled selector; this implementation
 * lets the repository measure the trade the paper describes
 * qualitatively: dynamic selection needs no ISA or profiling support
 * but spends die area on score tables and trains more slowly.
 *
 * Organization: a per-branch-set score table (indexed by low PC bits)
 * holds one small saturating score per candidate hash function.
 * Predictions use the candidate with the highest score; at update,
 * every candidate's would-be prediction is scored against the outcome,
 * and only the selected candidate's predictor-table entry is trained
 * (limiting cross-length table pollution).
 */

#ifndef VLPSIM_CORE_DYNAMIC_PATH_H
#define VLPSIM_CORE_DYNAMIC_PATH_H

#include <vector>

#include "core/path_history.h"
#include "predictors/predictor.h"
#include "util/saturating_counter.h"

namespace vlp {
namespace core {

/** Conditional VLP with hardware (score-table) length selection. */
class DynamicPathConditionalPredictor
    : public pred::ConditionalPredictor
{
  public:
    /**
     * @param index_bits       log2 of the counter-table size
     * @param candidates       hash function numbers the hardware
     *        implements and scores (default {1,2,4,8,16,32}, the
     *        subset Section 3.1 suggests)
     * @param score_index_bits log2 of the score-table size
     * @param score_bits       width of each score counter
     */
    explicit DynamicPathConditionalPredictor(
        unsigned index_bits,
        std::vector<unsigned> candidates = {1, 2, 4, 8, 16, 32},
        unsigned score_index_bits = 10, unsigned score_bits = 4);

    bool predict(const trace::BranchRecord &branch) override;

    void update(const trace::BranchRecord &branch) override;

    void observe(const trace::BranchRecord &record) override;

    std::string name() const override
    {
        return "dynamic variable length path";
    }

    std::size_t sizeBytes() const override;

    /** Selected candidate index for @p pc (for tests). */
    std::size_t selectedCandidate(std::uint64_t pc) const;

    /** Candidate hash function numbers. */
    const std::vector<unsigned> &candidates() const
    {
        return candidates_;
    }

  private:
    std::size_t scoreIndex(std::uint64_t pc) const;

    PathIndexBank bank_;
    std::vector<unsigned> candidates_;
    unsigned scoreIndexBits_;
    std::vector<util::SaturatingCounter> table_;
    /** scores_[slot * candidates + c]: accuracy score of candidate
     *  c for branch set slot. */
    std::vector<util::SaturatingCounter> scores_;
};

/** Indirect VLP with hardware (score-table) length selection. */
class DynamicPathIndirectPredictor : public pred::IndirectPredictor
{
  public:
    /** @copydoc DynamicPathConditionalPredictor */
    explicit DynamicPathIndirectPredictor(
        unsigned index_bits,
        std::vector<unsigned> candidates = {1, 2, 4, 8, 16, 32},
        unsigned score_index_bits = 8, unsigned score_bits = 4);

    std::uint64_t predict(const trace::BranchRecord &branch) override;

    void update(const trace::BranchRecord &branch) override;

    void observe(const trace::BranchRecord &record) override;

    std::string name() const override
    {
        return "dynamic variable length path";
    }

    std::size_t sizeBytes() const override;

    /** Selected candidate index for @p pc (for tests). */
    std::size_t selectedCandidate(std::uint64_t pc) const;

  private:
    std::size_t scoreIndex(std::uint64_t pc) const;

    PathIndexBank bank_;
    std::vector<unsigned> candidates_;
    unsigned scoreIndexBits_;
    std::vector<std::uint32_t> table_;
    std::vector<util::SaturatingCounter> scores_;
};

} // namespace core
} // namespace vlp

#endif // VLPSIM_CORE_DYNAMIC_PATH_H
