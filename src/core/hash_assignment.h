/**
 * @file
 * Per-static-branch hash function numbers: the product of the paper's
 * profiling step, conceptually carried in the branch opcodes (Section
 * 4.2) and consumed by the variable length path predictor.
 */

#ifndef VLPSIM_CORE_HASH_ASSIGNMENT_H
#define VLPSIM_CORE_HASH_ASSIGNMENT_H

#include <cstdint>
#include <string>
#include <unordered_map>

#include "util/stats.h"

namespace vlp {
namespace core {

/**
 * Map from branch address to selected hash function number (the path
 * length used to predict that branch). Branches not present — those
 * not exercised during profiling, or all branches when profiling is
 * deemed too expensive — use the default number (Section 3.4).
 */
class HashAssignment
{
  public:
    /** @param default_length hash number for unassigned branches */
    explicit HashAssignment(unsigned default_length = 1);

    /** Selected hash number for the branch at @p pc. */
    unsigned lookup(std::uint64_t pc) const;

    /** Assign hash number @p length to the branch at @p pc. */
    void assign(std::uint64_t pc, unsigned length);

    /** True if @p pc has an explicit assignment. */
    bool contains(std::uint64_t pc) const;

    /** Hash number used for unassigned branches. */
    unsigned defaultLength() const { return defaultLength_; }

    /** Set the default hash number. */
    void setDefaultLength(unsigned length);

    /** Number of explicit per-branch assignments. */
    std::size_t size() const { return table_.size(); }

    /** Histogram of assigned lengths (bucket = length; 33 buckets). */
    util::Histogram lengthHistogram() const;

    /**
     * Write to a text file: first line the default, then one
     * "pc length" pair (hex pc) per line.
     * @throws std::runtime_error on I/O failure
     */
    void save(const std::string &path) const;

    /**
     * Read an assignment previously written by save().
     * @throws std::runtime_error on I/O or format errors
     */
    static HashAssignment load(const std::string &path);

    /** Access to all assignments (pc -> length). */
    const std::unordered_map<std::uint64_t, unsigned> &
    table() const
    {
        return table_;
    }

  private:
    unsigned defaultLength_;
    std::unordered_map<std::uint64_t, unsigned> table_;
};

} // namespace core
} // namespace vlp

#endif // VLPSIM_CORE_HASH_ASSIGNMENT_H
