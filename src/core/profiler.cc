/**
 * @file
 * Profiling heuristic implementation.
 */

#include "core/profiler.h"

#include <algorithm>
#include <cassert>
#include <exception>
#include <mutex>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

#include "core/path_predictor.h"
#include "predictors/predictor.h"
#include "util/logging.h"
#include "util/packed_counter_table.h"
#include "util/thread_pool.h"

namespace vlp {
namespace core {

double
FixedLengthSweep::rate(unsigned length) const
{
    assert(length >= minLength && length <= mispredictions.size());
    if (branches == 0)
        return 0.0;
    return 100.0 * static_cast<double>(mispredictions[length - 1])
         / static_cast<double>(branches);
}

unsigned
FixedLengthSweep::bestLength() const
{
    assert(minLength >= 1 && minLength <= mispredictions.size());
    unsigned best = minLength;
    for (unsigned length = minLength + 1;
         length <= mispredictions.size(); ++length) {
        if (mispredictions[length - 1] < mispredictions[best - 1])
            best = length;
    }
    return best;
}

namespace {

void
validateOptions(const ProfileOptions &options)
{
    if (options.indexBits < 1 || options.indexBits > 30)
        util::fatal("profile indexBits must be 1..30");
    if (options.minLength < 1)
        util::fatal("profile length range must not start at zero");
    if (options.maxLength > maxPathLength)
        util::fatal("profile maxLength must be 1..32");
    if (options.minLength > options.maxLength) {
        util::fatal("profile length range is descending (minLength "
                    + std::to_string(options.minLength)
                    + " > maxLength "
                    + std::to_string(options.maxLength)
                    + "); it would produce an empty sweep");
    }
    if (options.candidates < 1)
        util::fatal("profile candidate count must be >= 1");
    if (options.iterations < 1)
        util::fatal("profile iteration count must be >= 1");
}

PathHistoryOptions
historyFor(const ProfileOptions &options)
{
    PathHistoryOptions history = options.history;
    history.depth = options.maxLength;
    return history;
}

/*
 * ---- Sharded step-1 kernel ------------------------------------------
 *
 * Step 1 simulates one private fixed-length predictor per path length.
 * The lengths are completely independent: length L's table is touched
 * only by hash index I_L, and I_L is a pure function of the trace
 * prefix (the partial-sum recurrence I_X = rotl(I_{X-1}, 1) ^ T only
 * ever reads shorter lengths, so a PathIndexBank of depth D produces
 * the same I_L for every L <= D regardless of D). Sharding the
 * [minLength, maxLength] range therefore yields integer counts
 * bit-identical to a serial sweep: each worker replays the trace with
 * its own bank (depth = its highest length) and its own packed
 * counter bank, and the per-length results are merged in length
 * order.
 *
 * The leader shard (the one holding minLength) also owns the
 * length-independent counts — per-branch executions and the sweep's
 * dynamic branch total — and builds the per-branch map in trace
 * order, so the merged profiles_ has exactly the insertion order the
 * serial code produces.
 */

/** One contiguous range of path lengths, inclusive. */
struct LengthShard
{
    unsigned lo;
    unsigned hi;
};

/** Split [min_length, max_length] into at most @p jobs even shards. */
std::vector<LengthShard>
makeLengthShards(unsigned min_length, unsigned max_length, unsigned jobs)
{
    const unsigned effective = jobs == 0
        ? util::ThreadPool::defaultThreadCount()
        : jobs;
    const unsigned count = max_length - min_length + 1;
    const unsigned shards = std::min(std::max(effective, 1u), count);
    std::vector<LengthShard> result;
    result.reserve(shards);
    unsigned next = min_length;
    for (unsigned shard = 0; shard < shards; ++shard) {
        const unsigned width =
            count / shards + (shard < count % shards ? 1 : 0);
        result.push_back({next, next + width - 1});
        next += width;
    }
    return result;
}

/** One shard's private output, merged on the controlling thread. */
struct ShardResult
{
    /** mispredictions[L - lo]: total mispredictions at length L. */
    std::vector<std::uint64_t> mispredictions;
    /**
     * Per-branch records with correct[] filled for this shard's
     * lengths only; the leader also fills executions.
     */
    std::unordered_map<std::uint64_t, BranchProfile> profiles;
    /** Dynamic profiled branches (leader shard only). */
    std::uint64_t branches = 0;
};

/**
 * Step-1 table bank for conditional branches: every shard length's
 * 2-bit-counter table, packed back to back in one PackedCounterTable
 * (4 KiB per 14-bit table, so even the full 32-length bank stays
 * L2-resident).
 *
 * accessAll() predicts, updates, and tallies every shard length for
 * one dynamic branch. On x86-64 hosts with AVX-512 it runs a
 * gather/scatter kernel eight lengths at a time — each length's
 * counter lives in its own table segment, so the lanes never alias —
 * with arithmetic identical to the scalar loop (results stay
 * bit-identical; the dispatch is per process capability, not per
 * run).
 */
class ConditionalStep1Tables
{
  public:
    ConditionalStep1Tables(unsigned index_bits, unsigned lengths)
        : indexBits_(index_bits),
          table_(std::size_t{lengths} << index_bits, 2)
    {
#if defined(__x86_64__) && defined(__GNUC__)
        simd_ = __builtin_cpu_supports("avx512f")
             && __builtin_cpu_supports("avx512vl")
             && __builtin_cpu_supports("avx512dq")
             && __builtin_cpu_supports("avx512bw");
#endif
    }

    static bool
    profiled(const trace::BranchRecord &record)
    {
        return record.isConditional();
    }

    /**
     * Predict/update lengths lo..lo+lengths-1 (table slots 0..) for
     * one branch, reading the hash indices straight out of @p bank:
     * hits bump the (saturating) correct[s], misses bump misses[s].
     */
    void
    accessAll(const PathIndexBank &bank, unsigned lo, unsigned lengths,
              const trace::BranchRecord &record, std::uint32_t *correct,
              std::uint64_t *misses)
    {
#if defined(__x86_64__) && defined(__GNUC__)
        if (simd_) {
            accessAllAvx512(bank.rawView(), lo, lengths, record.taken,
                            correct, misses);
            return;
        }
#endif
        const bool taken = record.taken;
        for (unsigned slot = 0; slot < lengths; ++slot) {
            const std::size_t entry =
                (std::size_t{slot} << indexBits_)
                | static_cast<std::size_t>(bank.index(lo + slot));
            const bool hit =
                table_.predictThenUpdate(entry, taken) == taken;
            correct[slot] += static_cast<std::uint32_t>(
                hit & (correct[slot] != BranchProfile::saturated));
            misses[slot] += !hit;
        }
    }

  private:
#if defined(__x86_64__) && defined(__GNUC__)
    /**
     * The scalar loop above, eight 64-bit lanes at a time, with the
     * index reconstruction (ring read, rotate, XOR with the running
     * sum) fused in so no per-record staging buffer is needed. Slot
     * width is 2 bits, so a word holds 32 counters (entry >> 5
     * selects the word, (entry & 31) * 2 the bit position) —
     * mirroring PackedCounterTable's layout for bits == 2.
     */
    __attribute__((target("avx512f,avx512vl,avx512dq,avx512bw")))
    void
    accessAllAvx512(const PathIndexBank::RawView view, unsigned lo,
                    unsigned lengths, bool taken,
                    std::uint32_t *correct, std::uint64_t *misses)
    {
        std::uint64_t *words = table_.wordData();
        const __m512i one = _mm512_set1_epi64(1);
        const __m512i two = _mm512_set1_epi64(2);
        const __m512i three = _mm512_set1_epi64(3);
        const __m512i in_word = _mm512_set1_epi64(31);
        const __m512i lane = _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0);
        const __m128i index_bits = _mm_cvtsi32_si128(
            static_cast<int>(indexBits_));
        const __m256i saturated =
            _mm256_set1_epi32(static_cast<int>(BranchProfile::saturated));
        const __m256i one32 = _mm256_set1_epi32(1);
        const __m512i ring_mask = _mm512_set1_epi64(view.mask);
        const __m512i path_sum = _mm512_set1_epi64(
            static_cast<long long>(view.pathSum));
        const __m512i k_mask = _mm512_set1_epi64(
            static_cast<long long>(view.indexMask));
        const __m512i k = _mm512_set1_epi64(view.indexBits);
        for (unsigned base = 0; base < lengths; base += 8) {
            const unsigned rest = lengths - base;
            const __mmask8 active = rest >= 8
                ? static_cast<__mmask8>(0xff)
                : static_cast<__mmask8>((1u << rest) - 1);
            const __m512i slot = _mm512_add_epi64(
                _mm512_set1_epi64(base), lane);
            // index(L) for L = lo+base+lane: rotate S_{t-L} left by
            // rotAmounts[L-1] as a k-bit value, XOR the running sum.
            const __m512i ring_index = _mm512_and_epi64(
                _mm512_add_epi64(
                    _mm512_set1_epi64(view.head + lo + base), lane),
                ring_mask);
            const __m512i sum = _mm512_mask_i64gather_epi64(
                _mm512_setzero_si512(), active, ring_index, view.sums,
                8);
            const __m512i amount = _mm512_cvtepu32_epi64(
                _mm256_maskz_loadu_epi32(
                    active, view.rotAmounts + (lo + base - 1)));
            const __m512i rotated = _mm512_and_epi64(
                _mm512_or_epi64(
                    _mm512_sllv_epi64(sum, amount),
                    _mm512_srlv_epi64(sum,
                                      _mm512_sub_epi64(k, amount))),
                k_mask);
            const __m512i index =
                _mm512_xor_epi64(path_sum, rotated);
            const __m512i entry = _mm512_or_epi64(
                _mm512_sll_epi64(slot, index_bits), index);
            const __m512i word_index = _mm512_srli_epi64(entry, 5);
            const __m512i shift = _mm512_slli_epi64(
                _mm512_and_epi64(entry, in_word), 1);
            __m512i word = _mm512_mask_i64gather_epi64(
                _mm512_setzero_si512(), active, word_index, words, 8);
            const __m512i field = _mm512_and_epi64(
                _mm512_srlv_epi64(word, shift), three);
            const __mmask8 predict_taken =
                _mm512_cmpge_epu64_mask(field, two);
            __m512i next;
            __mmask8 hit;
            if (taken) {
                next = _mm512_mask_add_epi64(
                    field, _mm512_cmplt_epu64_mask(field, three),
                    field, one);
                hit = predict_taken & active;
            } else {
                next = _mm512_mask_sub_epi64(
                    field,
                    _mm512_cmpneq_epu64_mask(field,
                                             _mm512_setzero_si512()),
                    field, one);
                hit = static_cast<__mmask8>(~predict_taken) & active;
            }
            word = _mm512_xor_epi64(
                word,
                _mm512_sllv_epi64(_mm512_xor_epi64(field, next),
                                  shift));
            _mm512_mask_i64scatter_epi64(words, active, word_index,
                                         word, 8);
            __m256i tallies =
                _mm256_maskz_loadu_epi32(active, correct + base);
            const __mmask8 unsaturated =
                _mm256_cmpneq_epu32_mask(tallies, saturated);
            tallies = _mm256_mask_add_epi32(tallies, hit & unsaturated,
                                            tallies, one32);
            _mm256_mask_storeu_epi32(correct + base, active, tallies);
            __m512i missed =
                _mm512_maskz_loadu_epi64(active, misses + base);
            missed = _mm512_mask_add_epi64(
                missed, static_cast<__mmask8>(~hit) & active, missed,
                one);
            _mm512_mask_storeu_epi64(misses + base, active, missed);
        }
    }
#endif

    unsigned indexBits_;
    util::PackedCounterTable table_;
#if defined(__x86_64__) && defined(__GNUC__)
    bool simd_ = false;
#endif
};

/**
 * Step-1 table bank for indirect branches: per-length tables of
 * 32-bit target registers, packed back to back. Indirect branches are
 * a small fraction of a trace, so the scalar loop suffices.
 */
class IndirectStep1Tables
{
  public:
    IndirectStep1Tables(unsigned index_bits, unsigned lengths)
        : indexBits_(index_bits),
          table_(std::size_t{lengths} << index_bits, 0)
    {
    }

    static bool
    profiled(const trace::BranchRecord &record)
    {
        return record.isIndirect();
    }

    /** See ConditionalStep1Tables::accessAll(). */
    void
    accessAll(const PathIndexBank &bank, unsigned lo, unsigned lengths,
              const trace::BranchRecord &record, std::uint32_t *correct,
              std::uint64_t *misses)
    {
        for (unsigned slot = 0; slot < lengths; ++slot) {
            std::uint32_t &entry =
                table_[(std::size_t{slot} << indexBits_)
                       | static_cast<std::size_t>(
                           bank.index(lo + slot))];
            const bool hit =
                pred::widenTarget(entry, record.pc) == record.nextPc;
            entry = static_cast<std::uint32_t>(record.nextPc);
            correct[slot] += static_cast<std::uint32_t>(
                hit & (correct[slot] != BranchProfile::saturated));
            misses[slot] += !hit;
        }
    }

  private:
    unsigned indexBits_;
    std::vector<std::uint32_t> table_;
};

/**
 * Replay a record stream over one shard's private predictors.
 * @p replay is a callable invoking its argument once per record in
 * trace order — either a loop over an in-memory vector or a streaming
 * pass over a trace source (bounded memory for on-disk traces).
 */
template <typename Tables, typename Replay>
void
runShard(Replay &&replay, const ProfileOptions &options,
         const LengthShard &shard, bool leader, ShardResult &out)
{
    PathHistoryOptions history = options.history;
    // A shallower bank computes identical indices for every length it
    // implements (see the kernel comment above), and a shard never
    // reads past its own highest length.
    history.depth = shard.hi;
    PathIndexBank bank(options.indexBits, history);
    Tables tables(options.indexBits, shard.hi - shard.lo + 1);

    const unsigned lengths = shard.hi - shard.lo + 1;
    out.mispredictions.assign(lengths, 0);

    // Direct-mapped pc -> profile cache in front of the hash map. Hot
    // branches dominate a trace, so most records hit; BranchProfile
    // references are stable across unordered_map inserts, making the
    // cached pointers safe.
    struct CachedProfile
    {
        std::uint64_t pc = 0;
        BranchProfile *profile = nullptr;
    };
    std::array<CachedProfile, 1024> recent{};

    replay([&](const trace::BranchRecord &record) {
        if (Tables::profiled(record)) {
            CachedProfile &cached = recent[(record.pc >> 2) & 1023];
            if (cached.pc != record.pc || cached.profile == nullptr) {
                cached.pc = record.pc;
                cached.profile = &out.profiles[record.pc];
            }
            BranchProfile &profile = *cached.profile;
            if (leader) {
                profile.addExecution();
                ++out.branches;
            }
            tables.accessAll(bank, shard.lo, lengths, record,
                             profile.correct.data() + (shard.lo - 1),
                             out.mispredictions.data());
        }
        bank.observe(record);
    });
}

/** A Replay over an in-memory record vector (see runShard()). */
struct VectorReplay
{
    const std::vector<trace::BranchRecord> &records;

    template <typename Body>
    void
    operator()(Body &&body) const
    {
        for (const trace::BranchRecord &record : records)
            body(record);
    }
};

/**
 * Run step 1 over @p profile_trace, sharding the length range across
 * options.jobs workers, and merge into @p sweep / @p profiles.
 */
template <typename Tables>
void
runStep1Sharded(trace::TraceSource &profile_trace,
                const ProfileOptions &options, FixedLengthSweep &sweep,
                std::unordered_map<std::uint64_t, BranchProfile>
                    &profiles)
{
    profile_trace.reset();
    const std::vector<LengthShard> shards = makeLengthShards(
        options.minLength, options.maxLength, options.jobs);
    std::vector<ShardResult> results(shards.size());

    const auto *vector_source =
        dynamic_cast<const trace::VectorTraceSource *>(&profile_trace);

    if (shards.size() == 1) {
        // A single shard makes exactly one pass, so a non-vector
        // source (e.g. a streaming .vbt reader) is consumed in place —
        // peak trace-buffer memory stays whatever the source buffers,
        // not the whole trace.
        if (vector_source != nullptr) {
            runShard<Tables>(VectorReplay{vector_source->records()},
                             options, shards[0], true, results[0]);
        } else {
            runShard<Tables>(
                [&profile_trace](auto &&body) {
                    trace::BranchRecord record;
                    while (profile_trace.next(record))
                        body(record);
                },
                options, shards[0], true, results[0]);
        }
    } else {
        // Workers need independent, read-only passes over the
        // records; borrow the vector of an in-memory trace, otherwise
        // materialize the stream once (a documented memory/speed
        // trade: intra-trace sharding buys wall-clock at the cost of
        // holding the records).
        const std::vector<trace::BranchRecord> *records = nullptr;
        std::vector<trace::BranchRecord> materialized;
        if (vector_source != nullptr) {
            records = &vector_source->records();
        } else {
            trace::BranchRecord record;
            while (profile_trace.next(record))
                materialized.push_back(record);
            records = &materialized;
        }
        // The controlling thread takes the leader shard; the rest run
        // on a transient pool. Tasks must not leak exceptions into
        // the pool, so failures are captured and rethrown here.
        util::ThreadPool pool(
            static_cast<unsigned>(shards.size()) - 1);
        std::exception_ptr failure;
        std::mutex failure_mutex;
        for (std::size_t i = 1; i < shards.size(); ++i) {
            pool.submit([&, i] {
                try {
                    runShard<Tables>(VectorReplay{*records}, options,
                                     shards[i], false, results[i]);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(failure_mutex);
                    if (!failure)
                        failure = std::current_exception();
                }
            });
        }
        runShard<Tables>(VectorReplay{*records}, options, shards[0],
                         true, results[0]);
        pool.wait();
        if (failure)
            std::rethrow_exception(failure);
    }

    // Merge in length order. Every shard sees the same profiled
    // records, so the key sets agree and merging never inserts; the
    // leader's map (built in trace order, like the serial sweep)
    // becomes the result.
    sweep.mispredictions.assign(options.maxLength, 0);
    sweep.minLength = options.minLength;
    sweep.branches = results[0].branches;
    for (std::size_t i = 0; i < shards.size(); ++i) {
        std::copy(results[i].mispredictions.begin(),
                  results[i].mispredictions.end(),
                  sweep.mispredictions.begin() + shards[i].lo - 1);
    }
    profiles = std::move(results[0].profiles);
    for (std::size_t i = 1; i < shards.size(); ++i) {
        for (const auto &[pc, shard_profile] : results[i].profiles) {
            const auto it = profiles.find(pc);
            assert(it != profiles.end());
            std::copy(shard_profile.correct.begin() + shards[i].lo - 1,
                      shard_profile.correct.begin() + shards[i].hi,
                      it->second.correct.begin() + shards[i].lo - 1);
        }
    }
}

} // anonymous namespace

ConditionalProfiler::ConditionalProfiler(ProfileOptions options)
    : options_(options)
{
    validateOptions(options_);
}

const FixedLengthSweep &
ConditionalProfiler::runStep1(trace::TraceSource &profile_trace)
{
    // One private table per hash function (step 1 of Section 3.5),
    // packed and length-sharded; see the kernel comment above.
    FixedLengthSweep sweep;
    profiles_.clear();
    runStep1Sharded<ConditionalStep1Tables>(profile_trace, options_,
                                            sweep, profiles_);
    sweep_ = std::move(sweep);
    step1Done_ = true;
    return sweep_;
}

HashAssignment
ConditionalProfiler::runStep2(trace::TraceSource &profile_trace)
{
    if (!step1Done_)
        util::fatal("profiler step 2 requires step 1 to have run");
    CandidateSelector selector(profiles_, sweep_, options_.candidates,
                               options_.maxLength);

    // One miss map reused across iterations, sized for the worst case
    // (every profiled branch mispredicts at least once), so the hot
    // counting loop never rehashes or reallocates.
    std::unordered_map<std::uint64_t, std::uint64_t> misses;
    misses.reserve(profiles_.size());
    for (unsigned iteration = 0; iteration < options_.iterations;
         ++iteration) {
        const HashAssignment assignment = selector.nextAssignment();
        PathConditionalPredictor predictor(options_.indexBits,
                                           assignment,
                                           historyFor(options_));
        misses.clear();

        profile_trace.reset();
        trace::BranchRecord record;
        while (profile_trace.next(record)) {
            if (record.isConditional()) {
                if (predictor.predict(record) != record.taken)
                    ++misses[record.pc];
                predictor.update(record);
            }
            predictor.observe(record);
        }
        selector.recordResults(assignment, misses);
    }
    return selector.finalAssignment();
}

HashAssignment
ConditionalProfiler::profile(trace::TraceSource &profile_trace)
{
    runStep1(profile_trace);
    return runStep2(profile_trace);
}

namespace {

/** Shared restoreStep1() sanity check. */
void
validateRestoredSweep(const FixedLengthSweep &sweep,
                      const ProfileOptions &options)
{
    if (sweep.mispredictions.size() != options.maxLength
        || sweep.minLength != options.minLength) {
        util::fatal("restored step-1 sweep does not match the "
                    "profiler's configured length range");
    }
}

} // anonymous namespace

void
ConditionalProfiler::restoreStep1(
        FixedLengthSweep sweep,
        std::unordered_map<std::uint64_t, BranchProfile> profiles)
{
    validateRestoredSweep(sweep, options_);
    sweep_ = std::move(sweep);
    profiles_ = std::move(profiles);
    step1Done_ = true;
}

IndirectProfiler::IndirectProfiler(ProfileOptions options)
    : options_(options)
{
    validateOptions(options_);
}

const FixedLengthSweep &
IndirectProfiler::runStep1(trace::TraceSource &profile_trace)
{
    FixedLengthSweep sweep;
    profiles_.clear();
    runStep1Sharded<IndirectStep1Tables>(profile_trace, options_,
                                         sweep, profiles_);
    sweep_ = std::move(sweep);
    step1Done_ = true;
    return sweep_;
}

HashAssignment
IndirectProfiler::runStep2(trace::TraceSource &profile_trace)
{
    if (!step1Done_)
        util::fatal("profiler step 2 requires step 1 to have run");
    CandidateSelector selector(profiles_, sweep_, options_.candidates,
                               options_.maxLength);

    // As in ConditionalProfiler::runStep2: one pre-sized miss map
    // reused across iterations.
    std::unordered_map<std::uint64_t, std::uint64_t> misses;
    misses.reserve(profiles_.size());
    for (unsigned iteration = 0; iteration < options_.iterations;
         ++iteration) {
        const HashAssignment assignment = selector.nextAssignment();
        PathIndirectPredictor predictor(options_.indexBits, assignment,
                                        historyFor(options_));
        misses.clear();

        profile_trace.reset();
        trace::BranchRecord record;
        while (profile_trace.next(record)) {
            if (record.isIndirect()) {
                if (predictor.predict(record) != record.nextPc)
                    ++misses[record.pc];
                predictor.update(record);
            }
            predictor.observe(record);
        }
        selector.recordResults(assignment, misses);
    }
    return selector.finalAssignment();
}

HashAssignment
IndirectProfiler::profile(trace::TraceSource &profile_trace)
{
    runStep1(profile_trace);
    return runStep2(profile_trace);
}

void
IndirectProfiler::restoreStep1(
        FixedLengthSweep sweep,
        std::unordered_map<std::uint64_t, BranchProfile> profiles)
{
    validateRestoredSweep(sweep, options_);
    sweep_ = std::move(sweep);
    profiles_ = std::move(profiles);
    step1Done_ = true;
}

CandidateSelector::CandidateSelector(
        const std::unordered_map<std::uint64_t, BranchProfile> &profiles,
        const FixedLengthSweep &sweep, unsigned candidates,
        unsigned max_length)
    : defaultLength_(sweep.bestLength())
{
    for (const auto &[pc, profile] : profiles) {
        // Rank the swept lengths by step-1 correct count, descending;
        // ties go to the shorter (cheaper-to-train) length. Lengths
        // below the sweep's minLength were never simulated and are
        // not candidates.
        std::vector<unsigned> order;
        order.reserve(max_length - sweep.minLength + 1);
        for (unsigned length = sweep.minLength; length <= max_length;
             ++length) {
            order.push_back(length);
        }
        std::stable_sort(order.begin(), order.end(),
            [&profile](unsigned a, unsigned b) {
                if (profile.correct[a - 1] != profile.correct[b - 1])
                    return profile.correct[a - 1]
                         > profile.correct[b - 1];
                return a < b;
            });

        Entry entry;
        const unsigned keep = std::min<unsigned>(
            candidates, static_cast<unsigned>(order.size()));
        entry.lengths.assign(order.begin(), order.begin() + keep);
        entry.recorded.assign(keep, untested);
        entries_.emplace(pc, std::move(entry));
    }
}

std::size_t
CandidateSelector::chooseCandidate(const Entry &entry) const
{
    // Untested candidates (recorded as "never mispredicted") are
    // always chosen before tested ones; among tested ones, take the
    // fewest mispredictions.
    std::size_t best = 0;
    for (std::size_t i = 0; i < entry.recorded.size(); ++i) {
        if (entry.recorded[i] == untested)
            return i;
        if (entry.recorded[i] < entry.recorded[best])
            best = i;
    }
    return best;
}

HashAssignment
CandidateSelector::nextAssignment() const
{
    HashAssignment assignment(defaultLength_);
    for (const auto &[pc, entry] : entries_)
        assignment.assign(pc, entry.lengths[chooseCandidate(entry)]);
    return assignment;
}

void
CandidateSelector::recordResults(
        const HashAssignment &tested,
        const std::unordered_map<std::uint64_t, std::uint64_t>
            &mispredictions)
{
    for (auto &[pc, entry] : entries_) {
        const unsigned used = tested.lookup(pc);
        const auto pos = std::find(entry.lengths.begin(),
                                   entry.lengths.end(), used);
        if (pos == entry.lengths.end())
            continue; // not one of this branch's candidates
        const std::size_t idx =
            static_cast<std::size_t>(pos - entry.lengths.begin());
        const auto it = mispredictions.find(pc);
        entry.recorded[idx] =
            it == mispredictions.end() ? 0 : it->second;
    }
}

HashAssignment
CandidateSelector::finalAssignment() const
{
    HashAssignment assignment(defaultLength_);
    for (const auto &[pc, entry] : entries_) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < entry.recorded.size(); ++i) {
            const std::uint64_t a = entry.recorded[i];
            const std::uint64_t b = entry.recorded[best];
            // An untested candidate (possible when iterations <
            // candidates) never wins over a tested one.
            if (a != untested && (b == untested || a < b))
                best = i;
        }
        assignment.assign(pc, entry.lengths[best]);
    }
    return assignment;
}

} // namespace core
} // namespace vlp
