/**
 * @file
 * Profiling heuristic implementation.
 */

#include "core/profiler.h"

#include <algorithm>
#include <cassert>

#include "core/path_predictor.h"
#include "predictors/predictor.h"
#include "util/logging.h"
#include "util/saturating_counter.h"

namespace vlp {
namespace core {

double
FixedLengthSweep::rate(unsigned length) const
{
    assert(length >= minLength && length <= mispredictions.size());
    if (branches == 0)
        return 0.0;
    return 100.0 * static_cast<double>(mispredictions[length - 1])
         / static_cast<double>(branches);
}

unsigned
FixedLengthSweep::bestLength() const
{
    assert(minLength >= 1 && minLength <= mispredictions.size());
    unsigned best = minLength;
    for (unsigned length = minLength + 1;
         length <= mispredictions.size(); ++length) {
        if (mispredictions[length - 1] < mispredictions[best - 1])
            best = length;
    }
    return best;
}

namespace {

void
validateOptions(const ProfileOptions &options)
{
    if (options.indexBits < 1 || options.indexBits > 30)
        util::fatal("profile indexBits must be 1..30");
    if (options.minLength < 1)
        util::fatal("profile length range must not start at zero");
    if (options.maxLength > maxPathLength)
        util::fatal("profile maxLength must be 1..32");
    if (options.minLength > options.maxLength) {
        util::fatal("profile length range is descending (minLength "
                    + std::to_string(options.minLength)
                    + " > maxLength "
                    + std::to_string(options.maxLength)
                    + "); it would produce an empty sweep");
    }
    if (options.candidates < 1)
        util::fatal("profile candidate count must be >= 1");
    if (options.iterations < 1)
        util::fatal("profile iteration count must be >= 1");
}

PathHistoryOptions
historyFor(const ProfileOptions &options)
{
    PathHistoryOptions history = options.history;
    history.depth = options.maxLength;
    return history;
}

} // anonymous namespace

ConditionalProfiler::ConditionalProfiler(ProfileOptions options)
    : options_(options)
{
    validateOptions(options_);
}

const FixedLengthSweep &
ConditionalProfiler::runStep1(trace::TraceSource &profile_trace)
{
    const unsigned num_lengths = options_.maxLength;
    const std::size_t table_size = std::size_t{1} << options_.indexBits;

    PathIndexBank bank(options_.indexBits, historyFor(options_));
    // One private table per hash function (step 1 of Section 3.5).
    std::vector<std::vector<util::SaturatingCounter>> tables(
        num_lengths,
        std::vector<util::SaturatingCounter>(
            table_size, util::SaturatingCounter(2)));

    FixedLengthSweep sweep;
    sweep.mispredictions.assign(num_lengths, 0);
    sweep.minLength = options_.minLength;
    profiles_.clear();

    profile_trace.reset();
    trace::BranchRecord record;
    while (profile_trace.next(record)) {
        if (record.isConditional()) {
            BranchProfile &profile = profiles_[record.pc];
            ++profile.executions;
            ++sweep.branches;
            for (unsigned length = options_.minLength;
                 length <= num_lengths; ++length) {
                const std::size_t idx =
                    static_cast<std::size_t>(bank.index(length));
                util::SaturatingCounter &counter =
                    tables[length - 1][idx];
                if (counter.predictTaken() == record.taken)
                    ++profile.correct[length - 1];
                else
                    ++sweep.mispredictions[length - 1];
                counter.update(record.taken);
            }
        }
        bank.observe(record);
    }
    sweep_ = std::move(sweep);
    step1Done_ = true;
    return sweep_;
}

HashAssignment
ConditionalProfiler::runStep2(trace::TraceSource &profile_trace)
{
    if (!step1Done_)
        util::fatal("profiler step 2 requires step 1 to have run");
    CandidateSelector selector(profiles_, sweep_, options_.candidates,
                               options_.maxLength);

    for (unsigned iteration = 0; iteration < options_.iterations;
         ++iteration) {
        const HashAssignment assignment = selector.nextAssignment();
        PathConditionalPredictor predictor(options_.indexBits,
                                           assignment,
                                           historyFor(options_));
        std::unordered_map<std::uint64_t, std::uint64_t> misses;

        profile_trace.reset();
        trace::BranchRecord record;
        while (profile_trace.next(record)) {
            if (record.isConditional()) {
                if (predictor.predict(record) != record.taken)
                    ++misses[record.pc];
                predictor.update(record);
            }
            predictor.observe(record);
        }
        selector.recordResults(assignment, misses);
    }
    return selector.finalAssignment();
}

HashAssignment
ConditionalProfiler::profile(trace::TraceSource &profile_trace)
{
    runStep1(profile_trace);
    return runStep2(profile_trace);
}

namespace {

/** Shared restoreStep1() sanity check. */
void
validateRestoredSweep(const FixedLengthSweep &sweep,
                      const ProfileOptions &options)
{
    if (sweep.mispredictions.size() != options.maxLength
        || sweep.minLength != options.minLength) {
        util::fatal("restored step-1 sweep does not match the "
                    "profiler's configured length range");
    }
}

} // anonymous namespace

void
ConditionalProfiler::restoreStep1(
        FixedLengthSweep sweep,
        std::unordered_map<std::uint64_t, BranchProfile> profiles)
{
    validateRestoredSweep(sweep, options_);
    sweep_ = std::move(sweep);
    profiles_ = std::move(profiles);
    step1Done_ = true;
}

IndirectProfiler::IndirectProfiler(ProfileOptions options)
    : options_(options)
{
    validateOptions(options_);
}

const FixedLengthSweep &
IndirectProfiler::runStep1(trace::TraceSource &profile_trace)
{
    const unsigned num_lengths = options_.maxLength;
    const std::size_t table_size = std::size_t{1} << options_.indexBits;

    PathIndexBank bank(options_.indexBits, historyFor(options_));
    std::vector<std::vector<std::uint32_t>> tables(
        num_lengths, std::vector<std::uint32_t>(table_size, 0));

    FixedLengthSweep sweep;
    sweep.mispredictions.assign(num_lengths, 0);
    sweep.minLength = options_.minLength;
    profiles_.clear();

    profile_trace.reset();
    trace::BranchRecord record;
    while (profile_trace.next(record)) {
        if (record.isIndirect()) {
            BranchProfile &profile = profiles_[record.pc];
            ++profile.executions;
            ++sweep.branches;
            const std::uint32_t actual =
                static_cast<std::uint32_t>(record.nextPc);
            for (unsigned length = options_.minLength;
                 length <= num_lengths; ++length) {
                const std::size_t idx =
                    static_cast<std::size_t>(bank.index(length));
                std::uint32_t &entry = tables[length - 1][idx];
                if (pred::widenTarget(entry, record.pc)
                    == record.nextPc) {
                    ++profile.correct[length - 1];
                } else {
                    ++sweep.mispredictions[length - 1];
                }
                entry = actual;
            }
        }
        bank.observe(record);
    }
    sweep_ = std::move(sweep);
    step1Done_ = true;
    return sweep_;
}

HashAssignment
IndirectProfiler::runStep2(trace::TraceSource &profile_trace)
{
    if (!step1Done_)
        util::fatal("profiler step 2 requires step 1 to have run");
    CandidateSelector selector(profiles_, sweep_, options_.candidates,
                               options_.maxLength);

    for (unsigned iteration = 0; iteration < options_.iterations;
         ++iteration) {
        const HashAssignment assignment = selector.nextAssignment();
        PathIndirectPredictor predictor(options_.indexBits, assignment,
                                        historyFor(options_));
        std::unordered_map<std::uint64_t, std::uint64_t> misses;

        profile_trace.reset();
        trace::BranchRecord record;
        while (profile_trace.next(record)) {
            if (record.isIndirect()) {
                if (predictor.predict(record) != record.nextPc)
                    ++misses[record.pc];
                predictor.update(record);
            }
            predictor.observe(record);
        }
        selector.recordResults(assignment, misses);
    }
    return selector.finalAssignment();
}

HashAssignment
IndirectProfiler::profile(trace::TraceSource &profile_trace)
{
    runStep1(profile_trace);
    return runStep2(profile_trace);
}

void
IndirectProfiler::restoreStep1(
        FixedLengthSweep sweep,
        std::unordered_map<std::uint64_t, BranchProfile> profiles)
{
    validateRestoredSweep(sweep, options_);
    sweep_ = std::move(sweep);
    profiles_ = std::move(profiles);
    step1Done_ = true;
}

CandidateSelector::CandidateSelector(
        const std::unordered_map<std::uint64_t, BranchProfile> &profiles,
        const FixedLengthSweep &sweep, unsigned candidates,
        unsigned max_length)
    : defaultLength_(sweep.bestLength())
{
    for (const auto &[pc, profile] : profiles) {
        // Rank the swept lengths by step-1 correct count, descending;
        // ties go to the shorter (cheaper-to-train) length. Lengths
        // below the sweep's minLength were never simulated and are
        // not candidates.
        std::vector<unsigned> order;
        order.reserve(max_length - sweep.minLength + 1);
        for (unsigned length = sweep.minLength; length <= max_length;
             ++length) {
            order.push_back(length);
        }
        std::stable_sort(order.begin(), order.end(),
            [&profile](unsigned a, unsigned b) {
                if (profile.correct[a - 1] != profile.correct[b - 1])
                    return profile.correct[a - 1]
                         > profile.correct[b - 1];
                return a < b;
            });

        Entry entry;
        const unsigned keep = std::min<unsigned>(
            candidates, static_cast<unsigned>(order.size()));
        entry.lengths.assign(order.begin(), order.begin() + keep);
        entry.recorded.assign(keep, untested);
        entries_.emplace(pc, std::move(entry));
    }
}

std::size_t
CandidateSelector::chooseCandidate(const Entry &entry) const
{
    // Untested candidates (recorded as "never mispredicted") are
    // always chosen before tested ones; among tested ones, take the
    // fewest mispredictions.
    std::size_t best = 0;
    for (std::size_t i = 0; i < entry.recorded.size(); ++i) {
        if (entry.recorded[i] == untested)
            return i;
        if (entry.recorded[i] < entry.recorded[best])
            best = i;
    }
    return best;
}

HashAssignment
CandidateSelector::nextAssignment() const
{
    HashAssignment assignment(defaultLength_);
    for (const auto &[pc, entry] : entries_)
        assignment.assign(pc, entry.lengths[chooseCandidate(entry)]);
    return assignment;
}

void
CandidateSelector::recordResults(
        const HashAssignment &tested,
        const std::unordered_map<std::uint64_t, std::uint64_t>
            &mispredictions)
{
    for (auto &[pc, entry] : entries_) {
        const unsigned used = tested.lookup(pc);
        const auto pos = std::find(entry.lengths.begin(),
                                   entry.lengths.end(), used);
        if (pos == entry.lengths.end())
            continue; // not one of this branch's candidates
        const std::size_t idx =
            static_cast<std::size_t>(pos - entry.lengths.begin());
        const auto it = mispredictions.find(pc);
        entry.recorded[idx] =
            it == mispredictions.end() ? 0 : it->second;
    }
}

HashAssignment
CandidateSelector::finalAssignment() const
{
    HashAssignment assignment(defaultLength_);
    for (const auto &[pc, entry] : entries_) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < entry.recorded.size(); ++i) {
            const std::uint64_t a = entry.recorded[i];
            const std::uint64_t b = entry.recorded[best];
            // An untested candidate (possible when iterations <
            // candidates) never wins over a tested one.
            if (a != untested && (b == untested || a < b))
                best = i;
        }
        assignment.assign(pc, entry.lengths[best]);
    }
    return assignment;
}

} // namespace core
} // namespace vlp
