/**
 * @file
 * HFNT implementation.
 */

#include "core/hfnt.h"

#include "util/bits.h"
#include "util/logging.h"
#include "util/stats.h"

namespace vlp {
namespace core {

HashFunctionNumberTable::HashFunctionNumberTable(unsigned index_bits)
    : indexBits_(index_bits),
      table_(std::size_t{1} << index_bits, 1)
{
}

std::size_t
HashFunctionNumberTable::index(std::uint64_t pc) const
{
    return static_cast<std::size_t>(
        util::truncate(pc >> 2, indexBits_));
}

unsigned
HashFunctionNumberTable::predictNumber(std::uint64_t pc)
{
    ++lookups_;
    return table_[index(pc)];
}

void
HashFunctionNumberTable::update(std::uint64_t pc,
                                unsigned actual_number)
{
    std::uint8_t &entry = table_[index(pc)];
    if (entry != actual_number)
        ++mismatches_;
    entry = static_cast<std::uint8_t>(actual_number);
}

double
HashFunctionNumberTable::mismatchRate() const
{
    return util::percent(mismatches_, lookups_);
}

std::size_t
HashFunctionNumberTable::sizeBytes() const
{
    return (table_.size() * 5 + 7) / 8;
}

void
HashFunctionNumberTable::restore(std::vector<std::uint8_t> table,
                                 std::uint64_t lookups,
                                 std::uint64_t mismatches)
{
    if (table.size() != std::size_t{1} << indexBits_)
        util::fatal("restored HFNT table size does not match its "
                    "index width");
    table_ = std::move(table);
    lookups_ = lookups;
    mismatches_ = mismatches;
}

} // namespace core
} // namespace vlp
