/**
 * @file
 * HFNT implementation.
 */

#include "core/hfnt.h"

#include "util/bits.h"
#include "util/logging.h"
#include "util/stats.h"

namespace vlp {
namespace core {

HashFunctionNumberTable::HashFunctionNumberTable(unsigned index_bits)
    : indexBits_(index_bits),
      table_(std::size_t{1} << index_bits, 1)
{
}

std::size_t
HashFunctionNumberTable::index(std::uint64_t pc) const
{
    return static_cast<std::size_t>(
        util::truncate(pc >> 2, indexBits_));
}

unsigned
HashFunctionNumberTable::predictNumber(std::uint64_t pc)
{
    ++lookups_;
    return table_[index(pc)];
}

void
HashFunctionNumberTable::update(std::uint64_t pc,
                                unsigned actual_number)
{
    const std::size_t slot = index(pc);
    std::uint8_t &entry = table_[slot];
    if (outstanding_ > 0)
        journal_.emplace_back(static_cast<std::uint32_t>(slot), entry);
    if (entry != actual_number)
        ++mismatches_;
    entry = static_cast<std::uint8_t>(actual_number);
}

HashFunctionNumberTable::Checkpoint
HashFunctionNumberTable::checkpoint()
{
    ++outstanding_;
    return {lookups_, mismatches_, journal_.size()};
}

void
HashFunctionNumberTable::restore(const Checkpoint &checkpoint)
{
    if (outstanding_ == 0 || checkpoint.journalMark > journal_.size())
        util::fatal("HFNT checkpoint restore without a matching "
                    "outstanding checkpoint");
    // Unwind newest-first so overlapping writes land on their oldest
    // (pre-checkpoint) values.
    while (journal_.size() > checkpoint.journalMark) {
        const auto &[slot, value] = journal_.back();
        table_[slot] = value;
        journal_.pop_back();
    }
    lookups_ = checkpoint.lookups;
    mismatches_ = checkpoint.mismatches;
    --outstanding_;
}

void
HashFunctionNumberTable::discard(const Checkpoint &checkpoint)
{
    if (outstanding_ == 0 || checkpoint.journalMark > journal_.size())
        util::fatal("HFNT checkpoint discard without a matching "
                    "outstanding checkpoint");
    --outstanding_;
    // Entries after the discarded mark may still be needed by an
    // outer open checkpoint, so the journal can only be dropped once
    // no checkpoint remains open.
    if (outstanding_ == 0)
        journal_.clear();
}

void
HashFunctionNumberTable::setBanks(unsigned banks)
{
    if (banks == 0 || (banks & (banks - 1)) != 0
        || banks > table_.size())
        util::fatal("HFNT bank count must be a power of two between 1 "
                    "and the entry count");
    banks_ = banks;
}

double
HashFunctionNumberTable::mismatchRate() const
{
    return util::percent(mismatches_, lookups_);
}

std::size_t
HashFunctionNumberTable::sizeBytes() const
{
    return (table_.size() * 5 + 7) / 8;
}

void
HashFunctionNumberTable::restore(std::vector<std::uint8_t> table,
                                 std::uint64_t lookups,
                                 std::uint64_t mismatches)
{
    if (table.size() != std::size_t{1} << indexBits_)
        util::fatal("restored HFNT table size does not match its "
                    "index width");
    table_ = std::move(table);
    lookups_ = lookups;
    mismatches_ = mismatches;
    journal_.clear();
    outstanding_ = 0;
}

} // namespace core
} // namespace vlp
