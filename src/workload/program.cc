/**
 * @file
 * Program and ProgramBuilder implementation.
 */

#include "workload/program.h"

#include <cassert>
#include <string>

#include "util/logging.h"

namespace vlp {
namespace workload {

const Block &
Program::block(BlockId id) const
{
    assert(id < blocks_.size());
    return blocks_[id];
}

Block &
Program::block(BlockId id)
{
    assert(id < blocks_.size());
    return blocks_[id];
}

BlockId
Program::entryBlock(FuncId func) const
{
    assert(func < functions_.size());
    return functions_[func].firstBlock;
}

std::uint64_t
Program::staticConditionals() const
{
    std::uint64_t count = 0;
    for (const auto &block : blocks_) {
        if (block.term.kind == TermKind::CondBranch)
            ++count;
    }
    return count;
}

std::uint64_t
Program::staticIndirects() const
{
    std::uint64_t count = 0;
    for (const auto &block : blocks_) {
        if (block.term.kind == TermKind::IndirectJump
            || block.term.kind == TermKind::IndirectCall) {
            ++count;
        }
    }
    return count;
}

void
Program::resetBehaviorState()
{
    for (auto &block : blocks_) {
        if (block.term.condBehavior)
            block.term.condBehavior->reset();
        if (block.term.indBehavior)
            block.term.indBehavior->reset();
    }
}

FuncId
ProgramBuilder::beginFunction()
{
    if (inFunction_)
        util::fatal("beginFunction while another function is open");
    inFunction_ = true;
    Function function;
    function.firstBlock = static_cast<BlockId>(program_.blocks_.size());
    program_.functions_.push_back(function);
    return static_cast<FuncId>(program_.functions_.size() - 1);
}

BlockId
ProgramBuilder::addBlock()
{
    if (!inFunction_)
        util::fatal("addBlock outside of a function");
    Block block;
    block.func = static_cast<FuncId>(program_.functions_.size() - 1);
    program_.blocks_.push_back(std::move(block));
    ++program_.functions_.back().numBlocks;
    return static_cast<BlockId>(program_.blocks_.size() - 1);
}

Block &
ProgramBuilder::editableBlock(BlockId id)
{
    if (id >= program_.blocks_.size())
        util::fatal("terminator set on unknown block");
    return program_.blocks_[id];
}

void
ProgramBuilder::setCond(BlockId id, BlockId taken_target,
                        std::unique_ptr<ConditionalBehavior> behavior)
{
    if (!behavior)
        util::fatal("conditional branch requires a behaviour");
    Block &block = editableBlock(id);
    block.term.kind = TermKind::CondBranch;
    block.term.target = taken_target;
    block.term.condBehavior = std::move(behavior);
    ++staticCond_;
}

void
ProgramBuilder::setJump(BlockId id, BlockId target)
{
    Block &block = editableBlock(id);
    block.term.kind = TermKind::Jump;
    block.term.target = target;
}

void
ProgramBuilder::setIndirectJump(BlockId id, std::vector<BlockId> targets,
                                std::unique_ptr<IndirectBehavior> behavior)
{
    if (targets.empty())
        util::fatal("indirect jump requires at least one target");
    if (!behavior)
        util::fatal("indirect jump requires a behaviour");
    Block &block = editableBlock(id);
    block.term.kind = TermKind::IndirectJump;
    block.term.targets = std::move(targets);
    block.term.indBehavior = std::move(behavior);
    ++staticInd_;
}

void
ProgramBuilder::setCall(BlockId id, FuncId callee)
{
    Block &block = editableBlock(id);
    block.term.kind = TermKind::Call;
    block.term.callee = callee;
}

void
ProgramBuilder::setIndirectCall(BlockId id, std::vector<FuncId> callees,
                                std::unique_ptr<IndirectBehavior> behavior)
{
    if (callees.empty())
        util::fatal("indirect call requires at least one callee");
    if (!behavior)
        util::fatal("indirect call requires a behaviour");
    Block &block = editableBlock(id);
    block.term.kind = TermKind::IndirectCall;
    block.term.callees = std::move(callees);
    block.term.indBehavior = std::move(behavior);
    ++staticInd_;
}

void
ProgramBuilder::setReturn(BlockId id)
{
    editableBlock(id).term.kind = TermKind::Return;
}

void
ProgramBuilder::endFunction()
{
    if (!inFunction_)
        util::fatal("endFunction without beginFunction");
    const Function &function = program_.functions_.back();
    if (function.numBlocks == 0)
        util::fatal("function has no blocks");
    inFunction_ = false;
}

Program
ProgramBuilder::finalize(FuncId main)
{
    if (inFunction_)
        util::fatal("finalize with an open function");
    if (main >= program_.functions_.size())
        util::fatal("finalize: unknown main function");
    if (program_.blocks_.empty())
        util::fatal("finalize: empty program");

    // Lay out addresses: functions in id order, blocks contiguous.
    std::uint64_t address = textBase;
    for (auto &block : program_.blocks_) {
        block.addr = address;
        address += blockBytes;
    }

    // Validate the graph.
    const auto num_blocks = program_.blocks_.size();
    const auto num_funcs = program_.functions_.size();
    for (std::size_t i = 0; i < num_blocks; ++i) {
        const Block &block = program_.blocks_[i];
        const Function &function = program_.functions_[block.func];
        const BlockId func_first = function.firstBlock;
        const BlockId func_last = func_first + function.numBlocks - 1;
        const bool is_last = (i == func_last);

        auto check_block_target = [&](BlockId target) {
            if (target >= num_blocks)
                util::fatal("block " + std::to_string(i)
                            + ": dangling target");
            if (program_.blocks_[target].func != block.func)
                util::fatal("block " + std::to_string(i)
                            + ": jump leaves its function");
        };
        auto check_callee = [&](FuncId callee) {
            if (callee >= num_funcs)
                util::fatal("block " + std::to_string(i)
                            + ": dangling callee");
        };
        auto need_successor = [&]() {
            if (is_last)
                util::fatal("block " + std::to_string(i)
                            + ": falls through off function end");
        };

        switch (block.term.kind) {
          case TermKind::FallThrough:
            need_successor();
            break;
          case TermKind::CondBranch:
            need_successor();
            check_block_target(block.term.target);
            break;
          case TermKind::Jump:
            check_block_target(block.term.target);
            break;
          case TermKind::IndirectJump:
            for (BlockId target : block.term.targets)
                check_block_target(target);
            break;
          case TermKind::Call:
            need_successor();
            check_callee(block.term.callee);
            break;
          case TermKind::IndirectCall:
            need_successor();
            for (FuncId callee : block.term.callees)
                check_callee(callee);
            break;
          case TermKind::Return:
            break;
        }
    }

    program_.main_ = main;
    return std::move(program_);
}

} // namespace workload
} // namespace vlp
