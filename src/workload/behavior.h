/**
 * @file
 * Branch behaviour models for the synthetic workload engine.
 *
 * Each static branch in a synthetic program owns a behaviour object that
 * decides, at execution time, the branch's outcome (conditional) or
 * target (indirect). The behaviours are designed so that the resulting
 * branch stream has the properties the paper's evaluation hinges on:
 *
 *  - loop branches whose predictability tracks their trip counts;
 *  - conditional branches whose outcome is a deterministic function of
 *    the *path* (the executed destinations of the previous d
 *    history-eligible branches) for per-branch depths d in 1..32 — these
 *    are the branches for which selecting the right path length matters;
 *  - conditional branches correlated with recent *outcomes* (pattern
 *    history), which gshare captures well;
 *  - data-dependent biased branches forming the noise floor;
 *  - indirect branches driven by order-m Markov processes over their own
 *    target stream (interpreters), by the path (virtual dispatch
 *    correlated with call sites), or by skewed random draws.
 *
 * Crucially, the "path" the behaviours condition on is maintained by the
 * engine under exactly the THB insertion policy of the paper (targets of
 * conditional and indirect branches; no unconditionals, no returns), so
 * a path predictor with a long-enough history can in principle learn
 * every path-correlated branch.
 */

#ifndef VLPSIM_WORKLOAD_BEHAVIOR_H
#define VLPSIM_WORKLOAD_BEHAVIOR_H

#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.h"

namespace vlp {
namespace workload {

/**
 * Execution-time context handed to behaviours.
 *
 * The histories are owned by the engine; the scale knobs come from the
 * input set (profile vs test inputs differ in seed *and* in these
 * scales, so profiling generalization is honestly exercised).
 */
struct BehaviorContext
{
    /**
     * Executed destinations of the most recent history-eligible
     * branches; element 0 is the most recent. Always holds
     * @ref pathHistoryDepth entries (zero-filled at start).
     */
    const std::uint64_t *pathHistory = nullptr;
    /**
     * Outcomes of the most recent conditional branches packed into a
     * word; bit 0 is the most recent outcome.
     */
    std::uint64_t outcomeHistory = 0;
    /** Input-set random stream. */
    util::Rng *rng = nullptr;
    /** Multiplies behaviour noise probabilities (input-set knob). */
    double noiseScale = 1.0;
    /** Multiplies loop trip counts (input-set knob). */
    double tripScale = 1.0;
};

/** Number of path-history entries the engine maintains for behaviours. */
constexpr unsigned pathHistoryDepth = 32;

/** Mix a path prefix of @p depth entries into one 64-bit key. */
std::uint64_t hashPath(const std::uint64_t *path, unsigned depth);

/**
 * Deterministically map a hashed context to one of @p fan targets with
 * a skewed popularity distribution (a few targets dominate).
 */
std::size_t concentratedTarget(std::uint64_t key, std::size_t fan);

/** SplitMix-style 64-bit finalizer used by all deterministic mappings. */
std::uint64_t mix64(std::uint64_t value);

/** Decides outcomes for one static conditional branch. */
class ConditionalBehavior
{
  public:
    virtual ~ConditionalBehavior() = default;

    /** Decide the outcome of one execution of the branch. */
    virtual bool evaluate(BehaviorContext &context) = 0;

    /** Clear per-branch mutable state before an independent run. */
    virtual void reset() {}

    /** Behaviour class name for diagnostics. */
    virtual const char *name() const = 0;
};

/** Decides target indices for one static indirect branch. */
class IndirectBehavior
{
  public:
    virtual ~IndirectBehavior() = default;

    /**
     * Decide which of the branch's @p fan targets is taken.
     * @return index in [0, fan)
     */
    virtual std::size_t evaluate(BehaviorContext &context,
                                 std::size_t fan) = 0;

    /** Clear per-branch mutable state before an independent run. */
    virtual void reset() {}

    /** Behaviour class name for diagnostics. */
    virtual const char *name() const = 0;
};

/**
 * A loop back-edge: taken (trip - 1) times, then not taken once, with a
 * fresh trip count drawn per loop entry. Models for/while loops; the
 * classic easy-for-everything branch except at loop exits.
 */
class LoopBehavior : public ConditionalBehavior
{
  public:
    /**
     * @param minTrip smallest trip count (>= 1)
     * @param maxTrip largest trip count (>= minTrip)
     * @param regular if true, trip counts are drawn once per program run
     *        phase and change rarely (highly predictable exits); if
     *        false, every loop entry draws a fresh uniform trip count
     */
    LoopBehavior(unsigned minTrip, unsigned maxTrip, bool regular);

    bool evaluate(BehaviorContext &context) override;

    void
    reset() override
    {
        remaining_ = 0;
        stickyTrip_ = 0;
        stickyUses_ = 0;
    }

    const char *name() const override { return "loop"; }

  private:
    unsigned drawTrip(BehaviorContext &context);

    unsigned minTrip_;
    unsigned maxTrip_;
    bool regular_;
    unsigned remaining_ = 0;
    unsigned stickyTrip_ = 0;
    unsigned stickyUses_ = 0;
};

/**
 * Outcome is a deterministic boolean function of the path entry at
 * distance @p depth (and, when @p dual, also of the entry halfway
 * there), flipped with probability @p noise.
 *
 * This models the real phenomenon behind path correlation (Young &
 * Smith): the branch's outcome is decided by *which context* — which
 * call site, which phase, which earlier decision — lies a certain
 * number of branches back. The determining token has low cardinality,
 * so a path predictor whose history is at least @p depth long learns
 * the branch with few table entries; a shorter history simply does not
 * contain the determining token and sees residual randomness. This is
 * the behaviour class that rewards selecting the path length per
 * branch.
 */
class PathCorrelatedBehavior : public ConditionalBehavior
{
  public:
    /**
     * @param depth distance (in history-eligible branches) of the path
     *        entry that determines the outcome, 1..32
     * @param dual  also depend on the entry at distance ceil(depth/2)
     * @param noise probability the deterministic outcome is flipped
     * @param seed  per-branch seed defining the boolean function
     */
    PathCorrelatedBehavior(unsigned depth, bool dual, double noise,
                           std::uint64_t seed);

    bool evaluate(BehaviorContext &context) override;

    const char *name() const override { return "path-correlated"; }

    /** Path depth the outcome depends on. */
    unsigned depth() const { return depth_; }

  private:
    unsigned depth_;
    bool dual_;
    double noise_;
    std::uint64_t seed_;
};

/**
 * Outcome is a deterministic boolean function of the last @p depth
 * conditional outcomes (pattern history), flipped with probability
 * @p noise. gshare-friendly: its global pattern history captures these
 * directly. Path histories capture them too (outcomes are encoded in the
 * executed destinations), so these don't penalize path predictors.
 */
class PatternCorrelatedBehavior : public ConditionalBehavior
{
  public:
    /**
     * @param depth pattern depth, 1..32
     * @param noise flip probability
     * @param seed  per-branch seed defining the boolean function
     */
    PatternCorrelatedBehavior(unsigned depth, double noise,
                              std::uint64_t seed);

    bool evaluate(BehaviorContext &context) override;

    const char *name() const override { return "pattern-correlated"; }

  private:
    unsigned depth_;
    double noise_;
    std::uint64_t seed_;
};

/**
 * Data-dependent branch: taken with a fixed probability.
 *
 * With window == 1 each execution draws independently — the
 * irreducible noise floor of every predictor. With window > 1 the
 * outcome is re-drawn only every ~window executions and held constant
 * in between, modelling conditions that are invariant over a loop or
 * phase (the common case in real programs: "biased" branches rarely
 * flip, so they leave global histories largely undisturbed).
 */
class BiasedBehavior : public ConditionalBehavior
{
  public:
    /**
     * @param takenProbability probability of being taken (per draw)
     * @param window mean executions between re-draws (1 = iid)
     */
    explicit BiasedBehavior(double takenProbability,
                            unsigned window = 1);

    bool evaluate(BehaviorContext &context) override;

    void
    reset() override
    {
        remaining_ = 0;
    }

    const char *name() const override { return "biased"; }

  private:
    double takenProbability_;
    unsigned window_;
    unsigned remaining_ = 0;
    bool value_ = false;
};

/**
 * Order-m Markov target stream over the branch's own recent targets:
 * with probability 1-noise the next target index is a fixed function of
 * the last m target indices; otherwise it is a Zipf-skewed random draw.
 * Models interpreter dispatch, where the next opcode is strongly
 * determined by the recent opcode sequence.
 */
class MarkovBehavior : public IndirectBehavior
{
  public:
    /**
     * @param order Markov order m (how many of the branch's own past
     *        targets determine the next one), 1..8
     * @param noise probability of a random draw instead
     * @param seed  per-branch seed defining the transition function
     */
    MarkovBehavior(unsigned order, double noise, std::uint64_t seed);

    std::size_t evaluate(BehaviorContext &context,
                         std::size_t fan) override;

    void
    reset() override
    {
        history_.assign(order_, 0);
    }

    const char *name() const override { return "markov"; }

    /** Markov order. */
    unsigned order() const { return order_; }

  private:
    unsigned order_;
    double noise_;
    std::uint64_t seed_;
    std::vector<std::size_t> history_;
};

/**
 * Target is a deterministic function of the path entry at distance
 * @p depth (with noise). Models virtual calls and function-pointer
 * dispatch whose receiver is determined by the calling context —
 * exactly the case path predictors excel at and pattern predictors
 * miss.
 */
class PathDispatchBehavior : public IndirectBehavior
{
  public:
    /**
     * @param depth distance of the path entry the target depends on,
     *        1..32
     * @param noise probability of a Zipf random draw instead
     * @param seed  per-branch seed defining the mapping
     */
    PathDispatchBehavior(unsigned depth, double noise,
                         std::uint64_t seed);

    std::size_t evaluate(BehaviorContext &context,
                         std::size_t fan) override;

    const char *name() const override { return "path-dispatch"; }

    /** Path depth the target depends on. */
    unsigned depth() const { return depth_; }

  private:
    unsigned depth_;
    double noise_;
    std::uint64_t seed_;
};

/**
 * Zipf-skewed random target: a handful of targets dominate but the
 * choice is data dependent. Hard for every predictor; a realistic model
 * of data-driven switch statements.
 */
class RandomDispatchBehavior : public IndirectBehavior
{
  public:
    /** @param skew Zipf exponent (larger = more dominated by target 0) */
    explicit RandomDispatchBehavior(double skew);

    std::size_t evaluate(BehaviorContext &context,
                         std::size_t fan) override;

    const char *name() const override { return "random-dispatch"; }

  private:
    double skew_;
};

} // namespace workload
} // namespace vlp

#endif // VLPSIM_WORKLOAD_BEHAVIOR_H
