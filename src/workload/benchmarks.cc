/**
 * @file
 * The 16 benchmark parameterizations.
 *
 * Static branch counts come from the paper's Table 1. The structural
 * knobs (dispatch loops, behaviour mixes, noise levels) are calibrated
 * so the *shape* of the trace matches each program's published
 * character: interpreters (li, perl, python, gs) are dominated by
 * indirect dispatch; go and compress are noisy and hard to predict;
 * m88ksim and vortex are highly predictable; and the dynamic
 * indirect-to-conditional ratios track Table 1.
 */

#include "workload/benchmarks.h"

#include <algorithm>

#include "util/logging.h"
#include "workload/behavior.h"

namespace vlp {
namespace workload {

std::uint64_t
BenchmarkSpec::dynamicBudget(double extra) const
{
    const double scaled = static_cast<double>(paperDynamicCond)
        * baseScale * util::workloadScale() * extra;
    return scaled < 1000.0 ? 1000 : static_cast<std::uint64_t>(scaled);
}

namespace {

/** Deterministic 64-bit name hash (FNV-1a). */
std::uint64_t
nameHash(const std::string &name)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (char ch : name) {
        hash ^= static_cast<unsigned char>(ch);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

/**
 * Common spec assembly: Table 1 numbers plus structural knobs; input
 * sets are derived deterministically from the benchmark name with a
 * mild distribution shift between profile and test.
 */
BenchmarkSpec
makeSpec(const std::string &name, bool is_spec, bool indirect_heavy,
         std::uint64_t dyn_cond, unsigned static_cond,
         std::uint64_t dyn_ind, unsigned static_ind,
         StructureParams structure)
{
    BenchmarkSpec spec;
    spec.name = name;
    spec.isSpec = is_spec;
    spec.indirectHeavy = indirect_heavy;
    spec.paperDynamicCond = dyn_cond;
    spec.paperDynamicIndirect = dyn_ind;
    spec.paperStaticCond = static_cond;
    spec.paperStaticInd = static_ind;

    structure.structureSeed = mix64(nameHash(name));
    structure.targetStaticCond = std::max(
        60u, static_cast<unsigned>(static_cond * staticScale));
    structure.targetStaticInd = std::max(
        3u, static_cast<unsigned>(static_ind * 0.5));

    // Global noise calibration: the per-benchmark knobs above express
    // each program's *relative* character; this scaling sets the
    // absolute level so baseline misprediction rates land in the
    // published range (see EXPERIMENTS.md).
    structure.condNoise *= 0.35;
    structure.biasHigh = structure.biasLow
        + 0.32 * (structure.biasHigh - structure.biasLow);
    structure.tripMin = std::max(10u, structure.tripMin * 3);
    structure.tripMax = std::max(structure.tripMin,
                                 std::min(160u, structure.tripMax * 4));
    structure.callProb *= 0.6;
    // Indirect calibration: bound the dispatch context space so table
    // pressure matches published indirect misprediction ranges —
    // Markov order at most 2, moderate handler fan-out.
    structure.markovOrderMin = std::min(structure.markovOrderMin, 2u);
    structure.markovOrderMax = std::min(structure.markovOrderMax, 2u);
    structure.dispatchFanMin = std::max(8u, structure.dispatchFanMin / 2);
    structure.dispatchFanMax = std::max(structure.dispatchFanMin,
                                        structure.dispatchFanMax / 2);

    spec.structure = structure;

    const std::uint64_t hash = nameHash(name);
    spec.profileInput.seed = mix64(hash ^ 0x70726f66696c65ULL);
    spec.profileInput.noiseScale = 1.0;
    spec.profileInput.tripScale = 1.0;
    spec.testInput.seed = mix64(hash ^ 0x74657374ULL);
    // Shift the test distribution so profiling generalization, not
    // memorization, is measured.
    spec.testInput.noiseScale = 1.0 + 0.15 * ((hash >> 8) % 3) / 2.0;
    spec.testInput.tripScale = 0.85 + 0.15 * ((hash >> 16) % 4);
    return spec;
}

std::vector<BenchmarkSpec>
buildSuite()
{
    std::vector<BenchmarkSpec> suite;
    StructureParams p;

    // --- 099.go: game-tree search; large, noisy, few indirects.
    p = StructureParams{};
    p.loopWeight = 0.22; p.pathWeight = 0.16;
    p.patternWeight = 0.13; p.biasedWeight = 0.49;
    p.biasLow = 0.08; p.biasHigh = 0.42;
    p.iidBiasFrac = 0.75;
    p.condNoise = 0.08;
    p.pathDepthMax = 20;
    p.tripMin = 2; p.tripMax = 12;
    p.dispatchLoops = 1;
    p.dispatchFanMin = 12; p.dispatchFanMax = 24;
    p.dispatchTripMin = 100; p.dispatchTripMax = 350;
    p.switchFanMin = 3; p.switchFanMax = 8;
    p.indCallSites = 2;
    p.utilFunctions = 16; p.phaseFunctions = 10;
    suite.push_back(makeSpec("go", true, false,
                             17'600'000, 4770, 91'400, 11, p));

    // --- 124.m88ksim: CPU simulator; extremely regular.
    p = StructureParams{};
    p.loopWeight = 0.40; p.pathWeight = 0.28;
    p.patternWeight = 0.20; p.biasedWeight = 0.12;
    p.biasLow = 0.01; p.biasHigh = 0.08;
    p.condNoise = 0.010;
    p.pathDepthMax = 16;
    p.tripMin = 3; p.tripMax = 32;
    p.dispatchLoops = 1;
    p.dispatchFanMin = 32; p.dispatchFanMax = 48;
    p.dispatchTripMin = 500; p.dispatchTripMax = 1400;
    p.markovOrderMin = 1; p.markovOrderMax = 3;
    p.indNoise = 0.06;
    p.indCallSites = 2;
    p.utilFunctions = 8; p.phaseFunctions = 6;
    suite.push_back(makeSpec("m88ksim", true, true,
                             92'600'000, 1095, 1'010'000, 14, p));

    // --- 126.gcc: compiler; huge static footprint, many switches.
    p = StructureParams{};
    p.loopWeight = 0.26; p.pathWeight = 0.32;
    p.patternWeight = 0.16; p.biasedWeight = 0.26;
    p.biasLow = 0.02; p.biasHigh = 0.25;
    p.condNoise = 0.04;
    p.pathDepthMax = 24;
    p.tripMin = 2; p.tripMax = 16;
    p.dispatchLoops = 6;
    p.dispatchFanMin = 24; p.dispatchFanMax = 64;
    p.dispatchTripMin = 500; p.dispatchTripMax = 1700;
    p.markovOrderMin = 1; p.markovOrderMax = 4;
    p.switchFanMin = 4; p.switchFanMax = 14;
    p.indCallSites = 8;
    p.utilFunctions = 40; p.phaseFunctions = 14;
    suite.push_back(makeSpec("gcc", true, true,
                             27'600'000, 14419, 990'000, 192, p));

    // --- 129.compress: tiny kernel; data-dependent bit twiddling.
    p = StructureParams{};
    p.loopWeight = 0.28; p.pathWeight = 0.08;
    p.patternWeight = 0.10; p.biasedWeight = 0.54;
    p.biasLow = 0.12; p.biasHigh = 0.45;
    p.iidBiasFrac = 0.80;
    p.condNoise = 0.07;
    p.pathDepthMax = 8;
    p.tripMin = 4; p.tripMax = 48;
    p.dispatchLoops = 0;
    p.indCallSites = 0;
    p.switchFanMin = 3; p.switchFanMax = 6;
    p.utilFunctions = 4; p.phaseFunctions = 3;
    suite.push_back(makeSpec("compress", true, false,
                             11'700'000, 371, 160, 3, p));

    // --- 130.li: Lisp interpreter; dispatch-dominated.
    p = StructureParams{};
    p.loopWeight = 0.24; p.pathWeight = 0.36;
    p.patternWeight = 0.16; p.biasedWeight = 0.24;
    p.biasLow = 0.02; p.biasHigh = 0.22;
    p.condNoise = 0.03;
    p.pathDepthMax = 28;
    p.tripMin = 2; p.tripMax = 10;
    p.dispatchLoops = 2;
    p.dispatchFanMin = 32; p.dispatchFanMax = 56;
    p.dispatchTripMin = 60; p.dispatchTripMax = 140;
    p.markovOrderMin = 1; p.markovOrderMax = 4;
    p.indNoise = 0.10;
    p.indCallSites = 3;
    p.utilFunctions = 8; p.phaseFunctions = 5;
    suite.push_back(makeSpec("li", true, true,
                             32'400'000, 517, 1'120'000, 11, p));

    // --- 132.ijpeg: image codec; regular loops, marker switches.
    p = StructureParams{};
    p.loopWeight = 0.42; p.pathWeight = 0.18;
    p.patternWeight = 0.12; p.biasedWeight = 0.28;
    p.biasLow = 0.03; p.biasHigh = 0.30;
    p.iidBiasFrac = 0.45;
    p.condNoise = 0.05;
    p.pathDepthMax = 12;
    p.tripMin = 4; p.tripMax = 64;
    p.dispatchLoops = 1;
    p.dispatchFanMin = 12; p.dispatchFanMax = 24;
    p.dispatchTripMin = 120; p.dispatchTripMax = 320;
    p.switchFanMin = 3; p.switchFanMax = 10;
    p.indCallSites = 4;
    p.utilFunctions = 10; p.phaseFunctions = 6;
    suite.push_back(makeSpec("ijpeg", true, false,
                             18'200'000, 1161, 98'200, 134, p));

    // --- 134.perl: interpreter; the most dispatch-heavy program.
    p = StructureParams{};
    p.loopWeight = 0.24; p.pathWeight = 0.34;
    p.patternWeight = 0.16; p.biasedWeight = 0.26;
    p.biasLow = 0.01; p.biasHigh = 0.14;
    p.condNoise = 0.012;
    p.pathDepthMax = 28;
    p.tripMin = 2; p.tripMax = 12;
    p.dispatchLoops = 4;
    p.dispatchFanMin = 40; p.dispatchFanMax = 72;
    p.dispatchTripMin = 250; p.dispatchTripMax = 700;
    p.markovOrderMin = 1; p.markovOrderMax = 3;
    p.indNoise = 0.06;
    p.indCallSites = 4;
    p.utilFunctions = 10; p.phaseFunctions = 6;
    suite.push_back(makeSpec("perl", true, true,
                             21'400'000, 1536, 2'270'000, 21, p));

    // --- 147.vortex: OO database; predictable, call-heavy.
    p = StructureParams{};
    p.loopWeight = 0.34; p.pathWeight = 0.32;
    p.patternWeight = 0.18; p.biasedWeight = 0.16;
    p.biasLow = 0.01; p.biasHigh = 0.05;
    p.condNoise = 0.008;
    p.pathDepthMax = 20;
    p.tripMin = 5; p.tripMax = 30;
    p.dispatchLoops = 1;
    p.dispatchFanMin = 12; p.dispatchFanMax = 20;
    p.dispatchTripMin = 300; p.dispatchTripMax = 800;
    p.switchFanMin = 3; p.switchFanMax = 8;
    p.indCallSites = 6;
    p.callProb = 0.2;
    p.utilFunctions = 24; p.phaseFunctions = 10;
    suite.push_back(makeSpec("vortex", true, false,
                             25'800'000, 6529, 110'000, 33, p));

    // --- chess (GNU Chess): game tree, mildly noisy.
    p = StructureParams{};
    p.loopWeight = 0.28; p.pathWeight = 0.28;
    p.patternWeight = 0.14; p.biasedWeight = 0.30;
    p.biasLow = 0.04; p.biasHigh = 0.30;
    p.iidBiasFrac = 0.50;
    p.condNoise = 0.06;
    p.pathDepthMax = 18;
    p.tripMin = 2; p.tripMax = 16;
    p.dispatchLoops = 1;
    p.dispatchFanMin = 12; p.dispatchFanMax = 20;
    p.dispatchTripMin = 40; p.dispatchTripMax = 100;
    p.switchFanMin = 3; p.switchFanMax = 6;
    p.indCallSites = 2;
    p.utilFunctions = 10; p.phaseFunctions = 8;
    suite.push_back(makeSpec("chess", false, false,
                             52'400'000, 1736, 110'000, 7, p));

    // --- groff: C++ troff; virtual dispatch everywhere.
    p = StructureParams{};
    p.loopWeight = 0.26; p.pathWeight = 0.34;
    p.patternWeight = 0.14; p.biasedWeight = 0.26;
    p.biasLow = 0.02; p.biasHigh = 0.20;
    p.condNoise = 0.03;
    p.pathDepthMax = 24;
    p.tripMin = 2; p.tripMax = 14;
    p.dispatchLoops = 4;
    p.dispatchFanMin = 24; p.dispatchFanMax = 48;
    p.dispatchTripMin = 500; p.dispatchTripMax = 1300;
    p.switchPathFrac = 0.6; p.switchMarkovFrac = 0.25;
    p.indNoise = 0.08;
    p.indCallSites = 30;
    p.indCallFanMin = 2; p.indCallFanMax = 10;
    p.utilFunctions = 16; p.phaseFunctions = 8;
    suite.push_back(makeSpec("groff", false, true,
                             22'400'000, 2322, 2'010'000, 172, p));

    // --- gs (Ghostscript): PostScript interpreter; huge switch count.
    p = StructureParams{};
    p.loopWeight = 0.26; p.pathWeight = 0.32;
    p.patternWeight = 0.14; p.biasedWeight = 0.28;
    p.biasLow = 0.02; p.biasHigh = 0.24;
    p.condNoise = 0.035;
    p.pathDepthMax = 26;
    p.tripMin = 2; p.tripMax = 18;
    p.dispatchLoops = 6;
    p.dispatchFanMin = 32; p.dispatchFanMax = 64;
    p.dispatchTripMin = 400; p.dispatchTripMax = 1200;
    p.switchFanMin = 4; p.switchFanMax = 12;
    p.indNoise = 0.12;
    p.indCallSites = 24;
    p.utilFunctions = 24; p.phaseFunctions = 10;
    suite.push_back(makeSpec("gs", false, true,
                             29'400'000, 5476, 1'630'000, 504, p));

    // --- pgp: crypto; data-dependent, little path structure.
    p = StructureParams{};
    p.loopWeight = 0.36; p.pathWeight = 0.14;
    p.patternWeight = 0.12; p.biasedWeight = 0.38;
    p.biasLow = 0.05; p.biasHigh = 0.38;
    p.iidBiasFrac = 0.60;
    p.condNoise = 0.06;
    p.pathDepthMax = 8;
    p.tripMin = 4; p.tripMax = 48;
    p.dispatchLoops = 0;
    p.switchFanMin = 3; p.switchFanMax = 6;
    p.indCallSites = 1;
    p.utilFunctions = 8; p.phaseFunctions = 5;
    suite.push_back(makeSpec("pgp", false, false,
                             16'500'000, 1444, 180, 5, p));

    // --- plot (gnuplot): expression evaluation + drawing loops.
    p = StructureParams{};
    p.loopWeight = 0.34; p.pathWeight = 0.28;
    p.patternWeight = 0.14; p.biasedWeight = 0.24;
    p.biasLow = 0.02; p.biasHigh = 0.20;
    p.condNoise = 0.03;
    p.pathDepthMax = 20;
    p.tripMin = 4; p.tripMax = 40;
    p.dispatchLoops = 2;
    p.dispatchFanMin = 24; p.dispatchFanMax = 40;
    p.dispatchTripMin = 600; p.dispatchTripMax = 1600;
    p.markovOrderMin = 1; p.markovOrderMax = 3;
    p.indNoise = 0.05;
    p.indCallSites = 6;
    p.utilFunctions = 10; p.phaseFunctions = 6;
    suite.push_back(makeSpec("plot", false, true,
                             25'700'000, 1417, 500'000, 43, p));

    // --- python: bytecode interpreter.
    p = StructureParams{};
    p.loopWeight = 0.24; p.pathWeight = 0.34;
    p.patternWeight = 0.16; p.biasedWeight = 0.26;
    p.biasLow = 0.02; p.biasHigh = 0.24;
    p.condNoise = 0.035;
    p.pathDepthMax = 28;
    p.tripMin = 2; p.tripMax = 12;
    p.dispatchLoops = 5;
    p.dispatchFanMin = 48; p.dispatchFanMax = 96;
    p.dispatchTripMin = 300; p.dispatchTripMax = 800;
    p.markovOrderMin = 2; p.markovOrderMax = 5;
    p.indNoise = 0.14;
    p.indCallSites = 16;
    p.utilFunctions = 14; p.phaseFunctions = 8;
    suite.push_back(makeSpec("python", false, true,
                             33'800'000, 2578, 2'020'000, 168, p));

    // --- ss (SimpleScalar): out-of-order simulator.
    p = StructureParams{};
    p.loopWeight = 0.34; p.pathWeight = 0.30;
    p.patternWeight = 0.16; p.biasedWeight = 0.20;
    p.biasLow = 0.02; p.biasHigh = 0.18;
    p.condNoise = 0.03;
    p.pathDepthMax = 20;
    p.tripMin = 2; p.tripMax = 24;
    p.dispatchLoops = 1;
    p.dispatchFanMin = 32; p.dispatchFanMax = 48;
    p.dispatchTripMin = 350; p.dispatchTripMax = 900;
    p.switchFanMin = 4; p.switchFanMax = 10;
    p.indCallSites = 4;
    p.utilFunctions = 12; p.phaseFunctions = 8;
    suite.push_back(makeSpec("ss", false, false,
                             22'300'000, 1997, 180'000, 29, p));

    // --- tex: document formatter; big switches, moderate indirects.
    p = StructureParams{};
    p.loopWeight = 0.28; p.pathWeight = 0.28;
    p.patternWeight = 0.16; p.biasedWeight = 0.28;
    p.biasLow = 0.03; p.biasHigh = 0.28;
    p.condNoise = 0.045;
    p.pathDepthMax = 22;
    p.tripMin = 2; p.tripMax = 18;
    p.dispatchLoops = 2;
    p.dispatchFanMin = 24; p.dispatchFanMax = 56;
    p.dispatchTripMin = 250; p.dispatchTripMax = 650;
    p.switchFanMin = 4; p.switchFanMax = 12;
    p.indCallSites = 4;
    p.utilFunctions = 14; p.phaseFunctions = 8;
    suite.push_back(makeSpec("tex", false, false,
                             20'600'000, 2970, 310'000, 42, p));

    return suite;
}

} // anonymous namespace

const std::vector<BenchmarkSpec> &
benchmarkSuite()
{
    static const std::vector<BenchmarkSpec> suite = buildSuite();
    return suite;
}

const BenchmarkSpec &
findBenchmark(const std::string &name)
{
    for (const auto &spec : benchmarkSuite()) {
        if (spec.name == name)
            return spec;
    }
    util::fatal("unknown benchmark: " + name);
}

std::vector<std::string>
benchmarkNames(bool spec_only)
{
    std::vector<std::string> names;
    for (const auto &spec : benchmarkSuite()) {
        if (!spec_only || spec.isSpec)
            names.push_back(spec.name);
    }
    return names;
}

std::vector<std::string>
indirectHeavyNames()
{
    std::vector<std::string> names;
    for (const auto &spec : benchmarkSuite()) {
        if (spec.indirectHeavy)
            names.push_back(spec.name);
    }
    return names;
}

Program
buildProgram(const BenchmarkSpec &spec)
{
    return generateProgram(spec.structure);
}

trace::VectorTraceSource
generateTrace(const BenchmarkSpec &spec, InputKind kind,
              double extraScale)
{
    Program program = buildProgram(spec);
    const InputSet &input = kind == InputKind::Profile
        ? spec.profileInput : spec.testInput;
    ExecutionEngine engine(program, input);
    RunLimits limits;
    limits.conditionalBudget = spec.dynamicBudget(extraScale);
    return engine.runToTrace(limits);
}

} // namespace workload
} // namespace vlp
