/**
 * @file
 * Execution engine implementation.
 */

#include "workload/engine.h"

#include <cstring>

#include "util/logging.h"

namespace vlp {
namespace workload {

ExecutionEngine::ExecutionEngine(Program &program, const InputSet &input)
    : program_(program), rng_(input.seed), input_(input)
{
    std::memset(path_, 0, sizeof(path_));
}

void
ExecutionEngine::emit(std::uint64_t pc, std::uint64_t next_pc, bool taken,
                      trace::BranchKind kind, const Sink &sink)
{
    trace::BranchRecord record;
    record.pc = pc;
    record.nextPc = next_pc;
    record.taken = taken;
    record.kind = kind;
    sink(record);
    ++recordCount_;

    if (record.isConditional()) {
        ++conditionalCount_;
        outcomes_ = (outcomes_ << 1) | (taken ? 1 : 0);
    }
    // Histories visible to behaviours follow the THB insertion policy:
    // conditional and indirect destinations only.
    if (record.isConditional() || record.isIndirect()) {
        for (unsigned i = pathHistoryDepth; i-- > 1;)
            path_[i] = path_[i - 1];
        path_[0] = next_pc;
    }
}

std::uint64_t
ExecutionEngine::run(const RunLimits &limits, const Sink &sink)
{
    program_.resetBehaviorState();
    std::memset(path_, 0, sizeof(path_));
    outcomes_ = 0;
    callStack_.clear();
    conditionalCount_ = 0;
    recordCount_ = 0;

    BehaviorContext context;
    context.pathHistory = path_;
    context.rng = &rng_;
    context.noiseScale = input_.noiseScale;
    context.tripScale = input_.tripScale;

    BlockId current = program_.entryBlock(program_.mainFunction());

    while (conditionalCount_ < limits.conditionalBudget
           && recordCount_ < limits.recordBudget) {
        Block &block = program_.block(current);
        Terminator &term = block.term;
        const std::uint64_t pc = block.addr;
        context.outcomeHistory = outcomes_;

        switch (term.kind) {
          case TermKind::FallThrough:
            current = current + 1;
            break;

          case TermKind::CondBranch: {
            const bool taken = term.condBehavior->evaluate(context);
            const BlockId destination =
                taken ? term.target : current + 1;
            emit(pc, program_.blockAddr(destination), taken,
                 trace::BranchKind::Conditional, sink);
            current = destination;
            break;
          }

          case TermKind::Jump:
            emit(pc, program_.blockAddr(term.target), true,
                 trace::BranchKind::Unconditional, sink);
            current = term.target;
            break;

          case TermKind::IndirectJump: {
            const std::size_t choice =
                term.indBehavior->evaluate(context, term.targets.size());
            const BlockId destination = term.targets[choice];
            emit(pc, program_.blockAddr(destination), true,
                 trace::BranchKind::IndirectJump, sink);
            current = destination;
            break;
          }

          case TermKind::Call: {
            if (callStack_.size() >= limits.maxCallDepth)
                util::fatal("call stack overflow: recursive program?");
            const BlockId entry = program_.entryBlock(term.callee);
            emit(pc, program_.blockAddr(entry), true,
                 trace::BranchKind::DirectCall, sink);
            callStack_.push_back(current + 1);
            current = entry;
            break;
          }

          case TermKind::IndirectCall: {
            if (callStack_.size() >= limits.maxCallDepth)
                util::fatal("call stack overflow: recursive program?");
            const std::size_t choice =
                term.indBehavior->evaluate(context, term.callees.size());
            const BlockId entry =
                program_.entryBlock(term.callees[choice]);
            emit(pc, program_.blockAddr(entry), true,
                 trace::BranchKind::IndirectCall, sink);
            callStack_.push_back(current + 1);
            current = entry;
            break;
          }

          case TermKind::Return: {
            if (callStack_.empty()) {
                // Returning from main: restart it, emulating an outer
                // driver loop. No branch record is emitted (process
                // re-entry is not a branch).
                current = program_.entryBlock(program_.mainFunction());
                break;
            }
            const BlockId resume = callStack_.back();
            callStack_.pop_back();
            emit(pc, program_.blockAddr(resume), true,
                 trace::BranchKind::Return, sink);
            current = resume;
            break;
          }
        }
    }

    return recordCount_;
}

trace::VectorTraceSource
ExecutionEngine::runToTrace(const RunLimits &limits)
{
    std::vector<trace::BranchRecord> records;
    records.reserve(limits.conditionalBudget * 2);
    run(limits, [&records](const trace::BranchRecord &record) {
        records.push_back(record);
    });
    return trace::VectorTraceSource(std::move(records));
}

} // namespace workload
} // namespace vlp
