/**
 * @file
 * The synthetic-program execution engine: turns a Program plus an input
 * set into a branch trace.
 *
 * The engine models exactly what ATOM instrumentation gave the paper's
 * authors: the dynamic stream of control-transfer instructions with
 * their executed destinations. It maintains
 *  - a call stack (so returns go to real return addresses),
 *  - the path history behaviours condition on (destinations of
 *    conditional and indirect branches — the THB insertion policy), and
 *  - the global conditional-outcome history.
 */

#ifndef VLPSIM_WORKLOAD_ENGINE_H
#define VLPSIM_WORKLOAD_ENGINE_H

#include <cstdint>
#include <functional>
#include <vector>

#include "trace/branch_record.h"
#include "trace/trace_source.h"
#include "util/rng.h"
#include "workload/program.h"

namespace vlp {
namespace workload {

/**
 * An input set: what the paper calls a "profile input" or "test input".
 * Input sets with different seeds draw different data-dependent
 * outcomes; the scale knobs shift the workload distribution so that
 * profiling is evaluated on genuinely different (but similarly
 * structured) behaviour.
 */
struct InputSet
{
    /** Seed of the data-dependent random stream. */
    std::uint64_t seed = 1;
    /** Multiplies behaviour noise probabilities. */
    double noiseScale = 1.0;
    /** Multiplies loop trip counts. */
    double tripScale = 1.0;
};

/** Options controlling one engine run. */
struct RunLimits
{
    /** Stop after this many dynamic conditional branches. */
    std::uint64_t conditionalBudget = 1'000'000;
    /** Hard cap on total emitted records (safety valve). */
    std::uint64_t recordBudget = 100'000'000;
    /** Call-stack depth limit (the generator builds DAG call graphs,
     *  so hitting this indicates a malformed program). */
    std::size_t maxCallDepth = 4096;
};

/**
 * Executes a Program, delivering each dynamic branch to a sink.
 */
class ExecutionEngine
{
  public:
    /** Sink invoked once per dynamic branch, in program order. */
    using Sink = std::function<void(const trace::BranchRecord &)>;

    /**
     * @param program the program to execute (behaviour state is reset
     *        at the start of each run)
     * @param input   the input set
     */
    ExecutionEngine(Program &program, const InputSet &input);

    /**
     * Run until a limit is hit, delivering records to @p sink.
     * @return number of records emitted
     */
    std::uint64_t run(const RunLimits &limits, const Sink &sink);

    /**
     * Convenience: run and materialize the trace in memory.
     */
    trace::VectorTraceSource runToTrace(const RunLimits &limits);

  private:
    /** Record a control transfer and update engine histories. */
    void emit(std::uint64_t pc, std::uint64_t next_pc, bool taken,
              trace::BranchKind kind, const Sink &sink);

    Program &program_;
    util::Rng rng_;
    InputSet input_;

    /** Path history ring; index 0 is most recent. */
    std::uint64_t path_[pathHistoryDepth];
    /** Global conditional-outcome history (bit 0 most recent). */
    std::uint64_t outcomes_ = 0;
    /** Return-address stack of resume blocks. */
    std::vector<BlockId> callStack_;

    std::uint64_t conditionalCount_ = 0;
    std::uint64_t recordCount_ = 0;
};

} // namespace workload
} // namespace vlp

#endif // VLPSIM_WORKLOAD_ENGINE_H
