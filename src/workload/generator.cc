/**
 * @file
 * Procedural program generator implementation.
 *
 * Construction order: shared utility functions, interpreter dispatch
 * loops, work functions (until the static conditional target is met),
 * phase functions (which call the work), and finally main (a driver
 * loop selecting phases through an indirect jump).
 */

#include "workload/generator.h"

#include <algorithm>
#include <cassert>

#include "util/logging.h"

namespace vlp {
namespace workload {

namespace {

/** Stateful helper that owns the builder while generating. */
class Generator
{
  public:
    explicit Generator(const StructureParams &params)
        : params_(params), rng_(params.structureSeed)
    {
        // One indirect branch is always spent on main's phase driver.
        indBudget_ = params.targetStaticInd > 0
                       ? params.targetStaticInd - 1 : 0;
    }

    Program build();

  private:
    /** @name Behaviour factories */
    /// @{
    double drawBias();
    std::unique_ptr<ConditionalBehavior> makeBiased();
    std::unique_ptr<ConditionalBehavior> drawCondBehavior();
    std::unique_ptr<ConditionalBehavior> drawShallowPathBehavior();
    std::unique_ptr<IndirectBehavior> drawSwitchBehavior();
    /// @}

    /** @name In-function motif emitters */
    /// @{
    void emitIfMotif(std::unique_ptr<ConditionalBehavior> behavior);
    void emitLoopMotif(unsigned nesting);
    void emitSwitchMotif();
    void emitCallMotif();
    /// @}

    /** Pick a callee among utilities and earlier work functions. */
    FuncId pickCallee();

    void buildUtilFunction();
    void buildDispatchFunction();
    void buildWorkFunction();
    FuncId buildPhaseFunction(const std::vector<FuncId> &funcs,
                              unsigned ind_call_sites);
    FuncId buildMain(const std::vector<FuncId> &phases);

    const StructureParams &params_;
    util::Rng rng_;
    ProgramBuilder builder_;

    unsigned indBudget_ = 0;
    double switchProb_ = 0.1;
    std::vector<FuncId> utils_;
    std::vector<FuncId> workFuncs_;
    std::vector<FuncId> dispatchFuncs_;
};

std::unique_ptr<ConditionalBehavior>
Generator::drawCondBehavior()
{
    const std::vector<double> weights = {
        params_.loopWeight, params_.pathWeight,
        params_.patternWeight, params_.biasedWeight,
    };
    switch (rng_.nextWeighted(weights)) {
      case 0: {
        // A loop-like repetition condition outside a loop motif:
        // model as a short regular loop branch.
        const unsigned lo = params_.tripMin;
        const unsigned hi = std::max(params_.tripMin, params_.tripMax);
        return std::make_unique<LoopBehavior>(lo, hi,
                                              rng_.nextBool(0.85));
      }
      case 1: {
        // Skew the correlation distances toward short: real path
        // correlation mostly comes from nearby context (call sites,
        // recent decisions), with a tail of branches needing longer
        // paths. The tail is also where intervening control flow adds
        // path diversity, so deep branches are only partly learnable —
        // as in real programs.
        const unsigned depth = std::max(
            params_.pathDepthMin,
            rng_.nextGeometric(0.72, std::max(params_.pathDepthMin,
                                              params_.pathDepthMax)));
        return std::make_unique<PathCorrelatedBehavior>(
            depth, rng_.nextBool(0.5), params_.condNoise, rng_.next());
      }
      case 2: {
        const unsigned depth = std::max(
            params_.patternDepthMin,
            rng_.nextGeometric(0.65, std::max(params_.patternDepthMin,
                                              params_.patternDepthMax)));
        return std::make_unique<PatternCorrelatedBehavior>(
            depth, params_.condNoise, rng_.next());
      }
      default:
        return makeBiased();
    }
}

double
Generator::drawBias()
{
    // Cube the draw so most data-dependent branches are very strongly
    // biased (margins of a percent or two) with a tail of genuinely
    // unpredictable ones — matching measured branch-bias distributions,
    // where the bulk of "random" branches rarely flip.
    const double u = rng_.nextDouble();
    double bias = params_.biasLow
        + u * u * u * (params_.biasHigh - params_.biasLow);
    if (rng_.nextBool(0.5))
        bias = 1.0 - bias;
    return bias;
}

std::unique_ptr<ConditionalBehavior>
Generator::makeBiased()
{
    const double p = drawBias();
    if (rng_.nextBool(params_.iidBiasFrac))
        return std::make_unique<BiasedBehavior>(p, 1);
    // Phase-invariant condition: hold the outcome for 32..256
    // executions between re-draws.
    const unsigned window = 32u << rng_.nextBelow(4);
    return std::make_unique<BiasedBehavior>(p, window);
}

std::unique_ptr<ConditionalBehavior>
Generator::drawShallowPathBehavior()
{
    // Branches inside utility functions and dispatch handlers: a mix
    // in which path correlation (discriminating call sites / the
    // previous dispatch target — invisible to outcome histories) is
    // prominent but not dominant; most helper-function branches in
    // real code are still data- or pattern-driven.
    const double draw = rng_.nextDouble();
    if (draw < 0.35) {
        const unsigned depth =
            static_cast<unsigned>(rng_.nextInRange(2, 8));
        return std::make_unique<PathCorrelatedBehavior>(
            depth, rng_.nextBool(0.3), params_.condNoise, rng_.next());
    }
    if (draw < 0.60) {
        const unsigned depth =
            static_cast<unsigned>(rng_.nextInRange(2, 6));
        return std::make_unique<PatternCorrelatedBehavior>(
            depth, params_.condNoise, rng_.next());
    }
    if (draw < 0.85)
        return makeBiased();
    return std::make_unique<LoopBehavior>(
        params_.tripMin,
        std::max(params_.tripMin, params_.tripMax / 4),
        rng_.nextBool(0.85));
}

std::unique_ptr<IndirectBehavior>
Generator::drawSwitchBehavior()
{
    const double draw = rng_.nextDouble();
    if (draw < params_.switchPathFrac) {
        const unsigned depth =
            static_cast<unsigned>(rng_.nextInRange(1, 6));
        return std::make_unique<PathDispatchBehavior>(
            depth, params_.indNoise, rng_.next());
    }
    if (draw < params_.switchPathFrac + params_.switchMarkovFrac) {
        const unsigned order = static_cast<unsigned>(rng_.nextInRange(
            params_.markovOrderMin,
            std::max(params_.markovOrderMin, params_.markovOrderMax)));
        return std::make_unique<MarkovBehavior>(order, params_.indNoise,
                                                rng_.next());
    }
    return std::make_unique<RandomDispatchBehavior>(1.2);
}

void
Generator::emitIfMotif(std::unique_ptr<ConditionalBehavior> behavior)
{
    // C: cond, taken skips the then-block; T: then-side work; J: join.
    const BlockId cond = builder_.addBlock();
    const BlockId then_block = builder_.addBlock();
    const BlockId join = builder_.addBlock();
    builder_.setCond(cond, join, std::move(behavior));
    // Then-sides only ever call cheap utilities: if-motifs appear
    // inside loop bodies, where a call to an arbitrary work function
    // would multiply its cost by the trip count.
    if (!utils_.empty() && rng_.nextBool(params_.callProb))
        builder_.setCall(then_block,
                         utils_[rng_.nextBelow(utils_.size())]);
    (void)join; // join falls through to whatever comes next
}

void
Generator::emitLoopMotif(unsigned nesting)
{
    // Do-while: body motifs first, back-edge conditional at the end.
    const BlockId body_first = builder_.addBlock();

    // Track whether the body multiplies work (nested loop or call):
    // such loops get short trip counts so per-invocation cost stays
    // bounded, while simple bodies iterate a lot — matching the hot
    // inner loops that dominate real dynamic profiles.
    bool heavy = false;
    const unsigned inner_motifs =
        static_cast<unsigned>(rng_.nextInRange(2, 4));
    for (unsigned i = 0; i < inner_motifs; ++i) {
        const double draw = rng_.nextDouble();
        if (nesting > 0 && draw < 0.20) {
            emitLoopMotif(nesting - 1);
            heavy = true;
        } else if (draw < 0.75) {
            emitIfMotif(drawCondBehavior());
        } else if (draw < 0.81 && !utils_.empty()) {
            // Loop bodies call only cheap utilities.
            const BlockId call = builder_.addBlock();
            builder_.setCall(call,
                             utils_[rng_.nextBelow(utils_.size())]);
            heavy = true;
        } else {
            builder_.addBlock(); // straight-line work
        }
    }

    const BlockId backedge = builder_.addBlock();
    unsigned lo = params_.tripMin;
    unsigned hi = std::max(params_.tripMin, params_.tripMax);
    if (heavy) {
        // Keep work-multiplying loops bounded, but never so short that
        // the 1/trip exit cost dominates.
        lo = std::min(lo, 8u);
        hi = std::max({lo, 8u, hi / 8});
    }
    if (nesting == 0)
        hi = std::max({lo, 10u, hi / 4});
    builder_.setCond(backedge, body_first,
                     std::make_unique<LoopBehavior>(lo, hi,
                                                    rng_.nextBool(0.92)));
}

void
Generator::emitSwitchMotif()
{
    assert(indBudget_ > 0);
    --indBudget_;

    const unsigned fan = static_cast<unsigned>(rng_.nextInRange(
        params_.switchFanMin,
        std::max(params_.switchFanMin, params_.switchFanMax)));

    const BlockId switch_block = builder_.addBlock();
    std::vector<BlockId> handlers;
    std::vector<BlockId> handler_jumps;
    handlers.reserve(fan);
    for (unsigned i = 0; i < fan; ++i) {
        const BlockId handler = builder_.addBlock();
        handlers.push_back(handler);
        if (rng_.nextBool(0.4))
            emitIfMotif(drawShallowPathBehavior());
        else if (!utils_.empty() && rng_.nextBool(0.3))
            builder_.setCall(handler, pickCallee());
        handler_jumps.push_back(builder_.addBlock());
    }
    const BlockId join = builder_.addBlock();
    for (BlockId jump : handler_jumps)
        builder_.setJump(jump, join);
    builder_.setIndirectJump(switch_block, std::move(handlers),
                             drawSwitchBehavior());
}

void
Generator::emitCallMotif()
{
    const BlockId call = builder_.addBlock();
    builder_.setCall(call, pickCallee());
}

FuncId
Generator::pickCallee()
{
    assert(!utils_.empty());
    // Mostly utilities; occasionally an earlier work function, capped
    // at a window of 24 so dynamic call chains stay shallow.
    if (!workFuncs_.empty() && rng_.nextBool(0.25)) {
        const std::size_t window = std::min<std::size_t>(
            workFuncs_.size(), 24);
        const std::size_t offset = rng_.nextBelow(window);
        return workFuncs_[workFuncs_.size() - 1 - offset];
    }
    return utils_[rng_.nextBelow(utils_.size())];
}

void
Generator::buildUtilFunction()
{
    const FuncId func = builder_.beginFunction();
    builder_.addBlock(); // entry
    const unsigned motifs = static_cast<unsigned>(rng_.nextInRange(1, 3));
    for (unsigned i = 0; i < motifs; ++i) {
        if (rng_.nextBool(0.5))
            emitIfMotif(drawShallowPathBehavior());
        else
            emitIfMotif(drawCondBehavior());
    }
    const BlockId ret = builder_.addBlock();
    builder_.setReturn(ret);
    builder_.endFunction();
    utils_.push_back(func);
}

void
Generator::buildDispatchFunction()
{
    assert(indBudget_ > 0);
    --indBudget_;

    const FuncId func = builder_.beginFunction();
    builder_.addBlock(); // entry, falls through to the dispatch block

    const unsigned fan = static_cast<unsigned>(rng_.nextInRange(
        params_.dispatchFanMin,
        std::max(params_.dispatchFanMin, params_.dispatchFanMax)));
    const unsigned order = static_cast<unsigned>(rng_.nextInRange(
        params_.markovOrderMin,
        std::max(params_.markovOrderMin, params_.markovOrderMax)));

    const BlockId dispatch = builder_.addBlock();
    std::vector<BlockId> handlers;
    std::vector<BlockId> handler_jumps;
    handlers.reserve(fan);
    for (unsigned i = 0; i < fan; ++i) {
        const BlockId handler = builder_.addBlock();
        handlers.push_back(handler);
        // Handler bodies: a shallow path-correlated conditional and/or
        // a call to a small utility.
        if (rng_.nextBool(0.5))
            emitIfMotif(drawShallowPathBehavior());
        if (!utils_.empty() && rng_.nextBool(0.25))
            builder_.setCall(handler, pickCallee());
        handler_jumps.push_back(builder_.addBlock());
    }

    const BlockId backedge = builder_.addBlock();
    const BlockId ret = builder_.addBlock();
    builder_.setReturn(ret);
    for (BlockId jump : handler_jumps)
        builder_.setJump(jump, backedge);
    builder_.setCond(backedge, dispatch,
                     std::make_unique<LoopBehavior>(
                         params_.dispatchTripMin,
                         std::max(params_.dispatchTripMin,
                                  params_.dispatchTripMax),
                         false));
    builder_.setIndirectJump(dispatch, std::move(handlers),
                             std::make_unique<MarkovBehavior>(
                                 order, params_.indNoise, rng_.next()));
    builder_.endFunction();
    dispatchFuncs_.push_back(func);
}

void
Generator::buildWorkFunction()
{
    const FuncId func = builder_.beginFunction();
    builder_.addBlock(); // entry

    const unsigned motifs = static_cast<unsigned>(rng_.nextInRange(2, 5));
    for (unsigned i = 0; i < motifs; ++i) {
        const double draw = rng_.nextDouble();
        if (draw < 0.40) {
            emitLoopMotif(1);
        } else if (draw < 0.80) {
            const unsigned chain =
                static_cast<unsigned>(rng_.nextInRange(1, 3));
            for (unsigned j = 0; j < chain; ++j)
                emitIfMotif(drawCondBehavior());
        } else if (indBudget_ > 0 && rng_.nextBool(switchProb_)) {
            emitSwitchMotif();
        } else {
            emitCallMotif();
        }
    }

    const BlockId ret = builder_.addBlock();
    builder_.setReturn(ret);
    builder_.endFunction();
    workFuncs_.push_back(func);
}

FuncId
Generator::buildPhaseFunction(const std::vector<FuncId> &funcs,
                              unsigned ind_call_sites)
{
    const FuncId func = builder_.beginFunction();
    builder_.addBlock(); // entry

    for (std::size_t i = 0; i < funcs.size(); ++i) {
        const BlockId call = builder_.addBlock();
        builder_.setCall(call, funcs[i]);
        if (rng_.nextBool(0.3))
            emitIfMotif(drawCondBehavior());
    }

    for (unsigned i = 0; i < ind_call_sites && !workFuncs_.empty(); ++i) {
        const unsigned fan = static_cast<unsigned>(rng_.nextInRange(
            params_.indCallFanMin,
            std::max(params_.indCallFanMin, params_.indCallFanMax)));
        std::vector<FuncId> callees;
        callees.reserve(fan);
        for (unsigned j = 0; j < fan; ++j)
            callees.push_back(
                workFuncs_[rng_.nextBelow(workFuncs_.size())]);
        std::unique_ptr<IndirectBehavior> behavior;
        if (rng_.nextBool(0.6)) {
            behavior = std::make_unique<PathDispatchBehavior>(
                static_cast<unsigned>(rng_.nextInRange(1, 8)),
                params_.indNoise, rng_.next());
        } else {
            behavior = std::make_unique<MarkovBehavior>(
                static_cast<unsigned>(rng_.nextInRange(
                    params_.markovOrderMin,
                    std::max(params_.markovOrderMin,
                             params_.markovOrderMax))),
                params_.indNoise, rng_.next());
        }
        const BlockId site = builder_.addBlock();
        builder_.setIndirectCall(site, std::move(callees),
                                 std::move(behavior));
    }

    const BlockId ret = builder_.addBlock();
    builder_.setReturn(ret);
    builder_.endFunction();
    return func;
}

FuncId
Generator::buildMain(const std::vector<FuncId> &phases)
{
    assert(!phases.empty());
    const FuncId func = builder_.beginFunction();
    const BlockId driver = builder_.addBlock();
    std::vector<BlockId> stubs;
    std::vector<BlockId> stub_jumps;
    stubs.reserve(phases.size());
    for (FuncId phase : phases) {
        const BlockId stub = builder_.addBlock();
        builder_.setCall(stub, phase);
        stubs.push_back(stub);
        stub_jumps.push_back(builder_.addBlock());
    }
    for (BlockId jump : stub_jumps)
        builder_.setJump(jump, driver);
    builder_.setIndirectJump(
        driver, std::move(stubs),
        std::make_unique<RandomDispatchBehavior>(params_.phaseZipf));
    builder_.endFunction();
    return func;
}

Program
Generator::build()
{
    const unsigned num_utils = std::max(1u, params_.utilFunctions);
    for (unsigned i = 0; i < num_utils; ++i)
        buildUtilFunction();

    for (unsigned i = 0;
         i < params_.dispatchLoops && indBudget_ > 0; ++i) {
        buildDispatchFunction();
    }

    // Reserve some conditional budget for the phase functions, and
    // pace switch emission so the whole static-indirect budget is
    // spread over the expected number of work functions (benchmarks
    // like gs have hundreds of switch statements to place).
    const unsigned num_phases = std::max(1u, params_.phaseFunctions);
    const unsigned phase_reserve = num_phases * 2;
    const unsigned cond_remaining =
        params_.targetStaticCond
        > builder_.staticConditionals() + phase_reserve
            ? params_.targetStaticCond - phase_reserve
                  - static_cast<unsigned>(builder_.staticConditionals())
            : 0;
    const double expected_motifs =
        std::max(1.0, cond_remaining / 10.0) * 3.5;
    switchProb_ = std::min(
        0.6, (indBudget_ > params_.indCallSites
                  ? indBudget_ - params_.indCallSites : 0)
                 / expected_motifs * 5.0);
    while (builder_.staticConditionals() + phase_reserve
           < params_.targetStaticCond) {
        buildWorkFunction();
    }

    // Distribute work/dispatch functions across phases: deal them
    // round-robin so every function is reachable, then add extras.
    std::vector<FuncId> pool = workFuncs_;
    pool.insert(pool.end(), dispatchFuncs_.begin(), dispatchFuncs_.end());
    // Deterministic shuffle.
    for (std::size_t i = pool.size(); i > 1; --i)
        std::swap(pool[i - 1], pool[rng_.nextBelow(i)]);

    std::vector<std::vector<FuncId>> phase_funcs(num_phases);
    for (std::size_t i = 0; i < pool.size(); ++i)
        phase_funcs[i % num_phases].push_back(pool[i]);
    for (auto &funcs : phase_funcs) {
        const unsigned extras = static_cast<unsigned>(rng_.nextInRange(
            0, std::max(1u, params_.phaseCallsMax / 4)));
        for (unsigned i = 0; i < extras && !pool.empty(); ++i)
            funcs.push_back(pool[rng_.nextBelow(pool.size())]);
        if (funcs.empty() && !utils_.empty())
            funcs.push_back(utils_[0]);
    }

    // Spread the indirect-call sites across phases.
    std::vector<FuncId> phases;
    phases.reserve(num_phases);
    unsigned sites_left =
        std::min(params_.indCallSites, indBudget_);
    indBudget_ -= sites_left;
    for (unsigned i = 0; i < num_phases; ++i) {
        const unsigned sites = (sites_left + num_phases - 1 - i)
                               / num_phases;
        const unsigned take = std::min(sites, sites_left);
        sites_left -= take;
        phases.push_back(buildPhaseFunction(phase_funcs[i], take));
    }

    const FuncId main_func = buildMain(phases);
    return builder_.finalize(main_func);
}

} // anonymous namespace

Program
generateProgram(const StructureParams &params)
{
    Generator generator(params);
    return generator.build();
}

} // namespace workload
} // namespace vlp
