/**
 * @file
 * The synthetic program representation: a control-flow graph of
 * single-instruction blocks grouped into functions, each block ending in
 * a terminator (conditional branch, jump, indirect jump, call, indirect
 * call, return, or plain fall-through).
 *
 * Programs are built with ProgramBuilder (which lays out addresses and
 * validates the graph) and executed by ExecutionEngine (engine.h), which
 * turns them into branch traces.
 *
 * Address model: every block is 4 bytes (one instruction, as on the
 * Alpha), blocks of a function are contiguous, and fall-through from a
 * conditional branch goes to the lexically next block. This gives
 * realistic word-aligned addresses with full entropy above bit 1.
 */

#ifndef VLPSIM_WORKLOAD_PROGRAM_H
#define VLPSIM_WORKLOAD_PROGRAM_H

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "workload/behavior.h"

namespace vlp {
namespace workload {

/** Index of a block within a Program. */
using BlockId = std::uint32_t;
/** Index of a function within a Program. */
using FuncId = std::uint32_t;

/** Sentinel for "no block" / "no function". */
constexpr BlockId invalidId = std::numeric_limits<std::uint32_t>::max();

/** Bytes per block (one Alpha-style instruction). */
constexpr std::uint64_t blockBytes = 4;

/** Base address of the synthetic text segment. */
constexpr std::uint64_t textBase = 0x0000000000400000ULL;

/** The kinds of block terminators. */
enum class TermKind : std::uint8_t {
    /** No branch; execution continues at the next block. */
    FallThrough,
    /** Conditional direct branch; not-taken falls through. */
    CondBranch,
    /** Unconditional direct jump. */
    Jump,
    /** Indirect jump through a jump table (switch). */
    IndirectJump,
    /** Direct call; execution resumes at the next block on return. */
    Call,
    /** Indirect call through a function pointer / vtable. */
    IndirectCall,
    /** Subroutine return. */
    Return,
};

/** A block's terminator and its outgoing edges. */
struct Terminator
{
    TermKind kind = TermKind::FallThrough;
    /** CondBranch taken target or Jump target. */
    BlockId target = invalidId;
    /** IndirectJump candidate target blocks. */
    std::vector<BlockId> targets;
    /** Call callee. */
    FuncId callee = invalidId;
    /** IndirectCall candidate callees. */
    std::vector<FuncId> callees;
    /** Outcome model for CondBranch. */
    std::unique_ptr<ConditionalBehavior> condBehavior;
    /** Target model for IndirectJump / IndirectCall. */
    std::unique_ptr<IndirectBehavior> indBehavior;
};

/** One single-instruction basic block. */
struct Block
{
    /** Start address (== the terminator instruction's PC). */
    std::uint64_t addr = 0;
    /** Function this block belongs to. */
    FuncId func = invalidId;
    Terminator term;
};

/** A function: a contiguous run of blocks, entered at the first. */
struct Function
{
    BlockId firstBlock = invalidId;
    std::uint32_t numBlocks = 0;
};

/**
 * A complete synthetic program. Behaviour objects carry per-branch
 * mutable state (loop counters, Markov histories); call
 * resetBehaviorState() before each independent run.
 */
class Program
{
  public:
    /** All blocks, indexable by BlockId. */
    const std::vector<Block> &blocks() const { return blocks_; }

    /** All functions, indexable by FuncId. */
    const std::vector<Function> &functions() const { return functions_; }

    /** The function execution starts in. */
    FuncId mainFunction() const { return main_; }

    /** Block by id (bounds-checked by assert). */
    const Block &block(BlockId id) const;

    /** Mutable block access (behaviour state lives in terminators). */
    Block &block(BlockId id);

    /** Entry block of @p func. */
    BlockId entryBlock(FuncId func) const;

    /** Address of @p block's instruction. */
    std::uint64_t blockAddr(BlockId id) const { return block(id).addr; }

    /** Number of static conditional branches. */
    std::uint64_t staticConditionals() const;

    /** Number of static indirect branches (jumps + calls). */
    std::uint64_t staticIndirects() const;

    /** Reset all per-branch behaviour state for a fresh run. */
    void resetBehaviorState();

  private:
    friend class ProgramBuilder;

    std::vector<Block> blocks_;
    std::vector<Function> functions_;
    FuncId main_ = invalidId;
};

/**
 * Incremental builder for Program.
 *
 * Usage:
 * @code
 *   ProgramBuilder builder;
 *   FuncId f = builder.beginFunction();
 *   BlockId header = builder.addBlock();
 *   BlockId body = builder.addBlock();
 *   ...
 *   builder.setCond(header, exit_block,
 *                   std::make_unique<LoopBehavior>(4, 12, true));
 *   builder.setReturn(last);
 *   builder.endFunction();
 *   Program program = builder.finalize(f);
 * @endcode
 *
 * finalize() assigns addresses and validates the whole graph; structural
 * errors (dangling targets, fall-through off the end of a function,
 * conditional branches as the last block, missing behaviours) raise
 * std::runtime_error via util::fatal.
 */
class ProgramBuilder
{
  public:
    ProgramBuilder() = default;

    /** Start a new function; returns its id. */
    FuncId beginFunction();

    /** Append a fall-through block to the current function. */
    BlockId addBlock();

    /**
     * Make @p id a conditional branch to @p taken_target; not-taken
     * falls through to the next block (which must exist).
     */
    void setCond(BlockId id, BlockId taken_target,
                 std::unique_ptr<ConditionalBehavior> behavior);

    /** Make @p id an unconditional jump to @p target. */
    void setJump(BlockId id, BlockId target);

    /** Make @p id an indirect jump over @p targets. */
    void setIndirectJump(BlockId id, std::vector<BlockId> targets,
                         std::unique_ptr<IndirectBehavior> behavior);

    /** Make @p id a direct call to @p callee, resuming at the next
     *  block. */
    void setCall(BlockId id, FuncId callee);

    /** Make @p id an indirect call over @p callees, resuming at the
     *  next block. */
    void setIndirectCall(BlockId id, std::vector<FuncId> callees,
                         std::unique_ptr<IndirectBehavior> behavior);

    /** Make @p id a return. */
    void setReturn(BlockId id);

    /** Close the current function. */
    void endFunction();

    /** Static conditional branches added so far. */
    std::uint64_t staticConditionals() const { return staticCond_; }

    /** Static indirect branches added so far. */
    std::uint64_t staticIndirects() const { return staticInd_; }

    /** Functions begun so far. */
    std::size_t functionCount() const { return program_.functions_.size(); }

    /**
     * Validate, lay out addresses, and produce the Program.
     * @param main the function execution starts in
     */
    Program finalize(FuncId main);

  private:
    Block &editableBlock(BlockId id);

    Program program_;
    bool inFunction_ = false;
    std::uint64_t staticCond_ = 0;
    std::uint64_t staticInd_ = 0;
};

} // namespace workload
} // namespace vlp

#endif // VLPSIM_WORKLOAD_PROGRAM_H
