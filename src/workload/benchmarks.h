/**
 * @file
 * The 16 benchmark models of the paper's evaluation (8 SPECint95 + 8
 * non-SPEC programs), realized as parameterizations of the synthetic
 * program generator.
 *
 * Static branch counts follow the paper's Table 1; dynamic counts are
 * the paper's scaled by 1/20 by default (multiplied further by
 * VLPSIM_SCALE). Every benchmark has a distinct *profile* and *test*
 * input set, as the paper's profiling methodology requires.
 */

#ifndef VLPSIM_WORKLOAD_BENCHMARKS_H
#define VLPSIM_WORKLOAD_BENCHMARKS_H

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace_source.h"
#include "workload/engine.h"
#include "workload/generator.h"

namespace vlp {
namespace workload {

/** Which input set to run. */
enum class InputKind { Profile, Test };

/** A benchmark: structure parameters plus run budgets and inputs. */
struct BenchmarkSpec
{
    /** Short name used throughout the paper ("gcc", "perl", ...). */
    std::string name;
    /** True for the eight SPECint95 members. */
    bool isSpec = false;
    /** True for the eight indirect-branch-heavy programs of Table 3. */
    bool indirectHeavy = false;
    /** Structure parameters fed to generateProgram(). */
    StructureParams structure;
    /** Paper dynamic conditional branch count (unscaled). */
    std::uint64_t paperDynamicCond = 0;
    /** Paper dynamic indirect branch count (unscaled), for reference. */
    std::uint64_t paperDynamicIndirect = 0;
    /** Paper static conditional branch count (Table 1). */
    unsigned paperStaticCond = 0;
    /** Paper static indirect branch count (Table 1). */
    unsigned paperStaticInd = 0;
    /** Profile input set. */
    InputSet profileInput;
    /** Test input set. */
    InputSet testInput;

    /**
     * Dynamic conditional-branch budget for one run: the paper count
     * scaled by baseScale (1/20) times VLPSIM_SCALE times @p extra.
     */
    std::uint64_t dynamicBudget(double extra = 1.0) const;
};

/**
 * Version of the synthetic trace generator, part of every artifact-
 * cache key. Bump it whenever generateTrace() output can change for an
 * unchanged (spec, kind, scale) so stale cached profiles are
 * invalidated instead of reused.
 */
constexpr unsigned generatorVersion = 1;

/** Default scale between paper dynamic counts and simulated counts. */
constexpr double baseScale = 1.0 / 20.0;

/**
 * Scale between paper static branch counts and generated ones. Statics
 * are scaled less aggressively than dynamics (1/3 vs 1/20) so that
 * per-branch training counts stay within a small factor of the
 * paper's; see DESIGN.md §3.
 */
constexpr double staticScale = 1.0 / 3.0;

/** The full 16-benchmark suite, in the paper's presentation order. */
const std::vector<BenchmarkSpec> &benchmarkSuite();

/**
 * Find a benchmark by name.
 * @throws std::runtime_error for unknown names
 */
const BenchmarkSpec &findBenchmark(const std::string &name);

/** Names of all benchmarks; @p spec_only restricts to SPECint95. */
std::vector<std::string> benchmarkNames(bool spec_only = false);

/** Names of the 8 indirect-branch-heavy benchmarks (Table 3). */
std::vector<std::string> indirectHeavyNames();

/** Build the benchmark's program (deterministic per spec). */
Program buildProgram(const BenchmarkSpec &spec);

/**
 * Generate a branch trace for @p spec on the given input set.
 *
 * @param spec  benchmark to run
 * @param kind  profile or test input
 * @param extraScale multiplies the dynamic budget (1.0 = default)
 */
trace::VectorTraceSource generateTrace(const BenchmarkSpec &spec,
                                       InputKind kind,
                                       double extraScale = 1.0);

} // namespace workload
} // namespace vlp

#endif // VLPSIM_WORKLOAD_BENCHMARKS_H
