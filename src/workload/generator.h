/**
 * @file
 * Procedural program generator: builds a random-but-structured Program
 * from a StructureParams description.
 *
 * The generator composes programs from the motifs that dominate integer
 * codes: loop nests with data-dependent inner conditionals, if-chains,
 * switch statements, interpreter-style dispatch loops, call trees over
 * shared utility functions, and indirect call sites (function-pointer /
 * virtual dispatch). The *structure* seed fixes the program — including
 * the per-branch deterministic outcome/target mappings, which are part
 * of the program's code — while data-dependent draws happen at
 * execution time from the input set's seed.
 */

#ifndef VLPSIM_WORKLOAD_GENERATOR_H
#define VLPSIM_WORKLOAD_GENERATOR_H

#include <cstdint>

#include "util/rng.h"
#include "workload/program.h"

namespace vlp {
namespace workload {

/**
 * Knobs describing a benchmark's structure. The 16 per-benchmark
 * parameterizations live in benchmarks.cc.
 */
struct StructureParams
{
    /** Seed defining the program (CFG shape and branch mappings). */
    std::uint64_t structureSeed = 1;

    /** Approximate static conditional branch count to generate. */
    unsigned targetStaticCond = 2000;
    /** Approximate static indirect branch count to generate. */
    unsigned targetStaticInd = 30;

    /** @name Conditional behaviour mix (relative weights) */
    /// @{
    double loopWeight = 0.30;
    double pathWeight = 0.30;
    double patternWeight = 0.15;
    double biasedWeight = 0.25;
    /// @}

    /** @name Path / pattern correlation depths */
    /// @{
    unsigned pathDepthMin = 1;
    unsigned pathDepthMax = 24;
    unsigned patternDepthMin = 2;
    unsigned patternDepthMax = 8;
    /// @}

    /** Flip probability for correlated conditionals. */
    double condNoise = 0.04;
    /** Taken-probability band for biased branches (mirrored around
     *  0.5, so a draw of 0.08 yields either 0.08 or 0.92). */
    double biasLow = 0.02;
    double biasHigh = 0.25;
    /**
     * Fraction of biased branches whose outcome is drawn independently
     * per execution (truly data-dependent); the rest hold their
     * outcome over long windows (loop/phase-invariant conditions).
     */
    double iidBiasFrac = 0.25;

    /** @name Loop trip counts */
    /// @{
    unsigned tripMin = 2;
    unsigned tripMax = 24;
    /// @}

    /** @name Interpreter dispatch loops */
    /// @{
    unsigned dispatchLoops = 0;
    unsigned dispatchFanMin = 24;
    unsigned dispatchFanMax = 64;
    unsigned markovOrderMin = 1;
    unsigned markovOrderMax = 4;
    /** Iterations of a dispatch loop per activation. */
    unsigned dispatchTripMin = 50;
    unsigned dispatchTripMax = 400;
    /// @}

    /** Noise (random-target probability) for indirect behaviours. */
    double indNoise = 0.10;

    /** @name Switch statements in work functions */
    /// @{
    unsigned switchFanMin = 4;
    unsigned switchFanMax = 12;
    /** Probability a switch uses path dispatch (else Markov, else
     *  random per the two fractions). */
    double switchPathFrac = 0.4;
    double switchMarkovFrac = 0.4;
    /// @}

    /** @name Indirect call sites (function-pointer / virtual) */
    /// @{
    unsigned indCallSites = 0;
    unsigned indCallFanMin = 2;
    unsigned indCallFanMax = 8;
    /// @}

    /** @name Call structure */
    /// @{
    /** Shared small utility functions (callable from anywhere). */
    unsigned utilFunctions = 8;
    /** Probability a motif block calls some earlier function. */
    double callProb = 0.12;
    /** Top-level phase functions selected by main's driver loop. */
    unsigned phaseFunctions = 8;
    /** Zipf skew of phase selection in main. */
    double phaseZipf = 0.4;
    /** Work functions called per phase. */
    unsigned phaseCallsMin = 6;
    unsigned phaseCallsMax = 20;
    /// @}
};

/**
 * Build a program from @p params. Deterministic: the same params yield
 * the identical program (including behaviour mapping seeds).
 */
Program generateProgram(const StructureParams &params);

} // namespace workload
} // namespace vlp

#endif // VLPSIM_WORKLOAD_GENERATOR_H
