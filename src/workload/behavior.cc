/**
 * @file
 * Branch behaviour implementations.
 */

#include "workload/behavior.h"

#include <cassert>

namespace vlp {
namespace workload {

std::uint64_t
mix64(std::uint64_t value)
{
    value ^= value >> 30;
    value *= 0xbf58476d1ce4e5b9ULL;
    value ^= value >> 27;
    value *= 0x94d049bb133111ebULL;
    value ^= value >> 31;
    return value;
}

std::size_t
concentratedTarget(std::uint64_t key, std::size_t fan)
{
    // Map a hashed context to a target with a skewed (cubed-uniform)
    // distribution: distinct contexts pile onto a few popular targets,
    // as measured in real interpreters and virtual-call sites, instead
    // of spreading uniformly over the whole table.
    const double u = (key >> 11) * 0x1.0p-53;
    auto target = static_cast<std::size_t>(u * u * u
                                           * static_cast<double>(fan));
    return target >= fan ? fan - 1 : target;
}

std::uint64_t
hashPath(const std::uint64_t *path, unsigned depth)
{
    assert(depth >= 1 && depth <= pathHistoryDepth);
    std::uint64_t key = 0x243f6a8885a308d3ULL;
    for (unsigned i = 0; i < depth; ++i)
        key = mix64(key ^ path[i]);
    return key;
}

LoopBehavior::LoopBehavior(unsigned minTrip, unsigned maxTrip,
                           bool regular)
    : minTrip_(minTrip), maxTrip_(maxTrip), regular_(regular)
{
    assert(minTrip >= 1 && maxTrip >= minTrip);
}

unsigned
LoopBehavior::drawTrip(BehaviorContext &context)
{
    unsigned trip;
    if (regular_) {
        // Re-draw the trip count only rarely; phases of a program tend
        // to iterate over same-sized structures for a while.
        if (stickyUses_ == 0) {
            stickyTrip_ = static_cast<unsigned>(
                context.rng->nextInRange(minTrip_, maxTrip_));
            stickyUses_ = 256;
        }
        --stickyUses_;
        trip = stickyTrip_;
    } else {
        trip = static_cast<unsigned>(
            context.rng->nextInRange(minTrip_, maxTrip_));
    }
    trip = static_cast<unsigned>(trip * context.tripScale);
    return trip < 1 ? 1 : trip;
}

bool
LoopBehavior::evaluate(BehaviorContext &context)
{
    if (remaining_ == 0)
        remaining_ = drawTrip(context);
    // Taken = loop again. The final iteration falls through.
    --remaining_;
    return remaining_ != 0;
}

PathCorrelatedBehavior::PathCorrelatedBehavior(unsigned depth, bool dual,
                                               double noise,
                                               std::uint64_t seed)
    : depth_(depth), dual_(dual), noise_(noise), seed_(seed)
{
    assert(depth >= 1 && depth <= pathHistoryDepth);
    assert(noise >= 0.0 && noise <= 1.0);
}

bool
PathCorrelatedBehavior::evaluate(BehaviorContext &context)
{
    std::uint64_t key = mix64(context.pathHistory[depth_ - 1] ^ seed_);
    if (dual_ && depth_ >= 2)
        key = mix64(key ^ context.pathHistory[(depth_ - 1) / 2]);
    const bool outcome = (key & 1) != 0;
    if (context.rng->nextBool(noise_ * context.noiseScale))
        return !outcome;
    return outcome;
}

PatternCorrelatedBehavior::PatternCorrelatedBehavior(unsigned depth,
                                                     double noise,
                                                     std::uint64_t seed)
    : depth_(depth), noise_(noise), seed_(seed)
{
    assert(depth >= 1 && depth <= 32);
    assert(noise >= 0.0 && noise <= 1.0);
}

bool
PatternCorrelatedBehavior::evaluate(BehaviorContext &context)
{
    const std::uint64_t pattern =
        context.outcomeHistory & ((std::uint64_t{1} << depth_) - 1);
    const bool outcome = (mix64(pattern ^ seed_) & 1) != 0;
    if (context.rng->nextBool(noise_ * context.noiseScale))
        return !outcome;
    return outcome;
}

BiasedBehavior::BiasedBehavior(double takenProbability, unsigned window)
    : takenProbability_(takenProbability), window_(window)
{
    assert(takenProbability >= 0.0 && takenProbability <= 1.0);
    assert(window >= 1);
}

bool
BiasedBehavior::evaluate(BehaviorContext &context)
{
    if (window_ == 1)
        return context.rng->nextBool(takenProbability_);
    if (remaining_ == 0) {
        value_ = context.rng->nextBool(takenProbability_);
        // Jitter the hold time so flips of different branches don't
        // synchronize.
        remaining_ = static_cast<unsigned>(
            context.rng->nextInRange(window_ / 2, window_ * 3 / 2));
        if (remaining_ == 0)
            remaining_ = 1;
    }
    --remaining_;
    return value_;
}

MarkovBehavior::MarkovBehavior(unsigned order, double noise,
                               std::uint64_t seed)
    : order_(order), noise_(noise), seed_(seed), history_(order, 0)
{
    assert(order >= 1 && order <= 8);
    assert(noise >= 0.0 && noise <= 1.0);
}

std::size_t
MarkovBehavior::evaluate(BehaviorContext &context, std::size_t fan)
{
    assert(fan >= 1);
    std::size_t target;
    if (context.rng->nextBool(noise_ * context.noiseScale)) {
        target = context.rng->nextZipf(fan, 1.2);
    } else {
        std::uint64_t key = seed_;
        for (std::size_t symbol : history_)
            key = mix64(key ^ (symbol + 1));
        target = concentratedTarget(mix64(key), fan);
    }
    // Shift the branch's own target history.
    for (std::size_t i = history_.size(); i-- > 1;)
        history_[i] = history_[i - 1];
    history_[0] = target;
    return target;
}

PathDispatchBehavior::PathDispatchBehavior(unsigned depth, double noise,
                                           std::uint64_t seed)
    : depth_(depth), noise_(noise), seed_(seed)
{
    assert(depth >= 1 && depth <= pathHistoryDepth);
    assert(noise >= 0.0 && noise <= 1.0);
}

std::size_t
PathDispatchBehavior::evaluate(BehaviorContext &context, std::size_t fan)
{
    assert(fan >= 1);
    if (context.rng->nextBool(noise_ * context.noiseScale))
        return context.rng->nextZipf(fan, 1.2);
    const std::uint64_t key =
        mix64(context.pathHistory[depth_ - 1] ^ seed_);
    return concentratedTarget(key, fan);
}

RandomDispatchBehavior::RandomDispatchBehavior(double skew)
    : skew_(skew)
{
    assert(skew >= 0.0);
}

std::size_t
RandomDispatchBehavior::evaluate(BehaviorContext &context,
                                 std::size_t fan)
{
    assert(fan >= 1);
    return context.rng->nextZipf(fan, skew_);
}

} // namespace workload
} // namespace vlp
