/**
 * @file
 * Text trace format implementation.
 */

#include "trace/text_io.h"

#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace vlp {
namespace trace {

BranchKind
parseBranchKind(const std::string &name)
{
    for (unsigned kind = 0; kind < numBranchKinds; ++kind) {
        if (name == branchKindName(static_cast<BranchKind>(kind)))
            return static_cast<BranchKind>(kind);
    }
    util::fatal("unknown branch kind: " + name);
}

VectorTraceSource
readTextTrace(std::istream &in)
{
    VectorTraceSource source;
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        const auto first = line.find_first_not_of(" \t");
        if (first == std::string::npos || line[first] == '#')
            continue;

        std::istringstream fields(line);
        std::string kind_name, pc_text, next_text, taken_text;
        if (!(fields >> kind_name >> pc_text >> next_text
                     >> taken_text)) {
            util::fatal("malformed trace line "
                        + std::to_string(line_number) + ": " + line);
        }

        BranchRecord record;
        record.kind = parseBranchKind(kind_name);
        char *end = nullptr;
        record.pc = std::strtoull(pc_text.c_str(), &end, 16);
        if (end == pc_text.c_str() || *end != '\0')
            util::fatal("bad pc on trace line "
                        + std::to_string(line_number));
        record.nextPc = std::strtoull(next_text.c_str(), &end, 16);
        if (end == next_text.c_str() || *end != '\0')
            util::fatal("bad nextPc on trace line "
                        + std::to_string(line_number));
        if (taken_text == "T") {
            record.taken = true;
        } else if (taken_text == "N") {
            record.taken = false;
        } else {
            util::fatal("bad direction on trace line "
                        + std::to_string(line_number)
                        + " (want T or N)");
        }
        if (!record.isConditional() && !record.taken)
            util::fatal("non-conditional branch marked not-taken on "
                        "line " + std::to_string(line_number));
        source.append(record);
    }
    return source;
}

namespace {

bool
tryParseKind(const std::string &name, BranchKind &kind)
{
    for (unsigned k = 0; k < numBranchKinds; ++k) {
        if (name == branchKindName(static_cast<BranchKind>(k))) {
            kind = static_cast<BranchKind>(k);
            return true;
        }
    }
    return false;
}

bool
tryParseHex(const std::string &text, std::uint64_t &value)
{
    char *end = nullptr;
    value = std::strtoull(text.c_str(), &end, 16);
    return end != text.c_str() && *end == '\0';
}

bool
tryParseTaken(const std::string &text, bool &taken)
{
    if (text == "T" || text == "1") {
        taken = true;
        return true;
    }
    if (text == "N" || text == "0") {
        taken = false;
        return true;
    }
    return false;
}

/**
 * Parse one non-blank line in either the native format
 * (`kind pc next T|N`) or the reduced form (`pc next taken`).
 * @return true on success; otherwise @p error names the problem
 */
bool
tryParseLine(const std::string &line, BranchRecord &record,
             std::string &error)
{
    std::istringstream fields(line);
    std::string first, second, third, fourth;
    fields >> first >> second >> third;
    if (third.empty()) {
        error = "too few fields (want 'kind pc next T|N' or "
                "'pc next T|N|1|0')";
        return false;
    }

    if (tryParseKind(first, record.kind)) {
        fields >> fourth;
        if (fourth.empty()) {
            error = "too few fields for '" + first + "' record";
            return false;
        }
        if (!tryParseHex(second, record.pc)) {
            error = "bad pc '" + second + "'";
            return false;
        }
        if (!tryParseHex(third, record.nextPc)) {
            error = "bad nextPc '" + third + "'";
            return false;
        }
        if (!tryParseTaken(fourth, record.taken)) {
            error = "bad direction '" + fourth + "' (want T or N)";
            return false;
        }
    } else {
        // Reduced ChampSim-style form: pc target taken.
        record.kind = BranchKind::Conditional;
        if (!tryParseHex(first, record.pc)) {
            error = "unknown branch kind or bad pc '" + first + "'";
            return false;
        }
        if (!tryParseHex(second, record.nextPc)) {
            error = "bad nextPc '" + second + "'";
            return false;
        }
        if (!tryParseTaken(third, record.taken)) {
            error = "bad direction '" + third
                    + "' (want T, N, 1, or 0)";
            return false;
        }
    }
    if (!record.isConditional() && !record.taken) {
        error = "non-conditional branch marked not-taken";
        return false;
    }
    return true;
}

} // anonymous namespace

VectorTraceSource
readTextTraceLenient(std::istream &in, ConvertReport &report)
{
    VectorTraceSource source;
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        const auto first = line.find_first_not_of(" \t");
        if (first == std::string::npos || line[first] == '#')
            continue;

        BranchRecord record;
        std::string error;
        if (tryParseLine(line, record, error)) {
            source.append(record);
            ++report.imported;
        } else {
            ++report.skipped;
            if (report.diagnostics.size()
                < ConvertReport::maxDiagnostics) {
                report.diagnostics.push_back(
                    "line " + std::to_string(line_number) + ": "
                    + error);
            }
        }
    }
    return source;
}

VectorTraceSource
loadTextTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        util::fatal("cannot open text trace: " + path);
    return readTextTrace(in);
}

void
writeTextTrace(const VectorTraceSource &source, std::ostream &out)
{
    out << "# vlpsim text trace: kind pc nextpc T|N\n";
    for (const auto &record : source.records()) {
        out << branchKindName(record.kind) << ' ' << std::hex
            << record.pc << ' ' << record.nextPc << std::dec << ' '
            << (record.taken ? 'T' : 'N') << '\n';
    }
}

void
saveTextTrace(const VectorTraceSource &source, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        util::fatal("cannot create text trace: " + path);
    writeTextTrace(source, out);
    if (!out)
        util::fatal("short write to text trace: " + path);
}

} // namespace trace
} // namespace vlp
