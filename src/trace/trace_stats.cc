/**
 * @file
 * Trace statistics implementation.
 */

#include "trace/trace_stats.h"

#include <sstream>

#include "util/stats.h"

namespace vlp {
namespace trace {

TraceStats::TraceStats()
{
    dynamic_.fill(0);
}

void
TraceStats::observe(const BranchRecord &record)
{
    const auto kind = static_cast<std::size_t>(record.kind);
    ++dynamic_[kind];
    pcs_[kind].insert(record.pc);
    if (record.isConditional() && record.taken)
        ++takenConditional_;
}

void
TraceStats::observeAll(TraceSource &source)
{
    BranchRecord record;
    while (source.next(record))
        observe(record);
}

std::uint64_t
TraceStats::dynamicCount(BranchKind kind) const
{
    return dynamic_[static_cast<std::size_t>(kind)];
}

std::uint64_t
TraceStats::staticCount(BranchKind kind) const
{
    return pcs_[static_cast<std::size_t>(kind)].size();
}

std::uint64_t
TraceStats::dynamicConditional() const
{
    return dynamicCount(BranchKind::Conditional);
}

std::uint64_t
TraceStats::staticConditional() const
{
    return staticCount(BranchKind::Conditional);
}

std::uint64_t
TraceStats::dynamicIndirect() const
{
    return dynamicCount(BranchKind::IndirectJump)
         + dynamicCount(BranchKind::IndirectCall);
}

std::uint64_t
TraceStats::staticIndirect() const
{
    return staticCount(BranchKind::IndirectJump)
         + staticCount(BranchKind::IndirectCall);
}

std::uint64_t
TraceStats::dynamicTotal() const
{
    std::uint64_t total = 0;
    for (auto count : dynamic_)
        total += count;
    return total;
}

double
TraceStats::takenRate() const
{
    return util::percent(takenConditional_, dynamicConditional());
}

std::string
TraceStats::summary() const
{
    std::ostringstream out;
    out << "conditional: " << util::formatScaled(dynamicConditional())
        << " dynamic / " << staticConditional() << " static"
        << " (taken " << util::formatDouble(takenRate(), 1) << "%)\n"
        << "indirect:    " << util::formatScaled(dynamicIndirect())
        << " dynamic / " << staticIndirect() << " static\n"
        << "returns:     "
        << util::formatScaled(dynamicCount(BranchKind::Return))
        << " dynamic / " << staticCount(BranchKind::Return) << " static\n"
        << "calls:       "
        << util::formatScaled(dynamicCount(BranchKind::DirectCall)
                              + dynamicCount(BranchKind::IndirectCall))
        << " dynamic\n"
        << "total:       " << util::formatScaled(dynamicTotal())
        << " records";
    return out.str();
}

} // namespace trace
} // namespace vlp
