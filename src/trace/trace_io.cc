/**
 * @file
 * Binary trace reader/writer implementation.
 */

#include "trace/trace_io.h"

#include <array>
#include <cstring>

#include "util/logging.h"

namespace vlp {
namespace trace {

namespace {

constexpr std::array<char, 4> traceMagic = {'V', 'B', 'T', '1'};
constexpr std::size_t recordBytes = 1 + 1 + 8 + 8;

void
putU64(std::uint8_t *buffer, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        buffer[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

std::uint64_t
getU64(const std::uint8_t *buffer)
{
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(buffer[i]) << (8 * i);
    return value;
}

} // anonymous namespace

TraceWriter::TraceWriter(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr)
        util::fatal("cannot create trace file: " + path);
    std::uint8_t header[12];
    std::memcpy(header, traceMagic.data(), 4);
    putU64(header + 4, 0); // patched in close()
    if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header))
        util::fatal("cannot write trace header: " + path);
}

TraceWriter::~TraceWriter()
{
    if (file_ != nullptr)
        close();
}

void
TraceWriter::write(const BranchRecord &record)
{
    std::uint8_t buffer[recordBytes];
    buffer[0] = static_cast<std::uint8_t>(record.kind);
    buffer[1] = record.taken ? 1 : 0;
    putU64(buffer + 2, record.pc);
    putU64(buffer + 10, record.nextPc);
    if (std::fwrite(buffer, 1, recordBytes, file_) != recordBytes)
        util::fatal("short write to trace file");
    ++count_;
}

void
TraceWriter::close()
{
    if (file_ == nullptr)
        return;
    std::uint8_t counter[8];
    putU64(counter, count_);
    std::fseek(file_, 4, SEEK_SET);
    if (std::fwrite(counter, 1, sizeof(counter), file_) != sizeof(counter))
        util::warn("failed to finalize trace record count");
    std::fclose(file_);
    file_ = nullptr;
}

TraceReader::TraceReader(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (file_ == nullptr)
        util::fatal("cannot open trace file: " + path);
    std::uint8_t header[12];
    if (std::fread(header, 1, sizeof(header), file_) != sizeof(header)
        || std::memcmp(header, traceMagic.data(), 4) != 0) {
        std::fclose(file_);
        file_ = nullptr;
        util::fatal("not a .vbt trace file: " + path);
    }
    count_ = getU64(header + 4);
}

TraceReader::~TraceReader()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

bool
TraceReader::next(BranchRecord &record)
{
    if (read_ >= count_)
        return false;
    std::uint8_t buffer[recordBytes];
    if (std::fread(buffer, 1, recordBytes, file_) != recordBytes)
        util::fatal("truncated trace file");
    if (buffer[0] >= numBranchKinds)
        util::fatal("corrupt trace record: bad branch kind");
    record.kind = static_cast<BranchKind>(buffer[0]);
    record.taken = buffer[1] != 0;
    record.pc = getU64(buffer + 2);
    record.nextPc = getU64(buffer + 10);
    ++read_;
    return true;
}

void
TraceReader::reset()
{
    std::fseek(file_, 12, SEEK_SET);
    read_ = 0;
}

VectorTraceSource
loadTrace(const std::string &path)
{
    TraceReader reader(path);
    std::vector<BranchRecord> records;
    records.reserve(reader.count());
    BranchRecord record;
    while (reader.next(record))
        records.push_back(record);
    return VectorTraceSource(std::move(records));
}

void
saveTrace(const VectorTraceSource &source, const std::string &path)
{
    TraceWriter writer(path);
    for (const auto &record : source.records())
        writer.write(record);
    writer.close();
}

} // namespace trace
} // namespace vlp
