/**
 * @file
 * Binary trace reader/writer implementation.
 */

#include "trace/trace_io.h"

#include <array>
#include <cstring>

#include "util/logging.h"

namespace vlp {
namespace trace {

namespace {

constexpr std::array<char, 4> traceMagicV1 = {'V', 'B', 'T', '1'};
constexpr std::array<char, 4> traceMagicV2 = {'V', 'B', 'T', '2'};
constexpr std::size_t recordBytes = 1 + 1 + 8 + 8;
constexpr long headerBytesV1 = 12;
constexpr long headerBytesV2 = 20;

void
putU64(std::uint8_t *buffer, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        buffer[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

std::uint64_t
getU64(const std::uint8_t *buffer)
{
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(buffer[i]) << (8 * i);
    return value;
}

/** Byte length of @p file, restoring the current position. */
long
fileBytes(std::FILE *file)
{
    const long position = std::ftell(file);
    std::fseek(file, 0, SEEK_END);
    const long size = std::ftell(file);
    std::fseek(file, position, SEEK_SET);
    return size;
}

} // anonymous namespace

TraceWriter::TraceWriter(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr)
        util::fatal("cannot create trace file: " + path);
    std::uint8_t header[headerBytesV2];
    std::memcpy(header, traceMagicV2.data(), 4);
    putU64(header + 4, 0);  // record count, patched in close()
    putU64(header + 12, 0); // checksum, patched in close()
    if (std::fwrite(header, 1, sizeof(header), file_) != sizeof(header))
        util::fatal("cannot write trace header: " + path);
}

TraceWriter::~TraceWriter()
{
    if (file_ != nullptr)
        close();
}

void
TraceWriter::write(const BranchRecord &record)
{
    std::uint8_t buffer[recordBytes];
    buffer[0] = static_cast<std::uint8_t>(record.kind);
    buffer[1] = record.taken ? 1 : 0;
    putU64(buffer + 2, record.pc);
    putU64(buffer + 10, record.nextPc);
    if (std::fwrite(buffer, 1, recordBytes, file_) != recordBytes)
        util::fatal("short write to trace file");
    checksum_.update(buffer, recordBytes);
    ++count_;
}

void
TraceWriter::close()
{
    if (file_ == nullptr)
        return;
    std::uint8_t trailer[16];
    putU64(trailer, count_);
    putU64(trailer + 8, checksum_.digest());
    std::fseek(file_, 4, SEEK_SET);
    if (std::fwrite(trailer, 1, sizeof(trailer), file_) != sizeof(trailer))
        util::warn("failed to finalize trace header");
    std::fclose(file_);
    file_ = nullptr;
}

TraceReader::TraceReader(const std::string &path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (file_ == nullptr)
        util::fatal("cannot open trace file: " + path);
    std::uint8_t header[headerBytesV2];
    if (std::fread(header, 1, headerBytesV1, file_)
        != static_cast<std::size_t>(headerBytesV1)) {
        std::fclose(file_);
        file_ = nullptr;
        util::fatal("not a .vbt trace file (short header): " + path);
    }
    if (std::memcmp(header, traceMagicV2.data(), 4) == 0) {
        hasChecksum_ = true;
        headerBytes_ = headerBytesV2;
        if (std::fread(header + headerBytesV1, 1, 8, file_) != 8) {
            std::fclose(file_);
            file_ = nullptr;
            util::fatal("not a .vbt trace file (short header): " + path);
        }
        expectedChecksum_ = getU64(header + 12);
    } else if (std::memcmp(header, traceMagicV1.data(), 4) == 0) {
        // VBT1 has no checksum field: the 12-byte header ends at the
        // record count and the first record starts immediately after
        // it. Nothing is read (or skipped) beyond those 12 bytes, and
        // expectedChecksum_ stays unused (hasChecksum_ == false).
        headerBytes_ = headerBytesV1;
    } else {
        std::fclose(file_);
        file_ = nullptr;
        util::fatal("not a .vbt trace file: " + path);
    }
    count_ = getU64(header + 4);

    // Reject truncated or torn files up front: the record stream must
    // hold exactly the bytes the header promises, so next() can never
    // return a partial read.
    const long expected = headerBytes_
        + static_cast<long>(count_ * recordBytes);
    const long actual = fileBytes(file_);
    if (actual != expected) {
        std::fclose(file_);
        file_ = nullptr;
        util::fatal("truncated or corrupt trace file: " + path
                    + " (header promises " + std::to_string(expected)
                    + " bytes, file has " + std::to_string(actual)
                    + ")");
    }
}

TraceReader::~TraceReader()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

bool
TraceReader::next(BranchRecord &record)
{
    if (read_ >= count_)
        return false;
    std::uint8_t buffer[recordBytes];
    if (std::fread(buffer, 1, recordBytes, file_) != recordBytes)
        util::fatal("truncated trace file");
    if (buffer[0] >= numBranchKinds)
        util::fatal("corrupt trace record: bad branch kind");
    if (buffer[1] > 1)
        util::fatal("corrupt trace record: bad taken flag");
    record.kind = static_cast<BranchKind>(buffer[0]);
    record.taken = buffer[1] != 0;
    record.pc = getU64(buffer + 2);
    record.nextPc = getU64(buffer + 10);
    if (hasChecksum_) {
        checksum_.update(buffer, recordBytes);
        if (read_ + 1 == count_
            && checksum_.digest() != expectedChecksum_) {
            util::fatal("corrupt trace file: checksum mismatch");
        }
    }
    ++read_;
    return true;
}

void
TraceReader::reset()
{
    std::fseek(file_, headerBytes_, SEEK_SET);
    read_ = 0;
    checksum_.reset();
}

VectorTraceSource
loadTrace(const std::string &path)
{
    TraceReader reader(path);
    std::vector<BranchRecord> records;
    records.reserve(reader.count());
    BranchRecord record;
    while (reader.next(record))
        records.push_back(record);
    return VectorTraceSource(std::move(records));
}

void
saveTrace(const VectorTraceSource &source, const std::string &path)
{
    TraceWriter writer(path);
    for (const auto &record : source.records())
        writer.write(record);
    writer.close();
}

} // namespace trace
} // namespace vlp
