/**
 * @file
 * Deterministic fault injection for trace file I/O.
 *
 * FaultInjector wraps a FileOpener so that every ByteFile it hands out
 * misbehaves on a schedule that is a pure function of the plan's seed
 * and the file's path (per-file xoshiro streams — no dependence on
 * thread timing or open order). Injected fault classes:
 *
 *   - transient open/read failures: the first N attempts per path
 *     throw util::TransientError, then succeed — models EINTR/EAGAIN
 *     and exercises the suite runner's retry/backoff path;
 *   - truncation: the file appears cut off at a byte offset — the
 *     reader's header-vs-size validation must catch it;
 *   - short reads: read() serves a prefix of the request — callers'
 *     refill loops must cope without data loss;
 *   - bit flips: one bit of a served chunk is inverted — the VBT2
 *     stream checksum (or record validation) must catch it.
 *
 * Counters record how often each class actually fired, so tests can
 * assert every class was exercised under a fixed seed.
 */

#ifndef VLPSIM_TRACE_FAULT_INJECTION_H
#define VLPSIM_TRACE_FAULT_INJECTION_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "trace/byte_file.h"
#include "util/rng.h"

namespace vlp {
namespace trace {

/** What to inject, and how often. Probabilities are per read() call. */
struct FaultPlan
{
    static constexpr std::uint64_t noTruncation = ~std::uint64_t{0};

    /** Seed combined with each file's path hash. */
    std::uint64_t seed = 1;
    /** Opens of each path that fail transiently before succeeding. */
    unsigned transientOpens = 0;
    /** read() calls per path that fail transiently before succeeding. */
    unsigned transientReads = 0;
    /** Probability a read() serves only a prefix of the request. */
    double shortReadProbability = 0.0;
    /** Probability a read() flips one random bit of the served chunk. */
    double bitFlipProbability = 0.0;
    /** Bytes beyond this offset appear to not exist. */
    std::uint64_t truncateAt = noTruncation;
    /**
     * Serve view() from a faultable buffer instead of refusing it.
     * Off, FaultyFile rejects every view, so consumers silently take
     * their stdio fallback and the in-place (mmap) decode path runs
     * fault-free; on, views are served — and can be refused or
     * bit-flipped per the probabilities below — so the zero-copy
     * path faces the same hostility as read().
     */
    bool serveViews = false;
    /** Probability a view() is refused (nullptr), forcing the
     *  caller's buffered fallback mid-stream. */
    double shortViewProbability = 0.0;
    /** Probability a served view carries one flipped bit. */
    double viewBitFlipProbability = 0.0;
};

/** How often each fault class fired (across all files). */
struct FaultCounters
{
    std::uint64_t transientOpens = 0;
    std::uint64_t transientReads = 0;
    std::uint64_t shortReads = 0;
    std::uint64_t bitFlips = 0;
    std::uint64_t truncations = 0;
    std::uint64_t shortViews = 0;
    std::uint64_t viewBitFlips = 0;
};

/**
 * Factory for fault-injecting ByteFiles. Thread-safe; one injector is
 * shared across every open so per-path transient budgets hold across
 * reopens (a retry after a transient failure must eventually succeed).
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultPlan plan) : plan_(plan) {}

    /**
     * An opener that wraps @p inner (default: plain stdio files) with
     * this injector's faults. The returned opener may outlive no
     * longer than the injector.
     */
    FileOpener opener(FileOpener inner = {});

    /** Snapshot of the fault counters. */
    FaultCounters counters() const;

    /** The plan this injector was built with. */
    const FaultPlan &plan() const { return plan_; }

  private:
    friend class FaultyFile;

    /** Per-path state shared across reopens. */
    struct PathState
    {
        unsigned opensFailed = 0;
        unsigned readsFailed = 0;
    };

    PathState &pathState(const std::string &path);
    void count(std::uint64_t FaultCounters::*counter);

    FaultPlan plan_;
    mutable std::mutex mutex_;
    FaultCounters counters_;
    std::map<std::string, PathState> states_;
};

/**
 * A ByteFile decorator applying a FaultInjector's plan. Created via
 * FaultInjector::opener(); exposed for direct use in harness tests.
 */
class FaultyFile : public ByteFile
{
  public:
    FaultyFile(std::unique_ptr<ByteFile> inner, FaultInjector &injector);

    std::size_t read(void *buffer, std::size_t size) override;
    void seek(std::uint64_t offset) override;
    std::uint64_t size() override;
    const std::string &name() const override { return inner_->name(); }

    /**
     * When the plan enables serveViews: the requested window, served
     * from an internal buffer (copied from the inner backend) so
     * injected bit flips never write through to a shared mapping.
     * Refused (nullptr) with shortViewProbability, and always when
     * serveViews is off or the window crosses the truncation point.
     */
    const std::uint8_t *view(std::uint64_t offset,
                             std::size_t size) override;

  private:
    std::uint64_t effectiveSize();

    std::unique_ptr<ByteFile> inner_;
    FaultInjector &injector_;
    std::uint64_t position_ = 0;
    util::Rng rng_;
    std::vector<std::uint8_t> viewBuffer_;
};

/**
 * Wrap @p inner so every open and every ByteFile it yields consults
 * the global chaos switchboard (util/chaos.h): sections
 * trace.open.transient / trace.read.transient (throw TransientError),
 * trace.read.short (serve a prefix), and trace.view.refuse (return
 * nullptr, forcing the buffered fallback). Pass-through — zero
 * overhead and zero wrapping — while chaos is disabled at open time.
 */
FileOpener chaosOpener(FileOpener inner);

} // namespace trace
} // namespace vlp

#endif // VLPSIM_TRACE_FAULT_INJECTION_H
