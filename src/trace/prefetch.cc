/**
 * @file
 * Bounded read-ahead trace opener.
 */

#include "trace/prefetch.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "trace/content_hash.h"
#include "trace/mmap_file.h"
#include "util/chaos.h"

namespace vlp {
namespace trace {

namespace {

/** Blocked producers and consumers re-check the cancel token at this
 *  cadence; cancellation is the rare path, so a coarse poll keeps the
 *  steady state free of timer churn. */
constexpr std::chrono::milliseconds cancelPollInterval{20};

} // anonymous namespace

PrefetchedTrace
TracePrefetcher::openTrace(const std::string &path,
                           const Options &options)
{
    PrefetchedTrace result;
    try {
        if (options.cancel)
            options.cancel->throwIfCancelled();
        result = util::retryTransient(
            options.retry, [&]() -> PrefetchedTrace {
                auto raw = options.opener ? options.opener(path)
                                          : openByteFileFast(path);
                auto hashing =
                    std::make_unique<HashingByteFile>(std::move(raw));
                HashingByteFile &hasher = *hashing;
                PrefetchedTrace open;
                open.session = std::make_shared<StreamingTraceReader>(
                    std::move(hashing), options.chunkRecords);
                // Header validation passed; complete the identity in
                // the same open (zero-copy when the file maps).
                open.contentHash = hasher.finish();
                open.formatVersion = open.session->formatVersion();
                open.records = open.session->count();
                return open;
            });
    } catch (...) {
        result = PrefetchedTrace{};
        result.error = std::current_exception();
    }
    return result;
}

TracePrefetcher::TracePrefetcher(std::vector<std::string> paths,
                                 Options options)
    : paths_(std::move(paths)), options_(std::move(options)),
      window_(options_.window)
{
    if (window_ == 0 || paths_.empty())
        return; // inline mode: take() opens synchronously
    const std::size_t threads = std::min<std::size_t>(
        std::max<unsigned>(options_.threads, 1u),
        std::min(window_, paths_.size()));
    producers_.reserve(threads);
    producersAlive_ = threads;
    for (std::size_t i = 0; i < threads; ++i)
        producers_.emplace_back([this] { producerLoop(); });
}

TracePrefetcher::~TracePrefetcher()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    space_.notify_all();
    ready_.notify_all();
    for (auto &producer : producers_)
        producer.join();
}

void
TracePrefetcher::producerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        // wait_for rather than wait: if the token fires while every
        // thread is blocked, nobody would otherwise wake to notice.
        space_.wait_for(lock, cancelPollInterval, [this] {
            return stop_ || nextToStart_ >= paths_.size()
                   || outstanding_ < window_;
        });
        if (stop_ || nextToStart_ >= paths_.size())
            return;
        if (options_.cancel && options_.cancel->cancelled())
            return; // consumers see the token themselves
        if (outstanding_ >= window_)
            continue;
        const std::size_t index = nextToStart_++;
        ++outstanding_;
        // Chaos: this producer dies after claiming an item. The claim
        // is marked abandoned so the consumer opens it inline — the
        // deadlock-freedom contract must survive losing any producer.
        if (util::chaos::enabled()
            && CHAOS_SECTION("trace.prefetch.producer-death",
                             util::chaos::pathKey(paths_[index]))) {
            abandoned_.insert(index);
            --producersAlive_;
            ready_.notify_all();
            return;
        }
        lock.unlock();
        PrefetchedTrace result = openTrace(paths_[index], options_);
        lock.lock();
        results_.emplace(index, std::move(result));
        ready_.notify_all();
    }
}

PrefetchedTrace
TracePrefetcher::take(std::size_t index)
{
    if (producers_.empty()) {
        if (options_.cancel)
            options_.cancel->throwIfCancelled();
        return openTrace(paths_.at(index), options_);
    }
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        const auto it = results_.find(index);
        if (it != results_.end()) {
            PrefetchedTrace result = std::move(it->second);
            results_.erase(it);
            --outstanding_;
            space_.notify_all();
            return result;
        }
        // A dead producer's claim, or an item no surviving producer
        // will ever claim: open it inline on this consumer thread.
        if (abandoned_.erase(index) > 0) {
            --outstanding_;
            space_.notify_all();
            lock.unlock();
            return openTrace(paths_.at(index), options_);
        }
        if (index >= nextToStart_ && producersAlive_ == 0) {
            lock.unlock();
            return openTrace(paths_.at(index), options_);
        }
        if (options_.cancel && options_.cancel->cancelled())
            throw util::CancelledError();
        ready_.wait_for(lock, cancelPollInterval);
    }
}

} // namespace trace
} // namespace vlp
