/**
 * @file
 * Streaming .vbt reader implementation.
 */

#include "trace/streaming.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>

#include "util/logging.h"

namespace vlp {
namespace trace {

namespace {

constexpr std::array<char, 4> traceMagicV1 = {'V', 'B', 'T', '1'};
constexpr std::array<char, 4> traceMagicV2 = {'V', 'B', 'T', '2'};
constexpr std::size_t recordBytes = 1 + 1 + 8 + 8;
constexpr std::uint64_t headerBytesV1 = 12;
constexpr std::uint64_t headerBytesV2 = 20;

/** Block size for whole-file hashing (mapped and buffered paths). */
constexpr std::size_t hashBlockBytes = 64 * 1024;

std::uint64_t
getU64(const std::uint8_t *buffer)
{
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(buffer[i]) << (8 * i);
    return value;
}

} // anonymous namespace

StreamingTraceReader::StreamingTraceReader(std::unique_ptr<ByteFile> file,
                                           std::size_t chunk_records)
    : file_(std::move(file)), hashing_(file_->hasher()),
      chunkRecords_(chunk_records > 0 ? chunk_records : 1)
{
    std::uint8_t header[headerBytesV2];
    readFully(header, headerBytesV1);
    if (std::memcmp(header, traceMagicV2.data(), 4) == 0) {
        formatVersion_ = 2;
        headerBytes_ = headerBytesV2;
        readFully(header + headerBytesV1, 8);
        expectedChecksum_ = getU64(header + 12);
    } else if (std::memcmp(header, traceMagicV1.data(), 4) == 0) {
        // VBT1 headers end at the record count; there is no checksum
        // field to skip, and the first record starts at byte 12.
        formatVersion_ = 1;
        headerBytes_ = headerBytesV1;
    } else {
        util::fatal("not a .vbt trace file: " + file_->name());
    }
    count_ = getU64(header + 4);

    // Reject truncated or torn files up front, exactly like the
    // materializing TraceReader: the record stream must hold the bytes
    // the header promises.
    const std::uint64_t expected =
        headerBytes_ + count_ * recordBytes;
    const std::uint64_t actual = file_->size();
    if (actual != expected) {
        util::fatal("truncated or corrupt trace file: " + file_->name()
                    + " (header promises " + std::to_string(expected)
                    + " bytes, file has " + std::to_string(actual)
                    + ")");
    }
}

StreamingTraceReader::StreamingTraceReader(const std::string &path,
                                           std::size_t chunk_records)
    : StreamingTraceReader(openByteFile(path), chunk_records)
{
}

void
StreamingTraceReader::readFully(std::uint8_t *buffer, std::size_t size)
{
    std::size_t got = 0;
    while (got < size) {
        const std::size_t chunk =
            file_->read(buffer + got, size - got);
        if (chunk == 0)
            util::fatal("truncated trace file: " + file_->name());
        got += chunk;
        filePos_ += chunk;
    }
}

void
StreamingTraceReader::refill()
{
    const std::uint64_t remaining = count_ - read_;
    const std::size_t records = static_cast<std::size_t>(
        remaining < chunkRecords_ ? remaining : chunkRecords_);
    const std::size_t bytes = records * recordBytes;
    const std::uint64_t offset = headerBytes_ + read_ * recordBytes;

    // Zero-copy fast path: decode straight out of the mapping. With a
    // hashing decorator underneath, the VBT2 chunk checksum is fused
    // into the content-hash kernel — one pass over the chunk for all
    // three FNV chains plus the decode.
    const std::uint8_t *window = nullptr;
    if (formatVersion_ >= 2 && hashing_ != nullptr) {
        window = hashing_->viewHashing(offset, bytes, checksum_);
    } else {
        window = file_->view(offset, bytes);
        if (window != nullptr && formatVersion_ >= 2)
            checksum_.update(window, bytes);
    }
    if (window != nullptr) {
        chunk_ = window;
        bufferPos_ = 0;
        bufferBytes_ = bytes;
        return;
    }

    // Buffered path: identical read sequence to the historical reader
    // (the lazy seek fires only when something else moved the
    // cursor), so deterministic fault-injection schedules hold.
    buffer_.resize(bytes);
    if (filePos_ != offset) {
        file_->seek(offset);
        filePos_ = offset;
    }
    std::size_t got = 0;
    while (got < bytes) {
        const std::size_t piece = (formatVersion_ >= 2
                                   && hashing_ != nullptr)
            ? hashing_->readHashing(buffer_.data() + got, bytes - got,
                                    checksum_)
            : file_->read(buffer_.data() + got, bytes - got);
        if (piece == 0)
            util::fatal("truncated trace file: " + file_->name());
        got += piece;
        filePos_ += piece;
    }
    if (formatVersion_ >= 2 && hashing_ == nullptr)
        checksum_.update(buffer_.data(), bytes);
    chunk_ = buffer_.data();
    bufferPos_ = 0;
    bufferBytes_ = bytes;
    if (bytes > peakBufferBytes_)
        peakBufferBytes_ = bytes;
}

bool
StreamingTraceReader::next(BranchRecord &record)
{
    if (read_ >= count_)
        return false;
    if (bufferPos_ >= bufferBytes_)
        refill();
    const std::uint8_t *bytes = chunk_ + bufferPos_;
    if (bytes[0] >= numBranchKinds)
        util::fatal("corrupt trace record: bad branch kind");
    if (bytes[1] > 1)
        util::fatal("corrupt trace record: bad taken flag");
    record.kind = static_cast<BranchKind>(bytes[0]);
    record.taken = bytes[1] != 0;
    record.pc = getU64(bytes + 2);
    record.nextPc = getU64(bytes + 10);
    if (formatVersion_ >= 2 && read_ + 1 == count_
        && checksum_.digest() != expectedChecksum_) {
        util::fatal("corrupt trace file: checksum mismatch: "
                    + file_->name());
    }
    bufferPos_ += recordBytes;
    ++read_;
    return true;
}

void
StreamingTraceReader::reset()
{
    file_->seek(headerBytes_);
    filePos_ = headerBytes_;
    read_ = 0;
    chunk_ = nullptr;
    bufferPos_ = 0;
    bufferBytes_ = 0;
    checksum_.reset();
}

std::string
hashTraceFile(ByteFile &file)
{
    // Two independently seeded 64-bit FNV-1a streams give the 128-bit
    // identity; seeds match nothing else in the repository so trace
    // hashes never collide with cache-key hashes by construction.
    // ContentHasher fuses the streams into one loop and the mapped
    // view path skips the copies — the digest is byte-identical to
    // the historical two-pass stdio computation (locked by tests).
    ContentHasher hasher;
    file.seek(0);
    const std::uint64_t total = file.size();
    std::uint64_t offset = 0;
    while (offset < total) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(hashBlockBytes, total - offset));
        const std::uint8_t *window = file.view(offset, want);
        if (window == nullptr)
            break;
        hasher.update(window, want);
        offset += want;
    }
    if (offset < total || total == 0) {
        if (offset > 0)
            file.seek(offset);
        std::array<std::uint8_t, hashBlockBytes> buffer;
        for (;;) {
            const std::size_t got =
                file.read(buffer.data(), buffer.size());
            if (got == 0)
                break;
            hasher.update(buffer.data(), got);
        }
    }
    return hasher.digest();
}

std::string
hashTraceFile(const std::string &path)
{
    const auto file = openByteFile(path);
    return hashTraceFile(*file);
}

} // namespace trace
} // namespace vlp
