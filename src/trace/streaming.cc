/**
 * @file
 * Streaming .vbt reader implementation.
 */

#include "trace/streaming.h"

#include <array>
#include <cstdio>
#include <cstring>

#include "util/logging.h"

namespace vlp {
namespace trace {

namespace {

constexpr std::array<char, 4> traceMagicV1 = {'V', 'B', 'T', '1'};
constexpr std::array<char, 4> traceMagicV2 = {'V', 'B', 'T', '2'};
constexpr std::size_t recordBytes = 1 + 1 + 8 + 8;
constexpr std::uint64_t headerBytesV1 = 12;
constexpr std::uint64_t headerBytesV2 = 20;

std::uint64_t
getU64(const std::uint8_t *buffer)
{
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(buffer[i]) << (8 * i);
    return value;
}

} // anonymous namespace

StreamingTraceReader::StreamingTraceReader(std::unique_ptr<ByteFile> file,
                                           std::size_t chunk_records)
    : file_(std::move(file)),
      chunkRecords_(chunk_records > 0 ? chunk_records : 1)
{
    std::uint8_t header[headerBytesV2];
    readFully(header, headerBytesV1);
    if (std::memcmp(header, traceMagicV2.data(), 4) == 0) {
        formatVersion_ = 2;
        headerBytes_ = headerBytesV2;
        readFully(header + headerBytesV1, 8);
        expectedChecksum_ = getU64(header + 12);
    } else if (std::memcmp(header, traceMagicV1.data(), 4) == 0) {
        // VBT1 headers end at the record count; there is no checksum
        // field to skip, and the first record starts at byte 12.
        formatVersion_ = 1;
        headerBytes_ = headerBytesV1;
    } else {
        util::fatal("not a .vbt trace file: " + file_->name());
    }
    count_ = getU64(header + 4);

    // Reject truncated or torn files up front, exactly like the
    // materializing TraceReader: the record stream must hold the bytes
    // the header promises.
    const std::uint64_t expected =
        headerBytes_ + count_ * recordBytes;
    const std::uint64_t actual = file_->size();
    if (actual != expected) {
        util::fatal("truncated or corrupt trace file: " + file_->name()
                    + " (header promises " + std::to_string(expected)
                    + " bytes, file has " + std::to_string(actual)
                    + ")");
    }
    buffer_.reserve(chunkRecords_ * recordBytes);
}

StreamingTraceReader::StreamingTraceReader(const std::string &path,
                                           std::size_t chunk_records)
    : StreamingTraceReader(openByteFile(path), chunk_records)
{
}

void
StreamingTraceReader::readFully(std::uint8_t *buffer, std::size_t size)
{
    std::size_t got = 0;
    while (got < size) {
        const std::size_t chunk =
            file_->read(buffer + got, size - got);
        if (chunk == 0)
            util::fatal("truncated trace file: " + file_->name());
        got += chunk;
    }
}

void
StreamingTraceReader::refill()
{
    const std::uint64_t remaining = count_ - read_;
    const std::size_t records = static_cast<std::size_t>(
        remaining < chunkRecords_ ? remaining : chunkRecords_);
    buffer_.resize(records * recordBytes);
    readFully(buffer_.data(), buffer_.size());
    bufferPos_ = 0;
    bufferBytes_ = buffer_.size();
    if (bufferBytes_ > peakBufferBytes_)
        peakBufferBytes_ = bufferBytes_;
}

bool
StreamingTraceReader::next(BranchRecord &record)
{
    if (read_ >= count_)
        return false;
    if (bufferPos_ >= bufferBytes_)
        refill();
    const std::uint8_t *bytes = buffer_.data() + bufferPos_;
    if (bytes[0] >= numBranchKinds)
        util::fatal("corrupt trace record: bad branch kind");
    if (bytes[1] > 1)
        util::fatal("corrupt trace record: bad taken flag");
    record.kind = static_cast<BranchKind>(bytes[0]);
    record.taken = bytes[1] != 0;
    record.pc = getU64(bytes + 2);
    record.nextPc = getU64(bytes + 10);
    if (formatVersion_ >= 2) {
        checksum_.update(bytes, recordBytes);
        if (read_ + 1 == count_
            && checksum_.digest() != expectedChecksum_) {
            util::fatal("corrupt trace file: checksum mismatch: "
                        + file_->name());
        }
    }
    bufferPos_ += recordBytes;
    ++read_;
    return true;
}

void
StreamingTraceReader::reset()
{
    file_->seek(headerBytes_);
    read_ = 0;
    bufferPos_ = 0;
    bufferBytes_ = 0;
    checksum_.reset();
}

std::string
hashTraceFile(ByteFile &file)
{
    // Two independently seeded 64-bit FNV-1a streams give the 128-bit
    // identity; seeds match nothing else in the repository so trace
    // hashes never collide with cache-key hashes by construction.
    util::Fnv1a low(util::Fnv1a::offsetBasis);
    util::Fnv1a high(util::Fnv1a::offsetBasis
                     ^ 0x9e3779b97f4a7c15ULL);
    file.seek(0);
    std::array<std::uint8_t, 65536> buffer;
    for (;;) {
        const std::size_t got = file.read(buffer.data(), buffer.size());
        if (got == 0)
            break;
        low.update(buffer.data(), got);
        high.update(buffer.data(), got);
    }
    char text[33];
    std::snprintf(text, sizeof(text), "%016llx%016llx",
                  static_cast<unsigned long long>(high.digest()),
                  static_cast<unsigned long long>(low.digest()));
    return text;
}

std::string
hashTraceFile(const std::string &path)
{
    const auto file = openByteFile(path);
    return hashTraceFile(*file);
}

} // namespace trace
} // namespace vlp
