/**
 * @file
 * Mapped ByteFile implementation and read-mode selection.
 */

#include "trace/mmap_file.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "util/chaos.h"
#include "util/logging.h"

namespace vlp {
namespace trace {

namespace {

bool
isTransientErrno(int error)
{
    return error == EINTR || error == EAGAIN
#ifdef EWOULDBLOCK
        || error == EWOULDBLOCK
#endif
        || error == EBUSY;
}

[[noreturn]] void
throwErrno(const std::string &what, const std::string &path)
{
    const int error = errno;
    const std::string message =
        what + ": " + path + " (" + std::strerror(error) + ")";
    if (isTransientErrno(error))
        throw util::TransientError(message);
    throw std::runtime_error(message);
}

std::size_t
pageSize()
{
    static const std::size_t size = [] {
        const long page = ::sysconf(_SC_PAGESIZE);
        return page > 0 ? static_cast<std::size_t>(page)
                        : std::size_t{4096};
    }();
    return size;
}

} // anonymous namespace

MmapByteFile::MmapByteFile(const std::string &path,
                           std::size_t window_bytes)
    : path_(path),
      windowBytes_(std::max<std::size_t>(window_bytes, pageSize()))
{
    // O_NONBLOCK so a FIFO without a writer is classified instead of
    // blocking the open; regular files ignore the flag entirely.
    fd_ = ::open(path.c_str(), O_RDONLY | O_NONBLOCK | O_CLOEXEC);
    if (fd_ < 0) {
        if (errno == ENXIO)
            throw MmapUnsupported("not mmap-able: " + path);
        throwErrno("cannot open trace file", path_);
    }
    struct stat info;
    if (::fstat(fd_, &info) != 0) {
        ::close(fd_);
        fd_ = -1;
        throwErrno("cannot stat trace file", path_);
    }
    if (!S_ISREG(info.st_mode)) {
        ::close(fd_);
        fd_ = -1;
        throw MmapUnsupported("not a regular file: " + path);
    }
    fileSize_ = static_cast<std::uint64_t>(info.st_size);
    // Probe the first window now so an unmappable filesystem is
    // classified at open time, where callers can still fall back.
    if (fileSize_ > 0 && !ensureWindow(0, 1)) {
        ::close(fd_);
        fd_ = -1;
        throw MmapUnsupported("mmap failed: " + path);
    }
}

MmapByteFile::~MmapByteFile()
{
    unmap();
    if (fd_ >= 0)
        ::close(fd_);
}

void
MmapByteFile::unmap()
{
    if (window_ != nullptr) {
        ::munmap(window_, windowLength_);
        window_ = nullptr;
        windowLength_ = 0;
    }
}

bool
MmapByteFile::ensureWindow(std::uint64_t offset, std::size_t size)
{
    if (offset + size > fileSize_)
        return false;
    if (window_ != nullptr && offset >= windowStart_
        && offset + size <= windowStart_ + windowLength_) {
        return true;
    }
    const std::uint64_t start = offset - (offset % pageSize());
    const std::size_t span = static_cast<std::size_t>(offset - start)
        + std::max(size, windowBytes_);
    const std::size_t length = static_cast<std::size_t>(
        std::min<std::uint64_t>(span, fileSize_ - start));
    void *mapped = ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd_,
                          static_cast<off_t>(start));
    if (mapped == MAP_FAILED)
        return false;
    unmap();
    window_ = mapped;
    windowStart_ = start;
    windowLength_ = length;
    ++remaps_;
#ifdef MADV_SEQUENTIAL
    ::madvise(window_, windowLength_, MADV_SEQUENTIAL);
#endif
    return true;
}

const std::uint8_t *
MmapByteFile::view(std::uint64_t offset, std::size_t size)
{
    if (size == 0 || offset + size > fileSize_)
        return nullptr;
    if (!ensureWindow(offset, size))
        return nullptr;
    return static_cast<const std::uint8_t *>(window_)
        + (offset - windowStart_);
}

std::size_t
MmapByteFile::read(void *buffer, std::size_t size)
{
    if (position_ >= fileSize_)
        return 0;
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(size, fileSize_ - position_));
    const std::uint8_t *source = view(position_, want);
    if (source == nullptr) {
        // The window could not be re-established (address-space
        // pressure, file shrank underneath us) — a retry is the only
        // plausible recovery.
        throw util::TransientError("mmap window lost: " + path_);
    }
    std::memcpy(buffer, source, want);
    position_ += want;
    return want;
}

void
MmapByteFile::seek(std::uint64_t offset)
{
    position_ = offset;
}

ReadMode
parseReadMode(const std::string &text)
{
    if (text == "auto")
        return ReadMode::Auto;
    if (text == "mmap")
        return ReadMode::Mmap;
    if (text == "stdio")
        return ReadMode::Stdio;
    throw std::runtime_error("unknown read mode '" + text
                             + "' (expected auto, mmap, or stdio)");
}

const char *
readModeName(ReadMode mode)
{
    switch (mode) {
    case ReadMode::Auto:
        return "auto";
    case ReadMode::Mmap:
        return "mmap";
    case ReadMode::Stdio:
        return "stdio";
    }
    return "auto";
}

std::unique_ptr<ByteFile>
openByteFileFast(const std::string &path, ReadMode mode)
{
    if (mode != ReadMode::Stdio) {
        try {
            // Chaos: the mapping fails (address-space pressure, an
            // unmappable filesystem) and the open degrades to stdio —
            // reports are backend-agnostic, so this must be invisible.
            if (CHAOS_SECTION("trace.mmap.stdio-fallback",
                              util::chaos::pathKey(path)))
                throw MmapUnsupported("chaos: mmap refused: " + path);
            return std::make_unique<MmapByteFile>(path);
        } catch (const MmapUnsupported &reason) {
            if (mode == ReadMode::Mmap) {
                util::warn(std::string("--read-mode mmap: ")
                           + reason.what()
                           + "; falling back to stdio");
            }
        }
    }
    return std::make_unique<StdioByteFile>(path);
}

FileOpener
fastOpener(ReadMode mode)
{
    return [mode](const std::string &path) {
        return openByteFileFast(path, mode);
    };
}

} // namespace trace
} // namespace vlp
