/**
 * @file
 * BranchRecord helpers.
 */

#include "trace/branch_record.h"

#include <sstream>

namespace vlp {
namespace trace {

const char *
branchKindName(BranchKind kind)
{
    switch (kind) {
      case BranchKind::Conditional:
        return "cond";
      case BranchKind::Unconditional:
        return "jump";
      case BranchKind::DirectCall:
        return "call";
      case BranchKind::IndirectJump:
        return "ijump";
      case BranchKind::IndirectCall:
        return "icall";
      case BranchKind::Return:
        return "ret";
    }
    return "unknown";
}

std::string
toString(const BranchRecord &record)
{
    std::ostringstream out;
    out << std::hex << "0x" << record.pc << " -> 0x" << record.nextPc
        << std::dec << ' ' << branchKindName(record.kind)
        << (record.taken ? " taken" : " not-taken");
    return out.str();
}

} // namespace trace
} // namespace vlp
