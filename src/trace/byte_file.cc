/**
 * @file
 * Stdio-backed ByteFile implementation.
 */

#include "trace/byte_file.h"

#include <cerrno>
#include <cstring>

#include "util/logging.h"

namespace vlp {
namespace trace {

namespace {

/** Errnos that name a condition a retry can plausibly clear. */
bool
isTransientErrno(int error)
{
    return error == EINTR || error == EAGAIN
#ifdef EWOULDBLOCK
        || error == EWOULDBLOCK
#endif
        || error == EBUSY;
}

[[noreturn]] void
throwErrno(const std::string &what, const std::string &path)
{
    const int error = errno;
    const std::string message =
        what + ": " + path + " (" + std::strerror(error) + ")";
    if (isTransientErrno(error))
        throw util::TransientError(message);
    throw std::runtime_error(message);
}

} // anonymous namespace

StdioByteFile::StdioByteFile(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (file_ == nullptr)
        throwErrno("cannot open trace file", path_);
}

StdioByteFile::~StdioByteFile()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

std::size_t
StdioByteFile::read(void *buffer, std::size_t size)
{
    const std::size_t got = std::fread(buffer, 1, size, file_);
    if (got < size && std::ferror(file_)) {
        std::clearerr(file_);
        throwErrno("read failed", path_);
    }
    return got;
}

void
StdioByteFile::seek(std::uint64_t offset)
{
    if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0)
        throwErrno("seek failed", path_);
}

std::uint64_t
StdioByteFile::size()
{
    const long position = std::ftell(file_);
    if (std::fseek(file_, 0, SEEK_END) != 0)
        throwErrno("seek failed", path_);
    const long end = std::ftell(file_);
    if (std::fseek(file_, position, SEEK_SET) != 0)
        throwErrno("seek failed", path_);
    return static_cast<std::uint64_t>(end);
}

std::unique_ptr<ByteFile>
openByteFile(const std::string &path)
{
    return std::make_unique<StdioByteFile>(path);
}

} // namespace trace
} // namespace vlp
