/**
 * @file
 * Stdio-backed ByteFile implementation.
 */

#include "trace/byte_file.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/logging.h"

namespace vlp {
namespace trace {

namespace {

/** Errnos that name a condition a retry can plausibly clear. */
bool
isTransientErrno(int error)
{
    return error == EINTR || error == EAGAIN
#ifdef EWOULDBLOCK
        || error == EWOULDBLOCK
#endif
        || error == EBUSY;
}

[[noreturn]] void
throwErrno(const std::string &what, const std::string &path)
{
    const int error = errno;
    const std::string message =
        what + ": " + path + " (" + std::strerror(error) + ")";
    if (isTransientErrno(error))
        throw util::TransientError(message);
    throw std::runtime_error(message);
}

} // anonymous namespace

StdioByteFile::StdioByteFile(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (file_ == nullptr)
        throwErrno("cannot open trace file", path_);
}

StdioByteFile::~StdioByteFile()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

std::size_t
StdioByteFile::read(void *buffer, std::size_t size)
{
    const std::size_t got = std::fread(buffer, 1, size, file_);
    if (got < size && std::ferror(file_)) {
        std::clearerr(file_);
        throwErrno("read failed", path_);
    }
    return got;
}

void
StdioByteFile::seek(std::uint64_t offset)
{
    if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0)
        throwErrno("seek failed", path_);
}

std::uint64_t
StdioByteFile::size()
{
    const long position = std::ftell(file_);
    if (std::fseek(file_, 0, SEEK_END) != 0)
        throwErrno("seek failed", path_);
    const long end = std::ftell(file_);
    if (std::fseek(file_, position, SEEK_SET) != 0)
        throwErrno("seek failed", path_);
    return static_cast<std::uint64_t>(end);
}

std::unique_ptr<ByteFile>
openByteFile(const std::string &path)
{
    return std::make_unique<StdioByteFile>(path);
}

ByteFileStreamBuf::ByteFileStreamBuf(ByteFile &file)
    : file_(file), size_(file.size())
{
    file_.seek(0);
}

ByteFileStreamBuf::int_type
ByteFileStreamBuf::underflow()
{
    if (gptr() < egptr())
        return traits_type::to_int_type(*gptr());
    if (offset_ >= size_)
        return traits_type::eof();
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(windowBytes, size_ - offset_));
    // The get area is read-only by construction (no putback support
    // beyond what's buffered), so serving the mapped window directly
    // through the non-const streambuf pointers is safe.
    if (const std::uint8_t *window = file_.view(offset_, want)) {
        char *base =
            const_cast<char *>(reinterpret_cast<const char *>(window));
        setg(base, base, base + want);
        offset_ += want;
        return traits_type::to_int_type(*gptr());
    }
    buffer_.resize(windowBytes);
    file_.seek(offset_);
    std::size_t got = 0;
    while (got < want) {
        const std::size_t chunk =
            file_.read(buffer_.data() + got, want - got);
        if (chunk == 0)
            break;
        got += chunk;
    }
    if (got == 0)
        return traits_type::eof();
    setg(buffer_.data(), buffer_.data(), buffer_.data() + got);
    offset_ += got;
    return traits_type::to_int_type(*gptr());
}

} // namespace trace
} // namespace vlp
