/**
 * @file
 * Trace filter implementations.
 */

#include "trace/trace_filter.h"

namespace vlp {
namespace trace {

WindowTraceSource::WindowTraceSource(TraceSource &inner,
                                     std::uint64_t skip,
                                     std::uint64_t take)
    : inner_(inner), skip_(skip), take_(take)
{
}

void
WindowTraceSource::fastForward()
{
    if (skipped_)
        return;
    BranchRecord discard;
    for (std::uint64_t i = 0; i < skip_; ++i) {
        if (!inner_.next(discard))
            break;
    }
    skipped_ = true;
}

bool
WindowTraceSource::next(BranchRecord &record)
{
    fastForward();
    if (take_ != 0 && delivered_ >= take_)
        return false;
    if (!inner_.next(record))
        return false;
    ++delivered_;
    return true;
}

void
WindowTraceSource::reset()
{
    inner_.reset();
    delivered_ = 0;
    skipped_ = false;
}

FilterTraceSource::FilterTraceSource(TraceSource &inner,
                                     Predicate predicate)
    : inner_(inner), predicate_(std::move(predicate))
{
}

bool
FilterTraceSource::next(BranchRecord &record)
{
    while (inner_.next(record)) {
        if (predicate_(record))
            return true;
    }
    return false;
}

void
FilterTraceSource::reset()
{
    inner_.reset();
}

} // namespace trace
} // namespace vlp
