/**
 * @file
 * Bounded-memory streaming replay of .vbt trace files.
 *
 * StreamingTraceReader serves decoded records chunk by chunk from a
 * ByteFile. When the backing file exposes a contiguous mapped window
 * (ByteFile::view()), records are decoded directly from the mapping —
 * zero copies, zero syscalls per chunk, and peakBufferBytes() stays 0
 * because no buffer is ever grown. Otherwise it refills a fixed-size
 * chunk buffer, so replaying a multi-gigabyte external trace holds
 * peak trace-buffer memory at chunkRecords * 18 bytes regardless of
 * file size — the property the external-trace suite runner relies on.
 *
 * Validation matches trace_io.h's TraceReader: magic and header-vs-
 * file-size checks at open (truncated files fail before any record is
 * served), per-record kind/taken checks, and — for VBT2 — a
 * stream checksum verified when the final record is consumed. The
 * checksum is accumulated per refilled chunk (same bytes, same order,
 * same digest as the historical per-record accumulation); when the
 * file is wrapped in a HashingByteFile the checksum chain is fused
 * into the content-hash kernel, so hash, checksum, and decode touch
 * each byte exactly once. formatVersion() lets callers warn on
 * unchecksummed VBT1 inputs.
 */

#ifndef VLPSIM_TRACE_STREAMING_H
#define VLPSIM_TRACE_STREAMING_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/byte_file.h"
#include "trace/content_hash.h"
#include "trace/trace_source.h"
#include "util/checksum.h"

namespace vlp {
namespace trace {

/** Streams a .vbt file as a TraceSource with bounded buffering. */
class StreamingTraceReader : public TraceSource
{
  public:
    /** Default chunk size: 4096 records = 72 KiB of buffer. */
    static constexpr std::size_t defaultChunkRecords = 4096;

    /**
     * Take ownership of @p file, validate the header, and verify the
     * file holds exactly the record bytes the header promises.
     * @throws std::runtime_error on bad magic or truncation
     * @throws util::TransientError propagated from @p file
     */
    explicit StreamingTraceReader(
        std::unique_ptr<ByteFile> file,
        std::size_t chunk_records = defaultChunkRecords);

    /** Convenience: open @p path with a plain stdio file. */
    explicit StreamingTraceReader(
        const std::string &path,
        std::size_t chunk_records = defaultChunkRecords);

    /**
     * @throws std::runtime_error on a corrupt record or (VBT2, after
     *         the final record) a checksum mismatch
     */
    bool next(BranchRecord &record) override;

    void reset() override;

    /** Total records according to the header. */
    std::uint64_t count() const { return count_; }

    /** .vbt format version: 1 (no checksum) or 2. */
    unsigned formatVersion() const { return formatVersion_; }

    /** High-water mark of the record buffer, in bytes; stays 0 on the
     *  zero-copy (mapped) path. */
    std::size_t peakBufferBytes() const { return peakBufferBytes_; }

    /** The content-hashing decorator this reader streams through, or
     *  nullptr. finish() on it completes the single-pass identity. */
    HashingByteFile *hashingFile() const { return hashing_; }

    /** The underlying ByteFile (tests assert on backend selection). */
    ByteFile &file() const { return *file_; }

  private:
    /** Load the next chunk: mapped view when available, else a
     *  buffered read; accumulates the VBT2 chunk checksum. */
    void refill();

    /** Read exactly @p size bytes, looping over short reads. */
    void readFully(std::uint8_t *buffer, std::size_t size);

    std::unique_ptr<ByteFile> file_;
    HashingByteFile *hashing_ = nullptr;
    std::size_t chunkRecords_;
    std::uint64_t count_ = 0;
    std::uint64_t read_ = 0;
    unsigned formatVersion_ = 2;
    std::uint64_t expectedChecksum_ = 0;
    std::uint64_t headerBytes_ = 0;
    util::Fnv1a checksum_;

    /** Current decode window: either into buffer_ or into a mapping. */
    const std::uint8_t *chunk_ = nullptr;
    /** Where the underlying stream's read cursor is (the reader seeks
     *  lazily, so interleaved hashing never desyncs the positions). */
    std::uint64_t filePos_ = 0;
    std::vector<std::uint8_t> buffer_;
    std::size_t bufferPos_ = 0;   // byte offset of the next record
    std::size_t bufferBytes_ = 0; // valid bytes in the chunk window
    std::size_t peakBufferBytes_ = 0;
};

/**
 * Content hash of a trace file as a 32-hex-digit string, computed by
 * streaming the raw bytes (header included) through two independently
 * seeded FNV-1a hashes — the identity external traces are cached
 * under, replacing the synthetic workloads' generator version.
 * Zero-copy when the file maps; digests are byte-identical across
 * backends (locked by tests).
 */
std::string hashTraceFile(ByteFile &file);

/** Convenience: hash the file at @p path. */
std::string hashTraceFile(const std::string &path);

} // namespace trace
} // namespace vlp

#endif // VLPSIM_TRACE_STREAMING_H
