/**
 * @file
 * Bounded-memory streaming replay of .vbt trace files.
 *
 * StreamingTraceReader refills a fixed-size chunk of decoded records
 * from a ByteFile, so replaying a multi-gigabyte external trace holds
 * peak trace-buffer memory at chunkRecords * 18 bytes regardless of
 * file size — the property the external-trace suite runner relies on.
 * peakBufferBytes() reports the high-water mark so tests can hold the
 * cap.
 *
 * Validation matches trace_io.h's TraceReader: magic and header-vs-
 * file-size checks at open (truncated files fail before any record is
 * served), per-record kind/taken checks, and — for VBT2 — a
 * stream checksum verified when the final record is consumed.
 * formatVersion() lets callers warn on unchecksummed VBT1 inputs.
 */

#ifndef VLPSIM_TRACE_STREAMING_H
#define VLPSIM_TRACE_STREAMING_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/byte_file.h"
#include "trace/trace_source.h"
#include "util/checksum.h"

namespace vlp {
namespace trace {

/** Streams a .vbt file as a TraceSource with bounded buffering. */
class StreamingTraceReader : public TraceSource
{
  public:
    /** Default chunk size: 4096 records = 72 KiB of buffer. */
    static constexpr std::size_t defaultChunkRecords = 4096;

    /**
     * Take ownership of @p file, validate the header, and verify the
     * file holds exactly the record bytes the header promises.
     * @throws std::runtime_error on bad magic or truncation
     * @throws util::TransientError propagated from @p file
     */
    explicit StreamingTraceReader(
        std::unique_ptr<ByteFile> file,
        std::size_t chunk_records = defaultChunkRecords);

    /** Convenience: open @p path with a plain stdio file. */
    explicit StreamingTraceReader(
        const std::string &path,
        std::size_t chunk_records = defaultChunkRecords);

    /**
     * @throws std::runtime_error on a corrupt record or (VBT2, after
     *         the final record) a checksum mismatch
     */
    bool next(BranchRecord &record) override;

    void reset() override;

    /** Total records according to the header. */
    std::uint64_t count() const { return count_; }

    /** .vbt format version: 1 (no checksum) or 2. */
    unsigned formatVersion() const { return formatVersion_; }

    /** High-water mark of the record buffer, in bytes. */
    std::size_t peakBufferBytes() const { return peakBufferBytes_; }

  private:
    /** Refill the chunk buffer from the file. */
    void refill();

    /** Read exactly @p size bytes, looping over short reads. */
    void readFully(std::uint8_t *buffer, std::size_t size);

    std::unique_ptr<ByteFile> file_;
    std::size_t chunkRecords_;
    std::uint64_t count_ = 0;
    std::uint64_t read_ = 0;
    unsigned formatVersion_ = 2;
    std::uint64_t expectedChecksum_ = 0;
    std::uint64_t headerBytes_ = 0;
    util::Fnv1a checksum_;

    std::vector<std::uint8_t> buffer_;
    std::size_t bufferPos_ = 0;   // byte offset of the next record
    std::size_t bufferBytes_ = 0; // valid bytes in buffer_
    std::size_t peakBufferBytes_ = 0;
};

/**
 * Content hash of a trace file as a 32-hex-digit string, computed by
 * streaming the raw bytes (header included) through two independently
 * seeded FNV-1a hashes — the identity external traces are cached
 * under, replacing the synthetic workloads' generator version.
 */
std::string hashTraceFile(ByteFile &file);

/** Convenience: hash the file at @p path. */
std::string hashTraceFile(const std::string &path);

} // namespace trace
} // namespace vlp

#endif // VLPSIM_TRACE_STREAMING_H
