/**
 * @file
 * The branch-trace record: the unit of information every predictor in
 * this repository consumes.
 *
 * The paper's methodology instruments Alpha binaries with ATOM and feeds
 * the resulting branch stream to simulated predictors. Our equivalent is
 * a stream of BranchRecord values, produced either by the synthetic
 * workload engine (src/workload) or by reading a .vbt trace file
 * (src/trace/trace_io.h).
 */

#ifndef VLPSIM_TRACE_BRANCH_RECORD_H
#define VLPSIM_TRACE_BRANCH_RECORD_H

#include <cstdint>
#include <string>

namespace vlp {
namespace trace {

/** Static branch classes, mirroring the classes the paper treats
 *  differently. */
enum class BranchKind : std::uint8_t {
    /** Conditional direct branch (predicted by conditional predictors). */
    Conditional = 0,
    /** Unconditional direct jump (never stored in the THB). */
    Unconditional = 1,
    /** Direct subroutine call (pushes the return address). */
    DirectCall = 2,
    /** Indirect jump, e.g. a switch statement (indirect predictors). */
    IndirectJump = 3,
    /** Indirect subroutine call, e.g. through a function pointer or
     *  vtable (indirect predictors; also pushes the return address). */
    IndirectCall = 4,
    /** Subroutine return. Predicted by the return address stack and, as
     *  in the paper, excluded from indirect-predictor statistics. */
    Return = 5,
};

/** Number of distinct BranchKind values. */
constexpr unsigned numBranchKinds = 6;

/**
 * Instruction size in bytes (fixed, as on the Alpha). A call's return
 * address is its pc plus this.
 */
constexpr std::uint64_t instructionBytes = 4;

/** Human-readable name of a branch kind. */
const char *branchKindName(BranchKind kind);

/**
 * One dynamic branch instance.
 *
 * @c nextPc is the address control flow actually went to: the branch
 * target when taken, the fall-through address when a conditional branch
 * is not taken. Path-history structures record this executed destination
 * (see DESIGN.md §2 for why).
 */
struct BranchRecord
{
    /** Address of the branch instruction. */
    std::uint64_t pc = 0;
    /** Executed destination (target if taken, else fall-through). */
    std::uint64_t nextPc = 0;
    /** Direction; always true for non-conditional branches. */
    bool taken = true;
    /** Static class of the branch. */
    BranchKind kind = BranchKind::Conditional;

    /** True for conditional direct branches. */
    bool
    isConditional() const
    {
        return kind == BranchKind::Conditional;
    }

    /**
     * True for the indirect branches the paper's indirect predictors
     * handle: indirect jumps and indirect calls, but not returns.
     */
    bool
    isIndirect() const
    {
        return kind == BranchKind::IndirectJump
            || kind == BranchKind::IndirectCall;
    }

    /** True for both kinds of subroutine call. */
    bool
    isCall() const
    {
        return kind == BranchKind::DirectCall
            || kind == BranchKind::IndirectCall;
    }

    /** True for subroutine returns. */
    bool isReturn() const { return kind == BranchKind::Return; }

    /**
     * True if this branch's destination is inserted into the Target
     * History Buffer under the paper's policy (Section 3.2):
     * conditional and indirect branches yes; unconditional branches and
     * (by default) returns no.
     *
     * @param includeReturns also insert return targets (the paper's
     *        ablation; off in its experiments)
     */
    bool
    entersPathHistory(bool includeReturns = false) const
    {
        return isConditional() || isIndirect()
            || (includeReturns && isReturn());
    }

    bool operator==(const BranchRecord &other) const = default;
};

/** Render a record as "pc -> nextPc kind taken" for diagnostics. */
std::string toString(const BranchRecord &record);

} // namespace trace
} // namespace vlp

#endif // VLPSIM_TRACE_BRANCH_RECORD_H
