/**
 * @file
 * Abstract branch-trace sources and the in-memory trace.
 *
 * Simulators and profilers consume traces through the TraceSource
 * interface so that a synthetic workload, an in-memory vector, or a
 * trace file on disk are interchangeable.
 */

#ifndef VLPSIM_TRACE_TRACE_SOURCE_H
#define VLPSIM_TRACE_TRACE_SOURCE_H

#include <cstdint>
#include <vector>

#include "trace/branch_record.h"

namespace vlp {
namespace trace {

/**
 * A resettable, forward-only stream of branch records.
 *
 * The profiling pipeline replays the same trace many times (once per
 * candidate fixed-length predictor, then once per selection iteration),
 * so every source must support reset().
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Fetch the next record.
     * @param record filled in on success
     * @retval true a record was produced
     * @retval false the trace is exhausted
     */
    virtual bool next(BranchRecord &record) = 0;

    /** Rewind to the beginning of the trace. */
    virtual void reset() = 0;
};

/**
 * A trace held entirely in memory. This is the workhorse source: the
 * workload engine materializes its branch stream into one of these,
 * which is then replayed across all predictors and profiling passes.
 */
class VectorTraceSource : public TraceSource
{
  public:
    VectorTraceSource() = default;

    /** Construct over an existing record vector (takes ownership). */
    explicit VectorTraceSource(std::vector<BranchRecord> records)
        : records_(std::move(records))
    {}

    bool
    next(BranchRecord &record) override
    {
        if (position_ >= records_.size())
            return false;
        record = records_[position_++];
        return true;
    }

    void reset() override { position_ = 0; }

    /** Append a record (used while building a trace). */
    void append(const BranchRecord &record) { records_.push_back(record); }

    /** Number of records in the trace. */
    std::size_t size() const { return records_.size(); }

    /** Direct access to the underlying records. */
    const std::vector<BranchRecord> &records() const { return records_; }

    /** Mutable access (used by trace filters and tests). */
    std::vector<BranchRecord> &records() { return records_; }

  private:
    std::vector<BranchRecord> records_;
    std::size_t position_ = 0;
};

} // namespace trace
} // namespace vlp

#endif // VLPSIM_TRACE_TRACE_SOURCE_H
