/**
 * @file
 * Bounded read-ahead for trace corpora.
 *
 * TracePrefetcher turns a sorted list of trace paths into a pipeline:
 * background producers open, validate, and content-hash upcoming
 * traces (one single-pass open each — see trace/content_hash.h) while
 * consumers simulate earlier ones, so corpus ingestion overlaps I/O,
 * hashing, and compute. The window bounds how many validated-but-
 * unconsumed opens may exist at once, which bounds both memory and
 * open file descriptors regardless of corpus size.
 *
 * Consumption contract: take(i) blocks until item i is ready and may
 * be called from many threads, but each consumer must take its own
 * items in increasing index order, and every item must eventually be
 * taken (even when an earlier item of the same unit failed) — that is
 * what makes the bounded window deadlock-free. Failures never throw
 * out of the producers: each item carries either a ready session or
 * the exception (post-retry) that prevented one, so consumers apply
 * their own quarantine policy. Results are a pure function of the
 * trace bytes — prefetching cannot change a report.
 */

#ifndef VLPSIM_TRACE_PREFETCH_H
#define VLPSIM_TRACE_PREFETCH_H

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "trace/streaming.h"
#include "util/cancel.h"
#include "util/retry.h"

namespace vlp {
namespace trace {

/** One validated, hash-complete single-pass trace open. */
struct PrefetchedTrace
{
    /** Ready-to-replay session wrapping a HashingByteFile; null when
     *  @ref error is set. */
    std::shared_ptr<StreamingTraceReader> session;
    /** 32-hex content hash (hashTraceFile-identical). */
    std::string contentHash;
    /** Container version from the header (1 or 2). */
    unsigned formatVersion = 0;
    /** Records promised by the header. */
    std::uint64_t records = 0;
    /** Why the open failed, after retries; null on success. */
    std::exception_ptr error;
};

/** Pipelined opener over an ordered path list. */
class TracePrefetcher
{
  public:
    struct Options
    {
        /** How paths open; empty = mmap-auto fast open. */
        FileOpener opener;
        /** Records per streaming chunk for the sessions. */
        std::size_t chunkRecords =
            StreamingTraceReader::defaultChunkRecords;
        /** Max validated-but-untaken opens; 0 = no read-ahead
         *  (take() opens inline on the consumer thread). */
        std::size_t window = 0;
        /** Producer threads hashing ahead (ignored when window is
         *  0); clamped to the window. */
        unsigned threads = 1;
        /** Retry schedule for each open (opener faults included). */
        util::RetryPolicy retry;
        /** Cooperative cancellation; producers stop promptly and
         *  take() throws util::CancelledError. */
        std::shared_ptr<const util::CancelToken> cancel;
    };

    TracePrefetcher(std::vector<std::string> paths, Options options);

    TracePrefetcher(const TracePrefetcher &) = delete;
    TracePrefetcher &operator=(const TracePrefetcher &) = delete;

    /** Stops producers, joins them, and drops untaken sessions. */
    ~TracePrefetcher();

    /**
     * The prefetched open of paths[index]; blocks until ready. Each
     * index may be taken exactly once.
     * @throws util::CancelledError once the token fires
     */
    PrefetchedTrace take(std::size_t index);

    /**
     * One synchronous single-pass open: open via @p options.opener,
     * wrap in a HashingByteFile, validate the header, finish the
     * hash — all under the retry policy. Never throws; failures land
     * in PrefetchedTrace::error. (The building block producers run;
     * exposed for inline mode, tools, and benchmarks.)
     */
    static PrefetchedTrace openTrace(const std::string &path,
                                     const Options &options);

  private:
    void producerLoop();

    const std::vector<std::string> paths_;
    const Options options_;
    const std::size_t window_;

    std::mutex mutex_;
    std::condition_variable ready_; // a result landed
    std::condition_variable space_; // window freed / shutdown
    std::map<std::size_t, PrefetchedTrace> results_;
    /** Items claimed by a producer that died (chaos) before opening;
     *  take() opens them inline so the pipeline stays deadlock-free. */
    std::set<std::size_t> abandoned_;
    std::size_t nextToStart_ = 0;
    std::size_t outstanding_ = 0; // started and not yet taken
    /** Producers that have not died; when 0, take() stops waiting for
     *  unclaimed items and opens them inline. */
    std::size_t producersAlive_ = 0;
    bool stop_ = false;
    std::vector<std::thread> producers_;
};

} // namespace trace
} // namespace vlp

#endif // VLPSIM_TRACE_PREFETCH_H
