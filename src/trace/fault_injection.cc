/**
 * @file
 * Deterministic trace I/O fault injection implementation.
 */

#include "trace/fault_injection.h"

#include <algorithm>

#include "util/checksum.h"
#include "util/logging.h"

namespace vlp {
namespace trace {

FileOpener
FaultInjector::opener(FileOpener inner)
{
    if (!inner)
        inner = [](const std::string &path) {
            return openByteFile(path);
        };
    return [this, inner](const std::string &path) {
        PathState &state = pathState(path);
        bool fail_open = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (state.opensFailed < plan_.transientOpens) {
                ++state.opensFailed;
                ++counters_.transientOpens;
                fail_open = true;
            }
        }
        if (fail_open)
            throw util::TransientError(
                "injected transient open failure: " + path);
        return std::unique_ptr<ByteFile>(
            std::make_unique<FaultyFile>(inner(path), *this));
    };
}

FaultCounters
FaultInjector::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

FaultInjector::PathState &
FaultInjector::pathState(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return states_[path];
}

void
FaultInjector::count(std::uint64_t FaultCounters::*counter)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++(counters_.*counter);
}

FaultyFile::FaultyFile(std::unique_ptr<ByteFile> inner,
                       FaultInjector &injector)
    : inner_(std::move(inner)), injector_(injector),
      // Per-path stream: fault positions depend only on the seed and
      // the path, never on thread timing or open order.
      rng_(injector.plan().seed ^ util::fnv1a(inner_->name()))
{
    const FaultPlan &plan = injector_.plan();
    if (plan.truncateAt != FaultPlan::noTruncation
        && inner_->size() > plan.truncateAt) {
        injector_.count(&FaultCounters::truncations);
    }
}

std::uint64_t
FaultyFile::effectiveSize()
{
    return std::min(inner_->size(), injector_.plan().truncateAt);
}

std::size_t
FaultyFile::read(void *buffer, std::size_t size)
{
    const FaultPlan &plan = injector_.plan();
    {
        FaultInjector::PathState &state =
            injector_.pathState(inner_->name());
        bool fail_read = false;
        {
            std::lock_guard<std::mutex> lock(injector_.mutex_);
            if (state.readsFailed < plan.transientReads) {
                ++state.readsFailed;
                ++injector_.counters_.transientReads;
                fail_read = true;
            }
        }
        if (fail_read)
            throw util::TransientError(
                "injected transient read failure: " + inner_->name());
    }

    const std::uint64_t limit = effectiveSize();
    if (position_ >= limit)
        return 0;
    const std::uint64_t available = limit - position_;
    std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(size, available));
    if (want > 1 && rng_.nextBool(plan.shortReadProbability)) {
        want = 1 + static_cast<std::size_t>(
                   rng_.nextBelow(want - 1));
        injector_.count(&FaultCounters::shortReads);
    }

    const std::size_t got = inner_->read(buffer, want);
    if (got > 0 && rng_.nextBool(plan.bitFlipProbability)) {
        auto *bytes = static_cast<std::uint8_t *>(buffer);
        bytes[rng_.nextBelow(got)] ^=
            std::uint8_t{1} << rng_.nextBelow(8);
        injector_.count(&FaultCounters::bitFlips);
    }
    position_ += got;
    return got;
}

void
FaultyFile::seek(std::uint64_t offset)
{
    inner_->seek(offset);
    position_ = offset;
}

std::uint64_t
FaultyFile::size()
{
    return effectiveSize();
}

} // namespace trace
} // namespace vlp
