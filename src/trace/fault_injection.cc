/**
 * @file
 * Deterministic trace I/O fault injection implementation.
 */

#include "trace/fault_injection.h"

#include <algorithm>
#include <cstring>

#include "util/chaos.h"
#include "util/checksum.h"
#include "util/logging.h"

namespace vlp {
namespace trace {

FileOpener
FaultInjector::opener(FileOpener inner)
{
    if (!inner)
        inner = [](const std::string &path) {
            return openByteFile(path);
        };
    return [this, inner](const std::string &path) {
        PathState &state = pathState(path);
        bool fail_open = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (state.opensFailed < plan_.transientOpens) {
                ++state.opensFailed;
                ++counters_.transientOpens;
                fail_open = true;
            }
        }
        if (fail_open)
            throw util::TransientError(
                "injected transient open failure: " + path);
        return std::unique_ptr<ByteFile>(
            std::make_unique<FaultyFile>(inner(path), *this));
    };
}

FaultCounters
FaultInjector::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

FaultInjector::PathState &
FaultInjector::pathState(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return states_[path];
}

void
FaultInjector::count(std::uint64_t FaultCounters::*counter)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++(counters_.*counter);
}

FaultyFile::FaultyFile(std::unique_ptr<ByteFile> inner,
                       FaultInjector &injector)
    : inner_(std::move(inner)), injector_(injector),
      // Per-path stream: fault positions depend only on the seed and
      // the path, never on thread timing or open order.
      rng_(injector.plan().seed ^ util::fnv1a(inner_->name()))
{
    const FaultPlan &plan = injector_.plan();
    if (plan.truncateAt != FaultPlan::noTruncation
        && inner_->size() > plan.truncateAt) {
        injector_.count(&FaultCounters::truncations);
    }
}

std::uint64_t
FaultyFile::effectiveSize()
{
    return std::min(inner_->size(), injector_.plan().truncateAt);
}

std::size_t
FaultyFile::read(void *buffer, std::size_t size)
{
    const FaultPlan &plan = injector_.plan();
    {
        FaultInjector::PathState &state =
            injector_.pathState(inner_->name());
        bool fail_read = false;
        {
            std::lock_guard<std::mutex> lock(injector_.mutex_);
            if (state.readsFailed < plan.transientReads) {
                ++state.readsFailed;
                ++injector_.counters_.transientReads;
                fail_read = true;
            }
        }
        if (fail_read)
            throw util::TransientError(
                "injected transient read failure: " + inner_->name());
    }

    const std::uint64_t limit = effectiveSize();
    if (position_ >= limit)
        return 0;
    const std::uint64_t available = limit - position_;
    std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(size, available));
    if (want > 1 && rng_.nextBool(plan.shortReadProbability)) {
        want = 1 + static_cast<std::size_t>(
                   rng_.nextBelow(want - 1));
        injector_.count(&FaultCounters::shortReads);
    }

    const std::size_t got = inner_->read(buffer, want);
    if (got > 0 && rng_.nextBool(plan.bitFlipProbability)) {
        auto *bytes = static_cast<std::uint8_t *>(buffer);
        bytes[rng_.nextBelow(got)] ^=
            std::uint8_t{1} << rng_.nextBelow(8);
        injector_.count(&FaultCounters::bitFlips);
    }
    position_ += got;
    return got;
}

void
FaultyFile::seek(std::uint64_t offset)
{
    inner_->seek(offset);
    position_ = offset;
}

std::uint64_t
FaultyFile::size()
{
    return effectiveSize();
}

const std::uint8_t *
FaultyFile::view(std::uint64_t offset, std::size_t size)
{
    const FaultPlan &plan = injector_.plan();
    if (!plan.serveViews || size == 0
        || offset + size > effectiveSize()) {
        return nullptr;
    }
    if (rng_.nextBool(plan.shortViewProbability)) {
        injector_.count(&FaultCounters::shortViews);
        return nullptr;
    }
    viewBuffer_.resize(size);
    if (const std::uint8_t *direct = inner_->view(offset, size)) {
        std::memcpy(viewBuffer_.data(), direct, size);
    } else {
        // Buffer through read(); the view contract says view() must
        // not move the read position, so restore it afterwards.
        inner_->seek(offset);
        std::size_t got = 0;
        while (got < size) {
            const std::size_t n =
                inner_->read(viewBuffer_.data() + got, size - got);
            if (n == 0) {
                inner_->seek(position_);
                return nullptr;
            }
            got += n;
        }
        inner_->seek(position_);
    }
    if (rng_.nextBool(plan.viewBitFlipProbability)) {
        viewBuffer_[rng_.nextBelow(size)] ^=
            std::uint8_t{1} << rng_.nextBelow(8);
        injector_.count(&FaultCounters::viewBitFlips);
    }
    return viewBuffer_.data();
}

namespace {

/** ByteFile decorator driven by the global chaos switchboard. */
class ChaosFile : public ByteFile
{
  public:
    explicit ChaosFile(std::unique_ptr<ByteFile> inner)
        : inner_(std::move(inner)),
          key_(util::chaos::pathKey(inner_->name()))
    {}

    std::size_t read(void *buffer, std::size_t size) override
    {
        if (CHAOS_SECTION("trace.read.transient", key_)) {
            throw util::TransientError(
                "chaos: transient read failure: " + inner_->name());
        }
        std::size_t want = size;
        if (want > 1 && CHAOS_SECTION("trace.read.short", key_)) {
            want = 1 + want / 2;
        }
        return inner_->read(buffer, want);
    }

    const std::uint8_t *view(std::uint64_t offset,
                             std::size_t size) override
    {
        if (CHAOS_SECTION("trace.view.refuse", key_))
            return nullptr;
        return inner_->view(offset, size);
    }

    void seek(std::uint64_t offset) override { inner_->seek(offset); }
    std::uint64_t size() override { return inner_->size(); }
    const std::string &name() const override { return inner_->name(); }

  private:
    std::unique_ptr<ByteFile> inner_;
    /** Chaos identity: the file's final path component, so decisions
     *  replay no matter where the corpus lives. */
    std::string key_;
};

} // anonymous namespace

FileOpener
chaosOpener(FileOpener inner)
{
    if (!inner)
        inner = [](const std::string &path) {
            return openByteFile(path);
        };
    return [inner](const std::string &path)
        -> std::unique_ptr<ByteFile> {
        if (!util::chaos::enabled())
            return inner(path);
        if (CHAOS_SECTION("trace.open.transient",
                          util::chaos::pathKey(path))) {
            throw util::TransientError(
                "chaos: transient open failure: " + path);
        }
        return std::make_unique<ChaosFile>(inner(path));
    };
}

} // namespace trace
} // namespace vlp

