/**
 * @file
 * Memory-mapped zero-copy ByteFile for local .vbt traces.
 *
 * MmapByteFile maps a regular file read-only and serves view() windows
 * straight out of the mapping — the streaming reader decodes records
 * in place, no memcpy, no syscalls per chunk. Files larger than the
 * mapping window are remapped as the reader advances (windowed remap),
 * so address-space use stays bounded on multi-GB corpora; every
 * mapping is madvise(MADV_SEQUENTIAL)-hinted for the replay access
 * pattern.
 *
 * Non-regular inputs (FIFOs, /dev/stdin, sockets) and mmap failures
 * raise MmapUnsupported from the constructor; openByteFileFast() turns
 * that into a graceful fallback to StdioByteFile, so callers never
 * lose a trace to a backend limitation. The fallback matrix lives in
 * DESIGN §15.
 */

#ifndef VLPSIM_TRACE_MMAP_FILE_H
#define VLPSIM_TRACE_MMAP_FILE_H

#include <stdexcept>

#include "trace/byte_file.h"

namespace vlp {
namespace trace {

/** The input exists but cannot be served by mmap (not a defect). */
class MmapUnsupported : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Read-only mapped ByteFile with a bounded remapping window. */
class MmapByteFile : public ByteFile
{
  public:
    /** Default mapping window: 256 MiB of address space. */
    static constexpr std::size_t defaultWindowBytes =
        256ull * 1024 * 1024;

    /**
     * Open and map @p path.
     * @param window_bytes mapping-window floor; requests larger than
     *        the window still succeed (the window grows to cover
     *        them), smaller values force remaps for tests
     * @throws MmapUnsupported when the path is not a regular file or
     *         the kernel refuses the mapping
     * @throws util::TransientError / std::runtime_error on open
     *         failures, classified like StdioByteFile
     */
    explicit MmapByteFile(const std::string &path,
                          std::size_t window_bytes = defaultWindowBytes);
    ~MmapByteFile() override;

    MmapByteFile(const MmapByteFile &) = delete;
    MmapByteFile &operator=(const MmapByteFile &) = delete;

    std::size_t read(void *buffer, std::size_t size) override;
    void seek(std::uint64_t offset) override;
    std::uint64_t size() override { return fileSize_; }
    const std::string &name() const override { return path_; }
    const std::uint8_t *view(std::uint64_t offset,
                             std::size_t size) override;

    /** Times the mapping window was (re)established — observability
     *  for the windowed-remap tests. */
    std::uint64_t remaps() const { return remaps_; }

  private:
    /** Ensure the window covers [offset, offset+size); may remap. */
    bool ensureWindow(std::uint64_t offset, std::size_t size);
    void unmap();

    std::string path_;
    int fd_ = -1;
    std::uint64_t fileSize_ = 0;
    std::uint64_t position_ = 0; // read() cursor
    std::size_t windowBytes_;
    void *window_ = nullptr;
    std::uint64_t windowStart_ = 0;
    std::size_t windowLength_ = 0;
    std::uint64_t remaps_ = 0;
};

/** How trace files are opened for reading. */
enum class ReadMode {
    /** mmap when possible, silent stdio fallback otherwise. */
    Auto,
    /** mmap, with a logged warning when falling back to stdio. */
    Mmap,
    /** Always stdio. */
    Stdio,
};

/**
 * Parse "auto" / "mmap" / "stdio" (the `--read-mode` flag values).
 * @throws std::runtime_error on anything else
 */
ReadMode parseReadMode(const std::string &text);

/** The canonical flag spelling of @p mode. */
const char *readModeName(ReadMode mode);

/**
 * Open @p path for @p mode: the mapped fast path when allowed and
 * possible, StdioByteFile otherwise. Never fails because of a backend
 * limitation — only genuine open errors propagate.
 */
std::unique_ptr<ByteFile>
openByteFileFast(const std::string &path,
                 ReadMode mode = ReadMode::Auto);

/** A FileOpener calling openByteFileFast(path, mode). */
FileOpener fastOpener(ReadMode mode);

} // namespace trace
} // namespace vlp

#endif // VLPSIM_TRACE_MMAP_FILE_H
