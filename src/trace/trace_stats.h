/**
 * @file
 * Trace-level statistics: the static and dynamic branch counts the
 * paper reports in Table 1.
 */

#ifndef VLPSIM_TRACE_TRACE_STATS_H
#define VLPSIM_TRACE_TRACE_STATS_H

#include <array>
#include <cstdint>
#include <string>
#include <unordered_set>

#include "trace/branch_record.h"
#include "trace/trace_source.h"

namespace vlp {
namespace trace {

/**
 * Accumulates per-kind static (distinct branch PCs) and dynamic
 * (executed instances) counts over a branch stream.
 */
class TraceStats
{
  public:
    TraceStats();

    /** Account for one dynamic branch. */
    void observe(const BranchRecord &record);

    /** Consume an entire source (leaves it exhausted, not reset). */
    void observeAll(TraceSource &source);

    /** Dynamic count of branches of @p kind. */
    std::uint64_t dynamicCount(BranchKind kind) const;

    /** Static count (distinct PCs) of branches of @p kind. */
    std::uint64_t staticCount(BranchKind kind) const;

    /** Dynamic count of conditional branches. */
    std::uint64_t dynamicConditional() const;

    /** Static count of conditional branches. */
    std::uint64_t staticConditional() const;

    /**
     * Dynamic count of indirect branches (indirect jumps + indirect
     * calls; returns excluded, as in the paper's Table 1).
     */
    std::uint64_t dynamicIndirect() const;

    /** Static count of indirect branches (returns excluded). */
    std::uint64_t staticIndirect() const;

    /** Dynamic count of all records of any kind. */
    std::uint64_t dynamicTotal() const;

    /** Taken fraction of conditional branches, in percent. */
    double takenRate() const;

    /** Multi-line human-readable summary. */
    std::string summary() const;

  private:
    std::array<std::uint64_t, numBranchKinds> dynamic_;
    std::array<std::unordered_set<std::uint64_t>, numBranchKinds> pcs_;
    std::uint64_t takenConditional_ = 0;
};

} // namespace trace
} // namespace vlp

#endif // VLPSIM_TRACE_TRACE_STATS_H
