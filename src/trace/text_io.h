/**
 * @file
 * Human-readable text trace format — the import/export path for
 * external tools. One record per line:
 *
 *     <kind> <pc-hex> <nextpc-hex> <T|N>
 *
 * where <kind> is one of cond, jump, call, ijump, icall, ret (the
 * names branchKindName() prints). Lines starting with '#' and blank
 * lines are ignored. Example:
 *
 *     # extracted from a ChampSim trace
 *     cond  40001c 400080 T
 *     ijump 400080 400200 T
 *     ret   400200 400020 T
 */

#ifndef VLPSIM_TRACE_TEXT_IO_H
#define VLPSIM_TRACE_TEXT_IO_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace_source.h"

namespace vlp {
namespace trace {

/**
 * Parse a text trace from @p in.
 * @throws std::runtime_error on malformed lines (with line number)
 */
VectorTraceSource readTextTrace(std::istream &in);

/**
 * Parse a text trace file.
 * @throws std::runtime_error on I/O or format errors
 */
VectorTraceSource loadTextTrace(const std::string &path);

/** Write @p source as text to @p out. */
void writeTextTrace(const VectorTraceSource &source, std::ostream &out);

/**
 * Write @p source as a text file.
 * @throws std::runtime_error on I/O errors
 */
void saveTextTrace(const VectorTraceSource &source,
                   const std::string &path);

/**
 * Parse a branch kind name ("cond", "jump", ...).
 * @throws std::runtime_error for unknown names
 */
BranchKind parseBranchKind(const std::string &name);

/**
 * Outcome of a lenient text-to-.vbt conversion (`vlpsim convert`).
 * Malformed lines are skipped and reported with their line numbers
 * instead of aborting the import — external branch logs routinely
 * carry a handful of mangled lines.
 */
struct ConvertReport
{
    /** Diagnostics kept; further bad lines only bump skipped. */
    static constexpr std::size_t maxDiagnostics = 20;

    /** Records successfully parsed. */
    std::uint64_t imported = 0;
    /** Malformed lines skipped. */
    std::uint64_t skipped = 0;
    /** "line N: why" messages for the first maxDiagnostics bad lines. */
    std::vector<std::string> diagnostics;
};

/**
 * Parse a text branch log leniently. Accepts the native format
 * (`kind pc next T|N`) and a ChampSim-style reduced form
 * (`pc next T|N|1|0`, kind defaulting to cond). Malformed lines are
 * recorded in @p report and skipped; never throws on content.
 */
VectorTraceSource readTextTraceLenient(std::istream &in,
                                       ConvertReport &report);

} // namespace trace
} // namespace vlp

#endif // VLPSIM_TRACE_TEXT_IO_H
