/**
 * @file
 * Trace filters: windowing and class-filtering views over a trace
 * source, for warmup skipping, sampled simulation, and class-specific
 * analyses.
 */

#ifndef VLPSIM_TRACE_TRACE_FILTER_H
#define VLPSIM_TRACE_TRACE_FILTER_H

#include <functional>

#include "trace/trace_source.h"

namespace vlp {
namespace trace {

/**
 * A [skip, skip+take) window over another source, counted in records.
 * Useful to drop warmup or to simulate a sample of a long trace.
 */
class WindowTraceSource : public TraceSource
{
  public:
    /**
     * @param inner source to window (borrowed; must outlive this)
     * @param skip  records to discard from the start
     * @param take  records to pass through (0 = unlimited)
     */
    WindowTraceSource(TraceSource &inner, std::uint64_t skip,
                      std::uint64_t take = 0);

    bool next(BranchRecord &record) override;

    void reset() override;

  private:
    void fastForward();

    TraceSource &inner_;
    std::uint64_t skip_;
    std::uint64_t take_;
    std::uint64_t delivered_ = 0;
    bool skipped_ = false;
};

/**
 * Passes through only records matching a predicate. Note that most
 * predictor simulations must see the *whole* stream (history is built
 * from every class); this filter is for analyses such as per-class
 * statistics, not for driving Simulator.
 */
class FilterTraceSource : public TraceSource
{
  public:
    using Predicate = std::function<bool(const BranchRecord &)>;

    /** @param inner source to filter (borrowed) */
    FilterTraceSource(TraceSource &inner, Predicate predicate);

    bool next(BranchRecord &record) override;

    void reset() override;

  private:
    TraceSource &inner_;
    Predicate predicate_;
};

} // namespace trace
} // namespace vlp

#endif // VLPSIM_TRACE_TRACE_FILTER_H
