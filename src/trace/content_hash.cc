/**
 * @file
 * Fused FNV content hashing and the single-pass decorator.
 */

#include "trace/content_hash.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "util/logging.h"

namespace vlp {
namespace trace {

namespace {

constexpr std::uint64_t fnvPrime = util::Fnv1a::prime;

/** Tail-hash block size: big enough to amortize the virtual calls,
 *  small enough to stay cache-resident. */
constexpr std::size_t finishBlockBytes = 256 * 1024;

} // anonymous namespace

void
ContentHasher::reset()
{
    low_ = util::Fnv1a::offsetBasis;
    high_ = util::Fnv1a::offsetBasis ^ highSeedXor;
}

void
ContentHasher::update(const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint64_t low = low_;
    std::uint64_t high = high_;
    // One loop, two independent multiply chains: each stream's FNV-1a
    // recurrence is latency-bound, so interleaving lets the CPU
    // overlap them — same digests as two sequential passes, ~2x the
    // bytes per cycle.
    for (std::size_t i = 0; i < size; ++i) {
        const std::uint64_t byte = bytes[i];
        low = (low ^ byte) * fnvPrime;
        high = (high ^ byte) * fnvPrime;
    }
    low_ = low;
    high_ = high;
}

void
ContentHasher::updateWith(const void *data, std::size_t size,
                          util::Fnv1a &companion)
{
    const auto *bytes = static_cast<const std::uint8_t *>(data);
    std::uint64_t low = low_;
    std::uint64_t high = high_;
    std::uint64_t extra = companion.digest();
    for (std::size_t i = 0; i < size; ++i) {
        const std::uint64_t byte = bytes[i];
        low = (low ^ byte) * fnvPrime;
        high = (high ^ byte) * fnvPrime;
        extra = (extra ^ byte) * fnvPrime;
    }
    low_ = low;
    high_ = high;
    companion.reset(extra);
}

std::string
ContentHasher::digest() const
{
    char text[33];
    std::snprintf(text, sizeof(text), "%016llx%016llx",
                  static_cast<unsigned long long>(high_),
                  static_cast<unsigned long long>(low_));
    return text;
}

HashingByteFile::HashingByteFile(std::unique_ptr<ByteFile> inner)
    : inner_(std::move(inner))
{
}

std::uint64_t
HashingByteFile::size()
{
    return inner_->size();
}

void
HashingByteFile::absorb(const std::uint8_t *data, std::uint64_t offset,
                        std::size_t size, util::Fnv1a *companion)
{
    if (size == 0)
        return;
    if (!complete_ && offset <= frontier_
        && offset + size > frontier_) {
        // The access covers the frontier: hash the unhashed tail; any
        // already-hashed head still belongs to the companion (it
        // covers every byte of every access it is fused into).
        const std::size_t skip =
            static_cast<std::size_t>(frontier_ - offset);
        if (companion != nullptr) {
            if (skip > 0)
                companion->update(data, skip);
            hasher_.updateWith(data + skip, size - skip, *companion);
        } else {
            hasher_.update(data + skip, size - skip);
        }
        frontier_ += size - skip;
        if (frontier_ >= inner_->size())
            complete_ = true;
    } else if (companion != nullptr) {
        companion->update(data, size);
    }
}

std::size_t
HashingByteFile::read(void *buffer, std::size_t size)
{
    const std::size_t got = inner_->read(buffer, size);
    absorb(static_cast<const std::uint8_t *>(buffer), position_, got,
           nullptr);
    position_ += got;
    return got;
}

std::size_t
HashingByteFile::readHashing(void *buffer, std::size_t size,
                             util::Fnv1a &companion)
{
    const std::size_t got = inner_->read(buffer, size);
    absorb(static_cast<const std::uint8_t *>(buffer), position_, got,
           &companion);
    position_ += got;
    return got;
}

void
HashingByteFile::seek(std::uint64_t offset)
{
    inner_->seek(offset);
    position_ = offset;
}

const std::uint8_t *
HashingByteFile::view(std::uint64_t offset, std::size_t size)
{
    const std::uint8_t *window = inner_->view(offset, size);
    if (window != nullptr)
        absorb(window, offset, size, nullptr);
    return window;
}

const std::uint8_t *
HashingByteFile::viewHashing(std::uint64_t offset, std::size_t size,
                             util::Fnv1a &companion)
{
    const std::uint8_t *window = inner_->view(offset, size);
    if (window != nullptr)
        absorb(window, offset, size, &companion);
    return window;
}

std::string
HashingByteFile::finish()
{
    if (!complete_) {
        const std::uint64_t total = inner_->size();
        // Zero-copy tail hashing while the backend keeps mapping.
        while (frontier_ < total) {
            const std::size_t want = static_cast<std::size_t>(
                std::min<std::uint64_t>(finishBlockBytes,
                                        total - frontier_));
            const std::uint8_t *window = inner_->view(frontier_, want);
            if (window == nullptr)
                break;
            hasher_.update(window, want);
            frontier_ += want;
        }
        // Buffered fallback for the rest; the caller-visible read
        // position is restored afterwards.
        if (frontier_ < total) {
            inner_->seek(frontier_);
            std::vector<std::uint8_t> buffer(
                std::min<std::uint64_t>(finishBlockBytes,
                                        total - frontier_));
            while (frontier_ < total) {
                const std::size_t want = static_cast<std::size_t>(
                    std::min<std::uint64_t>(buffer.size(),
                                            total - frontier_));
                const std::size_t got =
                    inner_->read(buffer.data(), want);
                if (got == 0) {
                    throw std::runtime_error(
                        "unexpected end of file while hashing: "
                        + name());
                }
                hasher_.update(buffer.data(), got);
                frontier_ += got;
            }
            inner_->seek(position_);
        }
        complete_ = true;
    }
    return hasher_.digest();
}

} // namespace trace
} // namespace vlp
