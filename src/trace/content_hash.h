/**
 * @file
 * Single-pass trace content hashing.
 *
 * The content identity of a trace file is two independently seeded
 * 64-bit FNV-1a streams over all its bytes, formatted as 32 hex digits
 * (high stream then low) — established by PR 4's hashTraceFile() and
 * baked into every cache key and checkpoint cell. ContentHasher
 * computes exactly that identity, but with the two serial
 * multiply-chains interleaved in one loop: FNV-1a is latency-bound
 * (one dependent 64-bit multiply per byte per stream), so fusing the
 * streams overlaps their chains and roughly doubles hash throughput
 * without changing a single output bit. updateWith() goes one further
 * and folds a third caller-owned FNV stream (the VBT2 record checksum)
 * into the same loop — the whole-file hash, the stream checksum, and
 * the decode then touch each byte in one pass.
 *
 * HashingByteFile is the decorator that makes the hash a by-product of
 * reading: it watches the sequential prefix of the stream go by
 * (reads and views both), and finish() hashes whatever tail was never
 * read. Opening a trace once now yields validation, replay, and the
 * cache identity — the suite runner's double open is gone.
 */

#ifndef VLPSIM_TRACE_CONTENT_HASH_H
#define VLPSIM_TRACE_CONTENT_HASH_H

#include <cstdint>
#include <memory>
#include <string>

#include "trace/byte_file.h"
#include "util/checksum.h"

namespace vlp {
namespace trace {

/** Fused two-stream FNV-1a over a byte sequence; digest() matches
 *  hashTraceFile()'s historical output byte for byte. */
class ContentHasher
{
  public:
    /** High-stream seed offset (golden-ratio constant), part of the
     *  on-disk cache-key contract — never change it. */
    static constexpr std::uint64_t highSeedXor = 0x9e3779b97f4a7c15ULL;

    ContentHasher() { reset(); }

    /** Mix @p size bytes into both streams (one fused loop). */
    void update(const void *data, std::size_t size);

    /**
     * update(), with @p companion's FNV stream fused into the same
     * loop — three chains, one pass. @p companion sees exactly the
     * bytes an equivalent companion.update(data, size) would.
     */
    void updateWith(const void *data, std::size_t size,
                    util::Fnv1a &companion);

    /** 32-hex-digit digest of everything fed so far (high, low). */
    std::string digest() const;

    void reset();

  private:
    std::uint64_t low_;
    std::uint64_t high_;
};

/**
 * ByteFile decorator that derives the content hash from the bytes
 * flowing past. The hash frontier is the longest prefix of the file
 * already hashed; sequential reads and views at the frontier advance
 * it, re-reads behind it (replays after reset) are served without
 * double-hashing, and finish() hashes the remaining tail so the
 * digest is always of the complete file.
 */
class HashingByteFile : public ByteFile
{
  public:
    explicit HashingByteFile(std::unique_ptr<ByteFile> inner);

    std::size_t read(void *buffer, std::size_t size) override;
    void seek(std::uint64_t offset) override;
    std::uint64_t size() override;
    const std::string &name() const override { return inner_->name(); }
    const std::uint8_t *view(std::uint64_t offset,
                             std::size_t size) override;
    HashingByteFile *hasher() override { return this; }

    /**
     * Like view(), but with @p companion fused into the hash kernel
     * for the not-yet-hashed part of the window (see
     * ContentHasher::updateWith); @p companion always covers the full
     * window. Null exactly when view() would be null.
     */
    const std::uint8_t *viewHashing(std::uint64_t offset,
                                    std::size_t size,
                                    util::Fnv1a &companion);

    /**
     * Read like read(), but fuse @p companion over the bytes served —
     * the read()-path twin of viewHashing().
     */
    std::size_t readHashing(void *buffer, std::size_t size,
                            util::Fnv1a &companion);

    /**
     * Hash the tail beyond the frontier (zero-copy when the inner
     * file maps) and return the complete content digest —
     * byte-identical to hashTraceFile() on the same bytes. Leaves the
     * read position where it was for well-behaved (position-tracking)
     * callers: the position is restored via seek().
     * @throws util::TransientError / std::runtime_error from the
     *         underlying file
     */
    std::string finish();

    /** Bytes of sequential prefix hashed so far. */
    std::uint64_t hashedBytes() const { return frontier_; }

    /** True once the frontier has reached end of file. */
    bool complete() const { return complete_; }

    /** The wrapped file (tests assert on decorator stacking). */
    ByteFile &inner() { return *inner_; }

  private:
    /** Advance the frontier over [offset, offset+size) at @p data,
     *  hashing only the unhashed part; optional fused companion. */
    void absorb(const std::uint8_t *data, std::uint64_t offset,
                std::size_t size, util::Fnv1a *companion);

    std::unique_ptr<ByteFile> inner_;
    ContentHasher hasher_;
    std::uint64_t position_ = 0; // read() cursor, tracked via seek()
    std::uint64_t frontier_ = 0; // bytes hashed (file prefix)
    bool complete_ = false;
};

} // namespace trace
} // namespace vlp

#endif // VLPSIM_TRACE_CONTENT_HASH_H
