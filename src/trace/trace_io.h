/**
 * @file
 * Binary trace file format (.vbt — "vlpsim branch trace").
 *
 * Current layout (little-endian), version 2:
 *   bytes 0..3    magic "VBT2"
 *   bytes 4..11   record count (uint64)
 *   bytes 12..19  FNV-1a checksum of all record bytes (uint64)
 *   then, per record:
 *     uint8  kind        (BranchKind)
 *     uint8  taken       (0 or 1)
 *     uint64 pc
 *     uint64 nextPc
 *
 * Version-1 files ("VBT1" magic, no checksum field) are still read.
 * The reader validates the file size against the header's record count
 * at open — a truncated or torn file fails immediately with a clear
 * error instead of a partial read — and, for VBT2 files, verifies the
 * checksum once the last record has been consumed, so bit flips
 * anywhere in the record stream are detected.
 *
 * The format is deliberately trivial so that external traces (e.g.
 * branch streams extracted from ChampSim-style instruction traces) can
 * be converted with a few lines of code; see examples/custom_trace.cpp.
 */

#ifndef VLPSIM_TRACE_TRACE_IO_H
#define VLPSIM_TRACE_TRACE_IO_H

#include <cstdint>
#include <cstdio>
#include <string>

#include "trace/branch_record.h"
#include "trace/trace_source.h"
#include "util/checksum.h"

namespace vlp {
namespace trace {

/** Writes .vbt trace files (always the current VBT2 format). */
class TraceWriter
{
  public:
    /**
     * Open @p path for writing and emit the header.
     * @throws std::runtime_error if the file cannot be created
     */
    explicit TraceWriter(const std::string &path);

    /** Finalizes the record count and checksum in the header. */
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one record. */
    void write(const BranchRecord &record);

    /** Records written so far. */
    std::uint64_t count() const { return count_; }

    /** Flush and close; called by the destructor if not done
     * explicitly. */
    void close();

  private:
    std::FILE *file_ = nullptr;
    std::uint64_t count_ = 0;
    util::Fnv1a checksum_;
};

/** Reads .vbt trace files as a TraceSource. */
class TraceReader : public TraceSource
{
  public:
    /**
     * Open @p path and validate the header, including that the file
     * holds exactly the record bytes the header promises.
     * @throws std::runtime_error on missing file, bad magic, or a
     *         truncated/oversized record stream
     */
    explicit TraceReader(const std::string &path);

    ~TraceReader() override;

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /**
     * @throws std::runtime_error on a corrupt record, or — after the
     *         final record of a VBT2 file — on a checksum mismatch
     */
    bool next(BranchRecord &record) override;

    void reset() override;

    /** Total records according to the header. */
    std::uint64_t count() const { return count_; }

    /**
     * The file's .vbt format version: 1 (VBT1, no checksum field —
     * the record stream starts right after the count, and corruption
     * inside records goes undetected) or 2 (VBT2, checksummed).
     * Callers ingesting third-party traces warn on version 1.
     */
    unsigned formatVersion() const { return hasChecksum_ ? 2u : 1u; }

  private:
    std::FILE *file_ = nullptr;
    std::uint64_t count_ = 0;
    std::uint64_t read_ = 0;
    /** Expected record-stream checksum; 0 for VBT1 (not verified). */
    std::uint64_t expectedChecksum_ = 0;
    bool hasChecksum_ = false;
    long headerBytes_ = 0;
    util::Fnv1a checksum_;
};

/** Convenience: read an entire trace file into memory. */
VectorTraceSource loadTrace(const std::string &path);

/** Convenience: write an entire in-memory trace to @p path. */
void saveTrace(const VectorTraceSource &source, const std::string &path);

} // namespace trace
} // namespace vlp

#endif // VLPSIM_TRACE_TRACE_IO_H
