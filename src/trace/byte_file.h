/**
 * @file
 * Byte-level file access behind a virtual seam.
 *
 * Trace readers consume raw bytes through the ByteFile interface
 * instead of touching stdio directly, so tests can interpose
 * deterministic fault injection (trace/fault_injection.h) on the exact
 * code paths production uses: the same short-read loops, the same
 * error classification, the same checksum verification.
 *
 * Error model: read()/seek()/size() throw util::TransientError for
 * failures worth retrying (EINTR/EAGAIN-class) and std::runtime_error
 * for everything else. read() may legitimately return fewer bytes than
 * requested (a short read) — callers must loop.
 */

#ifndef VLPSIM_TRACE_BYTE_FILE_H
#define VLPSIM_TRACE_BYTE_FILE_H

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

namespace vlp {
namespace trace {

/** A seekable, read-only stream of bytes. */
class ByteFile
{
  public:
    virtual ~ByteFile() = default;

    /**
     * Read up to @p size bytes into @p buffer.
     * @return bytes actually read; 0 only at end of file. May be
     *         short — callers loop until satisfied or 0.
     * @throws util::TransientError on retryable failures
     * @throws std::runtime_error on permanent failures
     */
    virtual std::size_t read(void *buffer, std::size_t size) = 0;

    /** Reposition the stream to absolute @p offset. */
    virtual void seek(std::uint64_t offset) = 0;

    /** Total byte length of the file. */
    virtual std::uint64_t size() = 0;

    /** Path (or other identity) for error messages. */
    virtual const std::string &name() const = 0;
};

/** Plain stdio-backed ByteFile. */
class StdioByteFile : public ByteFile
{
  public:
    /**
     * @throws util::TransientError when the open fails with a
     *         retryable errno, std::runtime_error otherwise
     */
    explicit StdioByteFile(const std::string &path);
    ~StdioByteFile() override;

    StdioByteFile(const StdioByteFile &) = delete;
    StdioByteFile &operator=(const StdioByteFile &) = delete;

    std::size_t read(void *buffer, std::size_t size) override;
    void seek(std::uint64_t offset) override;
    std::uint64_t size() override;
    const std::string &name() const override { return path_; }

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
};

/**
 * How trace consumers open files. The default opener returns a
 * StdioByteFile; tests substitute a fault-injecting opener (see
 * trace::FaultInjector::opener()).
 */
using FileOpener =
    std::function<std::unique_ptr<ByteFile>(const std::string &path)>;

/** Open @p path as a plain StdioByteFile. */
std::unique_ptr<ByteFile> openByteFile(const std::string &path);

} // namespace trace
} // namespace vlp

#endif // VLPSIM_TRACE_BYTE_FILE_H
