/**
 * @file
 * Byte-level file access behind a virtual seam.
 *
 * Trace readers consume raw bytes through the ByteFile interface
 * instead of touching stdio directly, so tests can interpose
 * deterministic fault injection (trace/fault_injection.h) on the exact
 * code paths production uses: the same short-read loops, the same
 * error classification, the same checksum verification.
 *
 * Error model: read()/seek()/size() throw util::TransientError for
 * failures worth retrying (EINTR/EAGAIN-class) and std::runtime_error
 * for everything else. read() may legitimately return fewer bytes than
 * requested (a short read) — callers must loop.
 */

#ifndef VLPSIM_TRACE_BYTE_FILE_H
#define VLPSIM_TRACE_BYTE_FILE_H

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <streambuf>
#include <string>
#include <vector>

namespace vlp {
namespace trace {

class HashingByteFile;

/** A seekable, read-only stream of bytes. */
class ByteFile
{
  public:
    virtual ~ByteFile() = default;

    /**
     * Read up to @p size bytes into @p buffer.
     * @return bytes actually read; 0 only at end of file. May be
     *         short — callers loop until satisfied or 0.
     * @throws util::TransientError on retryable failures
     * @throws std::runtime_error on permanent failures
     */
    virtual std::size_t read(void *buffer, std::size_t size) = 0;

    /** Reposition the stream to absolute @p offset. */
    virtual void seek(std::uint64_t offset) = 0;

    /** Total byte length of the file. */
    virtual std::uint64_t size() = 0;

    /** Path (or other identity) for error messages. */
    virtual const std::string &name() const = 0;

    /**
     * Zero-copy window: a pointer to the file's bytes
     * [@p offset, @p offset + @p size), or nullptr when this backend
     * cannot serve the range without copying (the default — only
     * mapped backends override). A returned pointer stays valid until
     * the next view()/read()/seek() call on this file; view() does not
     * move the read() position. Callers must always be prepared for
     * nullptr and fall back to read().
     */
    virtual const std::uint8_t *view(std::uint64_t offset,
                                     std::size_t size)
    {
        (void)offset;
        (void)size;
        return nullptr;
    }

    /**
     * The content-hashing decorator wrapping this stream, if this
     * *is* one (see trace/content_hash.h). Lets the streaming reader
     * fuse its VBT2 stream checksum into the decorator's hash kernel
     * — one pass over each chunk instead of two — without a
     * dynamic_cast on the hot path.
     */
    virtual HashingByteFile *hasher() { return nullptr; }
};

/** Plain stdio-backed ByteFile. */
class StdioByteFile : public ByteFile
{
  public:
    /**
     * @throws util::TransientError when the open fails with a
     *         retryable errno, std::runtime_error otherwise
     */
    explicit StdioByteFile(const std::string &path);
    ~StdioByteFile() override;

    StdioByteFile(const StdioByteFile &) = delete;
    StdioByteFile &operator=(const StdioByteFile &) = delete;

    std::size_t read(void *buffer, std::size_t size) override;
    void seek(std::uint64_t offset) override;
    std::uint64_t size() override;
    const std::string &name() const override { return path_; }

  private:
    std::string path_;
    std::FILE *file_ = nullptr;
};

/**
 * How trace consumers open files. The default opener returns a
 * StdioByteFile; tests substitute a fault-injecting opener (see
 * trace::FaultInjector::opener()).
 */
using FileOpener =
    std::function<std::unique_ptr<ByteFile>(const std::string &path)>;

/** Open @p path as a plain StdioByteFile. */
std::unique_ptr<ByteFile> openByteFile(const std::string &path);

/**
 * Adapts a ByteFile to std::streambuf so istream-based consumers (the
 * lenient text-trace importer) read through the same seam — and
 * zero-copy when the backend is mapped: underflow() serves the
 * backend's view() window directly as the get area when available,
 * falling back to a buffered read() otherwise.
 */
class ByteFileStreamBuf : public std::streambuf
{
  public:
    /** Window served per underflow, view-backed or buffered. */
    static constexpr std::size_t windowBytes = 64 * 1024;

    explicit ByteFileStreamBuf(ByteFile &file);

  protected:
    int_type underflow() override;

  private:
    ByteFile &file_;
    std::uint64_t offset_ = 0; // file offset of the next window
    std::uint64_t size_ = 0;
    std::vector<char> buffer_;
};

} // namespace trace
} // namespace vlp

#endif // VLPSIM_TRACE_BYTE_FILE_H
