/**
 * @file
 * Deterministic on-disk corruption for robustness tests.
 *
 * FaultyDir damages a chosen subset of the files in a directory —
 * trace corpora, artifact-cache object trees, checkpoint journals —
 * the way real storage does: truncated tails, flipped bits, zeroed
 * headers. Victims and fault kinds are a pure function of the seed
 * and the sorted file list, so a test (or the CI kill/resume job) can
 * corrupt "the same" files on every run and assert byte-identical
 * recovery behavior.
 */

#ifndef VLPSIM_STORE_FAULT_INJECTION_H
#define VLPSIM_STORE_FAULT_INJECTION_H

#include <cstdint>
#include <string>
#include <vector>

namespace vlp {
namespace store {

/** Deterministically corrupts files under one directory. */
class FaultyDir
{
  public:
    /** Fault kinds applied to victim files. */
    enum class Fault {
        /** Cut the final quarter (at least one byte) off the file. */
        TruncateTail,
        /** Invert one bit somewhere in the file body. */
        FlipBit,
        /** Zero the first 8 bytes (magic and friends). */
        ZeroHeader,
    };

    /** One applied corruption, for logging and assertions. */
    struct Applied
    {
        std::string path;
        Fault fault;
    };

    /**
     * @param directory corrupted in place — point this at copies
     * @param seed selects victims and fault kinds
     */
    FaultyDir(std::string directory, std::uint64_t seed);

    /**
     * Corrupt roughly @p fraction of the matching files (always at
     * least one when any match and fraction > 0). Files are selected
     * from the lexicographically sorted recursive listing, so the
     * victim set is stable for a given directory content and seed.
     *
     * @param extension only files with this extension (e.g. ".vbt");
     *        empty matches everything
     * @return the corruptions applied, in sorted-path order
     * @throws std::runtime_error if the directory cannot be read
     */
    std::vector<Applied> corrupt(double fraction,
                                 const std::string &extension = "");

    /** Human-readable fault name ("truncate-tail", ...). */
    static const char *faultName(Fault fault);

  private:
    std::string directory_;
    std::uint64_t seed_;
};

} // namespace store
} // namespace vlp

#endif // VLPSIM_STORE_FAULT_INJECTION_H
