/**
 * @file
 * FaultyDir implementation.
 */

#include "store/fault_injection.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "util/logging.h"
#include "util/rng.h"

namespace fs = std::filesystem;

namespace vlp {
namespace store {

namespace {

void
applyFault(const std::string &path, FaultyDir::Fault fault,
           util::Rng &rng)
{
    std::error_code error;
    const std::uint64_t bytes = fs::file_size(path, error);
    if (error)
        util::fatal("cannot stat file to corrupt: " + path);
    if (bytes == 0)
        return;

    switch (fault) {
    case FaultyDir::Fault::TruncateTail: {
        const std::uint64_t keep = bytes - std::max<std::uint64_t>(
            std::uint64_t{1}, bytes / 4);
        fs::resize_file(path, keep, error);
        if (error)
            util::fatal("cannot truncate file: " + path);
        break;
    }
    case FaultyDir::Fault::FlipBit: {
        std::FILE *file = std::fopen(path.c_str(), "r+b");
        if (file == nullptr)
            util::fatal("cannot open file to corrupt: " + path);
        const std::uint64_t offset = rng.nextBelow(bytes);
        std::fseek(file, static_cast<long>(offset), SEEK_SET);
        const int byte = std::fgetc(file);
        std::fseek(file, static_cast<long>(offset), SEEK_SET);
        std::fputc((byte == EOF ? 0 : byte)
                       ^ (1 << rng.nextBelow(8)),
                   file);
        std::fclose(file);
        break;
    }
    case FaultyDir::Fault::ZeroHeader: {
        std::FILE *file = std::fopen(path.c_str(), "r+b");
        if (file == nullptr)
            util::fatal("cannot open file to corrupt: " + path);
        const std::uint8_t zeros[8] = {};
        std::fwrite(zeros, 1,
                    static_cast<std::size_t>(
                        std::min<std::uint64_t>(bytes, 8)),
                    file);
        std::fclose(file);
        break;
    }
    }
}

} // anonymous namespace

FaultyDir::FaultyDir(std::string directory, std::uint64_t seed)
    : directory_(std::move(directory)), seed_(seed)
{
}

std::vector<FaultyDir::Applied>
FaultyDir::corrupt(double fraction, const std::string &extension)
{
    std::error_code error;
    std::vector<std::string> files;
    for (fs::recursive_directory_iterator
             it(directory_, error), end;
         !error && it != end; it.increment(error)) {
        if (!it->is_regular_file())
            continue;
        if (!extension.empty()
            && it->path().extension() != extension) {
            continue;
        }
        files.push_back(it->path().string());
    }
    if (error) {
        util::fatal("cannot list directory to corrupt: " + directory_
                    + " (" + error.message() + ")");
    }
    std::sort(files.begin(), files.end());

    util::Rng rng(seed_);
    std::vector<Applied> applied;
    for (const std::string &path : files) {
        // One decision draw and one kind draw per file, in sorted
        // order: the victim set depends only on (listing, seed).
        const bool victim = rng.nextBool(fraction);
        const Fault fault = static_cast<Fault>(rng.nextBelow(3));
        if (!victim)
            continue;
        applyFault(path, fault, rng);
        applied.push_back({path, fault});
    }
    if (applied.empty() && !files.empty() && fraction > 0.0) {
        // Guarantee progress for tiny corpora: corrupt the first file.
        applyFault(files.front(), Fault::TruncateTail, rng);
        applied.push_back({files.front(), Fault::TruncateTail});
    }
    return applied;
}

const char *
FaultyDir::faultName(Fault fault)
{
    switch (fault) {
    case Fault::TruncateTail:
        return "truncate-tail";
    case Fault::FlipBit:
        return "flip-bit";
    case Fault::ZeroHeader:
        return "zero-header";
    }
    return "unknown";
}

} // namespace store
} // namespace vlp
