/**
 * @file
 * Content-addressed, versioned on-disk cache for expensive profiling
 * artifacts.
 *
 * Layout under the cache directory:
 *
 *   objects/<aa>/<32-hex-key-hash>.vlpa   one artifact per file
 *   stats.log                             append-only counter lines
 *
 * Each entry file is magic + format version + the full canonical key
 * string + a checksummed payload. Entries are written to a temp file
 * in the same directory and atomically renamed into place, so
 * concurrent ParallelRunner workers and parallel CLI invocations never
 * observe torn entries — a reader sees either the complete entry or
 * none. Any validation failure on read (bad magic, version skew, key
 * mismatch, checksum mismatch, truncation) counts as corruption: the
 * entry is evicted and the caller recomputes, so a damaged cache can
 * slow a run down but never break it or change its output.
 *
 * An LRU-style garbage collector bounds the cache: when maxBytes is
 * set, inserts evict the least-recently-used entries (file mtime,
 * refreshed on every hit) until the total fits.
 */

#ifndef VLPSIM_STORE_ARTIFACT_STORE_H
#define VLPSIM_STORE_ARTIFACT_STORE_H

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "store/cache_key.h"

namespace vlp {
namespace store {

/** Store configuration. */
struct StoreOptions
{
    /** Cache root; created on first use. */
    std::string directory;
    /** GC target in bytes; 0 disables garbage collection. */
    std::uint64_t maxBytes = 0;
};

/** Event counters for one store instance (this process). */
struct StoreCounters
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    /** Entries that failed validation and were evicted. */
    std::uint64_t corrupt = 0;
    /** Entries removed by the garbage collector. */
    std::uint64_t evicted = 0;
};

/** Thread-safe handle on one on-disk artifact cache. */
class ArtifactStore
{
  public:
    /**
     * @throws std::runtime_error if the directory cannot be created
     */
    explicit ArtifactStore(StoreOptions options);

    /** Flushes counters to stats.log. */
    ~ArtifactStore();

    ArtifactStore(const ArtifactStore &) = delete;
    ArtifactStore &operator=(const ArtifactStore &) = delete;

    /**
     * The payload stored under @p key, or nullopt on miss. A corrupt
     * entry is evicted and reported as a miss.
     */
    std::optional<std::vector<std::uint8_t>>
    fetch(const CacheKey &key);

    /**
     * Store @p payload under @p key (atomic replace), then garbage
     * collect if over budget. I/O failures degrade to a warning — a
     * full disk must not fail the computation that produced the
     * artifact.
     */
    void insert(const CacheKey &key,
                const std::vector<std::uint8_t> &payload);

    /** This instance's counters so far. */
    StoreCounters counters() const;

    /** Cache root directory. */
    const std::string &directory() const { return directory_; }

    /**
     * Append this instance's nonzero counters to stats.log and reset
     * them, so `vlpsim cache stats` sees runs from every process.
     */
    void flushStats();

    /** Aggregate view of a cache directory. */
    struct Summary
    {
        std::uint64_t entries = 0;
        std::uint64_t bytes = 0;
        /** Totals accumulated in stats.log across all runs. */
        StoreCounters lifetime;
    };

    /** Scan @p directory and sum its stats.log. */
    static Summary summarize(const std::string &directory);

    struct VerifyResult
    {
        std::uint64_t ok = 0;
        /** Corrupt entries found (and removed). */
        std::uint64_t corrupt = 0;
    };

    /** Re-validate every entry under @p directory; remove bad ones. */
    static VerifyResult verify(const std::string &directory);

    /** Remove all entries, temp files, and stats under @p directory.
     *  @return entries removed */
    static std::uint64_t clear(const std::string &directory);

  private:
    std::string objectPath(const CacheKey &key) const;
    void collectGarbage();

    std::string directory_;
    std::uint64_t maxBytes_;
    mutable std::mutex mutex_;
    StoreCounters counters_;
    std::uint64_t tempCounter_ = 0;
};

} // namespace store
} // namespace vlp

#endif // VLPSIM_STORE_ARTIFACT_STORE_H
