/**
 * @file
 * Crash-tolerant checkpoint journal for long suite runs.
 *
 * An append-only file of (cell key, payload) entries, each protected
 * by an FNV-1a checksum over the key and payload bytes:
 *
 *   bytes 0..7   magic "VLPCKPT2" (format 2: cell keys carry the
 *                profile/test pair identity; "VLPCKPT1" journals are
 *                rejected with a "journal from an older run" error)
 *   then, per entry:
 *     uint32 key length     uint32 payload length
 *     key bytes             payload bytes
 *     uint64 FNV-1a checksum of key bytes + payload bytes
 *
 * A run killed mid-append leaves at most one torn entry at the tail;
 * open() replays the journal up to the last fully valid entry and
 * truncates the rest, so resume sees exactly the cells that had been
 * durably recorded — never a partial one. Cell keys name everything
 * the recorded result depends on (trace content hash, predictor
 * class, table budget, global length, artifact format version), so a
 * checkpoint written under one configuration is simply a set of
 * misses under any other.
 *
 * record() appends and flushes before returning; the journal is
 * intended for one writing process at a time (unlike the artifact
 * store, which is multi-process safe).
 */

#ifndef VLPSIM_STORE_CHECKPOINT_H
#define VLPSIM_STORE_CHECKPOINT_H

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace vlp {
namespace store {

/** One on-disk checkpoint journal; thread-safe. */
class CheckpointJournal
{
  public:
    /**
     * Open @p path, creating it if absent, and replay any existing
     * entries (dropping a torn or corrupt tail).
     * @throws std::runtime_error if the file cannot be opened or is
     *         not a checkpoint journal
     */
    explicit CheckpointJournal(const std::string &path);

    ~CheckpointJournal();

    CheckpointJournal(const CheckpointJournal &) = delete;
    CheckpointJournal &operator=(const CheckpointJournal &) = delete;

    /** The payload recorded under @p key, or nullopt. */
    std::optional<std::vector<std::uint8_t>>
    lookup(const std::string &key) const;

    /**
     * Durably record @p payload under @p key (append + flush). A key
     * that is already present is left untouched — completed cells are
     * immutable.
     */
    void record(const std::string &key,
                const std::vector<std::uint8_t> &payload);

    /** Number of recorded cells. */
    std::size_t entries() const;

    /** Cells replayed from disk at open (before any record()). */
    std::size_t resumedEntries() const { return resumed_; }

    /** The journal's path. */
    const std::string &path() const { return path_; }

  private:
    void load();

    std::string path_;
    std::FILE *file_ = nullptr;
    mutable std::mutex mutex_;
    std::map<std::string, std::vector<std::uint8_t>> cells_;
    std::size_t resumed_ = 0;
};

} // namespace store
} // namespace vlp

#endif // VLPSIM_STORE_CHECKPOINT_H
