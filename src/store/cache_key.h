/**
 * @file
 * Cache-key derivation for the artifact store.
 *
 * A key is a canonical "name=value;" string naming everything the
 * cached artifact depends on — artifact kind and format version,
 * workload/trace identity, profiling options, predictor/budget
 * configuration — plus a 128-bit content hash of that string that
 * doubles as the entry's on-disk name. The canonical string is stored
 * inside each entry and compared on every fetch, so even a full hash
 * collision degrades to a cache miss, never to a wrong artifact.
 *
 * Invalidation is by construction: any field change (including a bump
 * of artifactFormatVersion, stamped into every key) produces a
 * different hash, so stale entries are simply never addressed again
 * and age out through the LRU garbage collector.
 */

#ifndef VLPSIM_STORE_CACHE_KEY_H
#define VLPSIM_STORE_CACHE_KEY_H

#include <cstdint>
#include <string>

namespace vlp {
namespace store {

/**
 * Version tag stamped into every cache key and entry header. Bump it
 * whenever serialized artifact layouts or simulation semantics change
 * so that old entries are invalidated instead of misread.
 */
inline constexpr std::uint32_t artifactFormatVersion = 1;

/** A finished cache key: canonical text plus its content hash. */
class CacheKey
{
  public:
    CacheKey() = default;
    CacheKey(std::string text, std::uint64_t low, std::uint64_t high)
        : text_(std::move(text)), low_(low), high_(high)
    {
    }

    /** The canonical "name=value;" description. */
    const std::string &text() const { return text_; }

    /** 32-hex-digit content hash of text(). */
    std::string hashHex() const;

    /**
     * Entry location relative to the cache root:
     * "objects/<first two hex digits>/<hash>.vlpa".
     */
    std::string relativePath() const;

  private:
    std::string text_;
    std::uint64_t low_ = 0;
    std::uint64_t high_ = 0;
};

/**
 * Builds a CacheKey from ordered fields. The artifact kind and
 * artifactFormatVersion are stamped first; callers append every input
 * the artifact depends on. Field order is part of the canonical form,
 * so derive keys from one place per artifact kind.
 */
class KeyBuilder
{
  public:
    /** @param kind artifact kind tag ("profile", "assignment", ...) */
    explicit KeyBuilder(const std::string &kind);

    KeyBuilder &field(const std::string &name, const std::string &value);
    KeyBuilder &field(const std::string &name, std::uint64_t value);
    KeyBuilder &field(const std::string &name, bool value);
    /** Doubles are canonicalized with %.17g (round-trip exact). */
    KeyBuilder &field(const std::string &name, double value);

    CacheKey build() const;

  private:
    std::string text_;
};

} // namespace store
} // namespace vlp

#endif // VLPSIM_STORE_CACHE_KEY_H
