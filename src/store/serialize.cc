/**
 * @file
 * Artifact serialization implementation.
 */

#include "store/serialize.h"

#include <algorithm>
#include <bit>

#include "util/logging.h"

namespace vlp {
namespace store {

void
Encoder::u8(std::uint8_t value)
{
    buffer_.push_back(value);
}

void
Encoder::u32(std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void
Encoder::u64(std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        buffer_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
}

void
Encoder::f64(double value)
{
    u64(std::bit_cast<std::uint64_t>(value));
}

void
Encoder::str(const std::string &value)
{
    u32(static_cast<std::uint32_t>(value.size()));
    buffer_.insert(buffer_.end(), value.begin(), value.end());
}

void
Encoder::bytes(const std::uint8_t *data, std::size_t size)
{
    buffer_.insert(buffer_.end(), data, data + size);
}

const std::uint8_t *
Decoder::need(std::size_t size)
{
    if (remaining() < size)
        util::fatal("truncated artifact payload");
    const std::uint8_t *data = buffer_.data() + offset_;
    offset_ += size;
    return data;
}

std::uint8_t
Decoder::u8()
{
    return *need(1);
}

std::uint32_t
Decoder::u32()
{
    const std::uint8_t *data = need(4);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(data[i]) << (8 * i);
    return value;
}

std::uint64_t
Decoder::u64()
{
    const std::uint8_t *data = need(8);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(data[i]) << (8 * i);
    return value;
}

double
Decoder::f64()
{
    return std::bit_cast<double>(u64());
}

std::string
Decoder::str()
{
    const std::uint32_t size = u32();
    const std::uint8_t *data = need(size);
    return std::string(reinterpret_cast<const char *>(data), size);
}

void
Decoder::expectEnd() const
{
    if (remaining() != 0)
        util::fatal("artifact payload has trailing bytes");
}

namespace {

void
encodeSweep(Encoder &encoder, const core::FixedLengthSweep &sweep)
{
    encoder.u32(static_cast<std::uint32_t>(sweep.minLength));
    encoder.u32(static_cast<std::uint32_t>(
        sweep.mispredictions.size()));
    for (const std::uint64_t count : sweep.mispredictions)
        encoder.u64(count);
    encoder.u64(sweep.branches);
}

core::FixedLengthSweep
decodeSweep(Decoder &decoder)
{
    core::FixedLengthSweep sweep;
    sweep.minLength = decoder.u32();
    const std::uint32_t lengths = decoder.u32();
    if (lengths > core::maxPathLength)
        util::fatal("artifact sweep has an impossible length count");
    sweep.mispredictions.reserve(lengths);
    for (std::uint32_t i = 0; i < lengths; ++i)
        sweep.mispredictions.push_back(decoder.u64());
    sweep.branches = decoder.u64();
    return sweep;
}

/** pcs of @p map in ascending order, for deterministic encodings. */
template <typename Map>
std::vector<std::uint64_t>
sortedPcs(const Map &map)
{
    std::vector<std::uint64_t> pcs;
    pcs.reserve(map.size());
    for (const auto &[pc, value] : map)
        pcs.push_back(pc);
    std::sort(pcs.begin(), pcs.end());
    return pcs;
}

} // anonymous namespace

std::vector<std::uint8_t>
encodeStep1Profile(
        const core::FixedLengthSweep &sweep,
        const std::unordered_map<std::uint64_t, core::BranchProfile>
            &profiles)
{
    Encoder encoder;
    encodeSweep(encoder, sweep);
    encoder.u64(profiles.size());
    for (const std::uint64_t pc : sortedPcs(profiles)) {
        const core::BranchProfile &profile = profiles.at(pc);
        encoder.u64(pc);
        encoder.u32(profile.executions);
        for (const std::uint32_t correct : profile.correct)
            encoder.u32(correct);
    }
    return encoder.take();
}

void
decodeStep1Profile(
        const std::vector<std::uint8_t> &payload,
        core::FixedLengthSweep &sweep,
        std::unordered_map<std::uint64_t, core::BranchProfile>
            &profiles)
{
    Decoder decoder(payload);
    sweep = decodeSweep(decoder);
    const std::uint64_t count = decoder.u64();
    constexpr std::size_t entryBytes =
        8 + 4 + core::maxPathLength * 4;
    if (count > decoder.remaining() / entryBytes)
        util::fatal("artifact profile count exceeds payload size");
    profiles.clear();
    profiles.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t pc = decoder.u64();
        core::BranchProfile profile;
        profile.executions = decoder.u32();
        for (std::uint32_t &correct : profile.correct)
            correct = decoder.u32();
        profiles.emplace(pc, profile);
    }
    decoder.expectEnd();
}

std::vector<std::uint8_t>
encodeAssignment(const core::HashAssignment &assignment)
{
    Encoder encoder;
    encoder.u32(assignment.defaultLength());
    encoder.u64(assignment.table().size());
    for (const std::uint64_t pc : sortedPcs(assignment.table())) {
        encoder.u64(pc);
        encoder.u32(assignment.table().at(pc));
    }
    return encoder.take();
}

core::HashAssignment
decodeAssignment(const std::vector<std::uint8_t> &payload)
{
    Decoder decoder(payload);
    core::HashAssignment assignment(decoder.u32());
    const std::uint64_t count = decoder.u64();
    if (count > decoder.remaining() / 12)
        util::fatal("artifact assignment count exceeds payload size");
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t pc = decoder.u64();
        assignment.assign(pc, decoder.u32());
    }
    decoder.expectEnd();
    return assignment;
}

std::vector<std::uint8_t>
encodeComparisonRow(const sim::ComparisonRow &row)
{
    Encoder encoder;
    encoder.str(row.benchmark);
    encoder.u32(static_cast<std::uint32_t>(row.entries.size()));
    for (const sim::RateEntry &entry : row.entries) {
        encoder.str(entry.predictor);
        encoder.u64(entry.branches);
        encoder.u64(entry.mispredictions);
        encoder.f64(entry.rate);
    }
    return encoder.take();
}

sim::ComparisonRow
decodeComparisonRow(const std::vector<std::uint8_t> &payload)
{
    Decoder decoder(payload);
    sim::ComparisonRow row;
    row.benchmark = decoder.str();
    const std::uint32_t entries = decoder.u32();
    row.entries.reserve(entries);
    for (std::uint32_t i = 0; i < entries; ++i) {
        sim::RateEntry entry;
        entry.predictor = decoder.str();
        entry.branches = decoder.u64();
        entry.mispredictions = decoder.u64();
        entry.rate = decoder.f64();
        row.entries.push_back(std::move(entry));
    }
    decoder.expectEnd();
    return row;
}

std::vector<std::uint8_t>
encodeHfnt(const core::HashFunctionNumberTable &table)
{
    Encoder encoder;
    encoder.u32(table.indexBits());
    encoder.u64(table.lookups());
    encoder.u64(table.mismatches());
    encoder.bytes(table.rawTable().data(), table.rawTable().size());
    return encoder.take();
}

core::HashFunctionNumberTable
decodeHfnt(const std::vector<std::uint8_t> &payload)
{
    Decoder decoder(payload);
    const std::uint32_t index_bits = decoder.u32();
    if (index_bits > 30)
        util::fatal("artifact HFNT has an impossible index width");
    const std::uint64_t lookups = decoder.u64();
    const std::uint64_t mismatches = decoder.u64();
    const std::size_t size = std::size_t{1} << index_bits;
    if (decoder.remaining() != size)
        util::fatal("artifact HFNT table size mismatch");
    std::vector<std::uint8_t> contents(size);
    for (std::uint8_t &entry : contents)
        entry = decoder.u8();
    decoder.expectEnd();
    core::HashFunctionNumberTable table(index_bits);
    table.restore(std::move(contents), lookups, mismatches);
    return table;
}

} // namespace store
} // namespace vlp
