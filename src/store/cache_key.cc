/**
 * @file
 * Cache-key derivation implementation.
 */

#include "store/cache_key.h"

#include <cstdio>

#include "util/checksum.h"
#include "util/logging.h"

namespace vlp {
namespace store {

namespace {

/** Second FNV seed: offset basis of an unrelated stream (the basis
 *  hashed into itself), giving an independent 64-bit half. */
constexpr std::uint64_t secondSeed = 0x9ae16a3b2f90404full;

std::string
toHex(std::uint64_t value)
{
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(value));
    return buffer;
}

} // anonymous namespace

std::string
CacheKey::hashHex() const
{
    return toHex(high_) + toHex(low_);
}

std::string
CacheKey::relativePath() const
{
    const std::string hex = hashHex();
    return "objects/" + hex.substr(0, 2) + "/" + hex + ".vlpa";
}

KeyBuilder::KeyBuilder(const std::string &kind)
{
    field("kind", kind);
    field("version", std::uint64_t{artifactFormatVersion});
}

KeyBuilder &
KeyBuilder::field(const std::string &name, const std::string &value)
{
    if (name.find_first_of("=;") != std::string::npos
        || value.find_first_of("=;") != std::string::npos) {
        util::fatal("cache-key fields must not contain '=' or ';': "
                    + name + "=" + value);
    }
    text_ += name;
    text_ += '=';
    text_ += value;
    text_ += ';';
    return *this;
}

KeyBuilder &
KeyBuilder::field(const std::string &name, std::uint64_t value)
{
    return field(name, std::to_string(value));
}

KeyBuilder &
KeyBuilder::field(const std::string &name, bool value)
{
    return field(name, std::string(value ? "1" : "0"));
}

KeyBuilder &
KeyBuilder::field(const std::string &name, double value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    return field(name, std::string(buffer));
}

CacheKey
KeyBuilder::build() const
{
    return CacheKey(text_, util::fnv1a(text_),
                    util::fnv1a(text_, secondSeed));
}

} // namespace store
} // namespace vlp
