/**
 * @file
 * Artifact store implementation.
 */

#include "store/artifact_store.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <unistd.h>

#include "util/chaos.h"
#include "util/checksum.h"
#include "util/logging.h"

namespace fs = std::filesystem;

namespace vlp {
namespace store {

namespace {

constexpr char entryMagic[8] = {'V', 'L', 'P', 'S', 'T', 'O', 'R', '1'};
constexpr const char *entrySuffix = ".vlpa";
constexpr const char *statsLogName = "stats.log";

void
putU32(std::uint8_t *buffer, std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        buffer[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

void
putU64(std::uint8_t *buffer, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        buffer[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

std::uint32_t
getU32(const std::uint8_t *buffer)
{
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(buffer[i]) << (8 * i);
    return value;
}

std::uint64_t
getU64(const std::uint8_t *buffer)
{
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(buffer[i]) << (8 * i);
    return value;
}

/** Entry header: magic, format version, key length. */
constexpr std::size_t headerBytes = sizeof(entryMagic) + 4 + 4;

std::vector<std::uint8_t>
buildEntry(const CacheKey &key, const std::vector<std::uint8_t> &payload)
{
    std::vector<std::uint8_t> entry;
    entry.resize(headerBytes + key.text().size() + 16 + payload.size());
    std::uint8_t *cursor = entry.data();
    std::copy(std::begin(entryMagic), std::end(entryMagic), cursor);
    cursor += sizeof(entryMagic);
    putU32(cursor, artifactFormatVersion);
    cursor += 4;
    putU32(cursor, static_cast<std::uint32_t>(key.text().size()));
    cursor += 4;
    std::copy(key.text().begin(), key.text().end(), cursor);
    cursor += key.text().size();
    putU64(cursor, payload.size());
    cursor += 8;
    putU64(cursor, util::fnv1a(payload.data(), payload.size()));
    cursor += 8;
    std::copy(payload.begin(), payload.end(), cursor);
    return entry;
}

struct ParsedEntry
{
    std::string key;
    std::vector<std::uint8_t> payload;
};

/**
 * Read and validate one entry file. nullopt means the file is absent;
 * a present-but-invalid file sets @p corrupt.
 */
std::optional<ParsedEntry>
readEntry(const fs::path &path, bool &corrupt)
{
    corrupt = false;
    std::FILE *file = std::fopen(path.string().c_str(), "rb");
    if (file == nullptr)
        return std::nullopt;
    std::vector<std::uint8_t> raw;
    std::uint8_t buffer[1 << 16];
    std::size_t read;
    while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0)
        raw.insert(raw.end(), buffer, buffer + read);
    std::fclose(file);

    if (raw.size() < headerBytes
        || !std::equal(std::begin(entryMagic), std::end(entryMagic),
                       raw.begin())
        || getU32(raw.data() + sizeof(entryMagic))
               != artifactFormatVersion) {
        corrupt = true;
        return std::nullopt;
    }
    const std::size_t key_size = getU32(raw.data() + sizeof(entryMagic)
                                        + 4);
    if (raw.size() < headerBytes + key_size + 16) {
        corrupt = true;
        return std::nullopt;
    }
    ParsedEntry entry;
    entry.key.assign(
        reinterpret_cast<const char *>(raw.data() + headerBytes),
        key_size);
    const std::uint8_t *cursor = raw.data() + headerBytes + key_size;
    const std::uint64_t payload_size = getU64(cursor);
    const std::uint64_t checksum = getU64(cursor + 8);
    if (raw.size() != headerBytes + key_size + 16 + payload_size) {
        corrupt = true;
        return std::nullopt;
    }
    entry.payload.assign(cursor + 16, cursor + 16 + payload_size);
    if (util::fnv1a(entry.payload.data(), entry.payload.size())
        != checksum) {
        corrupt = true;
        return std::nullopt;
    }
    return entry;
}

void
removeQuietly(const fs::path &path)
{
    std::error_code error;
    fs::remove(path, error);
}

/** All entry files under @p directory/objects. */
std::vector<fs::path>
entryFiles(const std::string &directory)
{
    std::vector<fs::path> entries;
    const fs::path objects = fs::path(directory) / "objects";
    std::error_code error;
    if (!fs::is_directory(objects, error))
        return entries;
    for (fs::recursive_directory_iterator
             it(objects, fs::directory_options::skip_permission_denied,
                error),
         end;
         it != end; it.increment(error)) {
        if (error)
            break;
        if (it->is_regular_file(error)
            && it->path().extension() == entrySuffix) {
            entries.push_back(it->path());
        }
    }
    return entries;
}

} // anonymous namespace

ArtifactStore::ArtifactStore(StoreOptions options)
    : directory_(options.directory), maxBytes_(options.maxBytes)
{
    if (directory_.empty())
        util::fatal("artifact store requires a cache directory");
    std::error_code error;
    fs::create_directories(fs::path(directory_) / "objects", error);
    if (error) {
        util::fatal("cannot create cache directory: " + directory_
                    + " (" + error.message() + ")");
    }
}

ArtifactStore::~ArtifactStore()
{
    flushStats();
}

std::string
ArtifactStore::objectPath(const CacheKey &key) const
{
    return (fs::path(directory_) / key.relativePath()).string();
}

std::optional<std::vector<std::uint8_t>>
ArtifactStore::fetch(const CacheKey &key)
{
    const fs::path path = objectPath(key);
    bool corrupt = false;
    auto entry = readEntry(path, corrupt);
    // The canonical key string stored in the entry must match the
    // request: a hash collision (or a renamed file) degrades to a
    // miss, never to a wrong artifact.
    if (entry && entry->key != key.text()) {
        corrupt = true;
        entry.reset();
    }
    // Chaos: the entry rotted on disk after it was written — must
    // degrade to an evict-and-miss, never a wrong artifact.
    if (entry
        && CHAOS_SECTION("store.fetch.checksum-mismatch", key.text())) {
        corrupt = true;
        entry.reset();
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (corrupt) {
        removeQuietly(path);
        ++counters_.corrupt;
        ++counters_.misses;
        return std::nullopt;
    }
    if (!entry) {
        ++counters_.misses;
        return std::nullopt;
    }
    ++counters_.hits;
    // Refresh the LRU clock; best effort only.
    std::error_code error;
    fs::last_write_time(path, fs::file_time_type::clock::now(), error);
    return std::move(entry->payload);
}

void
ArtifactStore::insert(const CacheKey &key,
                      const std::vector<std::uint8_t> &payload)
{
    const fs::path path = objectPath(key);
    std::error_code error;
    fs::create_directories(path.parent_path(), error);
    if (error) {
        util::warn("cache insert failed (mkdir): " + error.message());
        return;
    }

    std::uint64_t temp_id;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        temp_id = ++tempCounter_;
    }
    // Unique temp name per process and per insert, in the same
    // directory as the final name so the rename is atomic.
    const fs::path temp = path.parent_path()
        / (path.filename().string() + ".tmp."
           + std::to_string(static_cast<long>(getpid())) + "."
           + std::to_string(temp_id));

    std::vector<std::uint8_t> entry = buildEntry(key, payload);
    // Chaos: the process dies mid-write and the torn temp file gets
    // published anyway (a crashed rename-based writer's worst case).
    // fetch() must classify the remnant as corrupt and recompute.
    if (CHAOS_SECTION("store.insert.torn-rename", key.text()))
        entry.resize(entry.size() / 2);
    std::FILE *file = std::fopen(temp.string().c_str(), "wb");
    if (file == nullptr) {
        util::warn("cache insert failed (open): " + temp.string());
        return;
    }
    const bool wrote =
        std::fwrite(entry.data(), 1, entry.size(), file) == entry.size();
    const bool flushed = std::fclose(file) == 0;
    if (!wrote || !flushed) {
        util::warn("cache insert failed (write): " + temp.string());
        removeQuietly(temp);
        return;
    }
    fs::rename(temp, path, error);
    if (error) {
        util::warn("cache insert failed (rename): " + error.message());
        removeQuietly(temp);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.inserts;
    }
    if (maxBytes_ > 0)
        collectGarbage();
}

void
ArtifactStore::collectGarbage()
{
    std::lock_guard<std::mutex> lock(mutex_);

    struct Aged
    {
        fs::file_time_type mtime;
        std::uint64_t bytes;
        fs::path path;
    };
    std::vector<Aged> aged;
    std::uint64_t total = 0;
    std::error_code error;
    for (const fs::path &path : entryFiles(directory_)) {
        // Chaos: a racing reader (or another GC) removed this entry
        // between the directory scan and the stat — the sweep must
        // carry on over vanished files.
        // (The filename, not the full path, is the chaos identity:
        // entry names are content-derived, so a seeded campaign makes
        // the same decisions whatever directory the store lives in.)
        if (CHAOS_SECTION("store.gc.reader-race",
                          path.filename().string()))
            continue;
        Aged entry;
        entry.path = path;
        entry.bytes = fs::file_size(path, error);
        if (error)
            continue;
        entry.mtime = fs::last_write_time(path, error);
        if (error)
            continue;
        total += entry.bytes;
        aged.push_back(std::move(entry));
    }
    if (total <= maxBytes_)
        return;
    // Oldest first; ties broken by path so eviction is deterministic.
    std::sort(aged.begin(), aged.end(),
              [](const Aged &a, const Aged &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.path < b.path;
              });
    for (const Aged &entry : aged) {
        if (total <= maxBytes_)
            break;
        removeQuietly(entry.path);
        total -= entry.bytes;
        ++counters_.evicted;
    }
}

StoreCounters
ArtifactStore::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

void
ArtifactStore::flushStats()
{
    StoreCounters flushed;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        flushed = counters_;
        counters_ = StoreCounters{};
    }
    if (flushed.hits == 0 && flushed.misses == 0 && flushed.inserts == 0
        && flushed.corrupt == 0 && flushed.evicted == 0) {
        return;
    }
    std::ofstream log(fs::path(directory_) / statsLogName,
                      std::ios::app);
    if (!log) {
        util::warn("cannot append to cache stats log in " + directory_);
        return;
    }
    log << "hits=" << flushed.hits << " misses=" << flushed.misses
        << " inserts=" << flushed.inserts << " corrupt="
        << flushed.corrupt << " evicted=" << flushed.evicted << "\n";
}

ArtifactStore::Summary
ArtifactStore::summarize(const std::string &directory)
{
    Summary summary;
    std::error_code error;
    for (const fs::path &path : entryFiles(directory)) {
        ++summary.entries;
        summary.bytes += fs::file_size(path, error);
    }
    std::ifstream log(fs::path(directory) / statsLogName);
    std::string line;
    while (std::getline(log, line)) {
        std::istringstream fields(line);
        std::string field;
        while (fields >> field) {
            const auto equals = field.find('=');
            if (equals == std::string::npos)
                continue;
            const std::string name = field.substr(0, equals);
            const std::uint64_t value =
                std::strtoull(field.c_str() + equals + 1, nullptr, 10);
            if (name == "hits")
                summary.lifetime.hits += value;
            else if (name == "misses")
                summary.lifetime.misses += value;
            else if (name == "inserts")
                summary.lifetime.inserts += value;
            else if (name == "corrupt")
                summary.lifetime.corrupt += value;
            else if (name == "evicted")
                summary.lifetime.evicted += value;
        }
    }
    return summary;
}

ArtifactStore::VerifyResult
ArtifactStore::verify(const std::string &directory)
{
    VerifyResult result;
    for (const fs::path &path : entryFiles(directory)) {
        bool corrupt = false;
        const auto entry = readEntry(path, corrupt);
        if (entry && !corrupt) {
            ++result.ok;
        } else {
            ++result.corrupt;
            removeQuietly(path);
        }
    }
    return result;
}

std::uint64_t
ArtifactStore::clear(const std::string &directory)
{
    const std::uint64_t entries = entryFiles(directory).size();
    std::error_code error;
    fs::remove_all(fs::path(directory) / "objects", error);
    fs::remove(fs::path(directory) / statsLogName, error);
    return entries;
}

} // namespace store
} // namespace vlp
