/**
 * @file
 * Checkpoint journal implementation.
 */

#include "store/checkpoint.h"

#include <cstring>
#include <filesystem>

#include "util/chaos.h"
#include "util/checksum.h"
#include "util/logging.h"

namespace fs = std::filesystem;

namespace vlp {
namespace store {

namespace {

/** Journal format 2: cell keys carry the full pair identity
 *  (profile + test content hashes). Format-1 journals predate pairing
 *  and are rejected rather than silently replayed. */
constexpr char journalMagic[8] = {'V', 'L', 'P', 'C',
                                  'K', 'P', 'T', '2'};
constexpr char journalMagicV1[8] = {'V', 'L', 'P', 'C',
                                    'K', 'P', 'T', '1'};
/** Bound on key/payload lengths: rejects garbage length fields fast. */
constexpr std::uint32_t maxFieldBytes = 1u << 30;

std::uint32_t
getU32(const std::uint8_t *buffer)
{
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(buffer[i]) << (8 * i);
    return value;
}

std::uint64_t
getU64(const std::uint8_t *buffer)
{
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(buffer[i]) << (8 * i);
    return value;
}

void
putU32(std::uint8_t *buffer, std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        buffer[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

void
putU64(std::uint8_t *buffer, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        buffer[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

} // anonymous namespace

CheckpointJournal::CheckpointJournal(const std::string &path)
    : path_(path)
{
    load();
}

CheckpointJournal::~CheckpointJournal()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

void
CheckpointJournal::load()
{
    std::uint64_t valid_bytes = sizeof(journalMagic);
    bool existed = false;

    if (std::FILE *in = std::fopen(path_.c_str(), "rb")) {
        existed = true;
        char magic[sizeof(journalMagic)];
        if (std::fread(magic, 1, sizeof(magic), in) != sizeof(magic)) {
            std::fclose(in);
            util::fatal("not a checkpoint journal: " + path_);
        }
        if (std::memcmp(magic, journalMagicV1, sizeof(magic)) == 0) {
            std::fclose(in);
            util::fatal("checkpoint journal from an older run "
                        "(format 1, before profile/test pairing): "
                        + path_
                        + "; delete it to start a fresh run");
        }
        if (std::memcmp(magic, journalMagic, sizeof(magic)) != 0) {
            std::fclose(in);
            util::fatal("not a checkpoint journal: " + path_);
        }
        // Replay entries until the first torn or corrupt one; that
        // entry and everything after it is discarded below.
        for (;;) {
            std::uint8_t lengths[8];
            if (std::fread(lengths, 1, 8, in) != 8)
                break;
            const std::uint32_t key_bytes = getU32(lengths);
            const std::uint32_t payload_bytes = getU32(lengths + 4);
            if (key_bytes == 0 || key_bytes > maxFieldBytes
                || payload_bytes > maxFieldBytes) {
                break;
            }
            std::string key(key_bytes, '\0');
            std::vector<std::uint8_t> payload(payload_bytes);
            if (std::fread(key.data(), 1, key_bytes, in) != key_bytes)
                break;
            if (payload_bytes > 0
                && std::fread(payload.data(), 1, payload_bytes, in)
                       != payload_bytes) {
                break;
            }
            std::uint8_t trailer[8];
            if (std::fread(trailer, 1, 8, in) != 8)
                break;
            util::Fnv1a checksum;
            checksum.update(key.data(), key_bytes);
            checksum.update(payload.data(), payload_bytes);
            if (checksum.digest() != getU64(trailer))
                break;
            cells_.emplace(std::move(key), std::move(payload));
            valid_bytes += 8 + key_bytes + payload_bytes + 8;
        }
        std::fclose(in);
        resumed_ = cells_.size();
    }

    if (existed) {
        // Drop the torn tail so the append position is clean.
        std::error_code error;
        if (fs::file_size(path_, error) != valid_bytes && !error)
            fs::resize_file(path_, valid_bytes, error);
        if (error) {
            util::fatal("cannot truncate checkpoint journal: " + path_
                        + " (" + error.message() + ")");
        }
        file_ = std::fopen(path_.c_str(), "ab");
        if (file_ == nullptr)
            util::fatal("cannot append to checkpoint journal: "
                        + path_);
    } else {
        file_ = std::fopen(path_.c_str(), "wb");
        if (file_ == nullptr)
            util::fatal("cannot create checkpoint journal: " + path_);
        if (std::fwrite(journalMagic, 1, sizeof(journalMagic), file_)
            != sizeof(journalMagic)) {
            util::fatal("cannot write checkpoint journal header: "
                        + path_);
        }
        std::fflush(file_);
    }
}

std::optional<std::vector<std::uint8_t>>
CheckpointJournal::lookup(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = cells_.find(key);
    if (it == cells_.end())
        return std::nullopt;
    return it->second;
}

void
CheckpointJournal::record(const std::string &key,
                          const std::vector<std::uint8_t> &payload)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (cells_.count(key) > 0)
        return;

    std::uint8_t lengths[8];
    putU32(lengths, static_cast<std::uint32_t>(key.size()));
    putU32(lengths + 4, static_cast<std::uint32_t>(payload.size()));
    util::Fnv1a checksum;
    checksum.update(key.data(), key.size());
    checksum.update(payload.data(), payload.size());
    std::uint8_t trailer[8];
    putU64(trailer, checksum.digest());

    // Chaos: the process dies mid-append, leaving a torn entry at the
    // tail. The cell is not remembered in memory either — exactly the
    // state a crashed run leaves behind — so later lookups recompute
    // and reload truncates the tail.
    if (CHAOS_SECTION("store.journal.torn-tail", key)) {
        const std::size_t torn = 8 + key.size() / 2;
        bool wrote = std::fwrite(lengths, 1, 8, file_) == 8;
        wrote = wrote
            && std::fwrite(key.data(), 1, torn - 8, file_) == torn - 8;
        if (!wrote || std::fflush(file_) != 0)
            util::warn("failed to journal checkpoint cell: " + path_);
        return;
    }

    // One torn entry at the tail is tolerated on reload; a flush per
    // cell keeps the window to the entry being appended.
    bool ok = std::fwrite(lengths, 1, 8, file_) == 8;
    ok = ok
        && std::fwrite(key.data(), 1, key.size(), file_) == key.size();
    ok = ok
        && (payload.empty()
            || std::fwrite(payload.data(), 1, payload.size(), file_)
                   == payload.size());
    ok = ok && std::fwrite(trailer, 1, 8, file_) == 8;
    if (!ok || std::fflush(file_) != 0) {
        util::warn("failed to journal checkpoint cell (disk full?): "
                   + path_);
        return;
    }
    cells_.emplace(key, payload);
}

std::size_t
CheckpointJournal::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cells_.size();
}

} // namespace store
} // namespace vlp
