/**
 * @file
 * Binary serialization of profiling artifacts for the artifact store.
 *
 * Encodings are little-endian, deterministic (hash-map contents are
 * written in sorted pc order so identical artifacts always produce
 * identical bytes — a requirement for a content-checksummed store),
 * and self-contained: a Decoder throws on truncation and every
 * artifact decoder calls expectEnd(), so a payload that passed the
 * store's checksum but has the wrong shape still fails loudly and the
 * caller falls back to recomputing.
 */

#ifndef VLPSIM_STORE_SERIALIZE_H
#define VLPSIM_STORE_SERIALIZE_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/hfnt.h"
#include "core/hash_assignment.h"
#include "core/profiler.h"
#include "sim/experiment.h"

namespace vlp {
namespace store {

/** Appends little-endian fields to a byte buffer. */
class Encoder
{
  public:
    void u8(std::uint8_t value);
    void u32(std::uint32_t value);
    void u64(std::uint64_t value);
    /** Doubles are stored as their IEEE-754 bit pattern. */
    void f64(double value);
    /** Length-prefixed (u32) byte string. */
    void str(const std::string &value);
    void bytes(const std::uint8_t *data, std::size_t size);

    const std::vector<std::uint8_t> &buffer() const { return buffer_; }
    std::vector<std::uint8_t> take() { return std::move(buffer_); }

  private:
    std::vector<std::uint8_t> buffer_;
};

/** Reads fields written by Encoder; throws on truncation. */
class Decoder
{
  public:
    explicit Decoder(const std::vector<std::uint8_t> &buffer)
        : buffer_(buffer)
    {
    }

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string str();

    /** Bytes left to read. */
    std::size_t remaining() const { return buffer_.size() - offset_; }

    /** @throws std::runtime_error if any bytes remain */
    void expectEnd() const;

  private:
    const std::uint8_t *need(std::size_t size);

    const std::vector<std::uint8_t> &buffer_;
    std::size_t offset_ = 0;
};

/**
 * Step-1 profiling result: the aggregate sweep plus the per-branch
 * records — everything restoreStep1() needs.
 */
std::vector<std::uint8_t> encodeStep1Profile(
    const core::FixedLengthSweep &sweep,
    const std::unordered_map<std::uint64_t, core::BranchProfile>
        &profiles);
void decodeStep1Profile(
    const std::vector<std::uint8_t> &payload,
    core::FixedLengthSweep &sweep,
    std::unordered_map<std::uint64_t, core::BranchProfile> &profiles);

/** Step-2 result: the per-branch hash-number assignment. */
std::vector<std::uint8_t>
encodeAssignment(const core::HashAssignment &assignment);
core::HashAssignment
decodeAssignment(const std::vector<std::uint8_t> &payload);

/** A full predictor-comparison row (suite benchmark result). */
std::vector<std::uint8_t>
encodeComparisonRow(const sim::ComparisonRow &row);
sim::ComparisonRow
decodeComparisonRow(const std::vector<std::uint8_t> &payload);

/** HFNT contents and counters (bench_ablation / timing artifacts). */
std::vector<std::uint8_t>
encodeHfnt(const core::HashFunctionNumberTable &table);
core::HashFunctionNumberTable
decodeHfnt(const std::vector<std::uint8_t> &payload);

} // namespace store
} // namespace vlp

#endif // VLPSIM_STORE_SERIALIZE_H
