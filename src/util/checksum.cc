/**
 * @file
 * FNV-1a implementation.
 */

#include "util/checksum.h"

namespace vlp {
namespace util {

void
Fnv1a::update(const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint64_t state = state_;
    for (std::size_t i = 0; i < size; ++i) {
        state ^= bytes[i];
        state *= prime;
    }
    state_ = state;
}

std::uint64_t
fnv1a(const void *data, std::size_t size, std::uint64_t seed)
{
    Fnv1a hasher(seed);
    hasher.update(data, size);
    return hasher.digest();
}

std::uint64_t
fnv1a(const std::string &text, std::uint64_t seed)
{
    return fnv1a(text.data(), text.size(), seed);
}

} // namespace util
} // namespace vlp
