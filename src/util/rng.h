/**
 * @file
 * Deterministic random number generation for the workload generator.
 *
 * All synthetic workloads must be exactly reproducible from a seed so
 * that experiments (and tests) are deterministic across runs and
 * platforms. We therefore avoid std::mt19937 + std::distributions (whose
 * results are implementation-defined for some distributions) and
 * implement xoshiro256** plus the handful of distributions we need.
 */

#ifndef VLPSIM_UTIL_RNG_H
#define VLPSIM_UTIL_RNG_H

#include <cstdint>
#include <vector>

namespace vlp {
namespace util {

/**
 * xoshiro256** pseudo-random generator with SplitMix64 seeding.
 *
 * Fast, high-quality, and fully deterministic given a 64-bit seed.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) ; @p bound must be non-zero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial: true with probability @p p. */
    bool nextBool(double p);

    /**
     * Geometric-ish trip count: 1 + number of successes before failure
     * with continuation probability @p p, capped at @p cap.
     * Used for loop trip counts with a long-ish tail.
     */
    unsigned nextGeometric(double p, unsigned cap);

    /**
     * Sample an index according to (unnormalized, non-negative) weights.
     * At least one weight must be positive.
     */
    std::size_t nextWeighted(const std::vector<double> &weights);

    /**
     * Zipf-like sample in [0, n): index i with probability proportional
     * to 1 / (i + 1)^s. Used for skewed indirect-dispatch target
     * popularity (a few targets dominate, as in real interpreters).
     */
    std::size_t nextZipf(std::size_t n, double s);

    /** Derive an independent child generator (for per-module streams). */
    Rng split();

  private:
    std::uint64_t s_[4];
};

} // namespace util
} // namespace vlp

#endif // VLPSIM_UTIL_RNG_H
