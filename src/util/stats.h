/**
 * @file
 * Small statistics helpers: ratios, running statistics, histograms.
 */

#ifndef VLPSIM_UTIL_STATS_H
#define VLPSIM_UTIL_STATS_H

#include <cstdint>
#include <string>
#include <vector>

namespace vlp {
namespace util {

/** Percentage of @p numer over @p denom; 0 when the denominator is 0. */
double percent(std::uint64_t numer, std::uint64_t denom);

/** Format a double with @p decimals digits after the point. */
std::string formatDouble(double value, int decimals);

/** Format a count with thousands separators ("27,600,000"). */
std::string formatCount(std::uint64_t value);

/**
 * Format a count the way the paper's Table 1 does: "17.6 M", "91.4 K",
 * or the raw number below 1000.
 */
std::string formatScaled(std::uint64_t value);

/** Online mean / min / max / count accumulator. */
class RunningStat
{
  public:
    RunningStat() = default;

    /** Record one sample. */
    void add(double sample);

    /** Number of samples recorded. */
    std::uint64_t count() const { return count_; }

    /** Mean of samples (0 when empty). */
    double mean() const;

    /** Smallest sample (0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }

    /** Largest sample (0 when empty). */
    double max() const { return count_ ? max_ : 0.0; }

    /** Sum of samples. */
    double sum() const { return sum_; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-bucket histogram over small unsigned values (e.g. selected hash
 * function numbers 1..32, loop trip counts). Values beyond the last
 * bucket are clamped into it.
 */
class Histogram
{
  public:
    /** @param buckets number of buckets; bucket i counts value i */
    explicit Histogram(std::size_t buckets);

    /** Record one sample of @p value. */
    void add(std::size_t value, std::uint64_t weight = 1);

    /** Count in bucket @p value. */
    std::uint64_t bucket(std::size_t value) const;

    /** Total weight recorded. */
    std::uint64_t total() const { return total_; }

    /** Number of buckets. */
    std::size_t size() const { return counts_.size(); }

    /** Index of the most populated bucket (0 when empty). */
    std::size_t argMax() const;

    /** Render as "v0:c0 v1:c1 ..." skipping empty buckets. */
    std::string toString() const;

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace util
} // namespace vlp

#endif // VLPSIM_UTIL_STATS_H
