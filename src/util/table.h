/**
 * @file
 * ASCII table and CSV rendering for experiment output.
 *
 * Every bench binary prints the rows/series of the paper table or figure
 * it reproduces; this helper keeps that output aligned and also emits
 * machine-readable CSV for plotting.
 */

#ifndef VLPSIM_UTIL_TABLE_H
#define VLPSIM_UTIL_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace vlp {
namespace util {

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   TablePrinter table({"Benchmark", "gshare", "VLP"});
 *   table.addRow({"gcc", "8.8", "4.3"});
 *   table.print(std::cout);
 * @endcode
 */
class TablePrinter
{
  public:
    /** @param headers column headers, defining the column count */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as there are
     * columns. */
    void addRow(std::vector<std::string> cells);

    /** Render the table with a header separator to @p out. */
    void print(std::ostream &out) const;

    /** Render as CSV (no alignment padding) to @p out. */
    void printCsv(std::ostream &out) const;

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Access a cell of a data row (row/column bounds-checked). */
    const std::string &cell(std::size_t row, std::size_t col) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Quote a CSV field if it contains separators or quotes. */
std::string csvEscape(const std::string &field);

} // namespace util
} // namespace vlp

#endif // VLPSIM_UTIL_TABLE_H
