/**
 * @file
 * Minimal JSON value: parse, inspect, serialize.
 *
 * Just enough JSON for the report pipeline — the JSON report sink
 * emits through JsonWriter, and tests plus `vlpsim validate` read
 * reports back through Json::parse(). Objects preserve insertion
 * order so serialization is deterministic; numbers are stored as
 * doubles alongside the exact source text so integer counters
 * round-trip without loss.
 */

#ifndef VLPSIM_UTIL_JSON_H
#define VLPSIM_UTIL_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace vlp {
namespace util {

/** A parsed JSON value (object keys keep document order). */
class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Json() = default;

    /**
     * Parse @p text as one JSON document.
     * @throws std::runtime_error with an offset-bearing message on
     *         malformed input or trailing garbage
     */
    static Json parse(const std::string &text);

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** @throws std::runtime_error when the type does not match */
    bool asBool() const;
    double asNumber() const;
    /** The number's exact source text ("12345", "4.30"). */
    const std::string &numberText() const;
    std::uint64_t asUint() const;
    const std::string &asString() const;
    const std::vector<Json> &items() const;
    const std::vector<std::pair<std::string, Json>> &members() const;

    /** Object member by key; null pointer when absent or not an
     *  object. */
    const Json *find(const std::string &key) const;

    /**
     * Object member by key.
     * @throws std::runtime_error when absent or not an object
     */
    const Json &at(const std::string &key) const;

  private:
    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string text_; // String value or Number source text
    std::vector<Json> items_;
    std::vector<std::pair<std::string, Json>> members_;

    friend class JsonParser;
};

/**
 * Streaming JSON writer with deterministic formatting (2-space
 * indent, members in emission order). The caller is responsible for
 * balanced begin/end calls; assertions catch misuse in debug builds.
 *
 * Style::Compact emits the same document without any whitespace — one
 * line, suitable for the newline-delimited serve wire protocol.
 */
class JsonWriter
{
  public:
    enum class Style { Pretty, Compact };

    JsonWriter() = default;
    explicit JsonWriter(Style style) : style_(style) {}

    /** Serialized document so far (complete once all scopes close). */
    const std::string &str() const { return out_; }

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Start a named member inside an object (followed by a value or
     *  begin call). */
    void key(const std::string &name);

    void value(const std::string &text);
    void value(const char *text);
    void value(std::uint64_t number);
    void value(double number);
    void value(bool flag);
    void nullValue();

    /**
     * Emit @p text verbatim as a number token (no quoting). Used to
     * round-trip a parsed number through Json::numberText() without
     * reformatting, so re-emitted documents stay byte-stable.
     */
    void rawNumber(const std::string &text);

    /** Convenience: key() + value(). */
    template <typename T>
    void member(const std::string &name, T &&v)
    {
        key(name);
        value(std::forward<T>(v));
    }

    /** Escape @p text as a JSON string literal (with quotes). */
    static std::string quote(const std::string &text);

  private:
    void comma();
    void indent();

    Style style_ = Style::Pretty;
    std::string out_;
    /** One entry per open scope; true once the scope has a member. */
    std::vector<bool> scopes_;
    bool pendingKey_ = false;
};

/**
 * Re-emit a parsed value through @p writer (object order and number
 * source text preserved). Parsing a document and writing it back with
 * the same style reproduces the serializer's canonical form; writing
 * it back Compact yields the one-line wire form of the same document.
 */
void writeJson(JsonWriter &writer, const Json &value);

/** Serialize @p value as one compact (single-line) JSON document. */
std::string toCompactJson(const Json &value);

/** Serialize @p value in the pretty (2-space indent) style. */
std::string toPrettyJson(const Json &value);

} // namespace util
} // namespace vlp

#endif // VLPSIM_UTIL_JSON_H
