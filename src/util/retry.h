/**
 * @file
 * Shared retry policy for transient I/O failures.
 *
 * retryTransient() runs a callable, retrying util::TransientError with
 * clamped exponential backoff — the policy the suite runner has always
 * applied, extracted here so the ingestion prefetcher (which hashes and
 * validates traces on read-ahead threads) retries with exactly the
 * same schedule. Permanent errors and the final transient error
 * propagate unchanged.
 */

#ifndef VLPSIM_UTIL_RETRY_H
#define VLPSIM_UTIL_RETRY_H

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>

#include "util/cancel.h"
#include "util/chaos.h"
#include "util/logging.h"
#include "util/rng.h"

namespace vlp {
namespace util {

/** How transient failures are retried. */
struct RetryPolicy
{
    /** Total attempts (1 = no retries). */
    unsigned maxAttempts = 4;
    /** Backoff before retry r (0-based) is backoffBaseMs << r,
     *  clamped to backoffMaxMs. */
    unsigned backoffBaseMs = 10;
    /** Ceiling on any single backoff delay; also keeps the shift
     *  count well-defined for arbitrary maxAttempts. */
    unsigned backoffMaxMs = 10'000;
    /**
     * Full-jitter seed: when non-zero, retry r sleeps a uniform draw
     * from [0, min(backoffBaseMs << r, backoffMaxMs)] instead of the
     * exponential itself, so shards sharing a transient do not retry
     * in lockstep. The draw depends only on (seed, r) — deterministic
     * per attempt for a fixed seed. 0 keeps the legacy un-jittered
     * schedule.
     */
    std::uint64_t jitterSeed = 0;
    /** Backoff sleep hook (milliseconds); empty = real sleep. Tests
     *  replace it to observe retries without wall-clock delays. */
    std::function<void(unsigned)> sleeper;
    /** Cancellation token checked before each backoff; null = never
     *  cancelled. A cancelled run must not sit out a delay. */
    std::shared_ptr<const CancelToken> cancel;
};

/**
 * Run @p fn, retrying TransientError per @p policy: retry r sleeps
 * min(backoffBaseMs << r, backoffMaxMs). The shift count itself is
 * bounded, so a huge maxAttempts can never reach undefined-behavior
 * territory (shifting a 32-bit base by 32+).
 */
template <typename Fn>
auto
retryTransient(const RetryPolicy &policy, Fn &&fn)
{
    unsigned attempt = 0;
    // Chaos: fail the first attempt synthetically. The budget grows
    // by one so a real fault chain keeps its full retry allowance —
    // the injection exercises the backoff machinery without ever
    // converting a would-succeed call into a quarantine.
    unsigned max_attempts = std::max(policy.maxAttempts, 1u);
    bool synthetic = chaos::fire("retry.transient");
    if (synthetic)
        ++max_attempts;
    for (;;) {
        try {
            if (synthetic) {
                synthetic = false;
                throw TransientError(
                    "chaos: synthetic transient failure");
            }
            return fn();
        } catch (const TransientError &) {
            ++attempt;
            if (attempt >= max_attempts)
                throw;
            if (policy.cancel)
                policy.cancel->throwIfCancelled();
            const unsigned shift = std::min(attempt - 1, 31u);
            const std::uint64_t exponential =
                std::uint64_t{policy.backoffBaseMs} << shift;
            unsigned delay_ms = static_cast<unsigned>(
                std::min<std::uint64_t>(exponential,
                                        policy.backoffMaxMs));
            if (policy.jitterSeed != 0) {
                Rng jitter(policy.jitterSeed
                           ^ (std::uint64_t{attempt}
                              * 0x9e3779b97f4a7c15ULL));
                delay_ms = static_cast<unsigned>(
                    jitter.nextBelow(std::uint64_t{delay_ms} + 1));
            }
            if (policy.sleeper) {
                policy.sleeper(delay_ms);
            } else {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay_ms));
            }
        }
    }
}

} // namespace util
} // namespace vlp

#endif // VLPSIM_UTIL_RETRY_H
