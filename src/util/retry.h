/**
 * @file
 * Shared retry policy for transient I/O failures.
 *
 * retryTransient() runs a callable, retrying util::TransientError with
 * clamped exponential backoff — the policy the suite runner has always
 * applied, extracted here so the ingestion prefetcher (which hashes and
 * validates traces on read-ahead threads) retries with exactly the
 * same schedule. Permanent errors and the final transient error
 * propagate unchanged.
 */

#ifndef VLPSIM_UTIL_RETRY_H
#define VLPSIM_UTIL_RETRY_H

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>

#include "util/cancel.h"
#include "util/logging.h"

namespace vlp {
namespace util {

/** How transient failures are retried. */
struct RetryPolicy
{
    /** Total attempts (1 = no retries). */
    unsigned maxAttempts = 4;
    /** Backoff before retry r (0-based) is backoffBaseMs << r,
     *  clamped to backoffMaxMs. */
    unsigned backoffBaseMs = 10;
    /** Ceiling on any single backoff delay; also keeps the shift
     *  count well-defined for arbitrary maxAttempts. */
    unsigned backoffMaxMs = 10'000;
    /** Backoff sleep hook (milliseconds); empty = real sleep. Tests
     *  replace it to observe retries without wall-clock delays. */
    std::function<void(unsigned)> sleeper;
    /** Cancellation token checked before each backoff; null = never
     *  cancelled. A cancelled run must not sit out a delay. */
    std::shared_ptr<const CancelToken> cancel;
};

/**
 * Run @p fn, retrying TransientError per @p policy: retry r sleeps
 * min(backoffBaseMs << r, backoffMaxMs). The shift count itself is
 * bounded, so a huge maxAttempts can never reach undefined-behavior
 * territory (shifting a 32-bit base by 32+).
 */
template <typename Fn>
auto
retryTransient(const RetryPolicy &policy, Fn &&fn)
{
    unsigned attempt = 0;
    for (;;) {
        try {
            return fn();
        } catch (const TransientError &) {
            ++attempt;
            if (attempt >= std::max(policy.maxAttempts, 1u))
                throw;
            if (policy.cancel)
                policy.cancel->throwIfCancelled();
            const unsigned shift = std::min(attempt - 1, 31u);
            const std::uint64_t exponential =
                std::uint64_t{policy.backoffBaseMs} << shift;
            const unsigned delay_ms = static_cast<unsigned>(
                std::min<std::uint64_t>(exponential,
                                        policy.backoffMaxMs));
            if (policy.sleeper) {
                policy.sleeper(delay_ms);
            } else {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay_ms));
            }
        }
    }
}

} // namespace util
} // namespace vlp

#endif // VLPSIM_UTIL_RETRY_H
