/**
 * @file
 * A small fixed-size thread pool for the parallel experiment engine.
 *
 * The pool is deliberately minimal: tasks are type-erased
 * std::function<void()> thunks, submitted from one controlling thread,
 * and wait() blocks that thread until every submitted task has
 * finished. Exceptions must be handled inside the task (the experiment
 * layer captures them into a std::exception_ptr and rethrows on the
 * controlling thread); a task that lets an exception escape terminates
 * the process, as with any detached thread.
 */

#ifndef VLPSIM_UTIL_THREAD_POOL_H
#define VLPSIM_UTIL_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vlp {
namespace util {

/**
 * Fixed set of worker threads consuming a FIFO task queue.
 *
 * Threads are started in the constructor and joined in the destructor;
 * the pool never grows or shrinks. Submission and wait() are intended
 * to be called from a single controlling thread (the experiment
 * engine's reduction thread); tasks themselves may run on any worker.
 */
class ThreadPool
{
  public:
    /**
     * Start @p threads workers.
     * @p threads must be >= 1; pass defaultThreadCount() for "one per
     * hardware thread".
     */
    explicit ThreadPool(unsigned threads);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Drains the queue, waits for in-flight tasks, joins workers. */
    ~ThreadPool();

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task);

    /**
     * Block until every task submitted so far has completed (queue
     * empty and no task running).
     */
    void wait();

    /**
     * std::thread::hardware_concurrency() with a floor of 1 (the
     * standard allows it to return 0 when unknown).
     */
    static unsigned defaultThreadCount();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable allDone_;
    std::size_t inFlight_ = 0;
    bool stopping_ = false;
};

} // namespace util
} // namespace vlp

#endif // VLPSIM_UTIL_THREAD_POOL_H
