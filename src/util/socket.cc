/**
 * @file
 * POSIX stream-socket wrapper implementation.
 */

#include "util/socket.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace vlp {
namespace util {
namespace net {

namespace {

[[noreturn]] void
failErrno(const std::string &what)
{
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

/** Parse "host:port", ":port", or "port" into a TCP endpoint. */
Endpoint
parseTcp(const std::string &text)
{
    Endpoint endpoint;
    endpoint.kind = Endpoint::Kind::Tcp;
    const std::size_t colon = text.rfind(':');
    const std::string port_text =
        colon == std::string::npos ? text : text.substr(colon + 1);
    if (colon != std::string::npos && colon > 0)
        endpoint.host = text.substr(0, colon);
    if (port_text.empty())
        throw std::runtime_error("endpoint has no port: " + text);
    char *end = nullptr;
    const unsigned long port =
        std::strtoul(port_text.c_str(), &end, 10);
    if (end == port_text.c_str() || *end != '\0' || port > 65535) {
        throw std::runtime_error("malformed endpoint port: " + text);
    }
    endpoint.port = static_cast<std::uint16_t>(port);
    return endpoint;
}

sockaddr_in
tcpAddress(const Endpoint &endpoint)
{
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(endpoint.port);
    const std::string host =
        endpoint.host.empty() ? "127.0.0.1" : endpoint.host;
    if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
        throw std::runtime_error("unparsable IPv4 host: " + host);
    }
    return address;
}

sockaddr_un
unixAddress(const Endpoint &endpoint)
{
    sockaddr_un address{};
    address.sun_family = AF_UNIX;
    if (endpoint.path.size() >= sizeof(address.sun_path)) {
        throw std::runtime_error("unix socket path too long: "
                                 + endpoint.path);
    }
    std::memcpy(address.sun_path, endpoint.path.c_str(),
                endpoint.path.size() + 1);
    return address;
}

} // anonymous namespace

Endpoint
Endpoint::parse(const std::string &text)
{
    if (text.find('/') != std::string::npos) {
        Endpoint endpoint;
        endpoint.kind = Kind::Unix;
        endpoint.path = text;
        return endpoint;
    }
    return parseTcp(text);
}

std::string
Endpoint::describe() const
{
    if (kind == Kind::Unix)
        return path;
    return (host.empty() ? std::string("127.0.0.1") : host) + ":"
        + std::to_string(port);
}

// --- Socket ---------------------------------------------------------

Socket::~Socket()
{
    close();
}

Socket::Socket(Socket &&other) noexcept
    : fd_(std::exchange(other.fd_, -1))
{}

Socket &
Socket::operator=(Socket &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
}

Socket
Socket::connect(const Endpoint &endpoint)
{
    const int domain =
        endpoint.kind == Endpoint::Kind::Unix ? AF_UNIX : AF_INET;
    const int fd = ::socket(domain, SOCK_STREAM, 0);
    if (fd < 0)
        failErrno("socket");
    Socket socket(fd);
    int rc;
    if (endpoint.kind == Endpoint::Kind::Unix) {
        const sockaddr_un address = unixAddress(endpoint);
        rc = ::connect(fd,
                       reinterpret_cast<const sockaddr *>(&address),
                       sizeof(address));
    } else {
        const sockaddr_in address = tcpAddress(endpoint);
        rc = ::connect(fd,
                       reinterpret_cast<const sockaddr *>(&address),
                       sizeof(address));
    }
    if (rc != 0)
        failErrno("connect to " + endpoint.describe());
    return socket;
}

void
Socket::sendAll(const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        // MSG_NOSIGNAL: a vanished peer must surface as an error on
        // this call, not kill the daemon with SIGPIPE.
        const ssize_t n =
            ::send(fd_, data.data() + sent, data.size() - sent,
                   MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // SO_SNDTIMEO expired: the peer holds the connection
                // open but stopped reading. Treat it as vanished.
                throw std::runtime_error(
                    "send timed out: peer stopped reading");
            }
            failErrno("send");
        }
        sent += static_cast<std::size_t>(n);
    }
}

void
Socket::setSendTimeout(unsigned ms)
{
    timeval timeout{};
    timeout.tv_sec = ms / 1000;
    timeout.tv_usec = static_cast<long>(ms % 1000) * 1000;
    if (::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &timeout,
                     sizeof(timeout)) != 0) {
        failErrno("setsockopt(SO_SNDTIMEO)");
    }
}

void
Socket::setRecvTimeout(unsigned ms)
{
    timeval timeout{};
    timeout.tv_sec = ms / 1000;
    timeout.tv_usec = static_cast<long>(ms % 1000) * 1000;
    if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                     sizeof(timeout)) != 0) {
        failErrno("setsockopt(SO_RCVTIMEO)");
    }
}

std::size_t
Socket::receive(char *buffer, std::size_t capacity)
{
    for (;;) {
        const ssize_t n = ::recv(fd_, buffer, capacity, 0);
        if (n >= 0)
            return static_cast<std::size_t>(n);
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            // SO_RCVTIMEO expired: the peer is alive at the TCP layer
            // but sent nothing within the bound.
            throw TimeoutError("recv timed out: no data from peer");
        }
        failErrno("recv");
    }
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

// --- LineReader -----------------------------------------------------

bool
LineReader::readLine(std::string &line)
{
    for (;;) {
        const std::size_t newline = buffer_.find('\n', scanned_);
        if (newline != std::string::npos) {
            line.assign(buffer_, 0, newline);
            buffer_.erase(0, newline + 1);
            scanned_ = 0;
            return true;
        }
        scanned_ = buffer_.size();
        if (buffer_.size() > maxLineBytes_) {
            throw std::runtime_error(
                "line exceeds " + std::to_string(maxLineBytes_)
                + " bytes without a newline");
        }
        char chunk[4096];
        const std::size_t n = socket_.receive(chunk, sizeof(chunk));
        if (n == 0)
            return false; // orderly shutdown; partial line dropped
        buffer_.append(chunk, n);
    }
}

// --- ListenSocket ---------------------------------------------------

ListenSocket::~ListenSocket()
{
    if (fd_ >= 0) {
        ::close(fd_);
        if (local_.kind == Endpoint::Kind::Unix)
            ::unlink(local_.path.c_str());
    }
}

ListenSocket::ListenSocket(ListenSocket &&other) noexcept
    : fd_(std::exchange(other.fd_, -1)), local_(other.local_)
{}

ListenSocket
ListenSocket::listen(const Endpoint &endpoint)
{
    const int domain =
        endpoint.kind == Endpoint::Kind::Unix ? AF_UNIX : AF_INET;
    const int fd = ::socket(domain, SOCK_STREAM, 0);
    if (fd < 0)
        failErrno("socket");
    Endpoint local = endpoint;
    int rc;
    if (endpoint.kind == Endpoint::Kind::Unix) {
        // Replace a stale socket file, but never an unrelated file.
        struct stat info{};
        if (::stat(endpoint.path.c_str(), &info) == 0) {
            if (!S_ISSOCK(info.st_mode)) {
                ::close(fd);
                throw std::runtime_error(
                    endpoint.path + " exists and is not a socket");
            }
            ::unlink(endpoint.path.c_str());
        }
        const sockaddr_un address = unixAddress(endpoint);
        rc = ::bind(fd, reinterpret_cast<const sockaddr *>(&address),
                    sizeof(address));
    } else {
        const int enable = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable,
                     sizeof(enable));
        const sockaddr_in address = tcpAddress(endpoint);
        rc = ::bind(fd, reinterpret_cast<const sockaddr *>(&address),
                    sizeof(address));
    }
    if (rc != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        failErrno("bind " + endpoint.describe());
    }
    if (::listen(fd, 64) != 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        failErrno("listen " + endpoint.describe());
    }
    if (endpoint.kind == Endpoint::Kind::Tcp && endpoint.port == 0) {
        sockaddr_in bound{};
        socklen_t length = sizeof(bound);
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                          &length) == 0) {
            local.port = ntohs(bound.sin_port);
        }
    }
    return ListenSocket(fd, std::move(local));
}

std::optional<Socket>
ListenSocket::accept(int wake_fd)
{
    for (;;) {
        pollfd fds[2];
        fds[0].fd = fd_;
        fds[0].events = POLLIN;
        fds[1].fd = wake_fd;
        fds[1].events = POLLIN;
        const int ready =
            ::poll(fds, wake_fd >= 0 ? 2 : 1, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            failErrno("poll");
        }
        if (wake_fd >= 0 && (fds[1].revents & POLLIN) != 0)
            return std::nullopt;
        if ((fds[0].revents & POLLIN) == 0)
            continue;
        const int client = ::accept(fd_, nullptr, nullptr);
        if (client < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            failErrno("accept");
        }
        return Socket(client);
    }
}

} // namespace net
} // namespace util
} // namespace vlp
