/**
 * @file
 * Bit-manipulation helpers used throughout the simulator.
 *
 * The paper's hash functions operate on k-bit quantities (compressed
 * target addresses and predictor-table indices), where k is the number
 * of index bits of the predictor table. Everything here is expressed in
 * terms of an explicit width so that rotations and masks behave like the
 * k-bit hardware registers they model rather than like 64-bit host
 * integers.
 */

#ifndef VLPSIM_UTIL_BITS_H
#define VLPSIM_UTIL_BITS_H

#include <cassert>
#include <cstdint>

namespace vlp {
namespace util {

/** Return a mask with the low @p width bits set. @p width must be 0..64. */
constexpr std::uint64_t
mask(unsigned width)
{
    return width >= 64 ? ~std::uint64_t{0}
                       : ((std::uint64_t{1} << width) - 1);
}

/** Keep only the low @p width bits of @p value. */
constexpr std::uint64_t
truncate(std::uint64_t value, unsigned width)
{
    return value & mask(width);
}

/** True iff @p value fits in @p width bits. */
constexpr bool
fits(std::uint64_t value, unsigned width)
{
    return truncate(value, width) == value;
}

/**
 * Rotate a @p width-bit value left by @p amount bits.
 *
 * This models the k-bit rotator of Section 3.3 of the paper: each target
 * address T_i is rotated, *as a k-bit number*, by i-1 bits before being
 * XORed into the index.
 *
 * A zero-width register holds no bits, so rotating it yields 0 rather
 * than dividing by zero in the wrap-around reduction.
 *
 * @param value  value to rotate; only the low @p width bits are used
 * @param amount rotation amount; may exceed @p width (wraps around)
 * @param width  register width in bits, 1..64 (0 returns 0)
 */
constexpr std::uint64_t
rotl(std::uint64_t value, unsigned amount, unsigned width)
{
    if (width == 0)
        return 0;
    assert(width <= 64);
    value = truncate(value, width);
    amount %= width;
    if (amount == 0)
        return value;
    return truncate((value << amount) | (value >> (width - amount)), width);
}

/** Rotate a @p width-bit value right by @p amount bits. */
constexpr std::uint64_t
rotr(std::uint64_t value, unsigned amount, unsigned width)
{
    if (width == 0)
        return 0;
    assert(width <= 64);
    amount %= width;
    return rotl(value, width - amount, width);
}

/** True iff @p value is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

/** Floor of log2(@p value); @p value must be non-zero. */
constexpr unsigned
floorLog2(std::uint64_t value)
{
    assert(value != 0);
    unsigned result = 0;
    while (value >>= 1)
        ++result;
    return result;
}

/** Ceiling of log2(@p value); @p value must be non-zero. */
constexpr unsigned
ceilLog2(std::uint64_t value)
{
    return floorLog2(value) + (isPowerOf2(value) ? 0 : 1);
}

/**
 * XOR-fold a 64-bit value down to @p width bits.
 *
 * Used to mix a full branch address into a narrow index (gshare-style)
 * without discarding the high-order bits entirely.
 */
constexpr std::uint64_t
xorFold(std::uint64_t value, unsigned width)
{
    assert(width >= 1 && width <= 64);
    std::uint64_t result = 0;
    while (value != 0) {
        result ^= truncate(value, width);
        value >>= width;
    }
    return result;
}

/** Extract bits [@p first, @p last] (inclusive, last >= first). */
constexpr std::uint64_t
bitRange(std::uint64_t value, unsigned last, unsigned first)
{
    assert(last >= first);
    return truncate(value >> first, last - first + 1);
}

/** Population count. */
constexpr unsigned
popCount(std::uint64_t value)
{
    unsigned count = 0;
    while (value != 0) {
        value &= value - 1;
        ++count;
    }
    return count;
}

} // namespace util
} // namespace vlp

#endif // VLPSIM_UTIL_BITS_H
