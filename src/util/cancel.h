/**
 * @file
 * Cooperative cancellation primitive for long-running experiments.
 *
 * A CancelToken is a shared flag: the owner (the serve daemon's
 * cancel handler, a signal handler's drain path) calls cancel(), and
 * the computation checks the token at natural step boundaries —
 * between benchmarks, between sweep lengths, between corpus pairs —
 * via throwIfCancelled(), which raises CancelledError. Cancellation
 * is therefore prompt at the granularity of one step, never preemptive:
 * no state is torn mid-update, caches and stores stay consistent, and
 * the unwinding path is ordinary exception propagation.
 *
 * Tokens are shared as std::shared_ptr<CancelToken> so a request can
 * outlive the connection that submitted it (cancel-after-disconnect)
 * without dangling.
 */

#ifndef VLPSIM_UTIL_CANCEL_H
#define VLPSIM_UTIL_CANCEL_H

#include <atomic>
#include <stdexcept>

namespace vlp {
namespace util {

/** Thrown by throwIfCancelled() once a token is cancelled. */
class CancelledError : public std::runtime_error
{
  public:
    CancelledError() : std::runtime_error("cancelled") {}
    using std::runtime_error::runtime_error;
};

/** A shared, thread-safe cancellation flag (set-once, never reset). */
class CancelToken
{
  public:
    CancelToken() = default;

    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Request cancellation (idempotent, callable from any thread). */
    void cancel() noexcept
    {
        cancelled_.store(true, std::memory_order_relaxed);
    }

    /** True once cancel() has been called. */
    bool cancelled() const noexcept
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

    /** @throws CancelledError once the token is cancelled */
    void throwIfCancelled() const
    {
        if (cancelled())
            throw CancelledError();
    }

  private:
    std::atomic<bool> cancelled_{false};
};

} // namespace util
} // namespace vlp

#endif // VLPSIM_UTIL_CANCEL_H
