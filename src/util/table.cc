/**
 * @file
 * Table rendering implementation.
 */

#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <ostream>

namespace vlp {
namespace util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    assert(!headers_.empty());
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print(std::ostream &out) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            out << cells[c];
            if (c + 1 < cells.size())
                out << std::string(widths[c] - cells[c].size() + 2, ' ');
        }
        out << '\n';
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        print_row(row);
}

void
TablePrinter::printCsv(std::ostream &out) const
{
    auto print_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            out << csvEscape(cells[c]);
            if (c + 1 < cells.size())
                out << ',';
        }
        out << '\n';
    };
    print_row(headers_);
    for (const auto &row : rows_)
        print_row(row);
}

const std::string &
TablePrinter::cell(std::size_t row, std::size_t col) const
{
    assert(row < rows_.size());
    assert(col < rows_[row].size());
    return rows_[row][col];
}

std::string
csvEscape(const std::string &field)
{
    if (field.find_first_of(",\"\n") == std::string::npos)
        return field;
    std::string escaped = "\"";
    for (char ch : field) {
        if (ch == '"')
            escaped += "\"\"";
        else
            escaped.push_back(ch);
    }
    escaped.push_back('"');
    return escaped;
}

} // namespace util
} // namespace vlp
