/**
 * @file
 * xoshiro256** implementation and derived distributions.
 */

#include "util/rng.h"

#include <cassert>
#include <cmath>

namespace vlp {
namespace util {

namespace {

/** SplitMix64 step, used to expand a 64-bit seed into generator state. */
std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl64(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t state = seed;
    for (auto &word : s_)
        word = splitMix64(state);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl64(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl64(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    assert(bound != 0);
    // Debiased modulo via rejection sampling on the top of the range.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::nextInRange(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    // 53 high bits -> [0, 1) with full double precision.
    return (next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

unsigned
Rng::nextGeometric(double p, unsigned cap)
{
    assert(cap >= 1);
    unsigned count = 1;
    while (count < cap && nextBool(p))
        ++count;
    return count;
}

std::size_t
Rng::nextWeighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        assert(w >= 0.0);
        total += w;
    }
    assert(total > 0.0);
    double point = nextDouble() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        point -= weights[i];
        if (point < 0.0)
            return i;
    }
    return weights.size() - 1;
}

std::size_t
Rng::nextZipf(std::size_t n, double s)
{
    assert(n >= 1);
    // Direct inversion on the (small-n) CDF; n is at most a few hundred
    // for our dispatch tables, so the O(n) loop is fine.
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    double point = nextDouble() * total;
    for (std::size_t i = 0; i < n; ++i) {
        point -= 1.0 / std::pow(static_cast<double>(i + 1), s);
        if (point < 0.0)
            return i;
    }
    return n - 1;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa5a5a5a55a5a5a5aULL);
}

} // namespace util
} // namespace vlp
