/**
 * @file
 * Command-line parser implementation.
 */

#include "util/args.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <ostream>
#include <stdexcept>

namespace vlp {
namespace util {

ArgParser::ArgParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary))
{
}

void
ArgParser::addOption(const std::string &flag,
                     const std::string &valueName,
                     const std::string &help,
                     std::function<void(const std::string &)> handler)
{
    Flag entry;
    entry.name = flag;
    entry.valueName = valueName;
    entry.help = help;
    entry.handler = std::move(handler);
    entry.takesValue = true;
    flags_.push_back(std::move(entry));
}

void
ArgParser::addString(const std::string &flag,
                     const std::string &valueName,
                     const std::string &help, std::string *out)
{
    addOption(flag, valueName, help,
              [out](const std::string &value) { *out = value; });
}

void
ArgParser::addUint(const std::string &flag,
                   const std::string &valueName,
                   const std::string &help, std::uint64_t *out,
                   std::uint64_t max)
{
    addOption(flag, valueName, help,
              [out, max](const std::string &value) {
                  char *end = nullptr;
                  errno = 0;
                  const unsigned long long parsed =
                      std::strtoull(value.c_str(), &end, 10);
                  if (end == value.c_str() || *end != '\0'
                      || errno != 0 || parsed > max
                      || value.front() == '-') {
                      throw std::runtime_error("malformed value: "
                                               + value);
                  }
                  *out = parsed;
              });
}

void
ArgParser::addSwitch(const std::string &flag, const std::string &help,
                     bool *out)
{
    Flag entry;
    entry.name = flag;
    entry.help = help;
    entry.handler = [out](const std::string &) { *out = true; };
    entry.takesValue = false;
    flags_.push_back(std::move(entry));
}

void
ArgParser::addPositional(const std::string &name,
                         const std::string &help, bool required)
{
    positionals_.push_back(Positional{name, help, required});
}

void
ArgParser::allowExtraPositionals(const std::string &name,
                                 const std::string &help)
{
    variadicTail_ = true;
    positionals_.push_back(Positional{name + "...", help, false});
}

void
ArgParser::allowExtra()
{
    passUnknown_ = true;
}

const ArgParser::Flag *
ArgParser::findFlag(const std::string &name) const
{
    for (const Flag &flag : flags_) {
        if (flag.name == name)
            return &flag;
    }
    return nullptr;
}

std::vector<std::string>
ArgParser::parse(int argc, char **argv, int begin)
{
    std::vector<std::string> positionals;
    for (int i = begin; i < argc; ++i) {
        const std::string argument = argv[i];
        if (argument == "--help" || argument == "-h") {
            printUsage(std::cout);
            std::exit(0);
        }
        if (argument.rfind("--", 0) != 0 || argument == "--") {
            positionals.push_back(argument);
            continue;
        }
        std::string name = argument;
        std::string inline_value;
        bool has_inline = false;
        const std::size_t equals = argument.find('=');
        if (equals != std::string::npos) {
            name = argument.substr(0, equals);
            inline_value = argument.substr(equals + 1);
            has_inline = true;
        }
        const Flag *flag = findFlag(name);
        if (flag == nullptr) {
            if (passUnknown_) {
                extra_.push_back(argument);
                continue;
            }
            fail("unknown flag: " + name);
        }
        std::string value;
        if (flag->takesValue) {
            if (has_inline) {
                value = inline_value;
            } else {
                if (i + 1 >= argc)
                    fail(flag->name + " requires a value");
                value = argv[++i];
            }
        } else if (has_inline) {
            fail(flag->name + " takes no value");
        }
        try {
            flag->handler(value);
        } catch (const std::exception &error) {
            fail(flag->name + ": " + error.what());
        }
    }

    std::size_t required = 0;
    for (const Positional &positional : positionals_) {
        if (positional.required)
            ++required;
    }
    if (positionals.size() < required)
        fail("missing required argument: "
             + positionals_[positionals.size()].name);
    if (!variadicTail_ && positionals.size() > positionals_.size()) {
        fail("unexpected argument: " + positionals[positionals_.size()]);
    }
    return positionals;
}

void
ArgParser::printUsage(std::ostream &out) const
{
    out << "usage: " << program_;
    if (!flags_.empty())
        out << " [options]";
    for (const Positional &positional : positionals_) {
        if (positional.required)
            out << " <" << positional.name << ">";
        else
            out << " [" << positional.name << "]";
    }
    out << "\n";
    if (!summary_.empty())
        out << "\n" << summary_ << "\n";

    std::size_t width = 0;
    auto label = [](const Flag &flag) {
        return flag.takesValue ? flag.name + " " + flag.valueName
                               : flag.name;
    };
    for (const Flag &flag : flags_)
        width = std::max(width, label(flag).size());
    for (const Positional &positional : positionals_)
        width = std::max(width, positional.name.size());
    width = std::max(width, std::string("--help").size());

    if (!positionals_.empty()) {
        out << "\narguments:\n";
        for (const Positional &positional : positionals_) {
            out << "  " << positional.name
                << std::string(width - positional.name.size() + 2, ' ')
                << positional.help << "\n";
        }
    }
    out << "\noptions:\n";
    for (const Flag &flag : flags_) {
        const std::string text = label(flag);
        out << "  " << text
            << std::string(width - text.size() + 2, ' ') << flag.help
            << "\n";
    }
    out << "  --help" << std::string(width - 6 + 2, ' ')
        << "show this help and exit\n";
}

void
ArgParser::fail(const std::string &message) const
{
    std::cerr << "error: " << message << "\n"
              << "run '" << program_ << " --help' for usage\n";
    std::exit(2);
}

} // namespace util
} // namespace vlp
