/**
 * @file
 * Chaos switchboard implementation.
 *
 * Decisions must be pure functions of (seed, section, identity,
 * per-identity reach count): each draw seeds a fresh Rng from a
 * mixed hash of those four values, so no shared stream exists whose
 * consumption order could depend on thread scheduling. The only
 * mutable state is the per-identity reach counter, and that counts
 * work items, which a deterministic workload reaches a deterministic
 * number of times.
 */

#include "util/chaos.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "util/checksum.h"
#include "util/rng.h"

namespace vlp {
namespace util {
namespace chaos {

namespace {

struct SectionState
{
    bool activationDecided = false;
    SectionStats stats;
    /** Reach count per identity — the decision sequence number. */
    std::map<std::string, std::uint64_t> identitySeq;
};

struct Switchboard
{
    std::mutex mutex;
    Config config;
    std::map<std::string, SectionState> sections;
};

std::atomic<bool> gEnabled{false};

Switchboard &
board()
{
    static Switchboard instance;
    return instance;
}

/** SplitMix64 finalizer — mixes hash components into a seed. */
std::uint64_t
mix(std::uint64_t value)
{
    value += 0x9e3779b97f4a7c15ULL;
    value = (value ^ (value >> 30)) * 0xbf58476d1ce4e5b9ULL;
    value = (value ^ (value >> 27)) * 0x94d049bb133111ebULL;
    return value ^ (value >> 31);
}

} // anonymous namespace

void
configure(const Config &config)
{
    Switchboard &b = board();
    std::lock_guard<std::mutex> lock(b.mutex);
    b.config = config;
    b.sections.clear();
    gEnabled.store(config.enabled, std::memory_order_relaxed);
}

void
disable()
{
    configure(Config{});
}

bool
enabled()
{
    return gEnabled.load(std::memory_order_relaxed);
}

Config
config()
{
    Switchboard &b = board();
    std::lock_guard<std::mutex> lock(b.mutex);
    return b.config;
}

bool
fire(const std::string &section, const std::string &identity)
{
    if (!gEnabled.load(std::memory_order_relaxed))
        return false;

    Switchboard &b = board();
    std::lock_guard<std::mutex> lock(b.mutex);
    if (!b.config.enabled)
        return false;

    SectionState &state = b.sections[section];
    if (!state.activationDecided) {
        const bool allowed = b.config.only.empty()
            || std::find(b.config.only.begin(), b.config.only.end(),
                         section)
                != b.config.only.end();
        Rng rng(mix(b.config.seed)
                ^ mix(fnv1a("activate:" + section)));
        state.stats.activated = allowed
            && rng.nextBool(b.config.activateProbability);
        state.activationDecided = true;
    }
    ++state.stats.reached;
    if (!state.stats.activated) {
        ++state.stats.skipped;
        return false;
    }

    const std::uint64_t sequence = state.identitySeq[identity]++;
    Rng rng(mix(b.config.seed) ^ mix(fnv1a(section))
            ^ mix(fnv1a(identity) * 0x9e3779b97f4a7c15ULL)
            ^ mix(sequence));
    const bool fired = rng.nextBool(b.config.fireProbability);
    if (fired)
        ++state.stats.fired;
    else
        ++state.stats.skipped;
    return fired;
}

std::map<std::string, SectionStats>
counters()
{
    Switchboard &b = board();
    std::lock_guard<std::mutex> lock(b.mutex);
    std::map<std::string, SectionStats> snapshot;
    for (const auto &entry : b.sections)
        snapshot.emplace(entry.first, entry.second.stats);
    return snapshot;
}

std::string
pathKey(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

const std::vector<std::string> &
knownSections()
{
    static const std::vector<std::string> sections = {
        "frontend.checkpoint.restore",
        "retry.transient",
        "serve.accept.drop",
        "serve.admission.queue-full",
        "serve.cancel.step",
        "serve.heartbeat.stall",
        "serve.send.slow",
        "store.fetch.checksum-mismatch",
        "store.gc.reader-race",
        "store.insert.torn-rename",
        "store.journal.torn-tail",
        "trace.mmap.stdio-fallback",
        "trace.open.transient",
        "trace.prefetch.producer-death",
        "trace.read.short",
        "trace.read.transient",
        "trace.view.refuse",
    };
    return sections;
}

} // namespace chaos
} // namespace util
} // namespace vlp
