/**
 * @file
 * Process-wide deterministic chaos switchboard (Buggify-style).
 *
 * Production code marks hazard points with CHAOS_SECTION("name") (or
 * chaos::fire("name", identity)); each named section is *activated*
 * once per run with probability p_activate, and an activated section
 * *fires* on a given reach with probability p_fire — FoundationDB's
 * Buggify discipline. Both decisions are pure functions of
 * (campaign seed, section name, identity, per-identity reach count),
 * never of thread timing: the same seed over the same workload makes
 * the same faults fire at the same hazard points regardless of --jobs
 * or scheduling, so any campaign failure replays exactly from its
 * seed.
 *
 * The identity string names the work unit at the hazard point (a
 * trace path, a cache key); hazard points that pass one get
 * fire decisions that follow the work item across thread
 * interleavings. Sections with no natural identity (serve-side
 * connection events) still fire deterministically in aggregate but
 * not per-reach-order.
 *
 * Disabled by default; fire() is a single relaxed atomic load when
 * off, so instrumented hot paths cost nothing in normal runs.
 */

#ifndef VLPSIM_UTIL_CHAOS_H
#define VLPSIM_UTIL_CHAOS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vlp {
namespace util {
namespace chaos {

/** Global switchboard knobs (the --chaos* flags). */
struct Config
{
    /** Master switch; false = every fire() is false, no accounting. */
    bool enabled = false;
    /** Campaign seed; every decision derives from it. */
    std::uint64_t seed = 1;
    /** Per-run probability that a section activates at all. */
    double activateProbability = 0.25;
    /** Per-reach probability that an activated section fires. */
    double fireProbability = 0.25;
    /** When non-empty, only these sections may activate (targeted
     *  tests); others are reached-but-skipped. */
    std::vector<std::string> only;
};

/** Install @p config and reset all section state and counters. */
void configure(const Config &config);

/** Turn the switchboard off and clear all state (test teardown). */
void disable();

/** Is the switchboard on? */
bool enabled();

/** The installed configuration. */
Config config();

/**
 * Reach the named section: true when the section is activated this
 * run and this reach fires. @p identity names the work unit (trace
 * path, cache key, ...) so the decision is stable across thread
 * interleavings; empty is allowed for sections without one.
 */
bool fire(const std::string &section,
          const std::string &identity = std::string());

/** Per-section accounting, exported into report metadata. */
struct SectionStats
{
    /** Did this run's activation draw come up true? */
    bool activated = false;
    /** Reaches while the switchboard was on. */
    std::uint64_t reached = 0;
    /** Reaches that injected the fault. */
    std::uint64_t fired = 0;
    /** Reaches that passed through unharmed. */
    std::uint64_t skipped = 0;

    friend bool operator==(const SectionStats &a,
                           const SectionStats &b)
    {
        return a.activated == b.activated && a.reached == b.reached
            && a.fired == b.fired && a.skipped == b.skipped;
    }
    friend bool operator!=(const SectionStats &a,
                           const SectionStats &b)
    {
        return !(a == b);
    }
};

/** Snapshot of every section reached since configure(). */
std::map<std::string, SectionStats> counters();

/** Canonical registry of the sections instrumented in this build;
 *  campaign coverage checks sweep seeds against this list. */
const std::vector<std::string> &knownSections();

/**
 * Identity for a filesystem path: its final component. Hazard points
 * keyed by file use this so a seeded campaign makes the same
 * decisions wherever the corpus or store happens to live.
 */
std::string pathKey(const std::string &path);

} // namespace chaos
} // namespace util
} // namespace vlp

/** Buggify-style hazard marker: CHAOS_SECTION("store.insert.torn")
 *  or CHAOS_SECTION("trace.read.transient", path). */
#define CHAOS_SECTION(...) (::vlp::util::chaos::fire(__VA_ARGS__))

#endif // VLPSIM_UTIL_CHAOS_H
