/**
 * @file
 * Logging and environment helper implementation.
 *
 * All four message functions funnel into logLine(): the line is fully
 * assembled first, then written under one global mutex with a single
 * fputs, so concurrent threads (ThreadPool workers, serve request
 * handlers) can never interleave characters within a line.
 */

#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace vlp {
namespace util {

namespace {

std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::function<void(const std::string &)> &
logSink()
{
    static std::function<void(const std::string &)> sink;
    return sink;
}

std::atomic<int> &
levelThreshold()
{
    static std::atomic<int> threshold{[] {
        const char *env = std::getenv("VLPSIM_LOG_LEVEL");
        if (env != nullptr) {
            try {
                return static_cast<int>(parseLogLevel(env));
            } catch (const std::runtime_error &) {
                // Fall through to the default; warning here would
                // recurse into the logger being initialized.
            }
        }
        return static_cast<int>(LogLevel::Info);
    }()};
    return threshold;
}

std::atomic<bool> timestampsEnabled{false};

/** Monotonic start reference, latched on first use. */
std::chrono::steady_clock::time_point
startTime()
{
    static const auto start = std::chrono::steady_clock::now();
    return start;
}

const char *
levelTag(LogLevel level)
{
    switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    }
    return "info";
}

void
logLine(LogLevel level, const std::string &message)
{
    if (static_cast<int>(level) < levelThreshold().load())
        return;
    std::string line;
    if (timestampsEnabled.load()) {
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - startTime())
                .count();
        char stamp[32];
        std::snprintf(stamp, sizeof(stamp), "[%10.3f] ", seconds);
        line += stamp;
    }
    line += levelTag(level);
    line += ": ";
    line += message;
    std::lock_guard<std::mutex> lock(logMutex());
    if (logSink()) {
        logSink()(line);
        return;
    }
    line += "\n";
    std::fputs(line.c_str(), stderr);
}

} // anonymous namespace

LogLevel
parseLogLevel(const std::string &text)
{
    if (text == "debug")
        return LogLevel::Debug;
    if (text == "info")
        return LogLevel::Info;
    if (text == "warn")
        return LogLevel::Warn;
    if (text == "error")
        return LogLevel::Error;
    throw std::runtime_error("unknown log level: " + text
                             + " (expected debug, info, warn, or "
                               "error)");
}

void
setLogLevel(LogLevel level)
{
    levelThreshold().store(static_cast<int>(level));
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(levelThreshold().load());
}

void
setLogTimestamps(bool enabled)
{
    if (enabled)
        startTime(); // latch the reference before the first line
    timestampsEnabled.store(enabled);
}

void
setLogSink(std::function<void(const std::string &)> sink)
{
    std::lock_guard<std::mutex> lock(logMutex());
    logSink() = std::move(sink);
}

void
debug(const std::string &message)
{
    logLine(LogLevel::Debug, message);
}

void
inform(const std::string &message)
{
    logLine(LogLevel::Info, message);
}

void
warn(const std::string &message)
{
    logLine(LogLevel::Warn, message);
}

void
error(const std::string &message)
{
    logLine(LogLevel::Error, message);
}

void
fatal(const std::string &message)
{
    throw std::runtime_error(message);
}

void
panic(const std::string &message)
{
    std::fprintf(stderr, "panic: %s\n", message.c_str());
    std::abort();
}

double
workloadScale()
{
    const char *value = std::getenv("VLPSIM_SCALE");
    if (value == nullptr)
        return 1.0;
    char *end = nullptr;
    double scale = std::strtod(value, &end);
    if (end == value || scale <= 0.0) {
        warn("ignoring malformed VLPSIM_SCALE value");
        return 1.0;
    }
    if (scale < 0.001)
        scale = 0.001;
    if (scale > 1000.0)
        scale = 1000.0;
    return scale;
}

} // namespace util
} // namespace vlp
