/**
 * @file
 * Logging and environment helper implementation.
 */

#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace vlp {
namespace util {

void
inform(const std::string &message)
{
    std::fprintf(stderr, "info: %s\n", message.c_str());
}

void
warn(const std::string &message)
{
    std::fprintf(stderr, "warn: %s\n", message.c_str());
}

void
fatal(const std::string &message)
{
    throw std::runtime_error(message);
}

void
panic(const std::string &message)
{
    std::fprintf(stderr, "panic: %s\n", message.c_str());
    std::abort();
}

double
workloadScale()
{
    const char *value = std::getenv("VLPSIM_SCALE");
    if (value == nullptr)
        return 1.0;
    char *end = nullptr;
    double scale = std::strtod(value, &end);
    if (end == value || scale <= 0.0) {
        warn("ignoring malformed VLPSIM_SCALE value");
        return 1.0;
    }
    if (scale < 0.001)
        scale = 0.001;
    if (scale > 1000.0)
        scale = 1000.0;
    return scale;
}

} // namespace util
} // namespace vlp
