/**
 * @file
 * Build/version identification.
 *
 * The version string is stamped at configure time from
 * `git describe --always --dirty` (see build_info.h.in); every report
 * export carries it as metadata, `vlpsim --version` prints it, and the
 * serve handshake echoes it so clients can reject a mismatched server.
 */

#ifndef VLPSIM_UTIL_VERSION_H
#define VLPSIM_UTIL_VERSION_H

#include <string>

namespace vlp {
namespace util {

/** The git-describe build version ("unknown" outside a checkout). */
const std::string &buildVersion();

} // namespace util
} // namespace vlp

#endif // VLPSIM_UTIL_VERSION_H
