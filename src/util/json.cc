/**
 * @file
 * Minimal JSON parser and writer implementation.
 */

#include "util/json.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace vlp {
namespace util {

namespace {

[[noreturn]] void
typeError(const char *wanted)
{
    throw std::runtime_error(std::string("JSON value is not a ")
                             + wanted);
}

} // anonymous namespace

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        typeError("bool");
    return bool_;
}

double
Json::asNumber() const
{
    if (type_ != Type::Number)
        typeError("number");
    return number_;
}

const std::string &
Json::numberText() const
{
    if (type_ != Type::Number)
        typeError("number");
    return text_;
}

std::uint64_t
Json::asUint() const
{
    if (type_ != Type::Number)
        typeError("number");
    return std::strtoull(text_.c_str(), nullptr, 10);
}

const std::string &
Json::asString() const
{
    if (type_ != Type::String)
        typeError("string");
    return text_;
}

const std::vector<Json> &
Json::items() const
{
    if (type_ != Type::Array)
        typeError("array");
    return items_;
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    if (type_ != Type::Object)
        typeError("object");
    return members_;
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (const auto &[name, value] : members_) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

const Json &
Json::at(const std::string &key) const
{
    const Json *value = find(key);
    if (value == nullptr)
        throw std::runtime_error("JSON object has no member \"" + key
                                 + "\"");
    return *value;
}

/** Recursive-descent parser over a complete in-memory document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    Json document()
    {
        Json value = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing characters after JSON document");
        return value;
    }

  private:
    [[noreturn]] void fail(const std::string &what)
    {
        throw std::runtime_error("JSON parse error at offset "
                                 + std::to_string(pos_) + ": " + what);
    }

    void skipSpace()
    {
        while (pos_ < text_.size()
               && (text_[pos_] == ' ' || text_[pos_] == '\t'
                   || text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char ch)
    {
        if (pos_ >= text_.size() || text_[pos_] != ch)
            fail(std::string("expected '") + ch + "'");
        ++pos_;
    }

    void literal(const char *word, std::size_t length)
    {
        if (text_.compare(pos_, length, word) != 0)
            fail(std::string("expected '") + word + "'");
        pos_ += length;
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char ch = text_[pos_++];
            if (ch == '"')
                return out;
            if (ch != '\\') {
                out.push_back(ch);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char escape = text_[pos_++];
            switch (escape) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'n': out.push_back('\n'); break;
            case 'r': out.push_back('\r'); break;
            case 't': out.push_back('\t'); break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char hex = text_[pos_++];
                    code <<= 4;
                    if (hex >= '0' && hex <= '9')
                        code |= static_cast<unsigned>(hex - '0');
                    else if (hex >= 'a' && hex <= 'f')
                        code |= static_cast<unsigned>(hex - 'a' + 10);
                    else if (hex >= 'A' && hex <= 'F')
                        code |= static_cast<unsigned>(hex - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // UTF-8 encode the basic-plane code point (the writer
                // never emits surrogate pairs).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xc0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    out.push_back(
                        static_cast<char>(0xe0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                }
                break;
            }
            default:
                fail("unknown escape character");
            }
        }
    }

    Json parseValue()
    {
        skipSpace();
        Json value;
        switch (peek()) {
        case '{': {
            value.type_ = Json::Type::Object;
            expect('{');
            skipSpace();
            if (peek() == '}') {
                expect('}');
                return value;
            }
            for (;;) {
                skipSpace();
                std::string key = parseString();
                skipSpace();
                expect(':');
                value.members_.emplace_back(std::move(key),
                                            parseValue());
                skipSpace();
                if (peek() == ',') {
                    expect(',');
                    continue;
                }
                expect('}');
                return value;
            }
        }
        case '[': {
            value.type_ = Json::Type::Array;
            expect('[');
            skipSpace();
            if (peek() == ']') {
                expect(']');
                return value;
            }
            for (;;) {
                value.items_.push_back(parseValue());
                skipSpace();
                if (peek() == ',') {
                    expect(',');
                    continue;
                }
                expect(']');
                return value;
            }
        }
        case '"':
            value.type_ = Json::Type::String;
            value.text_ = parseString();
            return value;
        case 't':
            literal("true", 4);
            value.type_ = Json::Type::Bool;
            value.bool_ = true;
            return value;
        case 'f':
            literal("false", 5);
            value.type_ = Json::Type::Bool;
            value.bool_ = false;
            return value;
        case 'n':
            literal("null", 4);
            value.type_ = Json::Type::Null;
            return value;
        default: {
            const std::size_t start = pos_;
            if (peek() == '-')
                ++pos_;
            while (pos_ < text_.size()
                   && (std::isdigit(
                           static_cast<unsigned char>(text_[pos_]))
                       || text_[pos_] == '.' || text_[pos_] == 'e'
                       || text_[pos_] == 'E' || text_[pos_] == '+'
                       || text_[pos_] == '-')) {
                ++pos_;
            }
            if (pos_ == start)
                fail("unexpected character");
            value.type_ = Json::Type::Number;
            value.text_ = text_.substr(start, pos_ - start);
            char *end = nullptr;
            value.number_ = std::strtod(value.text_.c_str(), &end);
            if (end != value.text_.c_str() + value.text_.size())
                fail("malformed number");
            return value;
        }
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

Json
Json::parse(const std::string &text)
{
    return JsonParser(text).document();
}

// --- JsonWriter -----------------------------------------------------

std::string
JsonWriter::quote(const std::string &text)
{
    std::string out = "\"";
    for (const char ch : text) {
        switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(ch)));
                out += buffer;
            } else {
                out.push_back(ch);
            }
        }
    }
    out.push_back('"');
    return out;
}

void
JsonWriter::comma()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return; // value belongs to the key already emitted
    }
    if (!scopes_.empty()) {
        if (scopes_.back())
            out_ += ",";
        scopes_.back() = true;
        if (style_ == Style::Pretty) {
            out_ += "\n";
            indent();
        }
    }
}

void
JsonWriter::indent()
{
    out_.append(scopes_.size() * 2, ' ');
}

void
JsonWriter::beginObject()
{
    comma();
    out_ += "{";
    scopes_.push_back(false);
}

void
JsonWriter::endObject()
{
    assert(!scopes_.empty());
    const bool had_members = scopes_.back();
    scopes_.pop_back();
    if (had_members && style_ == Style::Pretty) {
        out_ += "\n";
        indent();
    }
    out_ += "}";
}

void
JsonWriter::beginArray()
{
    comma();
    out_ += "[";
    scopes_.push_back(false);
}

void
JsonWriter::endArray()
{
    assert(!scopes_.empty());
    const bool had_items = scopes_.back();
    scopes_.pop_back();
    if (had_items && style_ == Style::Pretty) {
        out_ += "\n";
        indent();
    }
    out_ += "]";
}

void
JsonWriter::key(const std::string &name)
{
    assert(!pendingKey_);
    comma();
    out_ += quote(name);
    out_ += style_ == Style::Pretty ? ": " : ":";
    pendingKey_ = true;
}

void
JsonWriter::value(const std::string &text)
{
    comma();
    out_ += quote(text);
}

void
JsonWriter::value(const char *text)
{
    value(std::string(text));
}

void
JsonWriter::value(std::uint64_t number)
{
    comma();
    out_ += std::to_string(number);
}

void
JsonWriter::value(double number)
{
    comma();
    if (!std::isfinite(number)) {
        // JSON has no Infinity/NaN literal; the formatted text of the
        // owning cell still carries the exact rendering.
        out_ += "null";
        return;
    }
    char buffer[64];
    // %.17g round-trips every double; trim to the shortest exact form
    // by preferring %g at increasing precision.
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buffer, sizeof(buffer), "%.*g", precision,
                      number);
        if (std::strtod(buffer, nullptr) == number)
            break;
    }
    out_ += buffer;
}

void
JsonWriter::value(bool flag)
{
    comma();
    out_ += flag ? "true" : "false";
}

void
JsonWriter::nullValue()
{
    comma();
    out_ += "null";
}

void
JsonWriter::rawNumber(const std::string &text)
{
    comma();
    out_ += text;
}

void
writeJson(JsonWriter &writer, const Json &value)
{
    switch (value.type()) {
    case Json::Type::Null:
        writer.nullValue();
        break;
    case Json::Type::Bool:
        writer.value(value.asBool());
        break;
    case Json::Type::Number:
        writer.rawNumber(value.numberText());
        break;
    case Json::Type::String:
        writer.value(value.asString());
        break;
    case Json::Type::Array:
        writer.beginArray();
        for (const Json &item : value.items())
            writeJson(writer, item);
        writer.endArray();
        break;
    case Json::Type::Object:
        writer.beginObject();
        for (const auto &[key, member] : value.members()) {
            writer.key(key);
            writeJson(writer, member);
        }
        writer.endObject();
        break;
    }
}

std::string
toCompactJson(const Json &value)
{
    JsonWriter writer(JsonWriter::Style::Compact);
    writeJson(writer, value);
    return writer.str();
}

std::string
toPrettyJson(const Json &value)
{
    JsonWriter writer;
    writeJson(writer, value);
    return writer.str();
}

} // namespace util
} // namespace vlp
