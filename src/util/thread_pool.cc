/**
 * @file
 * Thread pool implementation.
 */

#include "util/thread_pool.h"

#include <cassert>
#include <utility>

namespace vlp {
namespace util {

ThreadPool::ThreadPool(unsigned threads)
{
    assert(threads >= 1);
    if (threads < 1)
        threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    assert(task);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    workAvailable_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock,
                  [this] { return queue_.empty() && inFlight_ == 0; });
}

unsigned
ThreadPool::defaultThreadCount()
{
    const unsigned reported = std::thread::hardware_concurrency();
    return reported == 0 ? 1 : reported;
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        workAvailable_.wait(
            lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            // stopping_ && empty: drain complete, shut down.
            return;
        }
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        ++inFlight_;
        lock.unlock();
        task();
        lock.lock();
        --inFlight_;
        if (queue_.empty() && inFlight_ == 0)
            allDone_.notify_all();
    }
}

} // namespace util
} // namespace vlp
