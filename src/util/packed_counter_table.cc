/**
 * @file
 * PackedCounterTable implementation.
 */

#include "util/packed_counter_table.h"

#include "util/logging.h"

namespace vlp {
namespace util {

namespace {

/** log2 of @p bits rounded up to the next power of two (bits 1..8). */
unsigned
slotBitsLogFor(unsigned bits)
{
    if (bits <= 1)
        return 0;
    if (bits <= 2)
        return 1;
    if (bits <= 4)
        return 2;
    return 3;
}

} // anonymous namespace

PackedCounterTable::PackedCounterTable(std::size_t size, unsigned bits,
                                       int initial)
    : size_(size),
      bits_(bits),
      slotBitsLog_(slotBitsLogFor(bits)),
      slotsPerWordLog_(6 - slotBitsLog_),
      slotIndexMask_((std::size_t{1} << slotsPerWordLog_) - 1),
      maxValue_((std::uint64_t{1} << bits) - 1),
      threshold_(std::uint64_t{1} << (bits - 1))
{
    if (bits < 1 || bits > 8)
        fatal("packed counter width must be 1..8 bits");
    const std::size_t words =
        (size + slotIndexMask_) >> slotsPerWordLog_;
    words_.resize(words);
    fill(initial < 0 ? static_cast<unsigned>(threshold_ - 1)
                     : static_cast<unsigned>(initial));
}

void
PackedCounterTable::fill(unsigned value)
{
    if (value > maxValue_)
        fatal("packed counter fill value exceeds the counter range");
    // Replicate the value across every slot of one word, then blast it.
    std::uint64_t pattern = 0;
    const unsigned slot_bits = 1u << slotBitsLog_;
    for (unsigned shift = 0; shift < 64; shift += slot_bits)
        pattern |= static_cast<std::uint64_t>(value) << shift;
    for (std::uint64_t &word : words_)
        word = pattern;
}

} // namespace util
} // namespace vlp
