/**
 * @file
 * Statistics helper implementations.
 */

#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace vlp {
namespace util {

double
percent(std::uint64_t numer, std::uint64_t denom)
{
    if (denom == 0)
        return 0.0;
    return 100.0 * static_cast<double>(numer) / static_cast<double>(denom);
}

std::string
formatDouble(double value, int decimals)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
    return buffer;
}

std::string
formatCount(std::uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string result;
    int position = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (position != 0 && position % 3 == 0)
            result.push_back(',');
        result.push_back(*it);
        ++position;
    }
    std::reverse(result.begin(), result.end());
    return result;
}

std::string
formatScaled(std::uint64_t value)
{
    // Mirror the paper's Table 1 style: two significant decimals below
    // 10 units, one from 10 up ("2.27 M", "17.6 M", "91.4 K").
    if (value >= 1000000)
        return formatDouble(value / 1.0e6, value >= 10000000 ? 1 : 2)
             + " M";
    if (value >= 1000)
        return formatDouble(value / 1.0e3, value >= 10000 ? 1 : 2)
             + " K";
    return std::to_string(value);
}

void
RunningStat::add(double sample)
{
    if (count_ == 0) {
        min_ = sample;
        max_ = sample;
    } else {
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }
    sum_ += sample;
    ++count_;
}

double
RunningStat::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

Histogram::Histogram(std::size_t buckets)
    : counts_(buckets, 0)
{
    assert(buckets >= 1);
}

void
Histogram::add(std::size_t value, std::uint64_t weight)
{
    if (value >= counts_.size())
        value = counts_.size() - 1;
    counts_[value] += weight;
    total_ += weight;
}

std::uint64_t
Histogram::bucket(std::size_t value) const
{
    assert(value < counts_.size());
    return counts_[value];
}

std::size_t
Histogram::argMax() const
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < counts_.size(); ++i) {
        if (counts_[i] > counts_[best])
            best = i;
    }
    return best;
}

std::string
Histogram::toString() const
{
    std::ostringstream out;
    bool first = true;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        if (!first)
            out << ' ';
        out << i << ':' << counts_[i];
        first = false;
    }
    return out.str();
}

} // namespace util
} // namespace vlp
