/**
 * @file
 * Saturating up/down counters.
 *
 * The paper's conditional predictor tables are arrays of 2-bit saturating
 * up/down counters: incremented when the branch is taken, decremented when
 * not taken, predicting taken when the value is >= 2 (Section 3.1).
 */

#ifndef VLPSIM_UTIL_SATURATING_COUNTER_H
#define VLPSIM_UTIL_SATURATING_COUNTER_H

#include <cassert>
#include <cstdint>

namespace vlp {
namespace util {

/**
 * An n-bit saturating up/down counter.
 *
 * The counter saturates at 0 and 2^bits - 1. The taken threshold is the
 * midpoint 2^(bits-1), so for the 2-bit counters used throughout the
 * paper a value >= 2 predicts taken.
 */
class SaturatingCounter
{
  public:
    /**
     * @param bits    counter width in bits (1..8)
     * @param initial initial counter value; defaults to the weakly
     *                not-taken state (midpoint - 1)
     */
    explicit SaturatingCounter(unsigned bits = 2, int initial = -1)
        : maxValue_((1u << bits) - 1),
          threshold_(1u << (bits - 1)),
          value_(initial < 0 ? threshold_ - 1
                             : static_cast<unsigned>(initial))
    {
        assert(bits >= 1 && bits <= 8);
        assert(value_ <= maxValue_);
    }

    /** Increment, saturating at the maximum value. */
    void
    increment()
    {
        if (value_ < maxValue_)
            ++value_;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** Update toward @p taken (increment if taken, else decrement). */
    void
    update(bool taken)
    {
        if (taken)
            increment();
        else
            decrement();
    }

    /** Predicted direction: taken iff the value is at or above midpoint. */
    bool predictTaken() const { return value_ >= threshold_; }

    /**
     * Confidence in the current prediction: distance from the decision
     * boundary, 0 (weak) .. threshold-? For 2-bit counters this is 0 for
     * the weak states and 1 for the strong states.
     */
    unsigned
    confidence() const
    {
        return predictTaken() ? value_ - threshold_
                              : threshold_ - 1 - value_;
    }

    /** Raw counter value. */
    unsigned value() const { return value_; }

    /** Force the raw counter value (used by tests and checkpointing). */
    void
    set(unsigned value)
    {
        assert(value <= maxValue_);
        value_ = value;
    }

    /** Maximum (saturated) value. */
    unsigned maxValue() const { return maxValue_; }

  private:
    unsigned maxValue_;
    unsigned threshold_;
    unsigned value_;
};

} // namespace util
} // namespace vlp

#endif // VLPSIM_UTIL_SATURATING_COUNTER_H
