/**
 * @file
 * Minimal gem5-style status/error reporting and environment helpers.
 *
 * fatal() is for user-caused conditions (bad configuration, bad trace
 * file): it throws a std::runtime_error so callers and tests can catch
 * it. panic() is for internal invariant violations and aborts.
 */

#ifndef VLPSIM_UTIL_LOGGING_H
#define VLPSIM_UTIL_LOGGING_H

#include <stdexcept>
#include <string>

namespace vlp {
namespace util {

/**
 * An I/O failure that is worth retrying: an interrupted read, a
 * momentarily unavailable file, an injected transient fault. Callers
 * that replay whole units of work (the external-trace suite runner)
 * catch this separately from std::runtime_error and retry with
 * backoff; anything else is treated as permanent.
 */
class TransientError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Print an informational message to stderr ("info: ..."). */
void inform(const std::string &message);

/** Print a warning to stderr ("warn: ..."). */
void warn(const std::string &message);

/**
 * Report an unrecoverable user error.
 * @throws std::runtime_error always
 */
[[noreturn]] void fatal(const std::string &message);

/** Abort on an internal invariant violation (a simulator bug). */
[[noreturn]] void panic(const std::string &message);

/**
 * Read the global workload scale factor from the VLPSIM_SCALE
 * environment variable. Defaults to 1.0; values are clamped to
 * [0.001, 1000]. All synthetic dynamic trace lengths are multiplied by
 * this factor, so the full experiment suite can be run quickly
 * (VLPSIM_SCALE=0.1) or at near-paper lengths (VLPSIM_SCALE=20).
 */
double workloadScale();

} // namespace util
} // namespace vlp

#endif // VLPSIM_UTIL_LOGGING_H
