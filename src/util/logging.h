/**
 * @file
 * Minimal gem5-style status/error reporting and environment helpers.
 *
 * fatal() is for user-caused conditions (bad configuration, bad trace
 * file): it throws a std::runtime_error so callers and tests can catch
 * it. panic() is for internal invariant violations and aborts.
 *
 * The message functions (debug/inform/warn/error) share one
 * mutex-guarded writer, so lines from concurrent workers and daemon
 * request handlers never interleave mid-line. A severity threshold
 * (setLogLevel, `--log-level`, or VLPSIM_LOG_LEVEL) filters output,
 * and setLogTimestamps(true) prefixes every line with a monotonic
 * seconds-since-start stamp — the serve daemon turns this on so
 * interleaved per-request logs stay attributable and ordered.
 */

#ifndef VLPSIM_UTIL_LOGGING_H
#define VLPSIM_UTIL_LOGGING_H

#include <functional>
#include <stdexcept>
#include <string>

namespace vlp {
namespace util {

/**
 * An I/O failure that is worth retrying: an interrupted read, a
 * momentarily unavailable file, an injected transient fault. Callers
 * that replay whole units of work (the external-trace suite runner)
 * catch this separately from std::runtime_error and retry with
 * backoff; anything else is treated as permanent.
 */
class TransientError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Message severities, in increasing order. */
enum class LogLevel { Debug = 0, Info, Warn, Error };

/**
 * Parse "debug" / "info" / "warn" / "error" (the `--log-level`
 * spellings).
 * @throws std::runtime_error on anything else
 */
LogLevel parseLogLevel(const std::string &text);

/**
 * Drop messages below @p level. The default is Info (debug messages
 * are suppressed), overridable at startup with VLPSIM_LOG_LEVEL.
 */
void setLogLevel(LogLevel level);

/** The current severity threshold. */
LogLevel logLevel();

/**
 * Prefix every line with "[<seconds>] " measured on the monotonic
 * clock since the first log call. Off by default so one-shot CLI
 * output stays byte-stable; the serve daemon enables it.
 */
void setLogTimestamps(bool enabled);

/**
 * Redirect log lines (the fully formatted text, no trailing newline)
 * to @p sink instead of stderr; pass an empty function to restore
 * stderr. Tests use this to capture and assert on log output.
 */
void setLogSink(std::function<void(const std::string &)> sink);

/** Print a debug-level message ("debug: ..."; dropped by default). */
void debug(const std::string &message);

/** Print an informational message to stderr ("info: ..."). */
void inform(const std::string &message);

/** Print a warning to stderr ("warn: ..."). */
void warn(const std::string &message);

/** Print an error-level message to stderr ("error: ..."). */
void error(const std::string &message);

/**
 * Report an unrecoverable user error.
 * @throws std::runtime_error always
 */
[[noreturn]] void fatal(const std::string &message);

/** Abort on an internal invariant violation (a simulator bug). */
[[noreturn]] void panic(const std::string &message);

/**
 * Read the global workload scale factor from the VLPSIM_SCALE
 * environment variable. Defaults to 1.0; values are clamped to
 * [0.001, 1000]. All synthetic dynamic trace lengths are multiplied by
 * this factor, so the full experiment suite can be run quickly
 * (VLPSIM_SCALE=0.1) or at near-paper lengths (VLPSIM_SCALE=20).
 */
double workloadScale();

} // namespace util
} // namespace vlp

#endif // VLPSIM_UTIL_LOGGING_H
