/**
 * @file
 * Densely packed n-bit saturating-counter tables.
 *
 * The paper's conditional predictor tables are arrays of 2-bit
 * saturating counters, but simulating one counter per
 * util::SaturatingCounter object costs ~12 bytes of randomly-accessed
 * state per entry — a 14-bit table balloons from its architectural
 * 4 KiB to ~192 KiB, and the 32 private step-1 tables to ~6 MB, far
 * past L2. PackedCounterTable stores the counters at (near) their
 * hardware density inside std::uint64_t words, so the same 14-bit
 * 2-bit-counter table occupies exactly 4 KiB and the whole step-1 bank
 * fits in 128 KiB.
 *
 * Semantics are bit-identical to util::SaturatingCounter: counters
 * saturate at 0 and 2^bits - 1, predict taken at or above the midpoint
 * 2^(bits - 1), and initialize to the weakly not-taken state unless an
 * explicit initial value is given (test_util property-checks the two
 * against each other across widths).
 *
 * Layout: each counter lives in a slot of bits rounded up to the next
 * power of two (1, 2, 4, or 8 bits), so a slot never straddles a word
 * and indexing is shift/mask only. For the 2-bit counters used
 * throughout the paper the slots are exactly dense. sizeBytes()
 * reports the architectural footprint (size * bits / 8) — the number
 * the paper's hardware budgets are accounted in — independent of any
 * slot padding.
 */

#ifndef VLPSIM_UTIL_PACKED_COUNTER_TABLE_H
#define VLPSIM_UTIL_PACKED_COUNTER_TABLE_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace vlp {
namespace util {

/** A fixed-size table of n-bit saturating up/down counters. */
class PackedCounterTable
{
  public:
    /**
     * @param size    number of counters
     * @param bits    counter width in bits (1..8)
     * @param initial initial value of every counter; defaults to the
     *                weakly not-taken state (midpoint - 1)
     */
    explicit PackedCounterTable(std::size_t size, unsigned bits = 2,
                                int initial = -1);

    /** Number of counters. */
    std::size_t size() const { return size_; }

    /** Counter width in bits. */
    unsigned bits() const { return bits_; }

    /** Maximum (saturated) counter value, 2^bits - 1. */
    unsigned maxValue() const { return static_cast<unsigned>(maxValue_); }

    /** Taken threshold (the midpoint 2^(bits - 1)). */
    unsigned threshold() const { return static_cast<unsigned>(threshold_); }

    /**
     * Architectural table footprint in bytes: size * bits / 8 (rounded
     * up). This is the hardware budget the paper's tables are costed
     * in, not the (possibly slot-padded) simulation footprint.
     */
    std::size_t sizeBytes() const { return (size_ * bits_ + 7) / 8; }

    /** Raw value of counter @p index. */
    unsigned
    value(std::size_t index) const
    {
        assert(index < size_);
        return static_cast<unsigned>(
            (words_[index >> slotsPerWordLog_] >> shiftFor(index))
            & maxValue_);
    }

    /** Predicted direction of counter @p index: value >= midpoint. */
    bool
    predictTaken(std::size_t index) const
    {
        return (words_[index >> slotsPerWordLog_]
                >> (shiftFor(index) + bits_ - 1))
             & 1;
    }

    /**
     * Confidence of counter @p index: distance from the decision
     * boundary (0 = weak), as SaturatingCounter::confidence().
     */
    unsigned
    confidence(std::size_t index) const
    {
        const std::uint64_t field = value(index);
        return static_cast<unsigned>(field >= threshold_
                                         ? field - threshold_
                                         : threshold_ - 1 - field);
    }

    /** Update counter @p index toward @p taken, saturating. */
    void
    update(std::size_t index, bool taken)
    {
        assert(index < size_);
        std::uint64_t &word = words_[index >> slotsPerWordLog_];
        const unsigned shift = shiftFor(index);
        const std::uint64_t field = (word >> shift) & maxValue_;
        const std::uint64_t next = taken
            ? field + (field < maxValue_ ? 1 : 0)
            : field - (field > 0 ? 1 : 0);
        word ^= (field ^ next) << shift;
    }

    /**
     * Fused predict + update: returns the prediction for counter
     * @p index (value >= midpoint, as predictTaken()) and then
     * updates it toward @p taken, touching the word once. This is
     * the step-1 profiling hot path.
     */
    bool
    predictThenUpdate(std::size_t index, bool taken)
    {
        assert(index < size_);
        std::uint64_t &word = words_[index >> slotsPerWordLog_];
        const unsigned shift = shiftFor(index);
        const std::uint64_t field = (word >> shift) & maxValue_;
        const std::uint64_t next = taken
            ? field + (field < maxValue_ ? 1 : 0)
            : field - (field > 0 ? 1 : 0);
        word ^= (field ^ next) << shift;
        return field >= threshold_;
    }

    /** Increment counter @p index, saturating at the maximum. */
    void increment(std::size_t index) { update(index, true); }

    /** Decrement counter @p index, saturating at zero. */
    void decrement(std::size_t index) { update(index, false); }

    /** Force the raw value of counter @p index. */
    void
    set(std::size_t index, unsigned value)
    {
        assert(index < size_);
        assert(value <= maxValue_);
        std::uint64_t &word = words_[index >> slotsPerWordLog_];
        const unsigned shift = shiftFor(index);
        word = (word & ~(maxValue_ << shift))
             | (static_cast<std::uint64_t>(value) << shift);
    }

    /** Reset every counter to @p value. */
    void fill(unsigned value);

    /**
     * Raw word storage, laid out as the class comment describes
     * (power-of-two slots, low slot first). Exposed for vectorized
     * kernels that gather/scatter whole words; they must preserve the
     * same per-slot arithmetic as update().
     */
    std::uint64_t *wordData() { return words_.data(); }

  private:
    /** Bit position of slot @p index within its word. */
    unsigned
    shiftFor(std::size_t index) const
    {
        return static_cast<unsigned>(index & slotIndexMask_)
            << slotBitsLog_;
    }

    std::size_t size_;
    unsigned bits_;
    /** log2 of the (power-of-two) slot width. */
    unsigned slotBitsLog_;
    /** log2 of the slots per 64-bit word. */
    unsigned slotsPerWordLog_;
    /** Mask selecting the slot number within a word. */
    std::size_t slotIndexMask_;
    std::uint64_t maxValue_;
    std::uint64_t threshold_;
    std::vector<std::uint64_t> words_;
};

} // namespace util
} // namespace vlp

#endif // VLPSIM_UTIL_PACKED_COUNTER_TABLE_H
