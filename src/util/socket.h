/**
 * @file
 * Minimal stream-socket primitives for the serve subsystem.
 *
 * Wraps POSIX sockets just enough for a newline-delimited JSON
 * protocol: an Endpoint that is either a loopback TCP address
 * ("127.0.0.1:7070", ":0" for an ephemeral port) or a Unix-domain
 * socket path (anything containing a '/'), a ListenSocket whose
 * accept() can be woken by an auxiliary file descriptor (the server's
 * shutdown pipe), and a Socket with sendAll() plus a buffered
 * LineReader. All failures surface as std::runtime_error with errno
 * text; reads interrupted by EINTR are retried.
 */

#ifndef VLPSIM_UTIL_SOCKET_H
#define VLPSIM_UTIL_SOCKET_H

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace vlp {
namespace util {
namespace net {

/**
 * A receive timeout (setRecvTimeout()) expired with no data from the
 * peer. Distinct from the generic socket error so callers can exit
 * with a dedicated status ("the daemon is wedged") instead of the
 * catch-all failure path.
 */
class TimeoutError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** A parsed listen/connect address: TCP host:port or Unix path. */
struct Endpoint
{
    enum class Kind { Tcp, Unix };

    Kind kind = Kind::Tcp;
    /** TCP host; empty means loopback (127.0.0.1). */
    std::string host;
    /** TCP port; 0 asks the kernel for an ephemeral port. */
    std::uint16_t port = 0;
    /** Unix-domain socket path. */
    std::string path;

    /**
     * Parse an endpoint string: any text containing '/' is a Unix
     * socket path; otherwise "host:port", ":port", or a bare port
     * number (loopback host).
     * @throws std::runtime_error on a malformed port
     */
    static Endpoint parse(const std::string &text);

    /** Canonical display form ("127.0.0.1:7070", "/tmp/v.sock"). */
    std::string describe() const;
};

/** RAII wrapper over one connected stream socket. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket();

    Socket(Socket &&other) noexcept;
    Socket &operator=(Socket &&other) noexcept;
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Connect to @p endpoint.
     *  @throws std::runtime_error when the connection fails */
    static Socket connect(const Endpoint &endpoint);

    /**
     * Write all of @p data (retrying partial writes and EINTR).
     * @throws std::runtime_error on a closed or failed peer, or when
     *         a send timeout (setSendTimeout()) expires with the peer
     *         not draining its receive buffer
     */
    void sendAll(const std::string &data);

    /**
     * Bound every subsequent send: if the peer stops reading and the
     * socket buffer stays full for @p ms milliseconds, sendAll()
     * throws instead of blocking forever (a wedged client must not
     * wedge a server thread). 0 restores unbounded blocking sends.
     */
    void setSendTimeout(unsigned ms);

    /**
     * Bound every subsequent receive: if the peer sends nothing for
     * @p ms milliseconds, receive() throws TimeoutError instead of
     * blocking forever (a wedged daemon must not wedge its clients).
     * 0 restores unbounded blocking receives.
     */
    void setRecvTimeout(unsigned ms);

    /**
     * Read up to @p capacity bytes. 0 = orderly peer shutdown.
     * @throws TimeoutError when a receive timeout (setRecvTimeout())
     *         expires with no data
     * @throws std::runtime_error on socket errors
     */
    std::size_t receive(char *buffer, std::size_t capacity);

    /** Close now (idempotent; the destructor also closes). */
    void close();

  private:
    int fd_ = -1;
};

/** Buffered newline-framed reader over a Socket. */
class LineReader
{
  public:
    /** Default cap on one line — matches the daemon's default
     *  in-flight byte budget; far above any legitimate frame. */
    static constexpr std::size_t defaultMaxLineBytes = 64u << 20;

    explicit LineReader(Socket &socket,
                        std::size_t max_line_bytes = defaultMaxLineBytes)
        : socket_(socket), maxLineBytes_(max_line_bytes)
    {}

    /**
     * Read one '\n'-terminated line (terminator stripped). Returns
     * false on orderly end-of-stream with no buffered partial line.
     * @throws std::runtime_error on socket errors, or when a peer
     *         streams more than the line cap without a newline (a
     *         runaway line must not exhaust memory)
     */
    bool readLine(std::string &line);

  private:
    Socket &socket_;
    std::string buffer_;
    std::size_t scanned_ = 0;
    std::size_t maxLineBytes_;
};

/** A bound, listening server socket. */
class ListenSocket
{
  public:
    /**
     * Bind and listen on @p endpoint. TCP sockets get SO_REUSEADDR;
     * a Unix path that already exists as a socket is replaced (a
     * stale file from a crashed daemon would otherwise block every
     * restart).
     * @throws std::runtime_error when binding fails
     */
    static ListenSocket listen(const Endpoint &endpoint);

    ~ListenSocket();
    ListenSocket(ListenSocket &&other) noexcept;
    ListenSocket &operator=(ListenSocket &&) = delete;
    ListenSocket(const ListenSocket &) = delete;
    ListenSocket &operator=(const ListenSocket &) = delete;

    /**
     * Accept one connection, blocking until a peer arrives or
     * @p wake_fd becomes readable (the server's shutdown pipe).
     * @return the connection, or nullopt when woken via @p wake_fd
     * @throws std::runtime_error on accept failures
     */
    std::optional<Socket> accept(int wake_fd);

    /** The bound endpoint with the kernel-assigned port filled in. */
    const Endpoint &local() const { return local_; }

  private:
    ListenSocket(int fd, Endpoint local)
        : fd_(fd), local_(std::move(local))
    {}

    int fd_ = -1;
    Endpoint local_;
};

} // namespace net
} // namespace util
} // namespace vlp

#endif // VLPSIM_UTIL_SOCKET_H
