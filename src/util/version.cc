/**
 * @file
 * Build/version identification implementation.
 */

#include "util/version.h"

#include "util/build_info.h"

namespace vlp {
namespace util {

const std::string &
buildVersion()
{
    static const std::string version = VLPSIM_BUILD_VERSION;
    return version;
}

} // namespace util
} // namespace vlp
