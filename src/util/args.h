/**
 * @file
 * Small command-line flag parser shared by every bench binary and
 * every `vlpsim` subcommand.
 *
 * One ArgParser instance describes one program (or subcommand): its
 * flags, its positional arguments, and one-line help for each. Flags
 * accept both the space-separated form (`--jobs 4`) and the inline
 * form (`--jobs=4`). `--help` (and `-h`) print the full usage text to
 * stdout and exit 0; malformed or unknown arguments print an error to
 * stderr and exit 2, matching the historical bench behavior.
 *
 * Programs that must forward unrecognized flags to another parser
 * (bench_throughput hands `--benchmark_*` flags to google-benchmark)
 * call allowExtra() and read the leftovers back from extra().
 */

#ifndef VLPSIM_UTIL_ARGS_H
#define VLPSIM_UTIL_ARGS_H

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

namespace vlp {
namespace util {

/** Declarative command-line parser for one program or subcommand. */
class ArgParser
{
  public:
    /**
     * @param program  name shown in the usage line
     *                 ("bench_table2", "vlpsim suite")
     * @param summary  one-line description shown under the usage line
     */
    ArgParser(std::string program, std::string summary);

    /**
     * Register a flag taking a value; @p handler receives the raw
     * value text and may throw std::runtime_error to reject it.
     */
    void addOption(const std::string &flag,
                   const std::string &valueName,
                   const std::string &help,
                   std::function<void(const std::string &)> handler);

    /** Flag with a string value, stored verbatim. */
    void addString(const std::string &flag,
                   const std::string &valueName,
                   const std::string &help, std::string *out);

    /** Flag with an unsigned decimal value, bounded by @p max. */
    void addUint(const std::string &flag, const std::string &valueName,
                 const std::string &help, std::uint64_t *out,
                 std::uint64_t max =
                     std::numeric_limits<std::uint64_t>::max());

    /** Valueless switch; sets @p out to true when present. */
    void addSwitch(const std::string &flag, const std::string &help,
                   bool *out);

    /**
     * Declare a positional argument for the usage text. Required
     * positionals are enforced by count; optional ones are shown in
     * brackets.
     */
    void addPositional(const std::string &name,
                       const std::string &help, bool required = true);

    /** Permit a variable tail of positionals after the declared
     *  ones (e.g. a trace file list). */
    void allowExtraPositionals(const std::string &name,
                               const std::string &help);

    /**
     * Collect unknown `--flags` into extra() instead of rejecting
     * them (their values stay attached only in `--flag=value` form,
     * so pass-through consumers must accept that form).
     */
    void allowExtra();

    /**
     * Parse @p argv starting at @p begin (1 for a program, 2 for a
     * subcommand). Prints usage and exits 0 on --help; prints an
     * error and exits 2 on malformed input.
     * @return the positional arguments in order
     */
    std::vector<std::string> parse(int argc, char **argv,
                                   int begin = 1);

    /** Unknown flags kept by allowExtra(), in argv order. */
    const std::vector<std::string> &extra() const { return extra_; }

    /** Write the full usage/help text. */
    void printUsage(std::ostream &out) const;

    /** Print @p message as an error plus a usage hint, then exit 2. */
    [[noreturn]] void fail(const std::string &message) const;

  private:
    struct Flag
    {
        std::string name;      // "--jobs"
        std::string valueName; // "N"; empty for switches
        std::string help;
        std::function<void(const std::string &)> handler;
        bool takesValue = false;
    };

    struct Positional
    {
        std::string name;
        std::string help;
        bool required = false;
    };

    const Flag *findFlag(const std::string &name) const;

    std::string program_;
    std::string summary_;
    std::vector<Flag> flags_;
    std::vector<Positional> positionals_;
    bool variadicTail_ = false;
    bool passUnknown_ = false;
    std::vector<std::string> extra_;
};

} // namespace util
} // namespace vlp

#endif // VLPSIM_UTIL_ARGS_H
