/**
 * @file
 * FNV-1a content checksums, shared by the binary trace format (torn /
 * bit-flipped file detection) and the artifact store (entry integrity
 * and cache-key hashing).
 *
 * FNV-1a is not cryptographic; it detects accidental corruption —
 * truncation, bit flips, torn writes — which is the only threat model
 * a local result cache has.
 */

#ifndef VLPSIM_UTIL_CHECKSUM_H
#define VLPSIM_UTIL_CHECKSUM_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace vlp {
namespace util {

/** Incremental 64-bit FNV-1a hasher. */
class Fnv1a
{
  public:
    static constexpr std::uint64_t offsetBasis =
        14695981039346656037ull;
    static constexpr std::uint64_t prime = 1099511628211ull;

    /** @param seed starting state; vary it to derive independent
     *  hashes of the same bytes (the store's 128-bit entry names). */
    explicit Fnv1a(std::uint64_t seed = offsetBasis) : state_(seed) {}

    /** Mix @p size bytes at @p data into the running hash. */
    void update(const void *data, std::size_t size);

    /** Current hash of everything fed so far. */
    std::uint64_t digest() const { return state_; }

    /** Reset to @p seed as if freshly constructed. */
    void reset(std::uint64_t seed = offsetBasis) { state_ = seed; }

  private:
    std::uint64_t state_;
};

/** One-shot hash of a byte range. */
std::uint64_t fnv1a(const void *data, std::size_t size,
                    std::uint64_t seed = Fnv1a::offsetBasis);

/** One-shot hash of a string's bytes. */
std::uint64_t fnv1a(const std::string &text,
                    std::uint64_t seed = Fnv1a::offsetBasis);

} // namespace util
} // namespace vlp

#endif // VLPSIM_UTIL_CHECKSUM_H
