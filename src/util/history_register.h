/**
 * @file
 * Shift-register style branch history registers.
 *
 * Two flavours are provided:
 *  - BitHistoryRegister: the classic k-bit pattern history register of
 *    two-level predictors (taken/not-taken outcomes shifted in one bit at
 *    a time), also used by the Chang-Hao-Patt pattern-based target cache.
 *  - ChunkHistoryRegister: a register into which q bits of each branch
 *    target address are shifted (Nair-style path history), used by the
 *    Chang-Hao-Patt path-based target cache.
 */

#ifndef VLPSIM_UTIL_HISTORY_REGISTER_H
#define VLPSIM_UTIL_HISTORY_REGISTER_H

#include <cassert>
#include <cstdint>

#include "util/bits.h"

namespace vlp {
namespace util {

/** A k-bit shift register recording one outcome bit per branch. */
class BitHistoryRegister
{
  public:
    /** @param width register width in bits, 1..64 */
    explicit BitHistoryRegister(unsigned width)
        : width_(width), value_(0)
    {
        assert(width >= 1 && width <= 64);
    }

    /** Shift the outcome of the most recent branch into the low bit. */
    void
    push(bool taken)
    {
        value_ = truncate((value_ << 1) | (taken ? 1 : 0), width_);
    }

    /** Current history pattern. */
    std::uint64_t value() const { return value_; }

    /** Register width in bits. */
    unsigned width() const { return width_; }

    /** Clear all recorded history. */
    void clear() { value_ = 0; }

    /** Restore a previously saved pattern (checkpoint/rollback). */
    void
    set(std::uint64_t value)
    {
        value_ = truncate(value, width_);
    }

  private:
    unsigned width_;
    std::uint64_t value_;
};

/**
 * A k-bit shift register recording q bits of each branch target address
 * (Nair's path history encoding). The register can represent the path,
 * albeit imperfectly: only floor(k/q) branches are captured.
 */
class ChunkHistoryRegister
{
  public:
    /**
     * @param width     register width in bits, 1..64
     * @param chunkBits bits of each target address shifted in, 1..width
     */
    ChunkHistoryRegister(unsigned width, unsigned chunkBits)
        : width_(width), chunkBits_(chunkBits), value_(0)
    {
        assert(width >= 1 && width <= 64);
        assert(chunkBits >= 1 && chunkBits <= width);
    }

    /** Shift the low chunkBits of @p target into the register. */
    void
    push(std::uint64_t target)
    {
        value_ = truncate((value_ << chunkBits_)
                          | truncate(target, chunkBits_), width_);
    }

    /** Current history pattern. */
    std::uint64_t value() const { return value_; }

    /** Register width in bits. */
    unsigned width() const { return width_; }

    /** Bits recorded per target address. */
    unsigned chunkBits() const { return chunkBits_; }

    /** Number of distinct branches representable in the register. */
    unsigned depth() const { return width_ / chunkBits_; }

    /** Clear all recorded history. */
    void clear() { value_ = 0; }

  private:
    unsigned width_;
    unsigned chunkBits_;
    std::uint64_t value_;
};

} // namespace util
} // namespace vlp

#endif // VLPSIM_UTIL_HISTORY_REGISTER_H
