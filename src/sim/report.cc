/**
 * @file
 * Report model and sink implementations.
 */

#include "sim/report.h"

#include <cassert>
#include <ostream>
#include <set>

#include "util/json.h"
#include "util/logging.h"
#include "util/stats.h"
#include "util/table.h"

namespace vlp {
namespace sim {

// --- Cell -----------------------------------------------------------

Cell
Cell::text(std::string value)
{
    Cell cell;
    cell.kind_ = Kind::Text;
    cell.text_ = std::move(value);
    return cell;
}

Cell
Cell::count(std::uint64_t value)
{
    Cell cell;
    cell.kind_ = Kind::Count;
    cell.integer_ = value;
    cell.number_ = static_cast<double>(value);
    return cell;
}

Cell
Cell::scaled(std::uint64_t value)
{
    Cell cell;
    cell.kind_ = Kind::Scaled;
    cell.integer_ = value;
    cell.number_ = static_cast<double>(value);
    return cell;
}

Cell
Cell::real(double value, int decimals)
{
    Cell cell;
    cell.kind_ = Kind::Real;
    cell.number_ = value;
    cell.decimals_ = decimals;
    return cell;
}

Cell
Cell::percent(double value, int decimals)
{
    Cell cell;
    cell.kind_ = Kind::Percent;
    cell.number_ = value;
    cell.decimals_ = decimals;
    return cell;
}

std::string
Cell::ascii() const
{
    switch (kind_) {
    case Kind::Text: return text_;
    case Kind::Count: return std::to_string(integer_);
    case Kind::Scaled: return util::formatScaled(integer_);
    case Kind::Real:
    case Kind::Percent: return util::formatDouble(number_, decimals_);
    }
    return text_;
}

const char *
Cell::kindName() const
{
    switch (kind_) {
    case Kind::Text: return "text";
    case Kind::Count: return "count";
    case Kind::Scaled: return "scaled";
    case Kind::Real: return "real";
    case Kind::Percent: return "percent";
    }
    return "text";
}

// --- Section / Report ----------------------------------------------

Row &
Section::addRow(std::string id, std::vector<Cell> cells)
{
    assert(columns.empty() || cells.size() == columns.size());
    rows.push_back(Row{std::move(id), std::move(cells)});
    return rows.back();
}

Section &
Report::addSection(std::string name)
{
    sections.emplace_back();
    sections.back().name = std::move(name);
    return sections.back();
}

void
Report::addText(std::string name, std::string text)
{
    Section &section = addSection(std::move(name));
    section.caption = std::move(text);
}

void
Report::setMeta(const std::string &key, std::string value)
{
    for (auto &[name, existing] : metadata) {
        if (name == key) {
            existing = std::move(value);
            return;
        }
    }
    metadata.emplace_back(key, std::move(value));
}

void
Report::setMeta(const std::string &key, std::uint64_t value)
{
    setMeta(key, std::to_string(value));
}

const std::string *
Report::meta(const std::string &key) const
{
    for (const auto &[name, value] : metadata) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

ReportFormat
parseReportFormat(const std::string &text)
{
    if (text == "ascii")
        return ReportFormat::Ascii;
    if (text == "csv")
        return ReportFormat::Csv;
    if (text == "json")
        return ReportFormat::Json;
    util::fatal("unknown report format: " + text
                + " (expected ascii, csv, or json)");
}

std::unique_ptr<ReportSink>
makeReportSink(ReportFormat format)
{
    switch (format) {
    case ReportFormat::Ascii:
        return std::make_unique<AsciiReportSink>();
    case ReportFormat::Csv: return std::make_unique<CsvReportSink>();
    case ReportFormat::Json:
        return std::make_unique<JsonReportSink>();
    }
    return std::make_unique<AsciiReportSink>();
}

// --- ASCII sink -----------------------------------------------------

void
AsciiReportSink::write(const Report &report, std::ostream &out)
{
    if (report.banner) {
        // Byte-identical to the historical bench::banner() block.
        const std::string rule(60, '=');
        out << rule << "\n"
            << report.title << "\n"
            << report.configuration << "\n"
            << "(synthetic workloads; compare shapes, not absolute "
               "values — see EXPERIMENTS.md)\n"
            << rule << "\n";
        if (report.scale != 1.0)
            out << "note: VLPSIM_SCALE=" << report.scale << "\n";
    }
    for (const Section &section : report.sections) {
        out << section.caption;
        if (section.isTable()) {
            if (section.layout == Section::Layout::Entries) {
                // The external-suite per-predictor entry lines.
                for (const Row &row : section.rows) {
                    assert(row.cells.size() == 3);
                    out << "    " << row.id << ": "
                        << row.cells[0].ascii() << "% ("
                        << row.cells[1].ascii() << "/"
                        << row.cells[2].ascii() << ")\n";
                }
            } else if (section.layout
                       == Section::Layout::PairedEntries) {
                // Train-vs-test entry lines of the paired suite.
                for (const Row &row : section.rows) {
                    assert(row.cells.size() == 6);
                    out << "    " << row.id << ": train "
                        << row.cells[0].ascii() << "% ("
                        << row.cells[1].ascii() << "/"
                        << row.cells[2].ascii() << ") | test "
                        << row.cells[3].ascii() << "% ("
                        << row.cells[4].ascii() << "/"
                        << row.cells[5].ascii() << ")\n";
                }
            } else {
                std::vector<std::string> headers;
                headers.reserve(section.columns.size());
                for (const Column &column : section.columns)
                    headers.push_back(column.name);
                util::TablePrinter table(std::move(headers));
                for (const Row &row : section.rows) {
                    std::vector<std::string> cells;
                    cells.reserve(row.cells.size());
                    for (const Cell &cell : row.cells)
                        cells.push_back(cell.ascii());
                    table.addRow(std::move(cells));
                }
                table.print(out);
            }
        }
        out << section.footer;
    }
}

// --- CSV sink -------------------------------------------------------

void
CsvReportSink::write(const Report &report, std::ostream &out)
{
    out << "# vlpsim-report v" << reportSchemaVersion << "\n";
    if (!report.title.empty())
        out << "# title: " << report.title << "\n";
    if (!report.configuration.empty())
        out << "# configuration: " << report.configuration << "\n";
    for (const auto &[key, value] : report.metadata)
        out << "# meta " << key << ": " << value << "\n";
    for (const Section &section : report.sections) {
        if (!section.isTable())
            continue; // free text carries no cells
        out << "\n# section: " << section.name << "\n";
        out << "row";
        for (const Column &column : section.columns)
            out << "," << util::csvEscape(column.name);
        out << "\n";
        for (const Row &row : section.rows) {
            out << util::csvEscape(row.id);
            for (const Cell &cell : row.cells) {
                out << ",";
                switch (cell.kind()) {
                case Cell::Kind::Text:
                    out << util::csvEscape(cell.ascii());
                    break;
                case Cell::Kind::Count:
                case Cell::Kind::Scaled:
                    // Raw digits, not the "17.6 M" display form.
                    out << cell.integer();
                    break;
                case Cell::Kind::Real:
                case Cell::Kind::Percent:
                    out << cell.ascii();
                    break;
                }
            }
            out << "\n";
        }
    }
}

// --- JSON sink ------------------------------------------------------

void
JsonReportSink::write(const Report &report, std::ostream &out)
{
    util::JsonWriter writer;
    writer.beginObject();
    writer.member("schema", "vlpsim-report");
    writer.member("version", std::uint64_t{reportSchemaVersion});
    writer.member("title", report.title);
    writer.member("configuration", report.configuration);
    writer.key("metadata");
    writer.beginObject();
    for (const auto &[key, value] : report.metadata)
        writer.member(key, value);
    writer.endObject();
    writer.key("sections");
    writer.beginArray();
    for (const Section &section : report.sections) {
        writer.beginObject();
        writer.member("name", section.name);
        if (!section.isTable()) {
            writer.member("type", "text");
            writer.member("text", section.caption + section.footer);
            writer.endObject();
            continue;
        }
        writer.member("type", "table");
        if (!section.caption.empty())
            writer.member("caption", section.caption);
        if (!section.footer.empty())
            writer.member("footer", section.footer);
        writer.key("columns");
        writer.beginArray();
        for (const Column &column : section.columns)
            writer.value(column.name);
        writer.endArray();
        writer.key("rows");
        writer.beginArray();
        for (const Row &row : section.rows) {
            writer.beginObject();
            writer.member("id", row.id);
            writer.key("cells");
            writer.beginArray();
            for (const Cell &cell : row.cells) {
                writer.beginObject();
                writer.member("kind", cell.kindName());
                writer.key("value");
                switch (cell.kind()) {
                case Cell::Kind::Text:
                    writer.value(cell.ascii());
                    break;
                case Cell::Kind::Count:
                case Cell::Kind::Scaled:
                    writer.value(cell.integer());
                    break;
                case Cell::Kind::Real:
                case Cell::Kind::Percent:
                    writer.value(cell.number());
                    break;
                }
                writer.member("text", cell.ascii());
                writer.endObject();
            }
            writer.endArray();
            writer.endObject();
        }
        writer.endArray();
        writer.endObject();
    }
    writer.endArray();
    writer.endObject();
    out << writer.str() << "\n";
}

// --- Schema validation ----------------------------------------------

namespace {

void
require(std::vector<std::string> &errors, bool condition,
        const std::string &what)
{
    if (!condition)
        errors.push_back(what);
}

void
validateCell(std::vector<std::string> &errors, const util::Json &cell,
             const std::string &where)
{
    if (!cell.isObject()) {
        errors.push_back(where + ": cell is not an object");
        return;
    }
    static const std::set<std::string> kinds = {
        "text", "count", "scaled", "real", "percent"};
    const util::Json *kind = cell.find("kind");
    if (kind == nullptr || !kind->isString()
        || kinds.count(kind->asString()) == 0) {
        errors.push_back(where + ": missing or unknown cell kind");
        return;
    }
    const util::Json *text = cell.find("text");
    require(errors, text != nullptr && text->isString(),
            where + ": cell has no text rendering");
    const util::Json *value = cell.find("value");
    if (value == nullptr) {
        errors.push_back(where + ": cell has no value");
        return;
    }
    const std::string &name = kind->asString();
    if (name == "text") {
        require(errors, value->isString(),
                where + ": text cell value is not a string");
    } else if (name == "count" || name == "scaled") {
        require(errors, value->isNumber(),
                where + ": integer cell value is not a number");
    } else {
        // real/percent: null encodes a non-finite value.
        require(errors, value->isNumber() || value->isNull(),
                where + ": numeric cell value is neither number nor "
                        "null");
    }
}

void
validateSection(std::vector<std::string> &errors,
                const util::Json &section, std::size_t index)
{
    const std::string where = "sections[" + std::to_string(index) + "]";
    if (!section.isObject()) {
        errors.push_back(where + ": not an object");
        return;
    }
    const util::Json *name = section.find("name");
    require(errors, name != nullptr && name->isString(),
            where + ": missing name");
    const util::Json *type = section.find("type");
    if (type == nullptr || !type->isString()) {
        errors.push_back(where + ": missing type");
        return;
    }
    if (type->asString() == "text") {
        const util::Json *text = section.find("text");
        require(errors, text != nullptr && text->isString(),
                where + ": text section without text");
        return;
    }
    if (type->asString() != "table") {
        errors.push_back(where + ": unknown section type \""
                         + type->asString() + "\"");
        return;
    }
    const util::Json *columns = section.find("columns");
    if (columns == nullptr || !columns->isArray()) {
        errors.push_back(where + ": table section without columns");
        return;
    }
    for (const util::Json &column : columns->items())
        require(errors, column.isString(),
                where + ": column name is not a string");
    const util::Json *rows = section.find("rows");
    if (rows == nullptr || !rows->isArray()) {
        errors.push_back(where + ": table section without rows");
        return;
    }
    for (std::size_t r = 0; r < rows->items().size(); ++r) {
        const util::Json &row = rows->items()[r];
        const std::string row_where =
            where + ".rows[" + std::to_string(r) + "]";
        if (!row.isObject()) {
            errors.push_back(row_where + ": not an object");
            continue;
        }
        const util::Json *id = row.find("id");
        require(errors, id != nullptr && id->isString(),
                row_where + ": missing id");
        const util::Json *cells = row.find("cells");
        if (cells == nullptr || !cells->isArray()) {
            errors.push_back(row_where + ": missing cells");
            continue;
        }
        require(errors,
                cells->items().size() == columns->items().size(),
                row_where + ": cell count "
                    + std::to_string(cells->items().size())
                    + " does not match column count "
                    + std::to_string(columns->items().size()));
        for (std::size_t c = 0; c < cells->items().size(); ++c) {
            validateCell(errors, cells->items()[c],
                         row_where + ".cells[" + std::to_string(c)
                             + "]");
        }
    }
}

} // anonymous namespace

std::vector<std::string>
validateReportJson(const util::Json &document)
{
    std::vector<std::string> errors;
    if (!document.isObject()) {
        errors.push_back("document is not a JSON object");
        return errors;
    }
    const util::Json *schema = document.find("schema");
    require(errors,
            schema != nullptr && schema->isString()
                && schema->asString() == "vlpsim-report",
            "schema marker is not \"vlpsim-report\"");
    const util::Json *version = document.find("version");
    require(errors,
            version != nullptr && version->isNumber()
                && version->asUint() == reportSchemaVersion,
            "version is not " + std::to_string(reportSchemaVersion));
    const util::Json *title = document.find("title");
    require(errors, title != nullptr && title->isString(),
            "missing title");
    const util::Json *metadata = document.find("metadata");
    if (metadata == nullptr || !metadata->isObject()) {
        errors.push_back("missing metadata object");
    } else {
        for (const auto &[key, value] : metadata->members())
            require(errors, value.isString(),
                    "metadata \"" + key + "\" is not a string");
    }
    const util::Json *sections = document.find("sections");
    if (sections == nullptr || !sections->isArray()) {
        errors.push_back("missing sections array");
    } else {
        for (std::size_t i = 0; i < sections->items().size(); ++i)
            validateSection(errors, sections->items()[i], i);
    }
    return errors;
}

} // namespace sim
} // namespace vlp
