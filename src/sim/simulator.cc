/**
 * @file
 * Simulator implementation.
 */

#include "sim/simulator.h"

#include <cassert>

#include "util/stats.h"

namespace vlp {
namespace sim {

double
PredictorResult::rate() const
{
    return util::percent(mispredictions, branches);
}

void
Simulator::addConditional(pred::ConditionalPredictor *predictor)
{
    assert(predictor != nullptr);
    conditional_.push_back(predictor);
    conditionalSlots_.emplace_back();
}

void
Simulator::addIndirect(pred::IndirectPredictor *predictor)
{
    assert(predictor != nullptr);
    indirect_.push_back(predictor);
    indirectSlots_.emplace_back();
}

void
Simulator::run(trace::TraceSource &source)
{
    trace::BranchRecord record;
    while (source.next(record)) {
        if (record.isConditional()) {
            for (std::size_t i = 0; i < conditional_.size(); ++i) {
                pred::ConditionalPredictor *predictor = conditional_[i];
                Slot &slot = conditionalSlots_[i];
                const bool predicted = predictor->predict(record);
                const bool miss = predicted != record.taken;
                ++slot.branches;
                slot.mispredictions += miss ? 1 : 0;
                if (trackPerBranch_) {
                    BranchAccuracy &accuracy = slot.perBranch[record.pc];
                    ++accuracy.executions;
                    accuracy.mispredictions += miss ? 1 : 0;
                }
                predictor->update(record);
            }
        } else if (record.isIndirect()) {
            for (std::size_t i = 0; i < indirect_.size(); ++i) {
                pred::IndirectPredictor *predictor = indirect_[i];
                Slot &slot = indirectSlots_[i];
                const std::uint64_t predicted =
                    predictor->predict(record);
                const bool miss = predicted != record.nextPc;
                ++slot.branches;
                slot.mispredictions += miss ? 1 : 0;
                if (trackPerBranch_) {
                    BranchAccuracy &accuracy = slot.perBranch[record.pc];
                    ++accuracy.executions;
                    accuracy.mispredictions += miss ? 1 : 0;
                }
                predictor->update(record);
            }
        } else if (record.isReturn()) {
            ++returns_;
            if (ras_.predictAndPop() != record.nextPc)
                ++returnMisses_;
        }

        if (record.isCall())
            ras_.push(record.pc + trace::instructionBytes);

        for (pred::ConditionalPredictor *predictor : conditional_)
            predictor->observe(record);
        for (pred::IndirectPredictor *predictor : indirect_)
            predictor->observe(record);
    }
}

std::vector<PredictorResult>
Simulator::conditionalResults() const
{
    std::vector<PredictorResult> results;
    for (std::size_t i = 0; i < conditional_.size(); ++i) {
        PredictorResult result;
        result.name = conditional_[i]->name();
        result.sizeBytes = conditional_[i]->sizeBytes();
        result.branches = conditionalSlots_[i].branches;
        result.mispredictions = conditionalSlots_[i].mispredictions;
        results.push_back(std::move(result));
    }
    return results;
}

std::vector<PredictorResult>
Simulator::indirectResults() const
{
    std::vector<PredictorResult> results;
    for (std::size_t i = 0; i < indirect_.size(); ++i) {
        PredictorResult result;
        result.name = indirect_[i]->name();
        result.sizeBytes = indirect_[i]->sizeBytes();
        result.branches = indirectSlots_[i].branches;
        result.mispredictions = indirectSlots_[i].mispredictions;
        results.push_back(std::move(result));
    }
    return results;
}

PredictorResult
Simulator::rasResult() const
{
    PredictorResult result;
    result.name = "return address stack";
    result.sizeBytes = ras_.sizeBytes();
    result.branches = returns_;
    result.mispredictions = returnMisses_;
    return result;
}

const std::unordered_map<std::uint64_t, BranchAccuracy> &
Simulator::conditionalPerBranch(std::size_t index) const
{
    assert(index < conditionalSlots_.size());
    return conditionalSlots_[index].perBranch;
}

const std::unordered_map<std::uint64_t, BranchAccuracy> &
Simulator::indirectPerBranch(std::size_t index) const
{
    assert(index < indirectSlots_.size());
    return indirectSlots_[index].perBranch;
}

} // namespace sim
} // namespace vlp
