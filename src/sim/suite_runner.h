/**
 * @file
 * Robust suite runner for external trace corpora.
 *
 * TraceSuiteRunner replays the paper's methodology over a directory of
 * .vbt traces: traces are first grouped into profile/test *pairs*
 * (the paper's §3 split — profile on one input, evaluate on another),
 * then per pair: step-1 sweeps over the profile trace, a suite-wide
 * global fixed length, and predictor-comparison rows evaluated on
 * both the profile trace (train accuracy) and the test trace (test
 * accuracy), reported side by side with the generalization delta.
 *
 * Pairing, in precedence order:
 *  - an explicit manifest (TraceSuiteOptions::manifest, or
 *    `pairs.txt` in the corpus root when present): one
 *    `<pair> <profile.vbt> <test.vbt>` line per pair; traces on disk
 *    that the manifest never references are reported as orphaned;
 *  - the `<stem>.profile.vbt` / `<stem>.test.vbt` name convention;
 *    a convention-marked trace whose mate is missing is orphaned;
 *  - any other lone trace falls back to *self-evaluation* (profile ==
 *    test), clearly labeled `self-eval` in every output — the honest
 *    cross-evaluated numbers need two inputs per workload.
 *
 * Unlike the synthetic pipeline it must survive hostile inputs:
 *
 *  - transient IO failures are retried with exponential backoff
 *    (util::TransientError is the retry signal), clamped to
 *    TraceSuiteOptions::backoffMaxMs;
 *  - traces that stay unreadable — truncated files, checksum
 *    mismatches, malformed records — are quarantined with a structured
 *    cause and the run continues; the exit status is only nonzero when
 *    *every* pair failed (an empty corpus is a distinct condition —
 *    see SuiteReport::empty());
 *  - with a checkpoint journal attached, every completed (pair,
 *    predictor class, configuration) cell is durably recorded under a
 *    key naming both content hashes, so a killed run resumes where it
 *    left off and produces a report byte-identical to an
 *    uninterrupted run — and an edited manifest can never replay a
 *    cell recorded for a different pairing.
 *
 * Ingestion is single-pass and pipelined: every trace is opened once
 * per attempt through a content-hashing reader (header validation, the
 * cache identity, and replay all share that open — see
 * trace/content_hash.h), and a bounded prefetcher opens and hashes
 * upcoming traces while earlier ones simulate (trace/prefetch.h).
 * Prefetching affects throughput only, never results.
 *
 * Determinism contract: pairs are processed in sorted-name order with
 * static sharding (pair i on worker i % jobs), per-pair work is a
 * pure function of the trace bytes and options, and the report is
 * assembled in sorted order on the controlling thread — so the printed
 * report is bit-identical across jobs values, interruptions, and
 * resumes.
 */

#ifndef VLPSIM_SIM_SUITE_RUNNER_H
#define VLPSIM_SIM_SUITE_RUNNER_H

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/report.h"
#include "trace/byte_file.h"
#include "trace/mmap_file.h"

namespace vlp {
namespace store {
class ArtifactStore;
class CheckpointJournal;
} // namespace store

namespace sim {

/** Configuration for one external-trace suite run. */
struct TraceSuiteOptions
{
    /** Directory scanned (recursively) for .vbt traces. */
    std::string directory;
    /** Predictor table budget in bytes. */
    std::size_t bytes = 8 * 1024;
    /** Worker threads across traces (0 = one per hardware thread;
     *  per-trace step-1 sweeps stay serial so peak memory is bounded
     *  by jobs x one streaming chunk). */
    unsigned jobs = 1;
    /** Checkpoint journal path; empty disables checkpointing. */
    std::string checkpoint;
    /**
     * Pair-manifest path. Empty = use `<directory>/pairs.txt` when it
     * exists, otherwise pair by the `.profile.vbt`/`.test.vbt` name
     * convention with self-eval fallback.
     */
    std::string manifest;
    /** Total attempts per trace operation (1 = no retries). */
    unsigned maxAttempts = 4;
    /** Backoff before retry r (0-based) is backoffBaseMs << r,
     *  clamped to backoffMaxMs. */
    unsigned backoffBaseMs = 10;
    /** Ceiling on any single backoff delay; also keeps the shift
     *  above well-defined for arbitrary maxAttempts. */
    unsigned backoffMaxMs = 10'000;
    /** Full-jitter seed for retry backoff (util::RetryPolicy
     *  ::jitterSeed); 0 keeps the exact exponential schedule. */
    std::uint64_t retryJitterSeed = 0;
    /** Records buffered per streaming chunk (bounds peak memory). */
    std::size_t chunkRecords =
        trace::StreamingTraceReader::defaultChunkRecords;
    /** File opener override; empty = open via readMode (tests inject
     *  faults here — an override wins over readMode). */
    trace::FileOpener opener;
    /** How traces open when no opener override is given: Auto (mmap
     *  with stdio fallback), Mmap, or Stdio. The report is
     *  byte-identical across backends; only throughput changes. */
    trace::ReadMode readMode = trace::ReadMode::Auto;
    /** Max validated-but-unconsumed read-ahead opens in the ingestion
     *  pipeline (bounds prefetch memory and descriptors); 0 = auto
     *  (2 * jobs + 2). */
    std::size_t prefetchWindow = 0;
    /** Optional artifact store shared by all workers. */
    std::shared_ptr<store::ArtifactStore> store;
    /**
     * Pin the suite-wide global history lengths instead of deriving
     * them from the profiled pairs (nullopt = derive; an explicit 0
     * pins "no evaluation for this class"). Per-pair rows are a pure
     * function of the pair's traces and the global lengths, so
     * pinning lets a reference run be compared pair-by-pair against a
     * run whose pair set differed (the chaos campaign's
     * quarantine-tolerant baseline).
     */
    std::optional<unsigned> forceGlobalConditionalLength;
    std::optional<unsigned> forceGlobalIndirectLength;
    /**
     * Backoff sleep hook (milliseconds); empty = real sleep. Tests
     * replace it to observe retries without wall-clock delays.
     */
    std::function<void(unsigned)> sleeper;
    /**
     * Cooperative cancellation token; null = never cancelled. Once it
     * fires the run unwinds with util::CancelledError at the next
     * step boundary (between pairs, sweeps, and retry backoffs) —
     * cancellation aborts the run, it never quarantines pairs.
     */
    std::shared_ptr<const util::CancelToken> cancel;
};

/** Per-pair disposition in a suite run. */
enum class TraceStatus {
    /** Fully processed; comparison rows present. */
    Ok,
    /** Unreadable or invalid after retries; excluded from results. */
    Quarantined,
    /** Readable but carries no usable branches; excluded. */
    Skipped,
    /** A trace no pairing claimed: a manifest never references it, or
     *  its `.profile.vbt`/`.test.vbt` mate is missing. Never silently
     *  self-evaluated. */
    Orphaned,
};

/** One profile/test trace pairing, before any IO. */
struct TracePair
{
    /** Pair display name (manifest name, convention stem, or the
     *  trace's own name for self-eval); stable sort key. */
    std::string name;
    /** Profile-trace name relative to the corpus directory. */
    std::string profileName;
    /** Profile-trace path on disk. */
    std::string profilePath;
    /** Test-trace name; equals profileName for self-eval. */
    std::string testName;
    std::string testPath;
    /** True when profile and test are the same file (fallback). */
    bool selfEval = false;
};

/** A trace the pairing stage could not place, with why. */
struct OrphanTrace
{
    std::string name;
    std::string path;
    std::string cause;
};

/** How a corpus was grouped into pairs. */
struct TracePairing
{
    /** Pairs in sorted-name order. */
    std::vector<TracePair> pairs;
    /** Unplaceable traces in sorted-name order. */
    std::vector<OrphanTrace> orphans;
};

/** Everything the suite learned about one pair. */
struct TraceOutcome
{
    /** Pair name (stable sort key). */
    std::string name;
    /** Test-trace path on disk (equals profilePath for self-eval). */
    std::string path;
    TraceStatus status = TraceStatus::Ok;
    /** Failure/skip/orphan cause; empty for Ok pairs. */
    std::string cause;
    /** True when the pair is the labeled self-eval fallback. */
    bool selfEval = false;
    /** Profile-trace name relative to the corpus directory. */
    std::string profileName;
    std::string profilePath;
    /** Test-trace name; equals profileName for self-eval. */
    std::string testName;
    /** Container version of the profile / test trace (1 = VBT1,
     *  2 = VBT2); 0 when that header was never successfully read. */
    unsigned profileFormatVersion = 0;
    unsigned formatVersion = 0;
    /** Records promised by the profile / test trace header. */
    std::uint64_t profileRecords = 0;
    std::uint64_t records = 0;
    /** Conditional branches seen while profiling (profile trace). */
    std::uint64_t conditionalBranches = 0;
    /** Indirect branches seen while profiling (profile trace). */
    std::uint64_t indirectBranches = 0;
    /** Train-side rows: evaluated on the profile trace itself.
     *  Absent for self-eval pairs (train == test there). */
    std::optional<ComparisonRow> conditionalTrain;
    std::optional<ComparisonRow> indirectTrain;
    /** Test-side rows: evaluated on the test trace. */
    std::optional<ComparisonRow> conditional;
    std::optional<ComparisonRow> indirect;

    /**
     * Generalization delta for the variable length path predictor:
     * test rate minus train rate, in percent points (positive =
     * accuracy lost between inputs). Absent unless both sides exist.
     */
    std::optional<double> conditionalDelta() const;
    std::optional<double> indirectDelta() const;
};

/** Structured result of a suite run. */
struct SuiteReport
{
    /** Pair (and orphan) outcomes in sorted-name order. */
    std::vector<TraceOutcome> traces;
    std::size_t bytes = 0;
    unsigned globalConditionalLength = 0;
    /** 0 when no trace had enough indirect branches to evaluate. */
    unsigned globalIndirectLength = 0;
    /** Cells replayed from the checkpoint journal (not printed: the
     *  report text stays identical across interruptions). */
    std::size_t resumedCells = 0;

    std::size_t okCount() const;
    std::size_t quarantinedCount() const;
    std::size_t skippedCount() const;
    std::size_t orphanedCount() const;
    /** Ok pairs with a real profile/test split (not self-eval). */
    std::size_t crossEvaluatedCount() const;

    /** True when the corpus had no .vbt traces at all — distinct from
     *  allFailed() so callers can diagnose an empty or mistyped
     *  directory instead of "every trace quarantined". */
    bool empty() const { return traces.empty(); }

    /** True when traces were found but no pair completed — the run
     *  produced nothing. False for an empty corpus (see empty()). */
    bool allFailed() const { return !traces.empty() && okCount() == 0; }

    /**
     * Structured view of the suite: every trace becomes a section
     * (status text, then one Entries table per branch class), and the
     * suite-level facts — byte budget, global lengths, ok/quarantined/
     * skipped counts, resumed cells, plus per-trace quarantine and
     * skip causes — land in the report metadata so CSV/JSON exports
     * carry them.
     */
    Report toReport() const;

    /**
     * Deterministic text rendering: identical doubles produce
     * identical bytes, independent of jobs, interruption, or resume.
     * Equivalent to streaming toReport() through AsciiReportSink.
     */
    void print(std::ostream &out) const;
};

/** Runs the external-trace suite described by TraceSuiteOptions. */
class TraceSuiteRunner
{
  public:
    explicit TraceSuiteRunner(TraceSuiteOptions options);

    TraceSuiteRunner(const TraceSuiteRunner &) = delete;
    TraceSuiteRunner &operator=(const TraceSuiteRunner &) = delete;

    /**
     * Execute the suite: discover, validate, sweep, compare.
     * @throws std::runtime_error only for environment-level failures
     *         (unreadable directory, unusable checkpoint journal);
     *         per-trace failures are reported, never thrown
     */
    SuiteReport run();

    /**
     * The .vbt files under @p directory (recursive), sorted by
     * path-relative name. Exposed for the CLI and tests.
     * @return (relative name, full path) pairs
     * @throws std::runtime_error if the directory cannot be read
     */
    static std::vector<std::pair<std::string, std::string>>
    discoverTraces(const std::string &directory);

    /**
     * Group discovered traces into profile/test pairs.
     *
     * With a non-empty @p manifest_path the manifest drives pairing:
     * one `<pair-name> <profile> <test>` line per pair (`#` comments
     * and blank lines ignored; trace names relative to the corpus
     * root, exactly as discoverTraces() reports them). A manifest
     * line naming a trace that was not discovered still yields the
     * pair — opening it fails downstream and the pair is quarantined
     * with the real IO cause. Discovered traces the manifest never
     * references come back as orphans.
     *
     * Without a manifest, `<stem>.profile.vbt` pairs with
     * `<stem>.test.vbt` under pair name `<stem>`; a marked trace
     * missing its mate is an orphan; unmarked traces become labeled
     * self-eval pairs.
     *
     * @throws std::runtime_error on an unreadable or malformed
     *         manifest (duplicate pair names, wrong field count)
     */
    static TracePairing
    pairTraces(const std::vector<std::pair<std::string, std::string>>
                   &discovered,
               const std::string &manifest_path);

  private:
    TraceSuiteOptions options_;
};

} // namespace sim
} // namespace vlp

#endif // VLPSIM_SIM_SUITE_RUNNER_H
