/**
 * @file
 * Robust suite runner for external trace corpora.
 *
 * TraceSuiteRunner replays the paper's methodology over a directory of
 * .vbt traces: per-trace fixed-length sweeps, a suite-wide global
 * fixed length, then predictor-comparison rows per trace. Unlike the
 * synthetic pipeline it must survive hostile inputs:
 *
 *  - transient IO failures are retried with bounded exponential
 *    backoff (util::TransientError is the retry signal);
 *  - traces that stay unreadable — truncated files, checksum
 *    mismatches, malformed records — are quarantined with a structured
 *    cause and the run continues; the exit status is only nonzero when
 *    *every* trace failed;
 *  - with a checkpoint journal attached, every completed (trace,
 *    predictor class, configuration) cell is durably recorded, so a
 *    killed run resumes where it left off and produces a report
 *    byte-identical to an uninterrupted run.
 *
 * Determinism contract: traces are processed in sorted-path order with
 * static sharding (trace i on worker i % jobs), per-trace work is a
 * pure function of the trace bytes and options, and the report is
 * assembled in sorted order on the controlling thread — so the printed
 * report is bit-identical across jobs values, interruptions, and
 * resumes.
 */

#ifndef VLPSIM_SIM_SUITE_RUNNER_H
#define VLPSIM_SIM_SUITE_RUNNER_H

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/report.h"
#include "trace/byte_file.h"

namespace vlp {
namespace store {
class ArtifactStore;
class CheckpointJournal;
} // namespace store

namespace sim {

/** Configuration for one external-trace suite run. */
struct TraceSuiteOptions
{
    /** Directory scanned (recursively) for .vbt traces. */
    std::string directory;
    /** Predictor table budget in bytes. */
    std::size_t bytes = 8 * 1024;
    /** Worker threads across traces (0 = one per hardware thread;
     *  per-trace step-1 sweeps stay serial so peak memory is bounded
     *  by jobs x one streaming chunk). */
    unsigned jobs = 1;
    /** Checkpoint journal path; empty disables checkpointing. */
    std::string checkpoint;
    /** Total attempts per trace operation (1 = no retries). */
    unsigned maxAttempts = 4;
    /** Backoff before retry r (0-based) is backoffBaseMs << r. */
    unsigned backoffBaseMs = 10;
    /** Records buffered per streaming chunk (bounds peak memory). */
    std::size_t chunkRecords =
        trace::StreamingTraceReader::defaultChunkRecords;
    /** File opener; empty = plain stdio (tests inject faults here). */
    trace::FileOpener opener;
    /** Optional artifact store shared by all workers. */
    std::shared_ptr<store::ArtifactStore> store;
    /**
     * Backoff sleep hook (milliseconds); empty = real sleep. Tests
     * replace it to observe retries without wall-clock delays.
     */
    std::function<void(unsigned)> sleeper;
};

/** Per-trace disposition in a suite run. */
enum class TraceStatus {
    /** Fully processed; comparison rows present. */
    Ok,
    /** Unreadable or invalid after retries; excluded from results. */
    Quarantined,
    /** Readable but carries no usable branches; excluded. */
    Skipped,
};

/** Everything the suite learned about one trace. */
struct TraceOutcome
{
    /** Path relative to the suite directory (stable sort key). */
    std::string name;
    /** Absolute/original path on disk. */
    std::string path;
    TraceStatus status = TraceStatus::Ok;
    /** Failure/skip cause; empty for Ok traces. */
    std::string cause;
    /** Trace container version (1 = unchecksummed VBT1, 2 = VBT2);
     *  0 when the header was never successfully read. */
    unsigned formatVersion = 0;
    /** Records promised by the trace header. */
    std::uint64_t records = 0;
    /** Conditional branches seen while profiling. */
    std::uint64_t conditionalBranches = 0;
    /** Indirect branches seen while profiling. */
    std::uint64_t indirectBranches = 0;
    std::optional<ComparisonRow> conditional;
    std::optional<ComparisonRow> indirect;
};

/** Structured result of a suite run. */
struct SuiteReport
{
    /** Outcomes in sorted-name order. */
    std::vector<TraceOutcome> traces;
    std::size_t bytes = 0;
    unsigned globalConditionalLength = 0;
    /** 0 when no trace had enough indirect branches to evaluate. */
    unsigned globalIndirectLength = 0;
    /** Cells replayed from the checkpoint journal (not printed: the
     *  report text stays identical across interruptions). */
    std::size_t resumedCells = 0;

    std::size_t okCount() const;
    std::size_t quarantinedCount() const;
    std::size_t skippedCount() const;

    /** True when no trace completed — the run produced nothing. */
    bool allFailed() const { return okCount() == 0; }

    /**
     * Structured view of the suite: every trace becomes a section
     * (status text, then one Entries table per branch class), and the
     * suite-level facts — byte budget, global lengths, ok/quarantined/
     * skipped counts, resumed cells, plus per-trace quarantine and
     * skip causes — land in the report metadata so CSV/JSON exports
     * carry them.
     */
    Report toReport() const;

    /**
     * Deterministic text rendering: identical doubles produce
     * identical bytes, independent of jobs, interruption, or resume.
     * Equivalent to streaming toReport() through AsciiReportSink.
     */
    void print(std::ostream &out) const;
};

/** Runs the external-trace suite described by TraceSuiteOptions. */
class TraceSuiteRunner
{
  public:
    explicit TraceSuiteRunner(TraceSuiteOptions options);

    TraceSuiteRunner(const TraceSuiteRunner &) = delete;
    TraceSuiteRunner &operator=(const TraceSuiteRunner &) = delete;

    /**
     * Execute the suite: discover, validate, sweep, compare.
     * @throws std::runtime_error only for environment-level failures
     *         (unreadable directory, unusable checkpoint journal);
     *         per-trace failures are reported, never thrown
     */
    SuiteReport run();

    /**
     * The .vbt files under @p directory (recursive), sorted by
     * path-relative name. Exposed for the CLI and tests.
     * @return (relative name, full path) pairs
     * @throws std::runtime_error if the directory cannot be read
     */
    static std::vector<std::pair<std::string, std::string>>
    discoverTraces(const std::string &directory);

  private:
    TraceSuiteOptions options_;
};

} // namespace sim
} // namespace vlp

#endif // VLPSIM_SIM_SUITE_RUNNER_H
