/**
 * @file
 * FetchEngine implementation.
 *
 * Bit-identity with the Simulator rests on one rule: per predictor,
 * every record is handled predict → update → history advance in trace
 * order, and the speculative dance (checkpoint, speculate down the
 * fetched path, restore, observe the actual outcome) nets out to a
 * plain observe. Bundle formation reads predictor state (bankOf) but
 * never writes it, so timing and accuracy are fully decoupled.
 */

#include "sim/frontend.h"

#include <algorithm>
#include <cassert>

#include "util/chaos.h"
#include "util/logging.h"

namespace vlp {
namespace sim {

namespace {

bool
contains(const std::vector<unsigned> &banks, unsigned bank)
{
    return std::find(banks.begin(), banks.end(), bank) != banks.end();
}

/**
 * The record fetch would have speculated on had the conditional
 * prediction been followed: the actual record with the predicted
 * direction. The predicted-taken target would come from a BTB we do
 * not model; any value works because the advance is unwound before it
 * can retire, so the branch's own pc stands in.
 */
trace::BranchRecord
conditionalWrongPath(const trace::BranchRecord &record,
                     bool predicted_taken)
{
    trace::BranchRecord wrong = record;
    wrong.taken = predicted_taken;
    wrong.nextPc = predicted_taken
        ? record.pc
        : record.pc + trace::instructionBytes;
    return wrong;
}

/** Wrong-path record for an indirect branch: the predicted target. */
trace::BranchRecord
indirectWrongPath(const trace::BranchRecord &record,
                  std::uint64_t predicted_target)
{
    trace::BranchRecord wrong = record;
    wrong.nextPc = predicted_target;
    return wrong;
}

} // anonymous namespace

double
FrontendResult::totalCycles() const
{
    return baseCycles + mispredictCycles + repredictCycles;
}

double
FrontendResult::ipc(double instructions) const
{
    const double cycles = totalCycles();
    // Negated comparisons so NaN inputs also take the zero path.
    if (!(cycles > 0.0) || !(instructions > 0.0))
        return 0.0;
    return instructions / cycles;
}

double
FrontendResult::branchesPerCycle() const
{
    const double cycles = totalCycles();
    if (!(cycles > 0.0) || branches == 0)
        return 0.0;
    return static_cast<double>(branches) / cycles;
}

FrontendResult
closedFormFrontend(const FrontendParameters &parameters,
                   std::uint64_t branches, std::uint64_t mispredictions,
                   std::uint64_t repredict_events)
{
    FrontendResult result;
    result.branches = branches;
    result.mispredictions = mispredictions;
    result.repredictEvents = repredict_events;
    // Explicit zero-result semantics: an empty stream or a degenerate
    // bundle width estimates zero cycles, never NaN or infinity.
    if (branches == 0 || parameters.bundleWidth == 0)
        return result;
    result.baseCycles = static_cast<double>(branches)
        / static_cast<double>(parameters.bundleWidth);
    result.mispredictCycles = static_cast<double>(mispredictions)
        * parameters.mispredictPenaltyCycles;
    result.repredictCycles = static_cast<double>(repredict_events)
        * parameters.repredictPenaltyCycles;
    return result;
}

FetchEngine::FetchEngine(FrontendParameters parameters)
    : parameters_(std::move(parameters))
{
    if (parameters_.bundleWidth == 0)
        util::fatal("fetch bundle width must be at least 1");
}

void
FetchEngine::addConditional(pred::ConditionalPredictor *predictor)
{
    assert(predictor != nullptr);
    ConditionalSlot slot;
    slot.predictor = predictor;
    slot.chaosKey = parameters_.chaosIdentity + ":c"
        + std::to_string(conditional_.size());
    conditional_.push_back(std::move(slot));
}

void
FetchEngine::addIndirect(pred::IndirectPredictor *predictor)
{
    assert(predictor != nullptr);
    IndirectSlot slot;
    slot.predictor = predictor;
    slot.chaosKey = parameters_.chaosIdentity + ":i"
        + std::to_string(indirect_.size());
    indirect_.push_back(std::move(slot));
}

void
FetchEngine::attachHfnt(
    std::size_t slot, core::HashFunctionNumberTable *hfnt,
    std::function<unsigned(const trace::BranchRecord &)> actual_number)
{
    if (slot >= conditional_.size())
        util::fatal("attachHfnt: no such conditional slot");
    assert(hfnt != nullptr && actual_number != nullptr);
    conditional_[slot].hfnt = hfnt;
    conditional_[slot].actualNumber = std::move(actual_number);
}

void
FetchEngine::run(trace::TraceSource &source)
{
    if (parameters_.mode == FrontendMode::RetireOrder)
        runRetireOrder(source);
    else
        runFetchBundle(source);
}

void
FetchEngine::closeBundle(ConditionalSlot &slot)
{
    if (slot.slotsUsed == 0)
        return;
    ++slot.timing.bundles;
    slot.timing.baseCycles += 1.0;
    slot.slotsUsed = 0;
    slot.usedTableBanks.clear();
    slot.usedHfntBanks.clear();
}

void
FetchEngine::predictConditional(ConditionalSlot &slot,
                                const trace::BranchRecord &record)
{
    FrontendResult &timing = slot.timing;

    // HFNT lookup first (it gates the prediction in §4.3 hardware):
    // bank conflicts split the bundle, a number mismatch costs a
    // re-predict bubble once decode reveals the true number.
    bool bubble = false;
    if (slot.hfnt != nullptr) {
        if (slot.hfnt->banks() > 1) {
            const unsigned bank = slot.hfnt->bankOf(record.pc);
            if (contains(slot.usedHfntBanks, bank)) {
                closeBundle(slot);
                ++timing.bankConflicts;
            }
            slot.usedHfntBanks.push_back(bank);
        }
        const unsigned actual_number = slot.actualNumber(record);
        bubble = slot.hfnt->predictNumber(record.pc) != actual_number;
        slot.hfnt->update(record.pc, actual_number);
    }

    // Counter-table bank port: a second branch on the same bank in
    // one bundle is a structural hazard; it starts the next bundle.
    if (slot.predictor->bankCount() > 0) {
        const unsigned bank = slot.predictor->bankOf(record);
        if (contains(slot.usedTableBanks, bank)) {
            closeBundle(slot);
            ++timing.bankConflicts;
        }
        slot.usedTableBanks.push_back(bank);
    }

    const bool predicted = slot.predictor->predict(record);
    const bool miss = predicted != record.taken;
    ++timing.branches;
    timing.mispredictions += miss ? 1 : 0;
    slot.predictor->update(record);

    slot.lastPrediction = predicted;
    slot.lastMiss = miss;

    ++slot.slotsUsed;
    if (bubble) {
        ++timing.repredictEvents;
        timing.repredictCycles += parameters_.repredictPenaltyCycles;
        closeBundle(slot);
    }
    if (miss) {
        timing.mispredictCycles += parameters_.mispredictPenaltyCycles;
        closeBundle(slot);
    } else if (slot.slotsUsed >= parameters_.bundleWidth) {
        closeBundle(slot);
    }
}

void
FetchEngine::advanceHistory(pred::Predictor &predictor,
                            const trace::BranchRecord &record, bool miss,
                            const trace::BranchRecord &wrong_path,
                            FrontendResult &timing,
                            const std::string &chaos_key)
{
    if (miss) {
        // What checkpoint-repair hardware does: save the history,
        // speculate down the fetched (wrong) path, and on the flush
        // rewind to the checkpoint before retiring the real outcome.
        const pred::CheckpointPtr saved = predictor.checkpoint();
        predictor.speculate(wrong_path);
        predictor.restore(*saved);
        ++timing.checkpointRestores;
    } else if (CHAOS_SECTION("frontend.checkpoint.restore",
                             chaos_key)) {
        // Chaos: a spurious repair on a correct prediction. The
        // restore-then-replay must be invisible in every statistic.
        const pred::CheckpointPtr saved = predictor.checkpoint();
        predictor.speculate(record);
        predictor.restore(*saved);
        ++timing.checkpointRestores;
    }
    predictor.observe(record);
}

void
FetchEngine::runFetchBundle(trace::TraceSource &source)
{
    trace::BranchRecord record;
    while (source.next(record)) {
        if (record.isConditional()) {
            for (ConditionalSlot &slot : conditional_)
                predictConditional(slot, record);
        } else if (record.isIndirect()) {
            for (IndirectSlot &slot : indirect_) {
                const std::uint64_t predicted =
                    slot.predictor->predict(record);
                const bool miss = predicted != record.nextPc;
                ++slot.timing.branches;
                slot.timing.mispredictions += miss ? 1 : 0;
                slot.predictor->update(record);
                slot.lastPrediction = predicted;
                slot.lastMiss = miss;
            }
        } else if (record.isReturn()) {
            ++returns_;
            if (ras_.predictAndPop() != record.nextPc)
                ++returnMisses_;
        }

        if (record.isCall())
            ras_.push(record.pc + trace::instructionBytes);

        for (ConditionalSlot &slot : conditional_) {
            // Any non-conditional record is a fetch redirect the
            // conditional slot's bundle cannot span.
            if (!record.isConditional())
                closeBundle(slot);
            const bool miss = record.isConditional() && slot.lastMiss;
            advanceHistory(
                *slot.predictor, record, miss,
                conditionalWrongPath(record, slot.lastPrediction),
                slot.timing, slot.chaosKey);
        }
        for (IndirectSlot &slot : indirect_) {
            const bool miss = record.isIndirect() && slot.lastMiss;
            advanceHistory(
                *slot.predictor, record, miss,
                indirectWrongPath(record, slot.lastPrediction),
                slot.timing, slot.chaosKey);
        }
    }

    for (ConditionalSlot &slot : conditional_)
        closeBundle(slot);

    // Indirect slots carry accuracy through the engine but use the
    // closed-form cycle model (the bundle machinery is a conditional
    // fetch-slot concept).
    for (IndirectSlot &slot : indirect_) {
        FrontendResult filled = closedFormFrontend(
            parameters_, slot.timing.branches,
            slot.timing.mispredictions, 0);
        filled.checkpointRestores = slot.timing.checkpointRestores;
        slot.timing = filled;
    }
}

void
FetchEngine::runRetireOrder(trace::TraceSource &source)
{
    trace::BranchRecord record;
    while (source.next(record)) {
        if (record.isConditional()) {
            for (ConditionalSlot &slot : conditional_) {
                if (slot.hfnt != nullptr) {
                    // Same HFNT stream as the fetch-bundle mode, so
                    // repredictEvents agrees; only the cycle charge
                    // is closed-form here.
                    const unsigned actual_number =
                        slot.actualNumber(record);
                    if (slot.hfnt->predictNumber(record.pc)
                        != actual_number)
                        ++slot.timing.repredictEvents;
                    slot.hfnt->update(record.pc, actual_number);
                }
                const bool predicted =
                    slot.predictor->predict(record);
                const bool miss = predicted != record.taken;
                ++slot.timing.branches;
                slot.timing.mispredictions += miss ? 1 : 0;
                slot.predictor->update(record);
            }
        } else if (record.isIndirect()) {
            for (IndirectSlot &slot : indirect_) {
                const std::uint64_t predicted =
                    slot.predictor->predict(record);
                const bool miss = predicted != record.nextPc;
                ++slot.timing.branches;
                slot.timing.mispredictions += miss ? 1 : 0;
                slot.predictor->update(record);
            }
        } else if (record.isReturn()) {
            ++returns_;
            if (ras_.predictAndPop() != record.nextPc)
                ++returnMisses_;
        }

        if (record.isCall())
            ras_.push(record.pc + trace::instructionBytes);

        for (ConditionalSlot &slot : conditional_)
            slot.predictor->observe(record);
        for (IndirectSlot &slot : indirect_)
            slot.predictor->observe(record);
    }
    fillClosedFormTiming();
}

void
FetchEngine::fillClosedFormTiming()
{
    for (ConditionalSlot &slot : conditional_) {
        slot.timing = closedFormFrontend(
            parameters_, slot.timing.branches,
            slot.timing.mispredictions, slot.timing.repredictEvents);
    }
    for (IndirectSlot &slot : indirect_) {
        slot.timing = closedFormFrontend(
            parameters_, slot.timing.branches,
            slot.timing.mispredictions, 0);
    }
}

std::vector<PredictorResult>
FetchEngine::conditionalResults() const
{
    std::vector<PredictorResult> results;
    for (const ConditionalSlot &slot : conditional_) {
        PredictorResult result;
        result.name = slot.predictor->name();
        result.sizeBytes = slot.predictor->sizeBytes();
        result.branches = slot.timing.branches;
        result.mispredictions = slot.timing.mispredictions;
        results.push_back(std::move(result));
    }
    return results;
}

std::vector<PredictorResult>
FetchEngine::indirectResults() const
{
    std::vector<PredictorResult> results;
    for (const IndirectSlot &slot : indirect_) {
        PredictorResult result;
        result.name = slot.predictor->name();
        result.sizeBytes = slot.predictor->sizeBytes();
        result.branches = slot.timing.branches;
        result.mispredictions = slot.timing.mispredictions;
        results.push_back(std::move(result));
    }
    return results;
}

PredictorResult
FetchEngine::rasResult() const
{
    PredictorResult result;
    result.name = "return address stack";
    result.sizeBytes = ras_.sizeBytes();
    result.branches = returns_;
    result.mispredictions = returnMisses_;
    return result;
}

const FrontendResult &
FetchEngine::conditionalTiming(std::size_t slot) const
{
    assert(slot < conditional_.size());
    return conditional_[slot].timing;
}

const FrontendResult &
FetchEngine::indirectTiming(std::size_t slot) const
{
    assert(slot < indirect_.size());
    return indirect_[slot].timing;
}

} // namespace sim
} // namespace vlp
