/**
 * @file
 * Shared execution/output flag implementation.
 */

#include "sim/run_options.h"

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "sim/parallel.h"
#include "sim/service.h"
#include "store/artifact_store.h"
#include "util/args.h"
#include "util/logging.h"

namespace vlp {
namespace sim {

RunOptions::RunOptions()
{
    if (const char *env = std::getenv("VLPSIM_CACHE_DIR"))
        cacheDirectory = env;
}

void
RunOptions::registerFlags(util::ArgParser &parser)
{
    parser.addUint("--jobs", "N",
                   "worker threads (0 = one per hardware thread, "
                   "1 = serial)",
                   &jobs, 4096);
    registerCacheFlags(parser);
}

void
RunOptions::registerCacheFlags(util::ArgParser &parser)
{
    parser.addString("--cache-dir", "DIR",
                     "artifact cache directory (default: "
                     "VLPSIM_CACHE_DIR)",
                     &cacheDirectory);
    parser.addUint("--cache-max-bytes", "N",
                   "cache size bound, LRU-evicted (0 = unbounded)",
                   &cacheMaxBytes);
    parser.addSwitch("--no-cache",
                     "disable the artifact cache even when "
                     "VLPSIM_CACHE_DIR is set",
                     &cacheDisabled);
}

std::shared_ptr<store::ArtifactStore>
RunOptions::openStore() const
{
    if (!cacheEnabled())
        return nullptr;
    store::StoreOptions options;
    options.directory = cacheDirectory;
    options.maxBytes = cacheMaxBytes;
    return std::make_shared<store::ArtifactStore>(options);
}

std::shared_ptr<store::ArtifactStore>
RunOptions::attachStore(ParallelRunner &runner) const
{
    std::shared_ptr<store::ArtifactStore> store = openStore();
    if (store)
        runner.setStore(store);
    return store;
}

void
reportCacheCounters(const store::ArtifactStore *store)
{
    if (store == nullptr)
        return;
    const store::StoreCounters counters = store->counters();
    std::cerr << "cache: " << counters.hits << " hits, "
              << counters.misses << " misses, " << counters.inserts
              << " inserts";
    if (counters.corrupt > 0)
        std::cerr << ", " << counters.corrupt << " corrupt";
    if (counters.evicted > 0)
        std::cerr << ", " << counters.evicted << " evicted";
    std::cerr << "\n";
}

void
OutputOptions::registerFlags(util::ArgParser &parser)
{
    parser.addOption("--format", "FMT",
                     "output format: ascii (default), csv, or json",
                     [this](const std::string &value) {
                         format = parseReportFormat(value);
                     });
    parser.addString("--out", "FILE",
                     "write the report to FILE instead of stdout",
                     &path);
}

void
OutputOptions::write(const Report &report) const
{
    // Every export names the binary that produced it. Stamping here
    // (not in the sinks) keeps direct sink users — golden tests —
    // byte-stable, and the copy keeps the caller's report pristine.
    Report stamped = report;
    stampBuildInfo(stamped);
    std::unique_ptr<ReportSink> sink = makeReportSink(format);
    if (path.empty()) {
        sink->write(stamped, std::cout);
        return;
    }
    std::ofstream out(path, std::ios::binary);
    if (!out)
        util::fatal("cannot open output file: " + path);
    sink->write(stamped, out);
    if (!out)
        util::fatal("failed writing output file: " + path);
}

} // namespace sim
} // namespace vlp
