/**
 * @file
 * Execution and output flags shared by the bench driver and the
 * vlpsim subcommands.
 *
 * RunOptions covers how an experiment executes: `--jobs` worker
 * count and the artifact-cache flags (`--cache-dir`,
 * `--cache-max-bytes`, `--no-cache`, with the VLPSIM_CACHE_DIR
 * environment default). OutputOptions covers where the resulting
 * Report goes: `--format ascii|csv|json` and `--out FILE`. Both
 * register their flags on a util::ArgParser so every binary
 * documents the same spelling in `--help`.
 */

#ifndef VLPSIM_SIM_RUN_OPTIONS_H
#define VLPSIM_SIM_RUN_OPTIONS_H

#include <cstdint>
#include <memory>
#include <string>

#include "sim/report.h"

namespace vlp {
namespace util {
class ArgParser;
} // namespace util

namespace store {
class ArtifactStore;
} // namespace store

namespace sim {

class ParallelRunner;

/** Worker-count and artifact-cache configuration. */
struct RunOptions
{
    /** Worker count; 0 means one per hardware thread. */
    std::uint64_t jobs = 0;
    /** Cache directory; empty disables caching. Defaults to
     *  VLPSIM_CACHE_DIR from the environment. */
    std::string cacheDirectory;
    /** LRU bound in bytes; 0 = unbounded. */
    std::uint64_t cacheMaxBytes = 0;
    /** --no-cache: ignore the directory even when set. */
    bool cacheDisabled = false;

    /** Seed cacheDirectory from VLPSIM_CACHE_DIR. */
    RunOptions();

    bool cacheEnabled() const
    {
        return !cacheDisabled && !cacheDirectory.empty();
    }

    /** Register --jobs and the cache flags on @p parser. */
    void registerFlags(util::ArgParser &parser);

    /** Register only the cache flags (for binaries whose worker
     *  count is managed elsewhere, e.g. bench_throughput). */
    void registerCacheFlags(util::ArgParser &parser);

    /** Open the configured store; null when caching is off. */
    std::shared_ptr<store::ArtifactStore> openStore() const;

    /**
     * Open the configured store and attach it to every worker
     * context of @p runner. Returns the store (null when off) so the
     * caller can keep it alive and report counters.
     */
    std::shared_ptr<store::ArtifactStore>
    attachStore(ParallelRunner &runner) const;
};

/**
 * One-line cache activity report on stderr (stdout stays
 * byte-identical between cold and warm runs). No-op for null stores.
 */
void reportCacheCounters(const store::ArtifactStore *store);

/** Report destination: format and optional output file. */
struct OutputOptions
{
    ReportFormat format = ReportFormat::Ascii;
    /** Output path; empty writes to stdout. */
    std::string path;

    /** Register --format and --out on @p parser. */
    void registerFlags(util::ArgParser &parser);

    /**
     * Render @p report in the selected format to the selected
     * destination.
     * @throws std::runtime_error when the output file cannot be
     *         opened
     */
    void write(const Report &report) const;
};

} // namespace sim
} // namespace vlp

#endif // VLPSIM_SIM_RUN_OPTIONS_H
