/**
 * @file
 * Parallel experiment engine implementation.
 */

#include "sim/parallel.h"

#include "core/profiler.h"
#include "predictors/budget.h"
#include "util/logging.h"

namespace vlp {
namespace sim {

ParallelRunner::ParallelRunner(unsigned jobs)
{
    jobs_ = jobs == 0 ? util::ThreadPool::defaultThreadCount() : jobs;
    contexts_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; ++i)
        contexts_.push_back(std::make_unique<ExperimentContext>());
    if (jobs_ > 1)
        pool_ = std::make_unique<util::ThreadPool>(jobs_);
}

void
ParallelRunner::runSharded(std::size_t count,
                           const std::function<void(ExperimentContext &,
                                                    std::size_t)> &fn)
{
    if (count == 0)
        return;
    if (jobs_ == 1 || count == 1) {
        // Exact serial path: no pool, no cross-thread hand-off.
        for (std::size_t index = 0; index < count; ++index)
            fn(*contexts_.front(), index);
        return;
    }

    std::exception_ptr failure;
    std::mutex failure_mutex;
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(jobs_, count));
    for (unsigned worker = 0; worker < workers; ++worker) {
        pool_->submit([&, worker] {
            try {
                // Static sharding: worker w owns items w, w + jobs,
                // ... so a repeated map over the same list reuses this
                // worker's context caches, and the work split never
                // depends on scheduling.
                for (std::size_t index = worker; index < count;
                     index += jobs_) {
                    fn(*contexts_[worker], index);
                }
            } catch (...) {
                std::lock_guard<std::mutex> lock(failure_mutex);
                if (!failure)
                    failure = std::current_exception();
            }
        });
    }
    pool_->wait();
    if (failure)
        std::rethrow_exception(failure);
}

std::vector<ComparisonRow>
ParallelRunner::compareConditionalSuite(
        const std::vector<workload::BenchmarkSpec> &specs,
        std::size_t bytes, unsigned global_length, bool include_tuned)
{
    auto rows = map<ComparisonRow>(
        specs.size(), [&](ExperimentContext &context, std::size_t i) {
            return compareConditional(context, specs[i], bytes,
                                      global_length, include_tuned);
        });
    for (const ComparisonRow &row : rows) {
        for (const RateEntry &entry : row.entries)
            addPredictions(entry.branches);
    }
    return rows;
}

std::vector<ComparisonRow>
ParallelRunner::compareIndirectSuite(
        const std::vector<workload::BenchmarkSpec> &specs,
        std::size_t bytes, unsigned global_length, bool include_tuned)
{
    auto rows = map<ComparisonRow>(
        specs.size(), [&](ExperimentContext &context, std::size_t i) {
            return compareIndirect(context, specs[i], bytes,
                                   global_length, include_tuned);
        });
    for (const ComparisonRow &row : rows) {
        for (const RateEntry &entry : row.entries)
            addPredictions(entry.branches);
    }
    return rows;
}

std::vector<ParallelRunner::SweepRates>
ParallelRunner::suiteSweeps(std::size_t bytes, bool indirect)
{
    const unsigned index_bits = indirect
        ? pred::indirectIndexBits(bytes)
        : pred::conditionalIndexBits(bytes);
    const auto &suite = workload::benchmarkSuite();
    auto sweeps = map<SweepRates>(
        suite.size(), [&](ExperimentContext &context, std::size_t i) {
            const core::FixedLengthSweep &sweep = indirect
                ? context.indirectSweep(suite[i], index_bits)
                : context.conditionalSweep(suite[i], index_bits);
            SweepRates result;
            result.branches = sweep.branches;
            result.rates.reserve(core::maxPathLength);
            for (unsigned length = 1; length <= core::maxPathLength;
                 ++length) {
                result.rates.push_back(sweep.rate(length));
            }
            return result;
        });
    // Step 1 drives all maxPathLength fixed-length predictors at once.
    for (const SweepRates &sweep : sweeps)
        addPredictions(sweep.branches * core::maxPathLength);
    return sweeps;
}

std::vector<double>
ParallelRunner::averageConditionalSweep(std::size_t bytes)
{
    const std::string key = "avg/c/" + std::to_string(bytes);
    auto it = averageSweeps_.find(key);
    if (it != averageSweeps_.end())
        return it->second;

    // Per-benchmark sweeps run in parallel; the accumulation below
    // mirrors ExperimentContext::averageConditionalSweep() term for
    // term (same suite order, same divisions) so the result is
    // bit-identical to the serial path.
    const auto sweeps = suiteSweeps(bytes, false);
    std::vector<double> average(core::maxPathLength, 0.0);
    for (const SweepRates &sweep : sweeps) {
        for (unsigned length = 1; length <= core::maxPathLength;
             ++length) {
            average[length - 1] += sweep.rates[length - 1];
        }
    }
    for (double &rate : average)
        rate /= static_cast<double>(sweeps.size());
    averageSweeps_[key] = average;
    return average;
}

std::vector<double>
ParallelRunner::averageIndirectSweep(std::size_t bytes)
{
    const std::string key = "avg/i/" + std::to_string(bytes);
    auto it = averageSweeps_.find(key);
    if (it != averageSweeps_.end())
        return it->second;

    const auto sweeps = suiteSweeps(bytes, true);
    std::vector<double> average(core::maxPathLength, 0.0);
    unsigned counted = 0;
    for (const SweepRates &sweep : sweeps) {
        // Same filter as the serial path: a benchmark with almost no
        // indirect branches contributes noise, not signal.
        if (sweep.branches < 1000)
            continue;
        ++counted;
        for (unsigned length = 1; length <= core::maxPathLength;
             ++length) {
            average[length - 1] += sweep.rates[length - 1];
        }
    }
    if (counted == 0)
        util::fatal("no benchmark produced indirect branches");
    for (double &rate : average)
        rate /= static_cast<double>(counted);
    averageSweeps_[key] = average;
    return average;
}

namespace {

unsigned
argminLength(const std::vector<double> &rates)
{
    unsigned best = 1;
    for (unsigned length = 2; length <= rates.size(); ++length) {
        if (rates[length - 1] < rates[best - 1])
            best = length;
    }
    return best;
}

} // anonymous namespace

unsigned
ParallelRunner::globalConditionalLength(std::size_t bytes)
{
    return argminLength(averageConditionalSweep(bytes));
}

unsigned
ParallelRunner::globalIndirectLength(std::size_t bytes)
{
    return argminLength(averageIndirectSweep(bytes));
}

} // namespace sim
} // namespace vlp
