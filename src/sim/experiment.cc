/**
 * @file
 * Experiment harness implementation.
 */

#include "sim/experiment.h"

#include <algorithm>
#include <optional>

#include "core/path_predictor.h"
#include "predictors/budget.h"
#include "predictors/gshare.h"
#include "sim/report.h"
#include "predictors/target_cache.h"
#include "store/artifact_store.h"
#include "store/cache_key.h"
#include "store/serialize.h"
#include "util/logging.h"

namespace vlp {
namespace sim {

namespace {

/**
 * Cache-key prefix identifying a synthetic workload: benchmark name,
 * trace generator version, and the global VLPSIM_SCALE (traces are a
 * pure function of these).
 */
store::KeyBuilder
workloadKey(const std::string &kind,
            const workload::BenchmarkSpec &spec)
{
    store::KeyBuilder builder(kind);
    builder.field("workload", spec.name)
        .field("generator",
               std::uint64_t{workload::generatorVersion})
        .field("scale", util::workloadScale());
    return builder;
}

/**
 * Cache-key prefix identifying an external trace: its content hash
 * alone. Generator version and scale are irrelevant to bytes read
 * from disk, and the hash survives renames while invalidating on any
 * content change.
 */
store::KeyBuilder
externalKey(const std::string &kind, const ExternalTrace &trace)
{
    store::KeyBuilder builder(kind);
    builder.field("trace", trace.contentHash);
    return builder;
}

void
addProfileFields(store::KeyBuilder &builder,
                 const core::ProfileOptions &options, bool indirect)
{
    builder.field("class", std::string(indirect ? "ind" : "cond"))
        .field("indexBits", std::uint64_t{options.indexBits})
        .field("minLength", std::uint64_t{options.minLength})
        .field("maxLength", std::uint64_t{options.maxLength})
        .field("rotate", options.history.rotateTargets)
        .field("returns", options.history.includeReturns)
        .field("stack", options.history.historyStack)
        .field("stackDepth",
               std::uint64_t{options.history.historyStackDepth});
}

/** Step-1 profile key fields (independent of step-2 parameters). */
store::CacheKey
profileKey(store::KeyBuilder builder,
           const core::ProfileOptions &options, bool indirect)
{
    addProfileFields(builder, options, indirect);
    return builder.build();
}

/** Step-2 assignment key fields (depend on all profile options). */
store::CacheKey
assignmentKey(store::KeyBuilder builder,
              const core::ProfileOptions &options, bool indirect)
{
    addProfileFields(builder, options, indirect);
    builder.field("candidates", std::uint64_t{options.candidates})
        .field("iterations", std::uint64_t{options.iterations});
    return builder.build();
}

void
addComparisonFields(store::KeyBuilder &builder, bool indirect,
                    std::size_t bytes, unsigned global_length,
                    bool include_tuned)
{
    builder.field("class", std::string(indirect ? "ind" : "cond"))
        .field("bytes", std::uint64_t{bytes})
        .field("globalLength", std::uint64_t{global_length})
        .field("tuned", include_tuned)
        // Comparison rows feed the structured report pipeline; the
        // schema stamp guarantees a sink/layout change can never be
        // served from a stale cached row.
        .field("reportSchema", std::uint64_t{reportSchemaVersion});
}

/** Key for a full predictor-comparison row (synthetic workload). */
store::CacheKey
comparisonKey(const workload::BenchmarkSpec &spec, bool indirect,
              std::size_t bytes, unsigned global_length,
              bool include_tuned)
{
    store::KeyBuilder builder = workloadKey("comparison", spec);
    addComparisonFields(builder, indirect, bytes, global_length,
                        include_tuned);
    return builder.build();
}

/**
 * Key for a full predictor-comparison row (external trace pair). Both
 * content hashes participate: the row depends on the profile trace
 * (assignment, tuned length) *and* the evaluation trace, so a cached
 * row can never leak across pairings. Self-evaluation is simply the
 * profile == test degenerate case and keys consistently.
 */
store::CacheKey
externalComparisonKey(const ExternalTrace &profile,
                      const ExternalTrace &test, bool indirect,
                      std::size_t bytes, unsigned global_length,
                      bool include_tuned)
{
    store::KeyBuilder builder = externalKey("comparison", profile);
    builder.field("test", test.contentHash);
    addComparisonFields(builder, indirect, bytes, global_length,
                        include_tuned);
    return builder.build();
}

} // anonymous namespace

const RateEntry &
ComparisonRow::entry(const std::string &predictor) const
{
    for (const auto &candidate : entries) {
        if (candidate.predictor == predictor)
            return candidate;
    }
    util::fatal("no such predictor in comparison: " + predictor);
}

std::shared_ptr<trace::VectorTraceSource>
ExperimentContext::trace(const workload::BenchmarkSpec &spec,
                         workload::InputKind kind)
{
    const std::string key = spec.name
        + (kind == workload::InputKind::Profile ? "/profile" : "/test");
    for (auto it = traces_.begin(); it != traces_.end(); ++it) {
        if (it->key == key) {
            traces_.splice(traces_.begin(), traces_, it);
            return traces_.front().source;
        }
    }
    TraceEntry entry;
    entry.key = key;
    entry.source = std::make_shared<trace::VectorTraceSource>(
        workload::generateTrace(spec, kind));
    traces_.push_front(std::move(entry));
    while (traces_.size() > traceCacheCapacity)
        traces_.pop_back();
    return traces_.front().source;
}

std::shared_ptr<trace::TraceSource>
ExperimentContext::openExternal(const ExternalTrace &trace) const
{
    if (trace.session) {
        trace.session->reset();
        return trace.session;
    }
    std::unique_ptr<trace::ByteFile> file = trace.opener
        ? trace.opener(trace.path)
        : trace::openByteFile(trace.path);
    return std::make_shared<trace::StreamingTraceReader>(
        std::move(file), trace.chunkRecords);
}

ExperimentContext::Key
ExperimentContext::makeKey(const std::string &name, unsigned index_bits,
                           bool indirect,
                           core::PathHistoryOptions history)
{
    return name + "/" + std::to_string(index_bits)
         + (indirect ? "/i" : "/c")
         + (history.rotateTargets ? "/r1" : "/r0")
         + (history.includeReturns ? "/ret1" : "/ret0")
         + (history.historyStack ? "/hs1" : "/hs0")
         + "/d" + std::to_string(history.depth);
}

ExperimentContext::ProfilerEntry &
ExperimentContext::profilerEntry(const std::string &name,
                                 unsigned index_bits, bool indirect,
                                 core::PathHistoryOptions history)
{
    const Key key = makeKey(name, index_bits, indirect, history);
    auto it = profilers_.find(key);
    if (it == profilers_.end()) {
        core::ProfileOptions options;
        options.indexBits = index_bits;
        options.jobs = step1Jobs_;
        options.history = history;
        ProfilerEntry entry;
        if (indirect) {
            entry.indirect =
                std::make_unique<core::IndirectProfiler>(options);
        } else {
            entry.conditional =
                std::make_unique<core::ConditionalProfiler>(options);
        }
        it = profilers_.emplace(key, std::move(entry)).first;
    }
    return it->second;
}

void
ExperimentContext::ensureStep1(ProfilerEntry &entry,
                               const std::optional<store::CacheKey> &key,
                               const TraceProvider &profile_trace)
{
    if (entry.step1Done)
        return;
    throwIfCancelled();

    const bool indirect = entry.indirect != nullptr;
    if (store_ && key) {
        if (const auto payload = store_->fetch(*key)) {
            try {
                core::FixedLengthSweep sweep;
                std::unordered_map<std::uint64_t, core::BranchProfile>
                    profiles;
                store::decodeStep1Profile(*payload, sweep, profiles);
                if (indirect) {
                    entry.indirect->restoreStep1(std::move(sweep),
                                                 std::move(profiles));
                } else {
                    entry.conditional->restoreStep1(
                        std::move(sweep), std::move(profiles));
                }
                entry.step1Done = true;
                return;
            } catch (const std::exception &error) {
                util::warn(std::string("discarding unusable cached "
                                       "profile: ")
                           + error.what());
            }
        }
    }

    const auto source = profile_trace();
    source->reset();
    if (entry.conditional)
        entry.conditional->runStep1(*source);
    else
        entry.indirect->runStep1(*source);
    entry.step1Done = true;

    if (store_ && key) {
        const core::FixedLengthSweep &sweep =
            indirect ? entry.indirect->step1Sweep()
                     : entry.conditional->step1Sweep();
        const auto &profiles = indirect
            ? entry.indirect->branchProfiles()
            : entry.conditional->branchProfiles();
        store_->insert(*key,
                       store::encodeStep1Profile(sweep, profiles));
    }
}

const core::HashAssignment &
ExperimentContext::ensureAssignment(
        ProfilerEntry &entry,
        const std::optional<store::CacheKey> &assignment_key,
        const std::optional<store::CacheKey> &profile_key,
        const TraceProvider &profile_trace)
{
    if (entry.assignment)
        return *entry.assignment;
    throwIfCancelled();

    // A cached assignment short-circuits both profiling steps; only
    // probe step 1 (and possibly recompute it) on a miss.
    if (store_ && assignment_key) {
        if (const auto payload = store_->fetch(*assignment_key)) {
            try {
                entry.assignment = store::decodeAssignment(*payload);
                return *entry.assignment;
            } catch (const std::exception &error) {
                util::warn(std::string("discarding unusable cached "
                                       "assignment: ")
                           + error.what());
            }
        }
    }

    ensureStep1(entry, profile_key, profile_trace);
    const auto source = profile_trace();
    source->reset();
    if (entry.conditional)
        entry.assignment = entry.conditional->runStep2(*source);
    else
        entry.assignment = entry.indirect->runStep2(*source);
    if (store_ && assignment_key) {
        store_->insert(*assignment_key,
                       store::encodeAssignment(*entry.assignment));
    }
    return *entry.assignment;
}

const core::FixedLengthSweep &
ExperimentContext::conditionalSweep(const workload::BenchmarkSpec &spec,
                                    unsigned index_bits,
                                    core::PathHistoryOptions history)
{
    ProfilerEntry &entry =
        profilerEntry(spec.name, index_bits, false, history);
    std::optional<store::CacheKey> key;
    if (store_) {
        key = profileKey(workloadKey("profile", spec),
                         entry.conditional->options(), false);
    }
    ensureStep1(entry, key, [&] {
        return trace(spec, workload::InputKind::Profile);
    });
    return entry.conditional->step1Sweep();
}

const core::FixedLengthSweep &
ExperimentContext::indirectSweep(const workload::BenchmarkSpec &spec,
                                 unsigned index_bits,
                                 core::PathHistoryOptions history)
{
    ProfilerEntry &entry =
        profilerEntry(spec.name, index_bits, true, history);
    std::optional<store::CacheKey> key;
    if (store_) {
        key = profileKey(workloadKey("profile", spec),
                         entry.indirect->options(), true);
    }
    ensureStep1(entry, key, [&] {
        return trace(spec, workload::InputKind::Profile);
    });
    return entry.indirect->step1Sweep();
}

const core::HashAssignment &
ExperimentContext::conditionalAssignment(
        const workload::BenchmarkSpec &spec, unsigned index_bits,
        core::PathHistoryOptions history)
{
    ProfilerEntry &entry =
        profilerEntry(spec.name, index_bits, false, history);
    std::optional<store::CacheKey> assignment_key;
    std::optional<store::CacheKey> profile_key;
    if (store_) {
        assignment_key = assignmentKey(
            workloadKey("assignment", spec),
            entry.conditional->options(), false);
        profile_key = profileKey(workloadKey("profile", spec),
                                 entry.conditional->options(), false);
    }
    return ensureAssignment(entry, assignment_key, profile_key, [&] {
        return trace(spec, workload::InputKind::Profile);
    });
}

const core::HashAssignment &
ExperimentContext::indirectAssignment(const workload::BenchmarkSpec &spec,
                                      unsigned index_bits,
                                      core::PathHistoryOptions history)
{
    ProfilerEntry &entry =
        profilerEntry(spec.name, index_bits, true, history);
    std::optional<store::CacheKey> assignment_key;
    std::optional<store::CacheKey> profile_key;
    if (store_) {
        assignment_key = assignmentKey(
            workloadKey("assignment", spec),
            entry.indirect->options(), true);
        profile_key = profileKey(workloadKey("profile", spec),
                                 entry.indirect->options(), true);
    }
    return ensureAssignment(entry, assignment_key, profile_key, [&] {
        return trace(spec, workload::InputKind::Profile);
    });
}

const core::FixedLengthSweep &
ExperimentContext::externalSweep(const ExternalTrace &ext,
                                 unsigned index_bits, bool indirect)
{
    // "ext:" + hash cannot collide with a benchmark name, so external
    // profilers share the in-process map with synthetic ones.
    ProfilerEntry &entry = profilerEntry("ext:" + ext.contentHash,
                                         index_bits, indirect, {});
    std::optional<store::CacheKey> key;
    if (store_) {
        const core::ProfileOptions &options =
            indirect ? entry.indirect->options()
                     : entry.conditional->options();
        key = profileKey(externalKey("profile", ext), options,
                         indirect);
    }
    ensureStep1(entry, key, [&]() -> std::shared_ptr<trace::TraceSource> {
        return openExternal(ext);
    });
    return indirect ? entry.indirect->step1Sweep()
                    : entry.conditional->step1Sweep();
}

const core::HashAssignment &
ExperimentContext::externalAssignment(const ExternalTrace &ext,
                                      unsigned index_bits,
                                      bool indirect)
{
    ProfilerEntry &entry = profilerEntry("ext:" + ext.contentHash,
                                         index_bits, indirect, {});
    std::optional<store::CacheKey> assignment_key;
    std::optional<store::CacheKey> profile_key;
    if (store_) {
        const core::ProfileOptions &options =
            indirect ? entry.indirect->options()
                     : entry.conditional->options();
        assignment_key = assignmentKey(externalKey("assignment", ext),
                                       options, indirect);
        profile_key = profileKey(externalKey("profile", ext), options,
                                 indirect);
    }
    return ensureAssignment(
        entry, assignment_key, profile_key,
        [&]() -> std::shared_ptr<trace::TraceSource> {
            return openExternal(ext);
        });
}

std::vector<double>
ExperimentContext::averageConditionalSweep(std::size_t bytes)
{
    const Key key = "avg/c/" + std::to_string(bytes);
    auto it = averageSweeps_.find(key);
    if (it != averageSweeps_.end())
        return it->second;

    const unsigned index_bits = pred::conditionalIndexBits(bytes);
    std::vector<double> average(core::maxPathLength, 0.0);
    const auto &suite = workload::benchmarkSuite();
    for (const auto &spec : suite) {
        const core::FixedLengthSweep &sweep =
            conditionalSweep(spec, index_bits);
        for (unsigned length = 1; length <= core::maxPathLength;
             ++length) {
            average[length - 1] += sweep.rate(length);
        }
    }
    for (double &rate : average)
        rate /= static_cast<double>(suite.size());
    averageSweeps_[key] = average;
    return average;
}

std::vector<double>
ExperimentContext::averageIndirectSweep(std::size_t bytes)
{
    const Key key = "avg/i/" + std::to_string(bytes);
    auto it = averageSweeps_.find(key);
    if (it != averageSweeps_.end())
        return it->second;

    const unsigned index_bits = pred::indirectIndexBits(bytes);
    std::vector<double> average(core::maxPathLength, 0.0);
    // Average over the benchmarks that execute a meaningful number of
    // indirect branches; a program with three indirect branch sites
    // contributes noise, not signal, to the average.
    unsigned counted = 0;
    for (const auto &spec : workload::benchmarkSuite()) {
        const core::FixedLengthSweep &sweep =
            indirectSweep(spec, index_bits);
        if (sweep.branches < 1000)
            continue;
        ++counted;
        for (unsigned length = 1; length <= core::maxPathLength;
             ++length) {
            average[length - 1] += sweep.rate(length);
        }
    }
    if (counted == 0)
        util::fatal("no benchmark produced indirect branches");
    for (double &rate : average)
        rate /= static_cast<double>(counted);
    averageSweeps_[key] = average;
    return average;
}

namespace {

unsigned
argminLength(const std::vector<double> &rates)
{
    unsigned best = 1;
    for (unsigned length = 2; length <= rates.size(); ++length) {
        if (rates[length - 1] < rates[best - 1])
            best = length;
    }
    return best;
}

} // anonymous namespace

unsigned
ExperimentContext::globalConditionalLength(std::size_t bytes)
{
    return argminLength(averageConditionalSweep(bytes));
}

unsigned
ExperimentContext::globalIndirectLength(std::size_t bytes)
{
    return argminLength(averageIndirectSweep(bytes));
}

namespace {

RateEntry
toRateEntry(const PredictorResult &result)
{
    RateEntry entry;
    entry.predictor = result.name;
    entry.branches = result.branches;
    entry.mispredictions = result.mispredictions;
    entry.rate = result.rate();
    return entry;
}

/** Fetch a cached comparison row, or nullopt on miss/corruption. */
std::optional<ComparisonRow>
fetchComparisonRow(store::ArtifactStore *store,
                   const store::CacheKey &key)
{
    if (!store)
        return std::nullopt;
    const auto payload = store->fetch(key);
    if (!payload)
        return std::nullopt;
    try {
        return store::decodeComparisonRow(*payload);
    } catch (const std::exception &error) {
        util::warn(std::string("discarding unusable cached comparison "
                               "row: ")
                   + error.what());
        return std::nullopt;
    }
}

/**
 * Shared conditional-comparison body: build the predictor set, replay
 * the evaluation trace, and assemble the row.
 */
ComparisonRow
runConditionalComparison(const std::string &name,
                         trace::TraceSource &eval_trace,
                         unsigned index_bits, unsigned global_length,
                         unsigned tuned_length,
                         const core::HashAssignment &assignment,
                         bool include_tuned)
{
    pred::GsharePredictor gshare(index_bits);
    core::PathConditionalPredictor flp(index_bits, global_length);
    core::PathConditionalPredictor flp_tuned(index_bits, tuned_length);
    core::PathConditionalPredictor vlp(index_bits, assignment);

    Simulator simulator;
    simulator.addConditional(&gshare);
    simulator.addConditional(&flp);
    if (include_tuned)
        simulator.addConditional(&flp_tuned);
    simulator.addConditional(&vlp);

    eval_trace.reset();
    simulator.run(eval_trace);

    ComparisonRow row;
    row.benchmark = name;
    for (const auto &result : simulator.conditionalResults())
        row.entries.push_back(toRateEntry(result));
    if (include_tuned)
        row.entries[2].predictor = names::flpTuned;
    return row;
}

/** Indirect counterpart of runConditionalComparison(). */
ComparisonRow
runIndirectComparison(const std::string &name,
                      trace::TraceSource &eval_trace,
                      unsigned index_bits, unsigned global_length,
                      unsigned tuned_length,
                      const core::HashAssignment &assignment,
                      bool include_tuned)
{
    pred::PathTargetCache chp_path(index_bits);
    pred::PatternTargetCache chp_pattern(index_bits);
    core::PathIndirectPredictor flp(index_bits, global_length);
    core::PathIndirectPredictor flp_tuned(index_bits, tuned_length);
    core::PathIndirectPredictor vlp(index_bits, assignment);

    Simulator simulator;
    simulator.addIndirect(&chp_path);
    simulator.addIndirect(&chp_pattern);
    simulator.addIndirect(&flp);
    if (include_tuned)
        simulator.addIndirect(&flp_tuned);
    simulator.addIndirect(&vlp);

    eval_trace.reset();
    simulator.run(eval_trace);

    ComparisonRow row;
    row.benchmark = name;
    for (const auto &result : simulator.indirectResults())
        row.entries.push_back(toRateEntry(result));
    if (include_tuned)
        row.entries[3].predictor = names::flpTuned;
    return row;
}

} // anonymous namespace

ComparisonRow
compareConditional(ExperimentContext &context,
                   const workload::BenchmarkSpec &spec,
                   std::size_t bytes, unsigned global_length,
                   bool include_tuned)
{
    context.throwIfCancelled();
    const store::CacheKey key =
        comparisonKey(spec, false, bytes, global_length, include_tuned);
    if (auto cached = fetchComparisonRow(context.store(), key))
        return *cached;

    const unsigned index_bits = pred::conditionalIndexBits(bytes);
    const unsigned tuned_length =
        context.conditionalSweep(spec, index_bits).bestLength();
    const core::HashAssignment &assignment =
        context.conditionalAssignment(spec, index_bits);

    const auto test_trace =
        context.trace(spec, workload::InputKind::Test);
    ComparisonRow row = runConditionalComparison(
        spec.name, *test_trace, index_bits, global_length, tuned_length,
        assignment, include_tuned);
    if (auto *store = context.store())
        store->insert(key, store::encodeComparisonRow(row));
    return row;
}

ComparisonRow
compareIndirect(ExperimentContext &context,
                const workload::BenchmarkSpec &spec, std::size_t bytes,
                unsigned global_length, bool include_tuned)
{
    context.throwIfCancelled();
    const store::CacheKey key =
        comparisonKey(spec, true, bytes, global_length, include_tuned);
    if (auto cached = fetchComparisonRow(context.store(), key))
        return *cached;

    const unsigned index_bits = pred::indirectIndexBits(bytes);
    const unsigned tuned_length =
        context.indirectSweep(spec, index_bits).bestLength();
    const core::HashAssignment &assignment =
        context.indirectAssignment(spec, index_bits);

    const auto test_trace =
        context.trace(spec, workload::InputKind::Test);
    ComparisonRow row = runIndirectComparison(
        spec.name, *test_trace, index_bits, global_length, tuned_length,
        assignment, include_tuned);
    if (auto *store = context.store())
        store->insert(key, store::encodeComparisonRow(row));
    return row;
}

ComparisonRow
compareExternalConditional(ExperimentContext &context,
                           const ExternalTrace &profile,
                           const ExternalTrace &test, std::size_t bytes,
                           unsigned global_length)
{
    context.throwIfCancelled();
    const store::CacheKey key = externalComparisonKey(
        profile, test, false, bytes, global_length, true);
    if (auto cached = fetchComparisonRow(context.store(), key))
        return *cached;

    // Everything learned comes from the profile trace (and is cached
    // under its content hash); only the replay below touches the test
    // trace.
    const unsigned index_bits = pred::conditionalIndexBits(bytes);
    const unsigned tuned_length =
        context.externalSweep(profile, index_bits, false).bestLength();
    const core::HashAssignment &assignment =
        context.externalAssignment(profile, index_bits, false);

    const auto eval_trace = context.openExternal(test);
    ComparisonRow row = runConditionalComparison(
        test.name, *eval_trace, index_bits, global_length,
        tuned_length, assignment, true);
    if (auto *store = context.store())
        store->insert(key, store::encodeComparisonRow(row));
    return row;
}

ComparisonRow
compareExternalIndirect(ExperimentContext &context,
                        const ExternalTrace &profile,
                        const ExternalTrace &test, std::size_t bytes,
                        unsigned global_length)
{
    context.throwIfCancelled();
    const store::CacheKey key = externalComparisonKey(
        profile, test, true, bytes, global_length, true);
    if (auto cached = fetchComparisonRow(context.store(), key))
        return *cached;

    const unsigned index_bits = pred::indirectIndexBits(bytes);
    const unsigned tuned_length =
        context.externalSweep(profile, index_bits, true).bestLength();
    const core::HashAssignment &assignment =
        context.externalAssignment(profile, index_bits, true);

    const auto eval_trace = context.openExternal(test);
    ComparisonRow row = runIndirectComparison(
        test.name, *eval_trace, index_bits, global_length,
        tuned_length, assignment, true);
    if (auto *store = context.store())
        store->insert(key, store::encodeComparisonRow(row));
    return row;
}

ComparisonRow
compareExternalConditional(ExperimentContext &context,
                           const ExternalTrace &trace,
                           std::size_t bytes, unsigned global_length)
{
    return compareExternalConditional(context, trace, trace, bytes,
                                      global_length);
}

ComparisonRow
compareExternalIndirect(ExperimentContext &context,
                        const ExternalTrace &trace, std::size_t bytes,
                        unsigned global_length)
{
    return compareExternalIndirect(context, trace, trace, bytes,
                                   global_length);
}

} // namespace sim
} // namespace vlp
