/**
 * @file
 * Experiment harness implementation.
 */

#include "sim/experiment.h"

#include <algorithm>

#include "core/path_predictor.h"
#include "predictors/budget.h"
#include "predictors/gshare.h"
#include "predictors/target_cache.h"
#include "util/logging.h"

namespace vlp {
namespace sim {

const RateEntry &
ComparisonRow::entry(const std::string &predictor) const
{
    for (const auto &candidate : entries) {
        if (candidate.predictor == predictor)
            return candidate;
    }
    util::fatal("no such predictor in comparison: " + predictor);
}

std::shared_ptr<trace::VectorTraceSource>
ExperimentContext::trace(const workload::BenchmarkSpec &spec,
                         workload::InputKind kind)
{
    const std::string key = spec.name
        + (kind == workload::InputKind::Profile ? "/profile" : "/test");
    for (auto it = traces_.begin(); it != traces_.end(); ++it) {
        if (it->key == key) {
            traces_.splice(traces_.begin(), traces_, it);
            return traces_.front().source;
        }
    }
    TraceEntry entry;
    entry.key = key;
    entry.source = std::make_shared<trace::VectorTraceSource>(
        workload::generateTrace(spec, kind));
    traces_.push_front(std::move(entry));
    while (traces_.size() > traceCacheCapacity)
        traces_.pop_back();
    return traces_.front().source;
}

ExperimentContext::Key
ExperimentContext::makeKey(const std::string &name, unsigned index_bits,
                           bool indirect,
                           core::PathHistoryOptions history)
{
    return name + "/" + std::to_string(index_bits)
         + (indirect ? "/i" : "/c")
         + (history.rotateTargets ? "/r1" : "/r0")
         + (history.includeReturns ? "/ret1" : "/ret0")
         + (history.historyStack ? "/hs1" : "/hs0")
         + "/d" + std::to_string(history.depth);
}

ExperimentContext::ProfilerEntry &
ExperimentContext::profilerEntry(const workload::BenchmarkSpec &spec,
                                 unsigned index_bits, bool indirect,
                                 core::PathHistoryOptions history)
{
    const Key key = makeKey(spec.name, index_bits, indirect, history);
    auto it = profilers_.find(key);
    if (it == profilers_.end()) {
        core::ProfileOptions options;
        options.indexBits = index_bits;
        options.history = history;
        ProfilerEntry entry;
        if (indirect) {
            entry.indirect =
                std::make_unique<core::IndirectProfiler>(options);
        } else {
            entry.conditional =
                std::make_unique<core::ConditionalProfiler>(options);
        }
        it = profilers_.emplace(key, std::move(entry)).first;
    }
    return it->second;
}

void
ExperimentContext::ensureStep1(ProfilerEntry &entry,
                               const workload::BenchmarkSpec &spec)
{
    if (entry.step1Done)
        return;
    const auto profile_trace = trace(spec, workload::InputKind::Profile);
    profile_trace->reset();
    if (entry.conditional)
        entry.conditional->runStep1(*profile_trace);
    else
        entry.indirect->runStep1(*profile_trace);
    entry.step1Done = true;
}

const core::FixedLengthSweep &
ExperimentContext::conditionalSweep(const workload::BenchmarkSpec &spec,
                                    unsigned index_bits,
                                    core::PathHistoryOptions history)
{
    ProfilerEntry &entry =
        profilerEntry(spec, index_bits, false, history);
    ensureStep1(entry, spec);
    return entry.conditional->step1Sweep();
}

const core::FixedLengthSweep &
ExperimentContext::indirectSweep(const workload::BenchmarkSpec &spec,
                                 unsigned index_bits,
                                 core::PathHistoryOptions history)
{
    ProfilerEntry &entry =
        profilerEntry(spec, index_bits, true, history);
    ensureStep1(entry, spec);
    return entry.indirect->step1Sweep();
}

const core::HashAssignment &
ExperimentContext::conditionalAssignment(
        const workload::BenchmarkSpec &spec, unsigned index_bits,
        core::PathHistoryOptions history)
{
    ProfilerEntry &entry =
        profilerEntry(spec, index_bits, false, history);
    ensureStep1(entry, spec);
    if (!entry.assignment) {
        const auto profile_trace =
            trace(spec, workload::InputKind::Profile);
        profile_trace->reset();
        entry.assignment = entry.conditional->runStep2(*profile_trace);
    }
    return *entry.assignment;
}

const core::HashAssignment &
ExperimentContext::indirectAssignment(const workload::BenchmarkSpec &spec,
                                      unsigned index_bits,
                                      core::PathHistoryOptions history)
{
    ProfilerEntry &entry =
        profilerEntry(spec, index_bits, true, history);
    ensureStep1(entry, spec);
    if (!entry.assignment) {
        const auto profile_trace =
            trace(spec, workload::InputKind::Profile);
        profile_trace->reset();
        entry.assignment = entry.indirect->runStep2(*profile_trace);
    }
    return *entry.assignment;
}

std::vector<double>
ExperimentContext::averageConditionalSweep(std::size_t bytes)
{
    const Key key = "avg/c/" + std::to_string(bytes);
    auto it = averageSweeps_.find(key);
    if (it != averageSweeps_.end())
        return it->second;

    const unsigned index_bits = pred::conditionalIndexBits(bytes);
    std::vector<double> average(core::maxPathLength, 0.0);
    const auto &suite = workload::benchmarkSuite();
    for (const auto &spec : suite) {
        const core::FixedLengthSweep &sweep =
            conditionalSweep(spec, index_bits);
        for (unsigned length = 1; length <= core::maxPathLength;
             ++length) {
            average[length - 1] += sweep.rate(length);
        }
    }
    for (double &rate : average)
        rate /= static_cast<double>(suite.size());
    averageSweeps_[key] = average;
    return average;
}

std::vector<double>
ExperimentContext::averageIndirectSweep(std::size_t bytes)
{
    const Key key = "avg/i/" + std::to_string(bytes);
    auto it = averageSweeps_.find(key);
    if (it != averageSweeps_.end())
        return it->second;

    const unsigned index_bits = pred::indirectIndexBits(bytes);
    std::vector<double> average(core::maxPathLength, 0.0);
    // Average over the benchmarks that execute a meaningful number of
    // indirect branches; a program with three indirect branch sites
    // contributes noise, not signal, to the average.
    unsigned counted = 0;
    for (const auto &spec : workload::benchmarkSuite()) {
        const core::FixedLengthSweep &sweep =
            indirectSweep(spec, index_bits);
        if (sweep.branches < 1000)
            continue;
        ++counted;
        for (unsigned length = 1; length <= core::maxPathLength;
             ++length) {
            average[length - 1] += sweep.rate(length);
        }
    }
    if (counted == 0)
        util::fatal("no benchmark produced indirect branches");
    for (double &rate : average)
        rate /= static_cast<double>(counted);
    averageSweeps_[key] = average;
    return average;
}

namespace {

unsigned
argminLength(const std::vector<double> &rates)
{
    unsigned best = 1;
    for (unsigned length = 2; length <= rates.size(); ++length) {
        if (rates[length - 1] < rates[best - 1])
            best = length;
    }
    return best;
}

} // anonymous namespace

unsigned
ExperimentContext::globalConditionalLength(std::size_t bytes)
{
    return argminLength(averageConditionalSweep(bytes));
}

unsigned
ExperimentContext::globalIndirectLength(std::size_t bytes)
{
    return argminLength(averageIndirectSweep(bytes));
}

namespace {

RateEntry
toRateEntry(const PredictorResult &result)
{
    RateEntry entry;
    entry.predictor = result.name;
    entry.branches = result.branches;
    entry.mispredictions = result.mispredictions;
    entry.rate = result.rate();
    return entry;
}

} // anonymous namespace

ComparisonRow
compareConditional(ExperimentContext &context,
                   const workload::BenchmarkSpec &spec,
                   std::size_t bytes, unsigned global_length,
                   bool include_tuned)
{
    const unsigned index_bits = pred::conditionalIndexBits(bytes);

    const unsigned tuned_length =
        context.conditionalSweep(spec, index_bits).bestLength();
    const core::HashAssignment &assignment =
        context.conditionalAssignment(spec, index_bits);

    pred::GsharePredictor gshare(index_bits);
    core::PathConditionalPredictor flp(index_bits, global_length);
    core::PathConditionalPredictor flp_tuned(index_bits, tuned_length);
    core::PathConditionalPredictor vlp(index_bits, assignment);

    Simulator simulator;
    simulator.addConditional(&gshare);
    simulator.addConditional(&flp);
    if (include_tuned)
        simulator.addConditional(&flp_tuned);
    simulator.addConditional(&vlp);

    const auto test_trace =
        context.trace(spec, workload::InputKind::Test);
    test_trace->reset();
    simulator.run(*test_trace);

    ComparisonRow row;
    row.benchmark = spec.name;
    for (const auto &result : simulator.conditionalResults())
        row.entries.push_back(toRateEntry(result));
    if (include_tuned)
        row.entries[2].predictor = names::flpTuned;
    return row;
}

ComparisonRow
compareIndirect(ExperimentContext &context,
                const workload::BenchmarkSpec &spec, std::size_t bytes,
                unsigned global_length, bool include_tuned)
{
    const unsigned index_bits = pred::indirectIndexBits(bytes);

    const unsigned tuned_length =
        context.indirectSweep(spec, index_bits).bestLength();
    const core::HashAssignment &assignment =
        context.indirectAssignment(spec, index_bits);

    pred::PathTargetCache chp_path(index_bits);
    pred::PatternTargetCache chp_pattern(index_bits);
    core::PathIndirectPredictor flp(index_bits, global_length);
    core::PathIndirectPredictor flp_tuned(index_bits, tuned_length);
    core::PathIndirectPredictor vlp(index_bits, assignment);

    Simulator simulator;
    simulator.addIndirect(&chp_path);
    simulator.addIndirect(&chp_pattern);
    simulator.addIndirect(&flp);
    if (include_tuned)
        simulator.addIndirect(&flp_tuned);
    simulator.addIndirect(&vlp);

    const auto test_trace =
        context.trace(spec, workload::InputKind::Test);
    test_trace->reset();
    simulator.run(*test_trace);

    ComparisonRow row;
    row.benchmark = spec.name;
    for (const auto &result : simulator.indirectResults())
        row.entries.push_back(toRateEntry(result));
    if (include_tuned)
        row.entries[3].predictor = names::flpTuned;
    return row;
}

} // namespace sim
} // namespace vlp
