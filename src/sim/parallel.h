/**
 * @file
 * Parallel experiment engine.
 *
 * The paper's methodology — profile every benchmark, then evaluate a
 * grid of benchmark x predictor x table-budget points — is
 * embarrassingly parallel across benchmarks. ParallelRunner shards
 * that grid at benchmark granularity over a fixed thread pool
 * (util::ThreadPool), gives every worker its own private
 * ExperimentContext (so the trace and profiler caches need no locks),
 * and merges results in deterministic benchmark order.
 *
 * Determinism contract: trace generation, profiling, and simulation
 * are all pure functions of the benchmark spec (the xoshiro RNG is
 * seeded per benchmark, never from global state), and reductions
 * accumulate in suite order on the controlling thread. Output is
 * therefore bit-identical for any --jobs value; --jobs 1 additionally
 * bypasses the pool and runs the exact serial code path.
 */

#ifndef VLPSIM_SIM_PARALLEL_H
#define VLPSIM_SIM_PARALLEL_H

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/experiment.h"
#include "util/thread_pool.h"
#include "workload/benchmarks.h"

namespace vlp {
namespace sim {

/**
 * Shards experiment work across worker threads, each owning a private
 * ExperimentContext, and reduces results in deterministic order.
 *
 * Sharding is static: item i of a map() always runs in worker
 * i % jobs(), and each worker processes its items in increasing index
 * order on its own context. Repeating a map over the same item list
 * therefore hits the same worker's caches (step-1 profiles computed
 * for the suite-average sweep are reused by the per-benchmark
 * comparisons), and results never depend on thread scheduling.
 */
class ParallelRunner
{
  public:
    /**
     * @param jobs worker count; 0 means "one per hardware thread".
     *             jobs == 1 runs everything inline on the calling
     *             thread with no pool — the exact serial path.
     */
    explicit ParallelRunner(unsigned jobs = 0);

    ParallelRunner(const ParallelRunner &) = delete;
    ParallelRunner &operator=(const ParallelRunner &) = delete;

    /** Effective worker count (never 0). */
    unsigned jobs() const { return jobs_; }

    /**
     * Worker 0's context, for callers that mix parallel sweeps with
     * ad-hoc serial queries (e.g. a per-benchmark tuned length).
     */
    ExperimentContext &context() { return *contexts_.front(); }

    /**
     * Attach one artifact store to every worker context (the store is
     * internally synchronized; pass nullptr to detach). Call before
     * submitting work.
     */
    void setStore(std::shared_ptr<store::ArtifactStore> store)
    {
        for (auto &context : contexts_)
            context->setStore(store);
    }

    /**
     * Attach a cooperative cancellation token to every worker context
     * (pass nullptr to detach). Once the token fires, each worker
     * unwinds with util::CancelledError at its next step boundary and
     * the map()/compare call rethrows it on the controlling thread.
     */
    void setCancelToken(std::shared_ptr<const util::CancelToken> token)
    {
        for (auto &context : contexts_)
            context->setCancelToken(token);
    }

    /**
     * Run fn(context, i) for i in [0, count) across the pool and
     * return the results in index order. fn must only touch the
     * context it is handed plus its own locals; exceptions thrown by
     * fn are rethrown (first one wins) on the calling thread after
     * all workers finish.
     */
    template <typename T>
    std::vector<T> map(std::size_t count,
                       const std::function<T(ExperimentContext &,
                                             std::size_t)> &fn)
    {
        std::vector<T> results(count);
        runSharded(count, [&](ExperimentContext &context,
                              std::size_t index) {
            results[index] = fn(context, index);
        });
        return results;
    }

    /**
     * compareConditional() for each of @p specs (suite order in,
     * suite order out), sharded across workers.
     */
    std::vector<ComparisonRow>
    compareConditionalSuite(const std::vector<workload::BenchmarkSpec> &specs,
                            std::size_t bytes, unsigned global_length,
                            bool include_tuned = false);

    /** Indirect counterpart of compareConditionalSuite(). */
    std::vector<ComparisonRow>
    compareIndirectSuite(const std::vector<workload::BenchmarkSpec> &specs,
                         std::size_t bytes, unsigned global_length,
                         bool include_tuned = false);

    /**
     * ExperimentContext::averageConditionalSweep() with the
     * per-benchmark step-1 sweeps computed in parallel. The
     * accumulation runs in suite order on the calling thread, so the
     * floating-point result is bit-identical to the serial method.
     */
    std::vector<double> averageConditionalSweep(std::size_t bytes);

    /** Indirect counterpart of averageConditionalSweep(). */
    std::vector<double> averageIndirectSweep(std::size_t bytes);

    /** The global fixed path length for conditional predictors. */
    unsigned globalConditionalLength(std::size_t bytes);

    /** The global fixed path length for indirect predictors. */
    unsigned globalIndirectLength(std::size_t bytes);

    /**
     * Dynamic predictions issued through this runner so far (one per
     * predictor per branch), for throughput reporting. map() callers
     * can contribute their own counts with addPredictions().
     */
    std::uint64_t predictions() const
    {
        return predictions_.load(std::memory_order_relaxed);
    }

    /** Thread-safe: add @p count predictions to the running total. */
    void addPredictions(std::uint64_t count)
    {
        predictions_.fetch_add(count, std::memory_order_relaxed);
    }

  private:
    /**
     * Per-benchmark step-1 rate curves (rates[L-1] percent, L =
     * 1..maxPathLength) plus the profiled branch count, computed in
     * parallel over the whole suite.
     */
    struct SweepRates
    {
        std::vector<double> rates;
        std::uint64_t branches = 0;
    };

    std::vector<SweepRates> suiteSweeps(std::size_t bytes, bool indirect);

    /** Shard fn over [0, count): item i runs in worker i % jobs(). */
    void runSharded(std::size_t count,
                    const std::function<void(ExperimentContext &,
                                             std::size_t)> &fn);

    unsigned jobs_;
    std::unique_ptr<util::ThreadPool> pool_; // null when jobs_ == 1
    std::vector<std::unique_ptr<ExperimentContext>> contexts_;
    std::map<std::string, std::vector<double>> averageSweeps_;
    std::atomic<std::uint64_t> predictions_{0};
};

} // namespace sim
} // namespace vlp

#endif // VLPSIM_SIM_PARALLEL_H
