/**
 * @file
 * Shared experiment service: the suite/sweep entry points behind both
 * the `vlpsim suite` subcommand and the serve daemon.
 *
 * The CLI and the daemon must produce byte-identical reports for the
 * same request — that is the contract that lets a warm daemon answer
 * from the artifact store with exactly what a cold CLI run would have
 * printed. To make the contract structural rather than aspirational,
 * the report assembly lives here once: runSuiteCompare() builds the
 * `predictor suite` report (title, metadata order, section caption,
 * row layout) and both front ends call it. Cache counters are
 * deliberately *not* part of the report it returns — they vary
 * between cold and warm runs, so each front end reports them out of
 * band (CLI: appended metadata + stderr; serve: result-frame fields).
 *
 * Cancellation is cooperative: pass a util::CancelToken and the run
 * unwinds with util::CancelledError at the next step boundary.
 * Progress is coarse-grained (stage boundaries), which is all the
 * serve heartbeat needs.
 */

#ifndef VLPSIM_SIM_SERVICE_H
#define VLPSIM_SIM_SERVICE_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/report.h"
#include "util/cancel.h"

namespace vlp {
namespace store {
class ArtifactStore;
} // namespace store

namespace sim {

/** One `predictor suite` comparison over the synthetic benchmarks. */
struct SuiteCompareSpec
{
    /** false = conditional branches, true = indirect. */
    bool indirect = false;
    /** Predictor table budget in bytes. */
    std::size_t bytes = 8 * 1024;
    /** Worker threads (0 = one per hardware thread, 1 = serial). */
    unsigned jobs = 1;
};

/** A table-budget sweep: one suite comparison per byte budget. */
struct SweepSpec
{
    /** false = conditional branches, true = indirect. */
    bool indirect = false;
    /** Budgets to sweep, one report section each, in order. */
    std::vector<std::size_t> budgets;
    /** Worker threads (0 = one per hardware thread, 1 = serial). */
    unsigned jobs = 1;
};

/** Coarse progress tick, emitted at stage boundaries. */
struct ServiceProgress
{
    /** Human-readable stage, e.g. "global length" or "compare". */
    std::string stage;
    /** Stages finished so far. */
    std::size_t completed = 0;
    /** Total stages in this run. */
    std::size_t total = 0;
};

/** Progress callback; invoked on the controlling thread. */
using ProgressFn = std::function<void(const ServiceProgress &)>;

/** A finished run: the report plus out-of-band throughput data. */
struct ServiceResult
{
    Report report;
    /** Dynamic predictions issued (one per predictor per branch). */
    std::uint64_t predictions = 0;
    /** Effective worker count used. */
    unsigned jobs = 1;
};

/**
 * Profile and compare the paper's predictors over the synthetic
 * benchmark suite. The returned report is byte-identical to what
 * `vlpsim suite <class> <bytes> --jobs N` prints (before any cache
 * metadata the CLI appends).
 *
 * @throws util::CancelledError when @p cancel fires mid-run
 */
ServiceResult
runSuiteCompare(const SuiteCompareSpec &spec,
                std::shared_ptr<store::ArtifactStore> store = nullptr,
                std::shared_ptr<const util::CancelToken> cancel =
                    nullptr,
                const ProgressFn &progress = {});

/**
 * Run the suite comparison across a list of table budgets, reusing
 * one worker pool (and its step-1 profile caches) for every budget.
 * The report carries one section per budget, each laid out exactly
 * like the corresponding runSuiteCompare() section.
 *
 * @throws util::CancelledError when @p cancel fires mid-run
 * @throws std::runtime_error when @p spec.budgets is empty or holds 0
 */
ServiceResult
runSweep(const SweepSpec &spec,
         std::shared_ptr<store::ArtifactStore> store = nullptr,
         std::shared_ptr<const util::CancelToken> cancel = nullptr,
         const ProgressFn &progress = {});

/**
 * Stamp the build version (git describe, from util::buildVersion())
 * into @p report's metadata as `vlpsimVersion`. Idempotent.
 */
void stampBuildInfo(Report &report);

} // namespace sim
} // namespace vlp

#endif // VLPSIM_SIM_SERVICE_H
