/**
 * @file
 * Speculative fetch-bundle front end (DESIGN.md §17).
 *
 * The Simulator replays branches in retirement order: every predictor
 * sees predict → update → observe per record, with tables and history
 * advancing in lock step. Real front ends do not work that way — the
 * paper's premise (Sections 1 and 4.3) is a wide machine predicting up
 * to m branches per cycle, advancing its history *speculatively* at
 * fetch and repairing it from a checkpoint when a misprediction
 * flushes the pipe, with the §4.3 HFNT re-predict bubble charged where
 * it occurs in the fetch stream.
 *
 * FetchEngine models that split between predictor state and update
 * timing while keeping the accuracy numbers bit-identical to the
 * Simulator. The key invariant: each record is processed to completion
 * in trace order (predict, count, update, then the history advance),
 * so speculation changes only *when* cycles are charged, never what
 * the tables learn. On a correct prediction the speculative advance of
 * the as-predicted branch *is* the architectural advance; on a
 * mispredict the engine checkpoints the predictor, advances down the
 * wrong path, restores the checkpoint, and then applies the actual
 * outcome — exactly what checkpoint-repair hardware converges to at
 * retirement, and algebraically equal to a plain observe().
 *
 * Timing is accounted per predictor slot, independently. A fetch
 * bundle costs one cycle and closes when m branches fill it, when a
 * misprediction flushes it (plus the flush penalty), when an HFNT
 * mismatch inserts a re-predict bubble (plus the bubble penalty), when
 * two branches in the bundle need the same single-ported table or
 * HFNT bank (the conflicting branch starts the next bundle), or when a
 * non-conditional control transfer redirects fetch.
 *
 * The "frontend.checkpoint.restore" chaos section (util::chaos)
 * injects *spurious* repairs on correctly-predicted branches —
 * checkpoint, speculate, restore, replay — which must leave every
 * statistic unchanged; the soak campaign asserts exactly that.
 */

#ifndef VLPSIM_SIM_FRONTEND_H
#define VLPSIM_SIM_FRONTEND_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/hfnt.h"
#include "predictors/predictor.h"
#include "predictors/ras.h"
#include "sim/simulator.h"
#include "trace/trace_source.h"

namespace vlp {
namespace sim {

/** How the engine advances predictor state. */
enum class FrontendMode
{
    /**
     * Retirement order, exactly the Simulator's loop, with closed-form
     * timing. The equivalence baseline.
     */
    RetireOrder,
    /**
     * Speculate-at-fetch with checkpoint repair and per-bundle cycle
     * accounting.
     */
    FetchBundle,
};

/** Front-end configuration. */
struct FrontendParameters
{
    FrontendMode mode = FrontendMode::FetchBundle;
    /** m: branch slots per fetch bundle (one bundle per cycle). */
    unsigned bundleWidth = 4;
    /** Average instructions fetched per branch (for IPC). */
    double instructionsPerBranch = 5.0;
    /** Pipeline flush penalty per misprediction, in cycles. */
    double mispredictPenaltyCycles = 10.0;
    /** §4.3 re-predict bubble per HFNT mismatch, in cycles. */
    double repredictPenaltyCycles = 1.0;
    /**
     * Work-unit identity for the chaos switchboard (typically the
     * workload name), keeping fault decisions stable across --jobs.
     */
    std::string chaosIdentity;
};

/**
 * Cycle and bandwidth ledger for one predictor slot. Also the shape of
 * the closed-form model (sim/timing.h aliases TimingEstimate to this
 * struct), so engine-measured and estimated costs compare field for
 * field. All derived rates have explicit zero-result semantics: no
 * branches or no cycles yields 0.0, never NaN or infinity.
 */
struct FrontendResult
{
    /** Cycles spent issuing fetch bundles (closed form: fetching). */
    double baseCycles = 0.0;
    /** Cycles lost to misprediction flushes. */
    double mispredictCycles = 0.0;
    /** Cycles lost to HFNT re-predict bubbles. */
    double repredictCycles = 0.0;

    /** Dynamic branches predicted by this slot. */
    std::uint64_t branches = 0;
    /** Mispredicted branches. */
    std::uint64_t mispredictions = 0;
    /** HFNT mismatches charged in-line (0 without an HFNT). */
    std::uint64_t repredictEvents = 0;
    /** Fetch bundles issued (engine modes only; 0 in closed form). */
    std::uint64_t bundles = 0;
    /** Bundles split because two branches hit one bank. */
    std::uint64_t bankConflicts = 0;
    /** History repairs performed (mispredict + chaos-forced). */
    std::uint64_t checkpointRestores = 0;

    /** Total front-end cycles. */
    double totalCycles() const;

    /** Instructions per cycle; 0 when either operand is empty. */
    double ipc(double instructions) const;

    /** Branch throughput in branches per cycle; 0 when no cycles. */
    double branchesPerCycle() const;
};

/**
 * Closed-form fill of a FrontendResult — the thin fallback the
 * RetireOrder mode and sim/timing.h build on: bundles of up to m
 * branches with no conflict or speculation modelling. branches == 0 or
 * bundle_width == 0 yields the all-zero result.
 */
FrontendResult closedFormFrontend(const FrontendParameters &parameters,
                                  std::uint64_t branches,
                                  std::uint64_t mispredictions,
                                  std::uint64_t repredict_events);

/**
 * The fetch-bundle front end. Register predictors (borrowed, like the
 * Simulator's), optionally attach an HFNT to a conditional slot, call
 * run(), then read accuracy results (bit-identical to the Simulator in
 * both modes) and per-slot timing.
 */
class FetchEngine
{
  public:
    explicit FetchEngine(FrontendParameters parameters = {});

    /** Register a conditional predictor. Must outlive the engine. */
    void addConditional(pred::ConditionalPredictor *predictor);

    /** Register an indirect predictor. Must outlive the engine. */
    void addIndirect(pred::IndirectPredictor *predictor);

    /**
     * Attach an HFNT to conditional slot @p slot (registration
     * order); @p actual_number yields the branch's true hash function
     * number as decode would reveal it. The engine then charges
     * re-predict bubbles in-line and models HFNT bank conflicts.
     */
    void attachHfnt(
        std::size_t slot, core::HashFunctionNumberTable *hfnt,
        std::function<unsigned(const trace::BranchRecord &)>
            actual_number);

    /** Consume @p source from its current position to exhaustion. */
    void run(trace::TraceSource &source);

    /** Accuracy results, bit-identical to Simulator's. */
    std::vector<PredictorResult> conditionalResults() const;

    /** Indirect accuracy results. */
    std::vector<PredictorResult> indirectResults() const;

    /** Return address stack accuracy. */
    PredictorResult rasResult() const;

    /** Timing ledger for conditional slot @p slot. */
    const FrontendResult &conditionalTiming(std::size_t slot) const;

    /** Timing ledger for indirect slot @p slot (closed form). */
    const FrontendResult &indirectTiming(std::size_t slot) const;

    /** The configuration in force. */
    const FrontendParameters &parameters() const { return parameters_; }

  private:
    struct ConditionalSlot
    {
        pred::ConditionalPredictor *predictor = nullptr;
        /** Accuracy counters live in the timing ledger. */
        FrontendResult timing;
        core::HashFunctionNumberTable *hfnt = nullptr;
        std::function<unsigned(const trace::BranchRecord &)>
            actualNumber;
        /** Chaos identity: parameters_.chaosIdentity + slot index. */
        std::string chaosKey;
        /** Open-bundle state. */
        unsigned slotsUsed = 0;
        std::vector<unsigned> usedTableBanks;
        std::vector<unsigned> usedHfntBanks;
        /** Transient, valid between predict and history advance. */
        bool lastMiss = false;
        bool lastPrediction = false;
    };

    struct IndirectSlot
    {
        pred::IndirectPredictor *predictor = nullptr;
        FrontendResult timing;
        std::string chaosKey;
        bool lastMiss = false;
        std::uint64_t lastPrediction = 0;
    };

    /** Close @p slot's open bundle, if any (one cycle). */
    void closeBundle(ConditionalSlot &slot);

    /** Predict/count/update one conditional record for @p slot. */
    void predictConditional(ConditionalSlot &slot,
                            const trace::BranchRecord &record);

    /**
     * Advance @p predictor's history for @p record: the speculative
     * checkpoint/speculate/restore dance on a mispredict (or when the
     * chaos section fires), a plain observe otherwise. Net effect is
     * always exactly observe(record).
     */
    void advanceHistory(pred::Predictor &predictor,
                        const trace::BranchRecord &record, bool miss,
                        const trace::BranchRecord &wrong_path,
                        FrontendResult &timing,
                        const std::string &chaos_key);

    void runRetireOrder(trace::TraceSource &source);
    void runFetchBundle(trace::TraceSource &source);

    /** Fill closed-form timing for every slot (RetireOrder mode). */
    void fillClosedFormTiming();

    FrontendParameters parameters_;
    std::vector<ConditionalSlot> conditional_;
    std::vector<IndirectSlot> indirect_;

    pred::ReturnAddressStack ras_;
    std::uint64_t returns_ = 0;
    std::uint64_t returnMisses_ = 0;
};

} // namespace sim
} // namespace vlp

#endif // VLPSIM_SIM_FRONTEND_H
