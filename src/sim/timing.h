/**
 * @file
 * First-order front-end timing model.
 *
 * The paper motivates accurate prediction with the speculative work a
 * deeply pipelined, wide-issue processor throws away on each
 * misprediction (Section 1), and its Section 4.3 pipelined predictor
 * introduces a re-predict bubble whenever the HFNT guesses the wrong
 * hash function number. This model turns the simulator's misprediction
 * counts into estimated front-end cycles so those effects can be
 * compared in one number. It is deliberately simple — the closed-form
 * fallback over the FrontendResult ledger that sim/frontend.h's
 * FetchEngine fills by actually simulating fetch bundles — and is
 * used by bench_timing.
 */

#ifndef VLPSIM_SIM_TIMING_H
#define VLPSIM_SIM_TIMING_H

#include <cstdint>
#include <string>

#include "sim/frontend.h"
#include "sim/simulator.h"

namespace vlp {
namespace sim {

/** Front-end parameters (defaults shaped after a late-90s design). */
struct TimingParameters
{
    /** Average instructions fetched between branches. */
    double instructionsPerBranch = 5.0;
    /** Instructions fetched per cycle. */
    double fetchWidth = 4.0;
    /** Pipeline flush penalty per misprediction, in cycles. */
    double mispredictPenaltyCycles = 10.0;
    /**
     * Bubble cycles when the pipelined predictor must re-predict
     * because the HFNT's hash function number was wrong (§4.3).
     */
    double repredictPenaltyCycles = 1.0;
};

/**
 * Estimated front-end cost for one predictor configuration — the same
 * ledger the FetchEngine measures, filled closed-form here (the
 * bundle/conflict counters stay 0). All derived rates are NaN-free
 * with explicit zero-result semantics.
 */
using TimingEstimate = FrontendResult;

/**
 * Estimate the front-end cost of running @p branches dynamic branches
 * with @p mispredictions of them mispredicted. branches == 0 or a
 * non-positive (or NaN) fetchWidth yields the all-zero estimate.
 *
 * @param parameters       front-end parameters
 * @param branches         dynamic branch count
 * @param mispredictions   mispredicted branches
 * @param repredict_events HFNT mismatches (0 for non-VLP predictors)
 */
TimingEstimate estimateTiming(const TimingParameters &parameters,
                              std::uint64_t branches,
                              std::uint64_t mispredictions,
                              std::uint64_t repredict_events = 0);

/** Convenience over a simulator result row. */
TimingEstimate estimateTiming(const TimingParameters &parameters,
                              const PredictorResult &result,
                              std::uint64_t repredict_events = 0);

/**
 * Speedup of @p faster over @p slower (ratio of total cycles; > 1
 * means @p faster wins).
 */
double speedup(const TimingEstimate &slower,
               const TimingEstimate &faster);

} // namespace sim
} // namespace vlp

#endif // VLPSIM_SIM_TIMING_H
