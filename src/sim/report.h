/**
 * @file
 * Structured report model for every experiment artifact the repo
 * prints: the paper's tables and figures (bench binaries), the
 * synthetic suite comparison, the external-trace suite, and the
 * profiling summary.
 *
 * A Report is banner/title metadata plus an ordered list of Sections;
 * a Section is an optional verbatim caption, an optional table
 * (named columns × typed-cell rows, each row carrying its
 * benchmark/trace identity), and an optional verbatim footer. Cells
 * are typed (counts, scaled counts, reals, percentages, text) and
 * remember their legacy formatting, so the ASCII sink reproduces the
 * pre-report stdout byte for byte while the CSV and JSON sinks emit
 * raw machine-readable values.
 *
 * Three sinks render a Report:
 *  - AsciiReportSink — byte-identical to the historical
 *    util::TablePrinter output (it renders through TablePrinter);
 *  - CsvReportSink — one CSV block per table section, reusing
 *    util::csvEscape;
 *  - JsonReportSink — the versioned schema documented in
 *    docs/FORMATS.md ("vlpsim-report", reportSchemaVersion).
 *
 * reportSchemaVersion is also stamped into comparison-row cache keys
 * (sim/experiment.cc, sim/suite_runner.cc), so a schema change can
 * never serve a report built from a stale cached layout.
 */

#ifndef VLPSIM_SIM_REPORT_H
#define VLPSIM_SIM_REPORT_H

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace vlp {
namespace util {
class Json;
} // namespace util

namespace sim {

/**
 * Version of the machine-readable report layout (JSON schema, CSV
 * block shape, and the Section/Cell model they serialize). Bump on
 * any change to the emitted structure; the bump invalidates cached
 * comparison rows via the key stamp.
 */
inline constexpr std::uint32_t reportSchemaVersion = 2;

/** One typed table cell. Construct through the factories so the
 *  ASCII rendering matches the legacy formatting exactly. */
class Cell
{
  public:
    enum class Kind {
        /** Free text (benchmark names, labels). */
        Text,
        /** Plain integer, rendered as unseparated digits. */
        Count,
        /** Integer rendered like the paper's Table 1 ("17.6 M"). */
        Scaled,
        /** Real number at a fixed number of decimals. */
        Real,
        /** Percentage at a fixed number of decimals (rendered without
         *  the '%' sign, like the legacy tables). */
        Percent,
    };

    Cell() = default;

    static Cell text(std::string value);
    static Cell count(std::uint64_t value);
    static Cell scaled(std::uint64_t value);
    static Cell real(double value, int decimals);
    static Cell percent(double value, int decimals = 2);

    Kind kind() const { return kind_; }

    /** Numeric value (0 for Text cells). */
    double number() const { return number_; }

    /** Integer value (Count/Scaled cells only; else 0). */
    std::uint64_t integer() const { return integer_; }

    /** Decimal places used by Real/Percent rendering. */
    int decimals() const { return decimals_; }

    /** The exact legacy text rendering of this cell. */
    std::string ascii() const;

    /** Schema name of the kind ("text", "count", ...). */
    const char *kindName() const;

  private:
    Kind kind_ = Kind::Text;
    std::string text_;
    std::uint64_t integer_ = 0;
    double number_ = 0.0;
    int decimals_ = 2;
};

/** A named report column. */
struct Column
{
    std::string name;
};

/** One table row: its cells plus the benchmark/trace it describes. */
struct Row
{
    /** Benchmark or trace identity; empty for anonymous rows. */
    std::string id;
    std::vector<Cell> cells;
};

/**
 * One report section: verbatim caption text, then an optional table,
 * then verbatim footer text. A section without columns is a pure
 * text block (caption + footer only).
 */
struct Section
{
    enum class Layout {
        /** Column-aligned table (util::TablePrinter). */
        Aligned,
        /**
         * Per-predictor entry lines, the external-suite style:
         * "    <id>: <cell0>% (<cell1>/<cell2>)" per row. Rows must
         * be {Percent, Count, Count}.
         */
        Entries,
        /**
         * Train-vs-test entry lines, the paired external-suite style:
         * "    <id>: train <c0>% (<c1>/<c2>) | test <c3>% (<c4>/<c5>)"
         * per row. Rows must be {Percent, Count, Count, Percent,
         * Count, Count} — the train triple, then the test triple.
         */
        PairedEntries,
    };

    /** Machine name ("conditional", "figure5", trace path...). */
    std::string name;
    std::string caption;
    std::vector<Column> columns;
    std::vector<Row> rows;
    std::string footer;
    Layout layout = Layout::Aligned;

    /** Append a row (cell count must match the column count when
     *  columns are declared). */
    Row &addRow(std::string id, std::vector<Cell> cells);

    bool isTable() const { return !columns.empty(); }
};

/** A complete experiment report. */
struct Report
{
    /** Banner headline ("Table 2: ..."); also the JSON title. */
    std::string title;
    /** Banner configuration line. */
    std::string configuration;
    /**
     * Render the bench banner block in ASCII (title, configuration,
     * the synthetic-workload caveat, and the VLPSIM_SCALE note when
     * scale != 1).
     */
    bool banner = false;
    /** Workload scale factor shown in the banner note. */
    double scale = 1.0;
    /** Ordered (key, value) metadata: jobs, scale, options digest,
     *  cache counters, quarantine causes... */
    std::vector<std::pair<std::string, std::string>> metadata;
    std::vector<Section> sections;

    /** Append a section and return it for filling. */
    Section &addSection(std::string name);

    /** Append a pure text section (rendered verbatim in ASCII). */
    void addText(std::string name, std::string text);

    /** Set (or overwrite) one metadata entry. */
    void setMeta(const std::string &key, std::string value);
    void setMeta(const std::string &key, std::uint64_t value);

    /** Metadata value by key; nullptr when absent. */
    const std::string *meta(const std::string &key) const;
};

/** Output format of a report sink. */
enum class ReportFormat { Ascii, Csv, Json };

/**
 * Parse "ascii" / "csv" / "json".
 * @throws std::runtime_error on anything else
 */
ReportFormat parseReportFormat(const std::string &text);

/** Renders a Report to a stream in one concrete format. */
class ReportSink
{
  public:
    virtual ~ReportSink() = default;

    /** Render @p report to @p out. */
    virtual void write(const Report &report, std::ostream &out) = 0;
};

/** Byte-identical reproduction of the legacy stdout. */
class AsciiReportSink : public ReportSink
{
  public:
    void write(const Report &report, std::ostream &out) override;
};

/** One CSV block per table section (see docs/FORMATS.md). */
class CsvReportSink : public ReportSink
{
  public:
    void write(const Report &report, std::ostream &out) override;
};

/** The versioned JSON schema (see docs/FORMATS.md). */
class JsonReportSink : public ReportSink
{
  public:
    void write(const Report &report, std::ostream &out) override;
};

/** Sink factory for a parsed format. */
std::unique_ptr<ReportSink> makeReportSink(ReportFormat format);

/**
 * Check a parsed JSON document against the report schema.
 * @return human-readable problems; empty when the document validates
 */
std::vector<std::string> validateReportJson(const util::Json &document);

} // namespace sim
} // namespace vlp

#endif // VLPSIM_SIM_REPORT_H
