/**
 * @file
 * High-level experiment harness: everything the bench binaries need to
 * regenerate the paper's tables and figures.
 *
 * ExperimentContext caches, within one process, the expensive
 * artifacts: generated traces (a few at a time) and profiling results
 * (step-1 sweeps and step-2 assignments per benchmark/size), so a
 * bench that needs the global fixed length *and* per-benchmark VLP
 * assignments profiles each benchmark exactly once.
 */

#ifndef VLPSIM_SIM_EXPERIMENT_H
#define VLPSIM_SIM_EXPERIMENT_H

#include <functional>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/path_history.h"
#include "core/profiler.h"
#include "sim/simulator.h"
#include "trace/streaming.h"
#include "util/cancel.h"
#include "workload/benchmarks.h"

namespace vlp {
namespace store {
class ArtifactStore;
class CacheKey;
} // namespace store

namespace sim {

/** One predictor's accuracy in a comparison. */
struct RateEntry
{
    std::string predictor;
    std::uint64_t branches = 0;
    std::uint64_t mispredictions = 0;
    /** Misprediction rate in percent. */
    double rate = 0.0;
};

/** All predictors' accuracies on one benchmark. */
struct ComparisonRow
{
    std::string benchmark;
    std::vector<RateEntry> entries;

    /**
     * Entry by predictor name.
     * @throws std::runtime_error if absent
     */
    const RateEntry &entry(const std::string &predictor) const;
};

/**
 * An external on-disk .vbt trace as consumed by the experiment layer.
 *
 * Identity for caching is the file's *content hash* (see
 * trace::hashTraceFile), not the synthetic generator version or
 * VLPSIM_SCALE: artifacts survive renames and moves of the trace
 * file, and a changed file can never be served stale artifacts.
 * External traces are replayed through a bounded-memory streaming
 * reader; they are never materialized whole.
 */
struct ExternalTrace
{
    /** Display name (usually the file's basename). */
    std::string name;
    /** Path to the .vbt file. */
    std::string path;
    /** 32-hex content hash of the file (trace::hashTraceFile). */
    std::string contentHash;
    /** Records buffered per streaming chunk. */
    std::size_t chunkRecords =
        trace::StreamingTraceReader::defaultChunkRecords;
    /** How to open the file; empty = plain stdio (tests inject
     *  fault-wrapped openers here). */
    trace::FileOpener opener;
    /** Optional persistent open: a reader kept alive across replays
     *  (the suite runner's single-pass ingestion parks the open it
     *  validated and hashed here). When set, openExternal() rewinds
     *  and returns this session instead of reopening the path. */
    std::shared_ptr<trace::StreamingTraceReader> session;
};

/**
 * Process-level cache of traces and profiling artifacts.
 *
 * With an attached ArtifactStore (setStore()), profiling results are
 * additionally persisted on disk: step-1 sweeps, step-2 assignments,
 * and full comparison rows are fetched from the store when present and
 * written back after being computed, so a warm rerun skips the
 * fixed-length sweeps entirely while producing bit-identical results
 * (the serialized artifacts carry the exact integer counters).
 */
class ExperimentContext
{
  public:
    ExperimentContext() = default;

    ExperimentContext(const ExperimentContext &) = delete;
    ExperimentContext &operator=(const ExperimentContext &) = delete;

    /**
     * Attach an on-disk artifact store (shared freely across contexts
     * and threads; pass nullptr to detach).
     */
    void setStore(std::shared_ptr<store::ArtifactStore> store)
    {
        store_ = std::move(store);
    }

    /** The attached artifact store, or nullptr. */
    store::ArtifactStore *store() const { return store_.get(); }

    /**
     * Attach a cooperative cancellation token (pass nullptr to
     * detach). Expensive operations — profiling steps, comparison
     * replays — check it at their entry, so a cancelled request
     * unwinds with util::CancelledError at the next step boundary
     * without tearing caches or stored artifacts.
     */
    void setCancelToken(std::shared_ptr<const util::CancelToken> token)
    {
        cancel_ = std::move(token);
    }

    /** The attached cancellation token, or nullptr. */
    const std::shared_ptr<const util::CancelToken> &
    cancelToken() const
    {
        return cancel_;
    }

    /** @throws util::CancelledError once the attached token fires */
    void throwIfCancelled() const
    {
        if (cancel_)
            cancel_->throwIfCancelled();
    }

    /**
     * Worker threads for step-1 fixed-length sweeps (see
     * core::ProfileOptions::jobs; 0 = one per hardware thread,
     * default 1 = serial). Sharding never changes results, so cached
     * and stored artifacts are shared across settings; applies to
     * profilers constructed after the call.
     */
    void setStep1Jobs(unsigned jobs) { step1Jobs_ = jobs; }

    /** Configured step-1 worker-thread count. */
    unsigned step1Jobs() const { return step1Jobs_; }

    /**
     * The benchmark's trace on the given input, generated on first
     * use. A small LRU keeps the working set bounded; the returned
     * shared_ptr pins the trace, so it stays valid even after later
     * trace() calls evict it from the cache (callers holding a trace
     * across a nested profiling call used to read freed memory).
     */
    std::shared_ptr<trace::VectorTraceSource>
    trace(const workload::BenchmarkSpec &spec, workload::InputKind kind);

    /**
     * Step-1 sweep for conditional branches of @p spec at @p
     * index_bits (profile input), cached.
     */
    const core::FixedLengthSweep &
    conditionalSweep(const workload::BenchmarkSpec &spec,
                     unsigned index_bits,
                     core::PathHistoryOptions history = {});

    /** Step-1 sweep for indirect branches, cached. */
    const core::FixedLengthSweep &
    indirectSweep(const workload::BenchmarkSpec &spec,
                  unsigned index_bits,
                  core::PathHistoryOptions history = {});

    /** Full two-step conditional profiling result, cached. */
    const core::HashAssignment &
    conditionalAssignment(const workload::BenchmarkSpec &spec,
                          unsigned index_bits,
                          core::PathHistoryOptions history = {});

    /** Full two-step indirect profiling result, cached. */
    const core::HashAssignment &
    indirectAssignment(const workload::BenchmarkSpec &spec,
                       unsigned index_bits,
                       core::PathHistoryOptions history = {});

    /**
     * Open an external trace for one streaming replay: the parked
     * session rewound when the trace carries one, else a fresh
     * bounded-memory reader. External traces are deliberately
     * excluded from the in-memory trace LRU. Replays of a shared
     * session must not overlap (the suite runner serializes per
     * trace by sharding).
     * @throws util::TransientError / std::runtime_error from the
     *         underlying file
     */
    std::shared_ptr<trace::TraceSource>
    openExternal(const ExternalTrace &trace) const;

    /**
     * Step-1 sweep over an external trace, cached in this context and
     * (with a store attached) on disk under the trace's content hash.
     */
    const core::FixedLengthSweep &
    externalSweep(const ExternalTrace &trace, unsigned index_bits,
                  bool indirect);

    /** Full two-step profiling result for an external trace, cached
     *  like externalSweep(). */
    const core::HashAssignment &
    externalAssignment(const ExternalTrace &trace, unsigned index_bits,
                       bool indirect);

    /**
     * Average conditional misprediction rate per path length over the
     * whole suite at a table of @p bytes (profile inputs) — the curve
     * whose minimum defines the paper's global fixed length (Table 2).
     * @return rates[L-1] in percent for L = 1..32
     */
    std::vector<double> averageConditionalSweep(std::size_t bytes);

    /** Indirect counterpart of averageConditionalSweep(). */
    std::vector<double> averageIndirectSweep(std::size_t bytes);

    /** The global fixed path length for conditional predictors. */
    unsigned globalConditionalLength(std::size_t bytes);

    /** The global fixed path length for indirect predictors. */
    unsigned globalIndirectLength(std::size_t bytes);

  private:
    struct ProfilerEntry
    {
        std::unique_ptr<core::ConditionalProfiler> conditional;
        std::unique_ptr<core::IndirectProfiler> indirect;
        bool step1Done = false;
        std::optional<core::HashAssignment> assignment;
    };

    using Key = std::string;

    /** Produces a fresh (reset) profile-input trace on demand. */
    using TraceProvider =
        std::function<std::shared_ptr<trace::TraceSource>()>;

    static Key makeKey(const std::string &name, unsigned index_bits,
                       bool indirect, core::PathHistoryOptions history);

    ProfilerEntry &profilerEntry(const std::string &name,
                                 unsigned index_bits, bool indirect,
                                 core::PathHistoryOptions history);

    /**
     * Ensure step 1 has run for @p entry: restore it from the store
     * under @p key when possible, otherwise replay the trace from
     * @p profile_trace (and persist the result).
     */
    void ensureStep1(ProfilerEntry &entry,
                     const std::optional<store::CacheKey> &key,
                     const TraceProvider &profile_trace);

    /** Shared body of the four assignment accessors. */
    const core::HashAssignment &
    ensureAssignment(ProfilerEntry &entry,
                     const std::optional<store::CacheKey> &assignment_key,
                     const std::optional<store::CacheKey> &profile_key,
                     const TraceProvider &profile_trace);

    static constexpr std::size_t traceCacheCapacity = 4;

    struct TraceEntry
    {
        std::string key;
        std::shared_ptr<trace::VectorTraceSource> source;
    };

    std::list<TraceEntry> traces_;
    std::shared_ptr<const util::CancelToken> cancel_;
    unsigned step1Jobs_ = 1;
    std::map<Key, ProfilerEntry> profilers_;
    std::map<Key, std::vector<double>> averageSweeps_;
    std::shared_ptr<store::ArtifactStore> store_;
};

/**
 * Compare the paper's conditional predictors on one benchmark:
 * gshare, fixed length path (at @p global_length), optionally "fixed
 * length path (tuned)" (per-benchmark best profiled length), and the
 * variable length path predictor, all with tables of @p bytes,
 * evaluated on the test input.
 */
ComparisonRow compareConditional(ExperimentContext &context,
                                 const workload::BenchmarkSpec &spec,
                                 std::size_t bytes,
                                 unsigned global_length,
                                 bool include_tuned = false);

/**
 * Compare the paper's indirect predictors on one benchmark: the
 * Chang-Hao-Patt path and pattern target caches, fixed length path,
 * optionally tuned fixed length path, and variable length path.
 */
ComparisonRow compareIndirect(ExperimentContext &context,
                              const workload::BenchmarkSpec &spec,
                              std::size_t bytes,
                              unsigned global_length,
                              bool include_tuned = false);

/**
 * compareConditional() for an external trace pair — the paper's §3
 * methodology: profile on one input, evaluate on another. All
 * profiling artifacts (step-1 sweep, tuned length, step-2 assignment)
 * come from @p profile and are cached under *its* content hash, so
 * swapping the evaluation trace reuses them; the predictors are then
 * replayed over @p test. The row's cache key carries both content
 * hashes — a row evaluated on one test trace can never be served for
 * another. Compared predictors: gshare, fixed length path at
 * @p global_length, the profile-tuned fixed length, and the variable
 * length path predictor.
 */
ComparisonRow compareExternalConditional(ExperimentContext &context,
                                         const ExternalTrace &profile,
                                         const ExternalTrace &test,
                                         std::size_t bytes,
                                         unsigned global_length);

/** Indirect counterpart of the paired compareExternalConditional(). */
ComparisonRow compareExternalIndirect(ExperimentContext &context,
                                      const ExternalTrace &profile,
                                      const ExternalTrace &test,
                                      std::size_t bytes,
                                      unsigned global_length);

/**
 * Self-evaluation shorthand: profile and evaluate on the same trace.
 * This overstates accuracy (the predictor is tested on the input it
 * was trained on) — callers with a second input per workload should
 * use the paired overload; the suite runner labels results from this
 * path "self-eval".
 */
ComparisonRow compareExternalConditional(ExperimentContext &context,
                                         const ExternalTrace &trace,
                                         std::size_t bytes,
                                         unsigned global_length);

/** Self-evaluation counterpart of compareExternalIndirect(). */
ComparisonRow compareExternalIndirect(ExperimentContext &context,
                                      const ExternalTrace &trace,
                                      std::size_t bytes,
                                      unsigned global_length);

/** Canonical predictor display names used in comparison rows. */
namespace names {
inline constexpr const char *gshare = "gshare";
inline constexpr const char *flp = "fixed length path";
inline constexpr const char *flpTuned = "fixed length path (tuned)";
inline constexpr const char *vlp = "variable length path";
inline constexpr const char *chpPath = "path (Chang, Hao, and Patt)";
inline constexpr const char *chpPattern = "pattern (Chang, Hao, and Patt)";
} // namespace names

} // namespace sim
} // namespace vlp

#endif // VLPSIM_SIM_EXPERIMENT_H
