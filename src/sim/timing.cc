/**
 * @file
 * Closed-form timing model implementation. TimingEstimate is
 * sim/frontend.h's FrontendResult, so totalCycles()/ipc() live there;
 * this file only fills the ledger from aggregate counts.
 */

#include "sim/timing.h"

namespace vlp {
namespace sim {

TimingEstimate
estimateTiming(const TimingParameters &parameters,
               std::uint64_t branches, std::uint64_t mispredictions,
               std::uint64_t repredict_events)
{
    TimingEstimate estimate;
    estimate.branches = branches;
    estimate.mispredictions = mispredictions;
    estimate.repredictEvents = repredict_events;
    // Explicit zero-result semantics: an empty stream or a degenerate
    // (zero, negative, or NaN) fetch width estimates zero cycles
    // rather than dividing. The negated comparison keeps NaN on the
    // zero path.
    if (branches == 0 || !(parameters.fetchWidth > 0.0))
        return estimate;
    const double instructions =
        static_cast<double>(branches) * parameters.instructionsPerBranch;
    estimate.baseCycles = instructions / parameters.fetchWidth;
    estimate.mispredictCycles = static_cast<double>(mispredictions)
        * parameters.mispredictPenaltyCycles;
    estimate.repredictCycles = static_cast<double>(repredict_events)
        * parameters.repredictPenaltyCycles;
    return estimate;
}

TimingEstimate
estimateTiming(const TimingParameters &parameters,
               const PredictorResult &result,
               std::uint64_t repredict_events)
{
    return estimateTiming(parameters, result.branches,
                          result.mispredictions, repredict_events);
}

double
speedup(const TimingEstimate &slower, const TimingEstimate &faster)
{
    const double faster_cycles = faster.totalCycles();
    return faster_cycles > 0.0 ? slower.totalCycles() / faster_cycles
                               : 0.0;
}

} // namespace sim
} // namespace vlp
