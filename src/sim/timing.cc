/**
 * @file
 * Timing model implementation.
 */

#include "sim/timing.h"

#include <cassert>

namespace vlp {
namespace sim {

double
TimingEstimate::totalCycles() const
{
    return baseCycles + mispredictCycles + repredictCycles;
}

double
TimingEstimate::ipc(double instructions) const
{
    const double cycles = totalCycles();
    return cycles > 0.0 ? instructions / cycles : 0.0;
}

TimingEstimate
estimateTiming(const TimingParameters &parameters,
               std::uint64_t branches, std::uint64_t mispredictions,
               std::uint64_t repredict_events)
{
    assert(parameters.fetchWidth > 0.0);
    TimingEstimate estimate;
    const double instructions =
        static_cast<double>(branches) * parameters.instructionsPerBranch;
    estimate.baseCycles = instructions / parameters.fetchWidth;
    estimate.mispredictCycles = static_cast<double>(mispredictions)
        * parameters.mispredictPenaltyCycles;
    estimate.repredictCycles = static_cast<double>(repredict_events)
        * parameters.repredictPenaltyCycles;
    return estimate;
}

TimingEstimate
estimateTiming(const TimingParameters &parameters,
               const PredictorResult &result,
               std::uint64_t repredict_events)
{
    return estimateTiming(parameters, result.branches,
                          result.mispredictions, repredict_events);
}

double
speedup(const TimingEstimate &slower, const TimingEstimate &faster)
{
    const double faster_cycles = faster.totalCycles();
    return faster_cycles > 0.0 ? slower.totalCycles() / faster_cycles
                               : 0.0;
}

} // namespace sim
} // namespace vlp
