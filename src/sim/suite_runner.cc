/**
 * @file
 * TraceSuiteRunner implementation.
 */

#include "sim/suite_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <mutex>
#include <ostream>
#include <thread>
#include <utility>

#include "core/profiler.h"
#include "predictors/budget.h"
#include "sim/report.h"
#include "store/artifact_store.h"
#include "store/checkpoint.h"
#include "store/serialize.h"
#include "trace/streaming.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace fs = std::filesystem;

namespace vlp {
namespace sim {

namespace {

/** Indirect sweeps below this many branches are noise, not signal
 *  (mirrors ExperimentContext::averageIndirectSweep). */
constexpr std::uint64_t minIndirectBranches = 1000;

/**
 * Run @p fn, retrying util::TransientError with bounded exponential
 * backoff. Permanent errors and the final transient error propagate.
 */
template <typename Fn>
auto
retryTransient(const TraceSuiteOptions &options, Fn &&fn)
{
    unsigned attempt = 0;
    for (;;) {
        try {
            return fn();
        } catch (const util::TransientError &) {
            ++attempt;
            if (attempt >= std::max(options.maxAttempts, 1u))
                throw;
            const unsigned delay_ms = options.backoffBaseMs
                << (attempt - 1);
            if (options.sleeper) {
                options.sleeper(delay_ms);
            } else {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay_ms));
            }
        }
    }
}

/** Per-trace working state threaded through the phases. */
struct TraceWork
{
    TraceOutcome outcome;
    ExternalTrace ext;
    /** Passed validation and sweeps; eligible for comparisons. */
    bool valid = false;
    /** Step-1 rate curves (percent, index L-1), for the suite
     *  average. */
    std::vector<double> condRates;
    std::vector<double> indRates;
};

/** Journal cell key for one per-trace sweep. */
std::string
sweepCellKey(const std::string &content_hash, bool indirect,
             unsigned index_bits)
{
    return std::string("sweep;v")
        + std::to_string(store::artifactFormatVersion)
        + ";class=" + (indirect ? "ind" : "cond")
        + ";trace=" + content_hash
        + ";bits=" + std::to_string(index_bits);
}

/**
 * Journal cell key for one comparison row. Comparison rows feed the
 * structured report pipeline, so the key carries reportSchemaVersion:
 * a schema change can never replay rows journaled under an older
 * layout.
 */
std::string
rowCellKey(const std::string &content_hash, bool indirect,
           std::size_t bytes, unsigned global_length)
{
    return std::string("row;v")
        + std::to_string(store::artifactFormatVersion)
        + ";schema=" + std::to_string(reportSchemaVersion)
        + ";class=" + (indirect ? "ind" : "cond")
        + ";trace=" + content_hash
        + ";bytes=" + std::to_string(bytes)
        + ";global=" + std::to_string(global_length);
}

/** Sweep cell payload: the integer counters, never the derived
 *  rates, so a resumed average is bit-identical by construction. */
std::vector<std::uint8_t>
encodeSweepCell(const core::FixedLengthSweep &sweep)
{
    store::Encoder encoder;
    encoder.u64(sweep.branches);
    encoder.u32(sweep.minLength);
    encoder.u32(static_cast<std::uint32_t>(sweep.mispredictions.size()));
    for (const std::uint64_t count : sweep.mispredictions)
        encoder.u64(count);
    return encoder.take();
}

core::FixedLengthSweep
decodeSweepCell(const std::vector<std::uint8_t> &payload)
{
    store::Decoder decoder(payload);
    core::FixedLengthSweep sweep;
    sweep.branches = decoder.u64();
    sweep.minLength = decoder.u32();
    const std::uint32_t count = decoder.u32();
    if (count == 0 || count > core::maxPathLength)
        throw std::runtime_error("sweep cell has absurd length count");
    sweep.mispredictions.resize(count);
    for (std::uint64_t &value : sweep.mispredictions)
        value = decoder.u64();
    decoder.expectEnd();
    return sweep;
}

/** Rate curve (percent per length) from a sweep, like
 *  FixedLengthSweep::rate() over the full range. */
std::vector<double>
rateCurve(const core::FixedLengthSweep &sweep)
{
    std::vector<double> rates(sweep.mispredictions.size(), 0.0);
    if (sweep.branches == 0)
        return rates;
    for (std::size_t i = 0; i < rates.size(); ++i) {
        rates[i] = 100.0 * static_cast<double>(sweep.mispredictions[i])
            / static_cast<double>(sweep.branches);
    }
    return rates;
}

/** Journal lookup that treats undecodable payloads as misses. */
template <typename Decode>
auto
journalFetch(store::CheckpointJournal *journal, const std::string &key,
             Decode &&decode)
    -> std::optional<decltype(decode(std::vector<std::uint8_t>{}))>
{
    if (journal == nullptr)
        return std::nullopt;
    const auto payload = journal->lookup(key);
    if (!payload)
        return std::nullopt;
    try {
        return decode(*payload);
    } catch (const std::exception &error) {
        util::warn(std::string("ignoring unusable checkpoint cell ")
                   + key + ": " + error.what());
        return std::nullopt;
    }
}

/**
 * Obtain one per-trace sweep: journal first, else compute through the
 * context (with transient retries) and journal the result.
 */
core::FixedLengthSweep
obtainSweep(const TraceSuiteOptions &options,
            store::CheckpointJournal *journal, ExperimentContext &context,
            const ExternalTrace &ext, bool indirect, unsigned index_bits)
{
    const std::string key =
        sweepCellKey(ext.contentHash, indirect, index_bits);
    if (auto cached = journalFetch(journal, key, decodeSweepCell))
        return *cached;

    const core::FixedLengthSweep sweep = retryTransient(options, [&] {
        return context.externalSweep(ext, index_bits, indirect);
    });
    if (journal != nullptr)
        journal->record(key, encodeSweepCell(sweep));
    return sweep;
}

/**
 * Obtain one comparison row: journal first, else compute (with
 * transient retries) and journal the result.
 */
ComparisonRow
obtainRow(const TraceSuiteOptions &options,
          store::CheckpointJournal *journal, ExperimentContext &context,
          const ExternalTrace &ext, bool indirect, std::size_t bytes,
          unsigned global_length)
{
    const std::string key =
        rowCellKey(ext.contentHash, indirect, bytes, global_length);
    if (auto cached = journalFetch(journal, key,
                                   store::decodeComparisonRow)) {
        return *cached;
    }

    const ComparisonRow row = retryTransient(options, [&] {
        return indirect
            ? compareExternalIndirect(context, ext, bytes,
                                      global_length)
            : compareExternalConditional(context, ext, bytes,
                                         global_length);
    });
    if (journal != nullptr)
        journal->record(key, store::encodeComparisonRow(row));
    return row;
}

/** Quarantine @p work with a deterministic cause string. */
void
quarantine(TraceWork &work, const std::string &cause)
{
    work.outcome.status = TraceStatus::Quarantined;
    work.outcome.cause = cause;
    work.valid = false;
    util::warn("quarantined trace " + work.outcome.name + ": " + cause);
}

/**
 * Static-sharded parallel loop: item i runs on worker i % jobs, each
 * worker walks its items in increasing order (mirrors
 * ParallelRunner::runSharded). jobs == 1 runs inline. fn(worker, i)
 * must not throw — per-trace errors are absorbed into outcomes — but
 * a stray exception is still captured and rethrown, first one wins.
 */
void
forEachSharded(util::ThreadPool *pool, unsigned jobs, std::size_t count,
               const std::function<void(unsigned, std::size_t)> &fn)
{
    if (pool == nullptr || jobs <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(0, i);
        return;
    }
    std::exception_ptr first_error;
    std::mutex error_mutex;
    for (unsigned worker = 0; worker < jobs; ++worker) {
        pool->submit([&, worker] {
            try {
                for (std::size_t i = worker; i < count; i += jobs)
                    fn(worker, i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
        });
    }
    pool->wait();
    if (first_error)
        std::rethrow_exception(first_error);
}

unsigned
argminLength(const std::vector<double> &rates)
{
    unsigned best = 1;
    for (unsigned length = 2; length <= rates.size(); ++length) {
        if (rates[length - 1] < rates[best - 1])
            best = length;
    }
    return best;
}

/**
 * One comparison row as an Entries-layout report section: a
 * "    <predictor>: <rate>% (<misses>/<branches>)" line per entry,
 * rate at the suite's historical 4 decimals.
 */
void
addRowSection(Report &report, const std::string &name,
              const std::string &caption, const ComparisonRow &row)
{
    Section &section = report.addSection(name);
    section.layout = Section::Layout::Entries;
    section.caption = caption;
    section.columns = {{"mispredict (%)"},
                       {"mispredictions"},
                       {"branches"}};
    for (const RateEntry &entry : row.entries) {
        section.addRow(entry.predictor,
                       {
                           Cell::percent(entry.rate, 4),
                           Cell::count(entry.mispredictions),
                           Cell::count(entry.branches),
                       });
    }
}

} // anonymous namespace

std::size_t
SuiteReport::okCount() const
{
    return static_cast<std::size_t>(
        std::count_if(traces.begin(), traces.end(),
                      [](const TraceOutcome &outcome) {
                          return outcome.status == TraceStatus::Ok;
                      }));
}

std::size_t
SuiteReport::quarantinedCount() const
{
    return static_cast<std::size_t>(std::count_if(
        traces.begin(), traces.end(), [](const TraceOutcome &outcome) {
            return outcome.status == TraceStatus::Quarantined;
        }));
}

std::size_t
SuiteReport::skippedCount() const
{
    return static_cast<std::size_t>(
        std::count_if(traces.begin(), traces.end(),
                      [](const TraceOutcome &outcome) {
                          return outcome.status == TraceStatus::Skipped;
                      }));
}

Report
SuiteReport::toReport() const
{
    Report report;
    report.title = "external trace suite";
    report.setMeta("bytes", std::uint64_t{bytes});
    report.setMeta("globalConditionalLength",
                   std::uint64_t{globalConditionalLength});
    report.setMeta("globalIndirectLength",
                   std::uint64_t{globalIndirectLength});
    report.setMeta("tracesOk", std::uint64_t{okCount()});
    report.setMeta("tracesQuarantined",
                   std::uint64_t{quarantinedCount()});
    report.setMeta("tracesSkipped", std::uint64_t{skippedCount()});
    report.setMeta("resumedCells", std::uint64_t{resumedCells});

    std::string header = "external trace suite\n";
    header += "table budget: " + std::to_string(bytes) + " bytes\n";
    header += "global conditional path length: ";
    header += globalConditionalLength > 0
        ? std::to_string(globalConditionalLength) + "\n"
        : std::string("n/a\n");
    header += "global indirect path length: ";
    header += globalIndirectLength > 0
        ? std::to_string(globalIndirectLength) + "\n"
        : std::string("n/a\n");
    header += "traces: " + std::to_string(okCount()) + " ok, "
        + std::to_string(quarantinedCount()) + " quarantined, "
        + std::to_string(skippedCount()) + " skipped\n";
    report.addText("header", header);

    for (const TraceOutcome &outcome : traces) {
        std::string text = "\n" + outcome.name + ": ";
        switch (outcome.status) {
        case TraceStatus::Ok:
            text += "ok (VBT" + std::to_string(outcome.formatVersion)
                + ", " + std::to_string(outcome.records)
                + " records)\n";
            if (outcome.formatVersion < 2)
                text += "  warning: unchecksummed VBT1 container\n";
            report.addText("trace:" + outcome.name, text);
            if (outcome.conditional) {
                addRowSection(
                    report, "trace:" + outcome.name + ":conditional",
                    "  conditional ("
                        + std::to_string(outcome.conditionalBranches)
                        + " branches)\n",
                    *outcome.conditional);
            }
            if (outcome.indirect) {
                addRowSection(
                    report, "trace:" + outcome.name + ":indirect",
                    "  indirect ("
                        + std::to_string(outcome.indirectBranches)
                        + " branches)\n",
                    *outcome.indirect);
            }
            break;
        case TraceStatus::Quarantined:
            text += "quarantined (" + outcome.cause + ")\n";
            report.addText("trace:" + outcome.name, text);
            report.setMeta("quarantine:" + outcome.name,
                           outcome.cause);
            break;
        case TraceStatus::Skipped:
            text += "skipped (" + outcome.cause + ")\n";
            report.addText("trace:" + outcome.name, text);
            report.setMeta("skipped:" + outcome.name, outcome.cause);
            break;
        }
    }
    return report;
}

void
SuiteReport::print(std::ostream &out) const
{
    AsciiReportSink sink;
    sink.write(toReport(), out);
}

TraceSuiteRunner::TraceSuiteRunner(TraceSuiteOptions options)
    : options_(std::move(options))
{
}

std::vector<std::pair<std::string, std::string>>
TraceSuiteRunner::discoverTraces(const std::string &directory)
{
    std::error_code error;
    std::vector<std::pair<std::string, std::string>> traces;
    for (fs::recursive_directory_iterator it(directory, error), end;
         !error && it != end; it.increment(error)) {
        if (!it->is_regular_file()
            || it->path().extension() != ".vbt") {
            continue;
        }
        traces.emplace_back(
            it->path().lexically_relative(directory).generic_string(),
            it->path().string());
    }
    if (error) {
        util::fatal("cannot scan trace directory: " + directory + " ("
                    + error.message() + ")");
    }
    std::sort(traces.begin(), traces.end());
    return traces;
}

SuiteReport
TraceSuiteRunner::run()
{
    const auto discovered = discoverTraces(options_.directory);

    std::unique_ptr<store::CheckpointJournal> journal;
    if (!options_.checkpoint.empty()) {
        journal = std::make_unique<store::CheckpointJournal>(
            options_.checkpoint);
    }

    const unsigned jobs = options_.jobs == 0
        ? util::ThreadPool::defaultThreadCount()
        : options_.jobs;
    std::unique_ptr<util::ThreadPool> pool;
    if (jobs > 1 && discovered.size() > 1)
        pool = std::make_unique<util::ThreadPool>(jobs);

    std::vector<std::unique_ptr<ExperimentContext>> contexts;
    for (unsigned worker = 0; worker < jobs; ++worker) {
        contexts.push_back(std::make_unique<ExperimentContext>());
        contexts.back()->setStore(options_.store);
    }

    std::vector<TraceWork> work(discovered.size());
    for (std::size_t i = 0; i < discovered.size(); ++i) {
        work[i].outcome.name = discovered[i].first;
        work[i].outcome.path = discovered[i].second;
    }

    const unsigned cond_bits = pred::conditionalIndexBits(options_.bytes);
    const unsigned ind_bits = pred::indirectIndexBits(options_.bytes);

    // Phase A+B: validate each trace and collect its step-1 sweeps.
    forEachSharded(pool.get(), jobs, work.size(),
                   [&](unsigned worker, std::size_t i) {
        TraceWork &item = work[i];
        ExperimentContext &context = *contexts[worker];
        const auto open = [&](const std::string &path) {
            return options_.opener ? options_.opener(path)
                                   : trace::openByteFile(path);
        };
        try {
            // Identity and header validation, under retry: a trace
            // whose content cannot even be hashed is quarantined.
            item.ext.name = item.outcome.name;
            item.ext.path = item.outcome.path;
            item.ext.chunkRecords = options_.chunkRecords;
            item.ext.opener = options_.opener;
            item.ext.contentHash = retryTransient(options_, [&] {
                const auto file = open(item.outcome.path);
                return trace::hashTraceFile(*file);
            });
            retryTransient(options_, [&] {
                trace::StreamingTraceReader reader(
                    open(item.outcome.path), options_.chunkRecords);
                item.outcome.formatVersion = reader.formatVersion();
                item.outcome.records = reader.count();
            });
            if (item.outcome.formatVersion < 2) {
                util::warn("trace " + item.outcome.name
                           + " is an unchecksummed VBT1 container; "
                             "corruption would go undetected");
            }

            const core::FixedLengthSweep cond_sweep =
                obtainSweep(options_, journal.get(), context, item.ext,
                            false, cond_bits);
            const core::FixedLengthSweep ind_sweep =
                obtainSweep(options_, journal.get(), context, item.ext,
                            true, ind_bits);
            item.outcome.conditionalBranches = cond_sweep.branches;
            item.outcome.indirectBranches = ind_sweep.branches;
            item.condRates = rateCurve(cond_sweep);
            item.indRates = rateCurve(ind_sweep);
            item.valid = true;
        } catch (const util::TransientError &error) {
            quarantine(item,
                       std::string("transient failure persisted after ")
                           + std::to_string(
                                 std::max(options_.maxAttempts, 1u))
                           + " attempts: " + error.what());
        } catch (const std::exception &error) {
            quarantine(item, error.what());
        }
    });

    // Suite-wide global lengths, accumulated in sorted-trace order on
    // this thread so the averages are bit-identical for any jobs
    // value (mirrors the paper's Table 2 methodology).
    std::vector<double> cond_average(core::maxPathLength, 0.0);
    std::vector<double> ind_average(core::maxPathLength, 0.0);
    unsigned cond_counted = 0;
    unsigned ind_counted = 0;
    for (TraceWork &item : work) {
        if (!item.valid)
            continue;
        if (item.outcome.conditionalBranches > 0) {
            ++cond_counted;
            for (std::size_t l = 0; l < item.condRates.size(); ++l)
                cond_average[l] += item.condRates[l];
        }
        if (item.outcome.indirectBranches >= minIndirectBranches) {
            ++ind_counted;
            for (std::size_t l = 0; l < item.indRates.size(); ++l)
                ind_average[l] += item.indRates[l];
        }
        if (item.outcome.conditionalBranches == 0
            && item.outcome.indirectBranches < minIndirectBranches) {
            item.valid = false;
            item.outcome.status = TraceStatus::Skipped;
            item.outcome.cause = "no usable branches ("
                + std::to_string(item.outcome.conditionalBranches)
                + " conditional, "
                + std::to_string(item.outcome.indirectBranches)
                + " indirect)";
        }
    }
    unsigned global_cond = 0;
    unsigned global_ind = 0;
    if (cond_counted > 0) {
        for (double &rate : cond_average)
            rate /= static_cast<double>(cond_counted);
        global_cond = argminLength(cond_average);
    }
    if (ind_counted > 0) {
        for (double &rate : ind_average)
            rate /= static_cast<double>(ind_counted);
        global_ind = argminLength(ind_average);
    }

    // Phase C: comparison rows per surviving trace, same sharding so
    // each worker reuses its own phase-B profiler caches.
    forEachSharded(pool.get(), jobs, work.size(),
                   [&](unsigned worker, std::size_t i) {
        TraceWork &item = work[i];
        if (!item.valid)
            return;
        ExperimentContext &context = *contexts[worker];
        try {
            if (item.outcome.conditionalBranches > 0
                && global_cond > 0) {
                item.outcome.conditional =
                    obtainRow(options_, journal.get(), context,
                              item.ext, false, options_.bytes,
                              global_cond);
            }
            if (item.outcome.indirectBranches >= minIndirectBranches
                && global_ind > 0) {
                item.outcome.indirect =
                    obtainRow(options_, journal.get(), context,
                              item.ext, true, options_.bytes,
                              global_ind);
            }
        } catch (const util::TransientError &error) {
            quarantine(item,
                       std::string("transient failure persisted after ")
                           + std::to_string(
                                 std::max(options_.maxAttempts, 1u))
                           + " attempts: " + error.what());
        } catch (const std::exception &error) {
            quarantine(item, error.what());
        }
    });

    SuiteReport report;
    report.bytes = options_.bytes;
    report.globalConditionalLength = global_cond;
    report.globalIndirectLength = global_ind;
    if (journal)
        report.resumedCells = journal->resumedEntries();
    report.traces.reserve(work.size());
    for (TraceWork &item : work)
        report.traces.push_back(std::move(item.outcome));
    return report;
}

} // namespace sim
} // namespace vlp
