/**
 * @file
 * TraceSuiteRunner implementation.
 */

#include "sim/suite_runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "core/profiler.h"
#include "predictors/budget.h"
#include "sim/report.h"
#include "store/artifact_store.h"
#include "store/checkpoint.h"
#include "store/serialize.h"
#include "trace/content_hash.h"
#include "trace/fault_injection.h"
#include "trace/mmap_file.h"
#include "trace/prefetch.h"
#include "trace/streaming.h"
#include "util/chaos.h"
#include "util/logging.h"
#include "util/retry.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace fs = std::filesystem;

namespace vlp {
namespace sim {

namespace {

/** Indirect sweeps below this many branches are noise, not signal
 *  (mirrors ExperimentContext::averageIndirectSweep). */
constexpr std::uint64_t minIndirectBranches = 1000;

/** Manifest file picked up from the corpus root when present. */
constexpr const char *defaultManifestName = "pairs.txt";

/** Name-convention suffixes for the profile/test split. */
constexpr const char *profileSuffix = ".profile.vbt";
constexpr const char *testSuffix = ".test.vbt";

/** The suite's retry schedule as the shared policy (util/retry.h) —
 *  the prefetcher applies the same schedule on read-ahead threads. */
util::RetryPolicy
retryPolicy(const TraceSuiteOptions &options)
{
    util::RetryPolicy policy;
    policy.maxAttempts = options.maxAttempts;
    policy.backoffBaseMs = options.backoffBaseMs;
    policy.backoffMaxMs = options.backoffMaxMs;
    policy.jitterSeed = options.retryJitterSeed;
    policy.sleeper = options.sleeper;
    policy.cancel = options.cancel;
    return policy;
}

/** Run @p fn under the options' transient-retry schedule. */
template <typename Fn>
auto
retryTransient(const TraceSuiteOptions &options, Fn &&fn)
{
    return util::retryTransient(retryPolicy(options),
                                std::forward<Fn>(fn));
}

/** Per-pair working state threaded through the phases. */
struct TraceWork
{
    TraceOutcome outcome;
    /** Profiling source (sweeps, assignment, tuned length). */
    ExternalTrace profile;
    /** Evaluation source; equals profile for self-eval pairs. */
    ExternalTrace test;
    /** Passed validation and sweeps; eligible for comparisons. */
    bool valid = false;
    /** Step-1 rate curves (percent, index L-1) from the profile
     *  trace, for the suite average. */
    std::vector<double> condRates;
    std::vector<double> indRates;
};

/** Journal cell key for one per-trace sweep (profile trace only —
 *  sweeps depend on exactly one trace's bytes). */
std::string
sweepCellKey(const std::string &content_hash, bool indirect,
             unsigned index_bits)
{
    return std::string("sweep;v")
        + std::to_string(store::artifactFormatVersion)
        + ";class=" + (indirect ? "ind" : "cond")
        + ";trace=" + content_hash
        + ";bits=" + std::to_string(index_bits);
}

/**
 * Journal cell key for one comparison row. The key names the *pair
 * identity* — both content hashes — so a manifest edit between a kill
 * and a resume can never replay a row that was recorded for a
 * different profile/test combination. It also carries
 * reportSchemaVersion: a schema change can never replay rows
 * journaled under an older layout.
 */
std::string
rowCellKey(const std::string &profile_hash,
           const std::string &test_hash, bool indirect,
           std::size_t bytes, unsigned global_length)
{
    return std::string("row;v")
        + std::to_string(store::artifactFormatVersion)
        + ";schema=" + std::to_string(reportSchemaVersion)
        + ";class=" + (indirect ? "ind" : "cond")
        + ";profile=" + profile_hash
        + ";test=" + test_hash
        + ";bytes=" + std::to_string(bytes)
        + ";global=" + std::to_string(global_length);
}

/** Sweep cell payload: the integer counters, never the derived
 *  rates, so a resumed average is bit-identical by construction. */
std::vector<std::uint8_t>
encodeSweepCell(const core::FixedLengthSweep &sweep)
{
    store::Encoder encoder;
    encoder.u64(sweep.branches);
    encoder.u32(sweep.minLength);
    encoder.u32(static_cast<std::uint32_t>(sweep.mispredictions.size()));
    for (const std::uint64_t count : sweep.mispredictions)
        encoder.u64(count);
    return encoder.take();
}

core::FixedLengthSweep
decodeSweepCell(const std::vector<std::uint8_t> &payload)
{
    store::Decoder decoder(payload);
    core::FixedLengthSweep sweep;
    sweep.branches = decoder.u64();
    sweep.minLength = decoder.u32();
    const std::uint32_t count = decoder.u32();
    if (count == 0 || count > core::maxPathLength)
        throw std::runtime_error("sweep cell has absurd length count");
    sweep.mispredictions.resize(count);
    for (std::uint64_t &value : sweep.mispredictions)
        value = decoder.u64();
    decoder.expectEnd();
    return sweep;
}

/** Rate curve (percent per length) from a sweep, like
 *  FixedLengthSweep::rate() over the full range. */
std::vector<double>
rateCurve(const core::FixedLengthSweep &sweep)
{
    std::vector<double> rates(sweep.mispredictions.size(), 0.0);
    if (sweep.branches == 0)
        return rates;
    for (std::size_t i = 0; i < rates.size(); ++i) {
        rates[i] = 100.0 * static_cast<double>(sweep.mispredictions[i])
            / static_cast<double>(sweep.branches);
    }
    return rates;
}

/** Journal lookup that treats undecodable payloads as misses. */
template <typename Decode>
auto
journalFetch(store::CheckpointJournal *journal, const std::string &key,
             Decode &&decode)
    -> std::optional<decltype(decode(std::vector<std::uint8_t>{}))>
{
    if (journal == nullptr)
        return std::nullopt;
    const auto payload = journal->lookup(key);
    if (!payload)
        return std::nullopt;
    try {
        return decode(*payload);
    } catch (const std::exception &error) {
        util::warn(std::string("ignoring unusable checkpoint cell ")
                   + key + ": " + error.what());
        return std::nullopt;
    }
}

/**
 * Obtain one per-trace sweep: journal first, else compute through the
 * context (with transient retries) and journal the result.
 */
core::FixedLengthSweep
obtainSweep(const TraceSuiteOptions &options,
            store::CheckpointJournal *journal, ExperimentContext &context,
            const ExternalTrace &ext, bool indirect, unsigned index_bits)
{
    const std::string key =
        sweepCellKey(ext.contentHash, indirect, index_bits);
    if (auto cached = journalFetch(journal, key, decodeSweepCell))
        return *cached;

    const core::FixedLengthSweep sweep = retryTransient(options, [&] {
        return context.externalSweep(ext, index_bits, indirect);
    });
    if (journal != nullptr)
        journal->record(key, encodeSweepCell(sweep));
    return sweep;
}

/**
 * Obtain one comparison row — profiled on @p profile, evaluated on
 * @p eval — journal first, else compute (with transient retries) and
 * journal the result.
 */
ComparisonRow
obtainRow(const TraceSuiteOptions &options,
          store::CheckpointJournal *journal, ExperimentContext &context,
          const ExternalTrace &profile, const ExternalTrace &eval,
          bool indirect, std::size_t bytes, unsigned global_length)
{
    const std::string key =
        rowCellKey(profile.contentHash, eval.contentHash, indirect,
                   bytes, global_length);
    if (auto cached = journalFetch(journal, key,
                                   store::decodeComparisonRow)) {
        return *cached;
    }

    const ComparisonRow row = retryTransient(options, [&] {
        return indirect
            ? compareExternalIndirect(context, profile, eval, bytes,
                                      global_length)
            : compareExternalConditional(context, profile, eval, bytes,
                                         global_length);
    });
    if (journal != nullptr)
        journal->record(key, store::encodeComparisonRow(row));
    return row;
}

/** Quarantine @p work with a deterministic cause string. */
void
quarantine(TraceWork &work, const std::string &cause)
{
    work.outcome.status = TraceStatus::Quarantined;
    work.outcome.cause = cause;
    work.valid = false;
    // A quarantined pair is never replayed again: release any parked
    // opens immediately.
    work.profile.session.reset();
    work.test.session.reset();
    util::warn("quarantined pair " + work.outcome.name + ": " + cause);
}

/**
 * Static-sharded parallel loop: item i runs on worker i % jobs, each
 * worker walks its items in increasing order (mirrors
 * ParallelRunner::runSharded). jobs == 1 runs inline. fn(worker, i)
 * must not throw — per-pair errors are absorbed into outcomes — but
 * a stray exception is still captured and rethrown, first one wins.
 */
void
forEachSharded(util::ThreadPool *pool, unsigned jobs, std::size_t count,
               const std::function<void(unsigned, std::size_t)> &fn)
{
    if (pool == nullptr || jobs <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(0, i);
        return;
    }
    std::exception_ptr first_error;
    std::mutex error_mutex;
    for (unsigned worker = 0; worker < jobs; ++worker) {
        pool->submit([&, worker] {
            try {
                for (std::size_t i = worker; i < count; i += jobs)
                    fn(worker, i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
            }
        });
    }
    pool->wait();
    if (first_error)
        std::rethrow_exception(first_error);
}

unsigned
argminLength(const std::vector<double> &rates)
{
    unsigned best = 1;
    for (unsigned length = 2; length <= rates.size(); ++length) {
        if (rates[length - 1] < rates[best - 1])
            best = length;
    }
    return best;
}

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() > suffix.size()
        && text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix)
            == 0;
}

/** The variable-length-path entry of @p row, or nullptr. */
const RateEntry *
findVlp(const ComparisonRow &row)
{
    for (const RateEntry &entry : row.entries) {
        if (entry.predictor == names::vlp)
            return &entry;
    }
    return nullptr;
}

std::optional<double>
vlpDelta(const std::optional<ComparisonRow> &train,
         const std::optional<ComparisonRow> &test)
{
    if (!train || !test)
        return std::nullopt;
    const RateEntry *trained = findVlp(*train);
    const RateEntry *tested = findVlp(*test);
    if (trained == nullptr || tested == nullptr)
        return std::nullopt;
    return tested->rate - trained->rate;
}

/** "+1.2345%" / "-0.4100%" at the suite's historical 4 decimals. */
std::string
signedPercent(double value)
{
    return (value < 0.0 ? std::string() : std::string("+"))
        + util::formatDouble(value, 4) + "%";
}

/**
 * One comparison row as an Entries-layout report section: a
 * "    <predictor>: <rate>% (<misses>/<branches>)" line per entry,
 * rate at the suite's historical 4 decimals.
 */
void
addRowSection(Report &report, const std::string &name,
              const std::string &caption, const ComparisonRow &row)
{
    Section &section = report.addSection(name);
    section.layout = Section::Layout::Entries;
    section.caption = caption;
    section.columns = {{"mispredict (%)"},
                       {"mispredictions"},
                       {"branches"}};
    for (const RateEntry &entry : row.entries) {
        section.addRow(entry.predictor,
                       {
                           Cell::percent(entry.rate, 4),
                           Cell::count(entry.mispredictions),
                           Cell::count(entry.branches),
                       });
    }
}

/**
 * Train and test rows side by side as a PairedEntries section:
 * "    <predictor>: train <rate>% (<m>/<b>) | test <rate>% (<m>/<b>)"
 * per predictor, with the per-pair generalization delta as footer.
 */
void
addPairedRowSection(Report &report, const std::string &name,
                    const std::string &caption,
                    const ComparisonRow &train,
                    const ComparisonRow &test,
                    const std::optional<double> &delta)
{
    Section &section = report.addSection(name);
    section.layout = Section::Layout::PairedEntries;
    section.caption = caption;
    section.columns = {{"train mispredict (%)"}, {"train mispredictions"},
                       {"train branches"},       {"test mispredict (%)"},
                       {"test mispredictions"},  {"test branches"}};
    for (const RateEntry &trained : train.entries) {
        const RateEntry &tested = test.entry(trained.predictor);
        section.addRow(trained.predictor,
                       {
                           Cell::percent(trained.rate, 4),
                           Cell::count(trained.mispredictions),
                           Cell::count(trained.branches),
                           Cell::percent(tested.rate, 4),
                           Cell::count(tested.mispredictions),
                           Cell::count(tested.branches),
                       });
    }
    if (delta) {
        section.footer =
            "    generalization delta (variable length path): "
            + signedPercent(*delta) + "\n";
    }
}

/** "VBT<v>, <n> records" for one side of a pair's status line. */
std::string
containerText(unsigned format_version, std::uint64_t records)
{
    return "VBT" + std::to_string(format_version) + ", "
        + std::to_string(records) + " records";
}

} // anonymous namespace

std::optional<double>
TraceOutcome::conditionalDelta() const
{
    return vlpDelta(conditionalTrain, conditional);
}

std::optional<double>
TraceOutcome::indirectDelta() const
{
    return vlpDelta(indirectTrain, indirect);
}

std::size_t
SuiteReport::okCount() const
{
    return static_cast<std::size_t>(
        std::count_if(traces.begin(), traces.end(),
                      [](const TraceOutcome &outcome) {
                          return outcome.status == TraceStatus::Ok;
                      }));
}

std::size_t
SuiteReport::quarantinedCount() const
{
    return static_cast<std::size_t>(std::count_if(
        traces.begin(), traces.end(), [](const TraceOutcome &outcome) {
            return outcome.status == TraceStatus::Quarantined;
        }));
}

std::size_t
SuiteReport::skippedCount() const
{
    return static_cast<std::size_t>(
        std::count_if(traces.begin(), traces.end(),
                      [](const TraceOutcome &outcome) {
                          return outcome.status == TraceStatus::Skipped;
                      }));
}

std::size_t
SuiteReport::orphanedCount() const
{
    return static_cast<std::size_t>(
        std::count_if(traces.begin(), traces.end(),
                      [](const TraceOutcome &outcome) {
                          return outcome.status == TraceStatus::Orphaned;
                      }));
}

std::size_t
SuiteReport::crossEvaluatedCount() const
{
    return static_cast<std::size_t>(
        std::count_if(traces.begin(), traces.end(),
                      [](const TraceOutcome &outcome) {
                          return outcome.status == TraceStatus::Ok
                              && !outcome.selfEval;
                      }));
}

Report
SuiteReport::toReport() const
{
    Report report;
    report.title = "external trace suite";
    report.setMeta("bytes", std::uint64_t{bytes});
    report.setMeta("globalConditionalLength",
                   std::uint64_t{globalConditionalLength});
    report.setMeta("globalIndirectLength",
                   std::uint64_t{globalIndirectLength});
    report.setMeta("pairsOk", std::uint64_t{okCount()});
    report.setMeta("pairsCrossEval",
                   std::uint64_t{crossEvaluatedCount()});
    report.setMeta("pairsSelfEval",
                   std::uint64_t{okCount() - crossEvaluatedCount()});
    report.setMeta("pairsQuarantined",
                   std::uint64_t{quarantinedCount()});
    report.setMeta("pairsSkipped", std::uint64_t{skippedCount()});
    report.setMeta("tracesOrphaned", std::uint64_t{orphanedCount()});
    report.setMeta("resumedCells", std::uint64_t{resumedCells});

    std::string header = "external trace suite\n";
    header += "table budget: " + std::to_string(bytes) + " bytes\n";
    header += "global conditional path length: ";
    header += globalConditionalLength > 0
        ? std::to_string(globalConditionalLength) + "\n"
        : std::string("n/a\n");
    header += "global indirect path length: ";
    header += globalIndirectLength > 0
        ? std::to_string(globalIndirectLength) + "\n"
        : std::string("n/a\n");
    header += "pairs: " + std::to_string(okCount()) + " ok ("
        + std::to_string(crossEvaluatedCount()) + " cross-eval, "
        + std::to_string(okCount() - crossEvaluatedCount())
        + " self-eval), " + std::to_string(quarantinedCount())
        + " quarantined, " + std::to_string(skippedCount())
        + " skipped, " + std::to_string(orphanedCount())
        + " orphaned\n";
    report.addText("header", header);

    for (const TraceOutcome &outcome : traces) {
        std::string text = "\n" + outcome.name + ": ";
        switch (outcome.status) {
        case TraceStatus::Ok:
            if (outcome.selfEval) {
                text += "ok self-eval ("
                    + containerText(outcome.formatVersion,
                                    outcome.records)
                    + ")\n";
                if (outcome.formatVersion < 2) {
                    text +=
                        "  warning: unchecksummed VBT1 container\n";
                }
            } else {
                text += "ok cross-eval (profile " + outcome.profileName
                    + ": "
                    + containerText(outcome.profileFormatVersion,
                                    outcome.profileRecords)
                    + "; test " + outcome.testName + ": "
                    + containerText(outcome.formatVersion,
                                    outcome.records)
                    + ")\n";
                if (outcome.profileFormatVersion < 2) {
                    text += "  warning: unchecksummed VBT1 container ("
                        + outcome.profileName + ")\n";
                }
                if (outcome.formatVersion < 2) {
                    text += "  warning: unchecksummed VBT1 container ("
                        + outcome.testName + ")\n";
                }
                report.setMeta("pair:" + outcome.name,
                               outcome.profileName + " -> "
                                   + outcome.testName);
            }
            report.addText("pair:" + outcome.name, text);
            if (outcome.conditional) {
                if (outcome.conditionalTrain) {
                    const auto delta = outcome.conditionalDelta();
                    addPairedRowSection(
                        report, "pair:" + outcome.name + ":conditional",
                        "  conditional ("
                            + std::to_string(
                                  outcome.conditionalBranches)
                            + " profiled branches; train vs test)\n",
                        *outcome.conditionalTrain, *outcome.conditional,
                        delta);
                    if (delta) {
                        report.setMeta("delta:" + outcome.name
                                           + ":conditional",
                                       signedPercent(*delta));
                    }
                } else {
                    addRowSection(
                        report, "pair:" + outcome.name + ":conditional",
                        "  conditional ("
                            + std::to_string(
                                  outcome.conditionalBranches)
                            + " branches)\n",
                        *outcome.conditional);
                }
            }
            if (outcome.indirect) {
                if (outcome.indirectTrain) {
                    const auto delta = outcome.indirectDelta();
                    addPairedRowSection(
                        report, "pair:" + outcome.name + ":indirect",
                        "  indirect ("
                            + std::to_string(outcome.indirectBranches)
                            + " profiled branches; train vs test)\n",
                        *outcome.indirectTrain, *outcome.indirect,
                        delta);
                    if (delta) {
                        report.setMeta("delta:" + outcome.name
                                           + ":indirect",
                                       signedPercent(*delta));
                    }
                } else {
                    addRowSection(
                        report, "pair:" + outcome.name + ":indirect",
                        "  indirect ("
                            + std::to_string(outcome.indirectBranches)
                            + " branches)\n",
                        *outcome.indirect);
                }
            }
            break;
        case TraceStatus::Quarantined:
            text += "quarantined (" + outcome.cause + ")\n";
            report.addText("pair:" + outcome.name, text);
            report.setMeta("quarantine:" + outcome.name,
                           outcome.cause);
            break;
        case TraceStatus::Skipped:
            text += "skipped (" + outcome.cause + ")\n";
            report.addText("pair:" + outcome.name, text);
            report.setMeta("skipped:" + outcome.name, outcome.cause);
            break;
        case TraceStatus::Orphaned:
            text += "orphaned (" + outcome.cause + ")\n";
            report.addText("pair:" + outcome.name, text);
            report.setMeta("orphaned:" + outcome.name, outcome.cause);
            break;
        }
    }
    return report;
}

void
SuiteReport::print(std::ostream &out) const
{
    AsciiReportSink sink;
    sink.write(toReport(), out);
}

TraceSuiteRunner::TraceSuiteRunner(TraceSuiteOptions options)
    : options_(std::move(options))
{
}

std::vector<std::pair<std::string, std::string>>
TraceSuiteRunner::discoverTraces(const std::string &directory)
{
    std::error_code error;
    std::vector<std::pair<std::string, std::string>> traces;
    for (fs::recursive_directory_iterator it(directory, error), end;
         !error && it != end; it.increment(error)) {
        if (!it->is_regular_file()
            || it->path().extension() != ".vbt") {
            continue;
        }
        traces.emplace_back(
            it->path().lexically_relative(directory).generic_string(),
            it->path().string());
    }
    if (error) {
        util::fatal("cannot scan trace directory: " + directory + " ("
                    + error.message() + ")");
    }
    std::sort(traces.begin(), traces.end());
    return traces;
}

TracePairing
TraceSuiteRunner::pairTraces(
    const std::vector<std::pair<std::string, std::string>> &discovered,
    const std::string &manifest_path)
{
    TracePairing pairing;
    std::map<std::string, std::string> by_name(discovered.begin(),
                                               discovered.end());

    if (!manifest_path.empty()) {
        std::ifstream in(manifest_path);
        if (!in)
            util::fatal("cannot open pair manifest: " + manifest_path);
        std::set<std::string> referenced;
        std::set<std::string> pair_names;
        std::string line;
        std::size_t line_number = 0;
        while (std::getline(in, line)) {
            ++line_number;
            const auto at = [&] {
                return manifest_path + ": line "
                    + std::to_string(line_number);
            };
            std::istringstream fields(line);
            std::string name;
            if (!(fields >> name) || name[0] == '#')
                continue; // blank line or comment
            TracePair pair;
            pair.name = name;
            std::string extra;
            if (!(fields >> pair.profileName >> pair.testName)
                || (fields >> extra)) {
                util::fatal(at()
                            + ": expected '<pair> <profile.vbt> "
                              "<test.vbt>'");
            }
            if (!pair_names.insert(pair.name).second)
                util::fatal(at() + ": duplicate pair name '"
                            + pair.name + "'");
            pair.selfEval = pair.profileName == pair.testName;
            // Paths resolve through the discovery listing; a name the
            // scan never saw keeps an empty path and is quarantined
            // downstream with a structured cause.
            const auto profile_it = by_name.find(pair.profileName);
            if (profile_it != by_name.end())
                pair.profilePath = profile_it->second;
            const auto test_it = by_name.find(pair.testName);
            if (test_it != by_name.end())
                pair.testPath = test_it->second;
            referenced.insert(pair.profileName);
            referenced.insert(pair.testName);
            pairing.pairs.push_back(std::move(pair));
        }
        for (const auto &[name, path] : discovered) {
            if (referenced.count(name) == 0) {
                pairing.orphans.push_back(
                    {name, path,
                     "not referenced by pair manifest "
                         + manifest_path});
            }
        }
    } else {
        for (const auto &[name, path] : discovered) {
            if (endsWith(name, profileSuffix)) {
                const std::string stem = name.substr(
                    0, name.size() - std::strlen(profileSuffix));
                const std::string mate = stem + testSuffix;
                const auto mate_it = by_name.find(mate);
                if (mate_it == by_name.end()) {
                    pairing.orphans.push_back(
                        {name, path,
                         "profile trace without a matching " + mate});
                    continue;
                }
                TracePair pair;
                pair.name = stem;
                pair.profileName = name;
                pair.profilePath = path;
                pair.testName = mate;
                pair.testPath = mate_it->second;
                pairing.pairs.push_back(std::move(pair));
            } else if (endsWith(name, testSuffix)) {
                const std::string stem = name.substr(
                    0, name.size() - std::strlen(testSuffix));
                const std::string mate = stem + profileSuffix;
                if (by_name.count(mate) == 0) {
                    pairing.orphans.push_back(
                        {name, path,
                         "test trace without a matching " + mate});
                }
                // The pair itself was created from the profile side.
            } else {
                TracePair pair;
                pair.name = name;
                pair.profileName = name;
                pair.profilePath = path;
                pair.testName = name;
                pair.testPath = path;
                pair.selfEval = true;
                pairing.pairs.push_back(std::move(pair));
            }
        }
    }

    std::sort(pairing.pairs.begin(), pairing.pairs.end(),
              [](const TracePair &a, const TracePair &b) {
                  return a.name < b.name;
              });
    std::sort(pairing.orphans.begin(), pairing.orphans.end(),
              [](const OrphanTrace &a, const OrphanTrace &b) {
                  return a.name < b.name;
              });
    return pairing;
}

SuiteReport
TraceSuiteRunner::run()
{
    const auto discovered = discoverTraces(options_.directory);

    std::string manifest = options_.manifest;
    if (manifest.empty()) {
        const fs::path candidate =
            fs::path(options_.directory) / defaultManifestName;
        std::error_code error;
        if (fs::is_regular_file(candidate, error) && !error)
            manifest = candidate.string();
    }
    const TracePairing pairing = pairTraces(discovered, manifest);

    std::unique_ptr<store::CheckpointJournal> journal;
    if (!options_.checkpoint.empty()) {
        journal = std::make_unique<store::CheckpointJournal>(
            options_.checkpoint);
    }

    const unsigned jobs = options_.jobs == 0
        ? util::ThreadPool::defaultThreadCount()
        : options_.jobs;
    std::unique_ptr<util::ThreadPool> pool;
    if (jobs > 1 && pairing.pairs.size() > 1)
        pool = std::make_unique<util::ThreadPool>(jobs);

    std::vector<std::unique_ptr<ExperimentContext>> contexts;
    for (unsigned worker = 0; worker < jobs; ++worker) {
        contexts.push_back(std::make_unique<ExperimentContext>());
        contexts.back()->setStore(options_.store);
        contexts.back()->setCancelToken(options_.cancel);
    }

    std::vector<TraceWork> work(pairing.pairs.size());
    for (std::size_t i = 0; i < pairing.pairs.size(); ++i) {
        const TracePair &pair = pairing.pairs[i];
        TraceOutcome &outcome = work[i].outcome;
        outcome.name = pair.name;
        outcome.path = pair.testPath;
        outcome.selfEval = pair.selfEval;
        outcome.profileName = pair.profileName;
        outcome.profilePath = pair.profilePath;
        outcome.testName = pair.testName;
    }

    const unsigned cond_bits = pred::conditionalIndexBits(options_.bytes);
    const unsigned ind_bits = pred::indirectIndexBits(options_.bytes);

    // Single-pass pipelined ingestion: each trace is opened exactly
    // once per attempt through a content-hashing reader (validation,
    // identity, and replay share the open), and a bounded prefetcher
    // hashes upcoming traces while workers simulate earlier ones.
    // Overlap changes throughput only — every result is still a pure
    // function of the trace bytes and options.
    trace::FileOpener effective_opener = options_.opener
        ? options_.opener
        : trace::fastOpener(options_.readMode);
    // Under an active chaos campaign every open and read goes through
    // the fault-injecting wrapper, so ingestion hazards (transient
    // opens, short reads, refused views) are exercised on the same
    // code paths production uses.
    if (util::chaos::enabled())
        effective_opener = trace::chaosOpener(effective_opener);
    constexpr std::size_t no_item = ~std::size_t{0};
    std::vector<std::string> prefetch_paths;
    std::vector<std::size_t> profile_item(pairing.pairs.size(), no_item);
    std::vector<std::size_t> test_item(pairing.pairs.size(), no_item);
    for (std::size_t i = 0; i < pairing.pairs.size(); ++i) {
        const TracePair &pair = pairing.pairs[i];
        if (pair.profilePath.empty() || pair.testPath.empty())
            continue; // quarantined in the worker, nothing to open
        profile_item[i] = prefetch_paths.size();
        prefetch_paths.push_back(pair.profilePath);
        if (!pair.selfEval) {
            test_item[i] = prefetch_paths.size();
            prefetch_paths.push_back(pair.testPath);
        }
    }
    trace::TracePrefetcher::Options prefetch_options;
    prefetch_options.opener = effective_opener;
    prefetch_options.chunkRecords = options_.chunkRecords;
    prefetch_options.window = options_.prefetchWindow != 0
        ? options_.prefetchWindow
        : 2 * static_cast<std::size_t>(jobs) + 2;
    prefetch_options.threads = jobs;
    prefetch_options.retry = retryPolicy(options_);
    prefetch_options.cancel = options_.cancel;
    trace::TracePrefetcher prefetch(prefetch_paths, prefetch_options);

    // Phase A+B: validate both traces of each pair and collect the
    // profile trace's step-1 sweeps.
    forEachSharded(pool.get(), jobs, work.size(),
                   [&](unsigned worker, std::size_t i) {
        TraceWork &item = work[i];
        const TracePair &pair = pairing.pairs[i];
        if (options_.cancel)
            options_.cancel->throwIfCancelled();
        ExperimentContext &context = *contexts[worker];
        try {
            if (pair.profilePath.empty()) {
                quarantine(item, "pair manifest references '"
                                     + pair.profileName
                                     + "', which is not in the corpus");
                return;
            }
            if (pair.testPath.empty()) {
                quarantine(item, "pair manifest references '"
                                     + pair.testName
                                     + "', which is not in the corpus");
                return;
            }

            // Collect both prefetched opens before inspecting either:
            // every published item must be consumed to free window
            // slots, error or not. A pair whose content cannot even
            // be hashed is quarantined (profile cause first, like the
            // historical sequential opens).
            trace::PrefetchedTrace profile_open =
                prefetch.take(profile_item[i]);
            trace::PrefetchedTrace test_open;
            if (!pair.selfEval)
                test_open = prefetch.take(test_item[i]);
            if (profile_open.error)
                std::rethrow_exception(profile_open.error);

            item.profile.name = pair.profileName;
            item.profile.path = pair.profilePath;
            item.profile.chunkRecords = options_.chunkRecords;
            item.profile.opener = effective_opener;
            item.profile.contentHash = profile_open.contentHash;
            item.profile.session = std::move(profile_open.session);
            item.outcome.profileFormatVersion =
                profile_open.formatVersion;
            item.outcome.profileRecords = profile_open.records;

            if (pair.selfEval) {
                item.test = item.profile;
                item.outcome.formatVersion =
                    item.outcome.profileFormatVersion;
                item.outcome.records = item.outcome.profileRecords;
            } else {
                if (test_open.error)
                    std::rethrow_exception(test_open.error);
                item.test.name = pair.testName;
                item.test.path = pair.testPath;
                item.test.chunkRecords = options_.chunkRecords;
                item.test.opener = effective_opener;
                item.test.contentHash = test_open.contentHash;
                item.test.session = std::move(test_open.session);
                item.outcome.formatVersion = test_open.formatVersion;
                item.outcome.records = test_open.records;
            }
            if (item.outcome.profileFormatVersion < 2) {
                util::warn("trace " + pair.profileName
                           + " is an unchecksummed VBT1 container; "
                             "corruption would go undetected");
            }
            if (!pair.selfEval && item.outcome.formatVersion < 2) {
                util::warn("trace " + pair.testName
                           + " is an unchecksummed VBT1 container; "
                             "corruption would go undetected");
            }

            const core::FixedLengthSweep cond_sweep =
                obtainSweep(options_, journal.get(), context,
                            item.profile, false, cond_bits);
            const core::FixedLengthSweep ind_sweep =
                obtainSweep(options_, journal.get(), context,
                            item.profile, true, ind_bits);
            item.outcome.conditionalBranches = cond_sweep.branches;
            item.outcome.indirectBranches = ind_sweep.branches;
            item.condRates = rateCurve(cond_sweep);
            item.indRates = rateCurve(ind_sweep);
            item.valid = true;
        } catch (const util::CancelledError &) {
            throw; // aborts the run; never a quarantine cause
        } catch (const util::TransientError &error) {
            quarantine(item,
                       std::string("transient failure persisted after ")
                           + std::to_string(
                                 std::max(options_.maxAttempts, 1u))
                           + " attempts: " + error.what());
        } catch (const std::exception &error) {
            quarantine(item, error.what());
        }
    });

    // Suite-wide global lengths, accumulated in sorted-pair order on
    // this thread so the averages are bit-identical for any jobs
    // value (mirrors the paper's Table 2 methodology: profile inputs
    // only).
    std::vector<double> cond_average(core::maxPathLength, 0.0);
    std::vector<double> ind_average(core::maxPathLength, 0.0);
    unsigned cond_counted = 0;
    unsigned ind_counted = 0;
    for (TraceWork &item : work) {
        if (!item.valid)
            continue;
        if (item.outcome.conditionalBranches > 0) {
            ++cond_counted;
            for (std::size_t l = 0; l < item.condRates.size(); ++l)
                cond_average[l] += item.condRates[l];
        }
        if (item.outcome.indirectBranches >= minIndirectBranches) {
            ++ind_counted;
            for (std::size_t l = 0; l < item.indRates.size(); ++l)
                ind_average[l] += item.indRates[l];
        }
        if (item.outcome.conditionalBranches == 0
            && item.outcome.indirectBranches < minIndirectBranches) {
            item.valid = false;
            item.outcome.status = TraceStatus::Skipped;
            item.outcome.cause = "no usable branches ("
                + std::to_string(item.outcome.conditionalBranches)
                + " conditional, "
                + std::to_string(item.outcome.indirectBranches)
                + " indirect)";
        }
    }
    unsigned global_cond = 0;
    unsigned global_ind = 0;
    if (cond_counted > 0) {
        for (double &rate : cond_average)
            rate /= static_cast<double>(cond_counted);
        global_cond = argminLength(cond_average);
    }
    if (ind_counted > 0) {
        for (double &rate : ind_average)
            rate /= static_cast<double>(ind_counted);
        global_ind = argminLength(ind_average);
    }
    // Pinned globals (the chaos campaign's masked baseline): replay
    // rows are pure functions of the pair's traces plus these two
    // lengths, so pinning them lets a chaos-off rerun be compared
    // pair-by-pair even when a quarantine changed the suite average.
    if (options_.forceGlobalConditionalLength)
        global_cond = *options_.forceGlobalConditionalLength;
    if (options_.forceGlobalIndirectLength)
        global_ind = *options_.forceGlobalIndirectLength;

    // Phase C: comparison rows per surviving pair — the train row
    // replays the profile trace, the test row replays the test trace,
    // both against the assignment learned from the profile trace.
    // Same sharding as phase A so each worker reuses its own phase-B
    // profiler caches.
    forEachSharded(pool.get(), jobs, work.size(),
                   [&](unsigned worker, std::size_t i) {
        TraceWork &item = work[i];
        if (!item.valid) {
            // Skipped in the barrier (or quarantined without passing
            // through quarantine's release): this pair will never be
            // replayed, so close any parked open now.
            item.profile.session.reset();
            item.test.session.reset();
            return;
        }
        if (options_.cancel)
            options_.cancel->throwIfCancelled();
        ExperimentContext &context = *contexts[worker];
        try {
            if (item.outcome.conditionalBranches > 0
                && global_cond > 0) {
                if (!item.outcome.selfEval) {
                    item.outcome.conditionalTrain =
                        obtainRow(options_, journal.get(), context,
                                  item.profile, item.profile, false,
                                  options_.bytes, global_cond);
                }
                item.outcome.conditional =
                    obtainRow(options_, journal.get(), context,
                              item.profile, item.test, false,
                              options_.bytes, global_cond);
            }
            if (item.outcome.indirectBranches >= minIndirectBranches
                && global_ind > 0) {
                if (!item.outcome.selfEval) {
                    item.outcome.indirectTrain =
                        obtainRow(options_, journal.get(), context,
                                  item.profile, item.profile, true,
                                  options_.bytes, global_ind);
                }
                item.outcome.indirect =
                    obtainRow(options_, journal.get(), context,
                              item.profile, item.test, true,
                              options_.bytes, global_ind);
            }
        } catch (const util::CancelledError &) {
            throw; // aborts the run; never a quarantine cause
        } catch (const util::TransientError &error) {
            quarantine(item,
                       std::string("transient failure persisted after ")
                           + std::to_string(
                                 std::max(options_.maxAttempts, 1u))
                           + " attempts: " + error.what());
        } catch (const std::exception &error) {
            quarantine(item, error.what());
        }
        // All replays of this pair are done: close the parked opens so
        // descriptors scale with the active shard, not the corpus.
        item.profile.session.reset();
        item.test.session.reset();
    });

    SuiteReport report;
    report.bytes = options_.bytes;
    report.globalConditionalLength = global_cond;
    report.globalIndirectLength = global_ind;
    if (journal)
        report.resumedCells = journal->resumedEntries();
    report.traces.reserve(work.size() + pairing.orphans.size());
    for (TraceWork &item : work)
        report.traces.push_back(std::move(item.outcome));
    for (const OrphanTrace &orphan : pairing.orphans) {
        TraceOutcome outcome;
        outcome.name = orphan.name;
        outcome.path = orphan.path;
        outcome.status = TraceStatus::Orphaned;
        outcome.cause = orphan.cause;
        report.traces.push_back(std::move(outcome));
    }
    std::sort(report.traces.begin(), report.traces.end(),
              [](const TraceOutcome &a, const TraceOutcome &b) {
                  return a.name < b.name;
              });
    return report;
}

} // namespace sim
} // namespace vlp
