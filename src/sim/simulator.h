/**
 * @file
 * The trace-driven branch prediction simulator.
 *
 * Drives a branch trace through any number of conditional and indirect
 * predictors simultaneously (they see identical streams), models a
 * return address stack for returns (which are therefore excluded from
 * indirect statistics, as in the paper), and collects per-predictor
 * and optional per-static-branch accuracy statistics.
 */

#ifndef VLPSIM_SIM_SIMULATOR_H
#define VLPSIM_SIM_SIMULATOR_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "predictors/predictor.h"
#include "predictors/ras.h"
#include "trace/trace_source.h"

namespace vlp {
namespace sim {

/** Accuracy of one predictor over the simulated stream. */
struct PredictorResult
{
    /** Predictor display name. */
    std::string name;
    /** Predictor table budget in bytes. */
    std::size_t sizeBytes = 0;
    /** Dynamic branches predicted. */
    std::uint64_t branches = 0;
    /** Mispredicted branches. */
    std::uint64_t mispredictions = 0;

    /** Misprediction rate in percent. */
    double rate() const;
};

/** Per-static-branch accuracy record. */
struct BranchAccuracy
{
    std::uint64_t executions = 0;
    std::uint64_t mispredictions = 0;
};

/**
 * Runs traces through registered predictors. Predictors are borrowed,
 * not owned; register them, call run() (possibly over several traces),
 * then read the results.
 */
class Simulator
{
  public:
    Simulator() = default;

    /** Register a conditional predictor. Must outlive the simulator. */
    void addConditional(pred::ConditionalPredictor *predictor);

    /** Register an indirect predictor. Must outlive the simulator. */
    void addIndirect(pred::IndirectPredictor *predictor);

    /**
     * Track per-static-branch accuracy for every registered
     * predictor (off by default; costs a hash lookup per branch).
     */
    void setTrackPerBranch(bool track) { trackPerBranch_ = track; }

    /** Consume @p source from its current position to exhaustion. */
    void run(trace::TraceSource &source);

    /** Results for conditional predictors, in registration order. */
    std::vector<PredictorResult> conditionalResults() const;

    /** Results for indirect predictors, in registration order. */
    std::vector<PredictorResult> indirectResults() const;

    /** Return address stack accuracy over the run. */
    PredictorResult rasResult() const;

    /**
     * Per-branch accuracy for conditional predictor @p index
     * (registration order). Empty unless tracking was enabled.
     */
    const std::unordered_map<std::uint64_t, BranchAccuracy> &
    conditionalPerBranch(std::size_t index) const;

    /** Per-branch accuracy for indirect predictor @p index. */
    const std::unordered_map<std::uint64_t, BranchAccuracy> &
    indirectPerBranch(std::size_t index) const;

  private:
    struct Slot
    {
        std::uint64_t branches = 0;
        std::uint64_t mispredictions = 0;
        std::unordered_map<std::uint64_t, BranchAccuracy> perBranch;
    };

    std::vector<pred::ConditionalPredictor *> conditional_;
    std::vector<pred::IndirectPredictor *> indirect_;
    std::vector<Slot> conditionalSlots_;
    std::vector<Slot> indirectSlots_;

    pred::ReturnAddressStack ras_;
    std::uint64_t returns_ = 0;
    std::uint64_t returnMisses_ = 0;

    bool trackPerBranch_ = false;
};

} // namespace sim
} // namespace vlp

#endif // VLPSIM_SIM_SIMULATOR_H
