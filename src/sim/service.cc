/**
 * @file
 * Shared experiment service implementation.
 */

#include "sim/service.h"

#include <sstream>
#include <stdexcept>

#include "sim/parallel.h"
#include "util/version.h"
#include "workload/benchmarks.h"

namespace vlp {
namespace sim {

namespace {

void
tick(const ProgressFn &progress, const std::string &stage,
     std::size_t completed, std::size_t total)
{
    if (progress)
        progress({stage, completed, total});
}

/**
 * One budget's comparison section, appended to @p report. Extracted
 * so the suite and sweep paths build sections with identical layout.
 */
void
addCompareSection(Report &report, ParallelRunner &runner,
                  bool indirect, std::size_t bytes,
                  const std::string &name)
{
    const unsigned global_length = indirect
        ? runner.globalIndirectLength(bytes)
        : runner.globalConditionalLength(bytes);
    const auto &suite = workload::benchmarkSuite();
    const auto rows = indirect
        ? runner.compareIndirectSuite(suite, bytes, global_length)
        : runner.compareConditionalSuite(suite, bytes, global_length);

    Section &section = report.addSection(name);
    std::ostringstream caption;
    caption << (indirect ? "indirect" : "conditional")
            << " predictors, " << bytes
            << " byte tables, test inputs (global fixed path length "
            << global_length << "):\n";
    section.caption = caption.str();
    section.columns = {{"benchmark"}};
    for (const auto &entry : rows.front().entries)
        section.columns.push_back({entry.predictor + " (%)"});
    for (const auto &row : rows) {
        std::vector<Cell> cells = {Cell::text(row.benchmark)};
        for (const auto &entry : row.entries)
            cells.push_back(Cell::percent(entry.rate));
        section.addRow(row.benchmark, std::move(cells));
    }
}

/** The global fixed length for @p bytes, without building rows. */
unsigned
globalLength(ParallelRunner &runner, bool indirect, std::size_t bytes)
{
    return indirect ? runner.globalIndirectLength(bytes)
                    : runner.globalConditionalLength(bytes);
}

} // anonymous namespace

ServiceResult
runSuiteCompare(const SuiteCompareSpec &spec,
                std::shared_ptr<store::ArtifactStore> store,
                std::shared_ptr<const util::CancelToken> cancel,
                const ProgressFn &progress)
{
    if (spec.bytes == 0)
        throw std::runtime_error(
            "table budget must be a positive byte count");

    ParallelRunner runner(spec.jobs);
    if (store)
        runner.setStore(std::move(store));
    if (cancel)
        runner.setCancelToken(std::move(cancel));

    tick(progress, "global length", 0, 2);
    const unsigned global_length =
        globalLength(runner, spec.indirect, spec.bytes);

    tick(progress, "compare", 1, 2);

    ServiceResult result;
    result.report.title = "predictor suite";
    result.report.setMeta("class", spec.indirect ? "ind" : "cond");
    result.report.setMeta("bytes", std::uint64_t{spec.bytes});
    result.report.setMeta("globalLength",
                          std::uint64_t{global_length});
    result.report.setMeta("jobs", std::uint64_t{runner.jobs()});
    addCompareSection(result.report, runner, spec.indirect, spec.bytes,
                      spec.indirect ? "indirect" : "conditional");
    result.report.setMeta("predictions", runner.predictions());
    result.predictions = runner.predictions();
    result.jobs = runner.jobs();

    tick(progress, "done", 2, 2);
    return result;
}

ServiceResult
runSweep(const SweepSpec &spec,
         std::shared_ptr<store::ArtifactStore> store,
         std::shared_ptr<const util::CancelToken> cancel,
         const ProgressFn &progress)
{
    if (spec.budgets.empty())
        throw std::runtime_error("sweep needs at least one budget");
    for (const std::size_t bytes : spec.budgets) {
        if (bytes == 0) {
            throw std::runtime_error(
                "table budget must be a positive byte count");
        }
    }

    ParallelRunner runner(spec.jobs);
    if (store)
        runner.setStore(std::move(store));
    if (cancel)
        runner.setCancelToken(std::move(cancel));

    ServiceResult result;
    result.report.title = "predictor sweep";
    result.report.setMeta("class", spec.indirect ? "ind" : "cond");
    {
        std::ostringstream budgets;
        for (std::size_t i = 0; i < spec.budgets.size(); ++i) {
            if (i > 0)
                budgets << ",";
            budgets << spec.budgets[i];
        }
        result.report.setMeta("budgets", budgets.str());
    }
    result.report.setMeta("jobs", std::uint64_t{runner.jobs()});
    for (std::size_t i = 0; i < spec.budgets.size(); ++i) {
        const std::size_t bytes = spec.budgets[i];
        tick(progress, std::to_string(bytes) + " bytes", i,
             spec.budgets.size());
        addCompareSection(result.report, runner, spec.indirect, bytes,
                          std::to_string(bytes));
    }
    result.report.setMeta("predictions", runner.predictions());
    result.predictions = runner.predictions();
    result.jobs = runner.jobs();

    tick(progress, "done", spec.budgets.size(), spec.budgets.size());
    return result;
}

void
stampBuildInfo(Report &report)
{
    report.setMeta("vlpsimVersion", util::buildVersion());
}

} // namespace sim
} // namespace vlp
