/**
 * @file
 * Bounded priority queue implementation.
 */

#include "serve/request_queue.h"

#include <algorithm>

namespace vlp {
namespace serve {

const char *
describeAdmission(Admission admission)
{
    switch (admission) {
    case Admission::Accepted:
        return "accepted";
    case Admission::QueueFull:
        return "queue depth limit reached";
    case Admission::BytesExhausted:
        return "in-flight byte budget exhausted";
    case Admission::Draining:
        return "server is draining for shutdown";
    case Admission::Closed:
        return "server is shut down";
    }
    return "unknown";
}

bool
RequestQueue::before(const Entry &a, const Entry &b)
{
    if (a.item.priority != b.item.priority)
        return a.item.priority > b.item.priority;
    return a.sequence < b.sequence;
}

Admission
RequestQueue::push(QueueItem item)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_)
        return Admission::Closed;
    if (draining_)
        return Admission::Draining;
    if (limits_.maxDepth > 0 && entries_.size() >= limits_.maxDepth)
        return Admission::QueueFull;
    if (limits_.maxInflightBytes > 0
        && inflightBytes_ + item.bytes > limits_.maxInflightBytes) {
        return Admission::BytesExhausted;
    }
    inflightBytes_ += item.bytes;
    Entry entry{std::move(item), nextSequence_++};
    // Insert in pop order: the queue stays sorted, so pop() and
    // position() are trivial reads.
    const auto at = std::upper_bound(
        entries_.begin(), entries_.end(), entry,
        [](const Entry &a, const Entry &b) { return before(a, b); });
    entries_.insert(at, std::move(entry));
    available_.notify_one();
    return Admission::Accepted;
}

std::optional<QueueItem>
RequestQueue::pop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    available_.wait(lock,
                    [this] { return closed_ || !entries_.empty(); });
    if (entries_.empty())
        return std::nullopt;
    QueueItem item = std::move(entries_.front().item);
    entries_.pop_front();
    ++active_;
    return item;
}

bool
RequestQueue::remove(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->item.id == id) {
            inflightBytes_ -= it->item.bytes;
            entries_.erase(it);
            idle_.notify_all();
            return true;
        }
    }
    return false;
}

void
RequestQueue::finish(std::size_t bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    inflightBytes_ -= std::min(bytes, inflightBytes_);
    if (active_ > 0)
        --active_;
    idle_.notify_all();
}

void
RequestQueue::awaitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock,
               [this] { return entries_.empty() && active_ == 0; });
}

void
RequestQueue::drain()
{
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
        draining_ = true;
    }
    available_.notify_all();
}

std::size_t
RequestQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::size_t
RequestQueue::inflightBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return inflightBytes_;
}

std::optional<std::size_t>
RequestQueue::position(std::uint64_t id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].item.id == id)
            return i;
    }
    return std::nullopt;
}

bool
RequestQueue::draining() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return draining_;
}

} // namespace serve
} // namespace vlp
