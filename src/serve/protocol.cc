/**
 * @file
 * vlpsim-serve frame codec implementation.
 */

#include "serve/protocol.h"

#include <stdexcept>

#include "sim/report.h"
#include "trace/mmap_file.h"
#include "util/version.h"

namespace vlp {
namespace serve {

namespace {

/** Required string member of @p frame. */
std::string
stringField(const util::Json &frame, const std::string &key)
{
    const util::Json *value = frame.find(key);
    if (value == nullptr || !value->isString())
        throw std::runtime_error("submit frame needs string '" + key
                                 + "'");
    return value->asString();
}

/** Optional unsigned member; @p fallback when absent. */
std::uint64_t
uintField(const util::Json &frame, const std::string &key,
          std::uint64_t fallback)
{
    const util::Json *value = frame.find(key);
    if (value == nullptr)
        return fallback;
    if (!value->isNumber())
        throw std::runtime_error("submit frame field '" + key
                                 + "' must be a number");
    return value->asUint();
}

/** "cond"/"ind" → indirect flag. */
bool
parseClass(const util::Json &frame)
{
    const std::string text = stringField(frame, "class");
    if (text == "cond")
        return false;
    if (text == "ind")
        return true;
    throw std::runtime_error(
        "submit frame 'class' must be 'cond' or 'ind'");
}

} // anonymous namespace

std::size_t
SubmitSpec::cost(std::size_t frame_bytes) const
{
    std::size_t working_set = 0;
    if (op == "suite") {
        working_set = suite.bytes;
    } else if (op == "sweep") {
        for (const std::size_t budget : sweep.budgets)
            working_set += budget;
    } else if (op == "trace-suite") {
        working_set = traceBytes;
    }
    return frame_bytes + working_set;
}

SubmitSpec
parseSubmit(const util::Json &frame)
{
    SubmitSpec spec;
    spec.op = stringField(frame, "op");
    // priority may legitimately be negative, so it bypasses
    // uintField().
    if (const util::Json *priority = frame.find("priority")) {
        if (!priority->isNumber())
            throw std::runtime_error(
                "submit frame field 'priority' must be a number");
        spec.priority = static_cast<int>(priority->asNumber());
    }

    if (spec.op == "suite") {
        spec.suite.indirect = parseClass(frame);
        spec.suite.bytes = static_cast<std::size_t>(
            uintField(frame, "bytes", 8 * 1024));
        spec.suite.jobs =
            static_cast<unsigned>(uintField(frame, "jobs", 1));
        if (spec.suite.bytes == 0)
            throw std::runtime_error(
                "submit frame 'bytes' must be positive");
        return spec;
    }
    if (spec.op == "sweep") {
        spec.sweep.indirect = parseClass(frame);
        const util::Json *budgets = frame.find("budgets");
        if (budgets == nullptr || !budgets->isArray()
            || budgets->items().empty()) {
            throw std::runtime_error(
                "submit frame needs non-empty array 'budgets'");
        }
        for (const util::Json &budget : budgets->items()) {
            if (!budget.isNumber() || budget.asUint() == 0)
                throw std::runtime_error(
                    "submit frame 'budgets' entries must be positive "
                    "numbers");
            spec.sweep.budgets.push_back(
                static_cast<std::size_t>(budget.asUint()));
        }
        spec.sweep.jobs =
            static_cast<unsigned>(uintField(frame, "jobs", 1));
        return spec;
    }
    if (spec.op == "trace-suite") {
        spec.tracesDirectory = stringField(frame, "traces");
        if (const util::Json *pairs = frame.find("pairs")) {
            if (!pairs->isString())
                throw std::runtime_error(
                    "submit frame field 'pairs' must be a string");
            spec.pairsManifest = pairs->asString();
        }
        spec.traceBytes = static_cast<std::size_t>(
            uintField(frame, "bytes", 8 * 1024));
        spec.traceJobs =
            static_cast<unsigned>(uintField(frame, "jobs", 1));
        if (const util::Json *mode = frame.find("readMode")) {
            if (!mode->isString())
                throw std::runtime_error(
                    "submit frame field 'readMode' must be a string");
            spec.traceReadMode = mode->asString();
            // Reject at admission, not when the experiment runs.
            trace::parseReadMode(spec.traceReadMode);
        }
        if (spec.traceBytes == 0)
            throw std::runtime_error(
                "submit frame 'bytes' must be positive");
        return spec;
    }
    if (spec.op == "sleep") {
        spec.sleepMs =
            static_cast<unsigned>(uintField(frame, "ms", 100));
        return spec;
    }
    throw std::runtime_error("unknown submit op '" + spec.op
                             + "' (expected suite, sweep, "
                               "trace-suite, or sleep)");
}

int
admissionCode(Admission admission)
{
    switch (admission) {
    case Admission::Accepted:
        return 0;
    case Admission::QueueFull:
    case Admission::BytesExhausted:
        return 429;
    case Admission::Draining:
    case Admission::Closed:
        return 503;
    }
    return 500;
}

// --- frame builders -------------------------------------------------

std::string
submitFrame(const SubmitSpec &spec)
{
    util::JsonWriter writer(util::JsonWriter::Style::Compact);
    writer.beginObject();
    writer.member("type", "submit");
    writer.member("op", spec.op);
    if (spec.op == "suite") {
        writer.member("class", spec.suite.indirect ? "ind" : "cond");
        writer.member("bytes", std::uint64_t{spec.suite.bytes});
        writer.member("jobs", std::uint64_t{spec.suite.jobs});
    } else if (spec.op == "sweep") {
        writer.member("class", spec.sweep.indirect ? "ind" : "cond");
        writer.key("budgets");
        writer.beginArray();
        for (const std::size_t budget : spec.sweep.budgets)
            writer.value(std::uint64_t{budget});
        writer.endArray();
        writer.member("jobs", std::uint64_t{spec.sweep.jobs});
    } else if (spec.op == "trace-suite") {
        writer.member("traces", spec.tracesDirectory);
        if (!spec.pairsManifest.empty())
            writer.member("pairs", spec.pairsManifest);
        writer.member("bytes", std::uint64_t{spec.traceBytes});
        writer.member("jobs", std::uint64_t{spec.traceJobs});
        if (spec.traceReadMode != "auto")
            writer.member("readMode", spec.traceReadMode);
    } else if (spec.op == "sleep") {
        writer.member("ms", std::uint64_t{spec.sleepMs});
    }
    if (spec.priority != 0) {
        writer.key("priority");
        writer.rawNumber(std::to_string(spec.priority));
    }
    writer.endObject();
    return writer.str();
}

std::string
clientStatusFrame(std::uint64_t id)
{
    util::JsonWriter writer(util::JsonWriter::Style::Compact);
    writer.beginObject();
    writer.member("type", "status");
    if (id != 0)
        writer.member("id", id);
    writer.endObject();
    return writer.str();
}

std::string
clientCancelFrame(std::uint64_t id)
{
    util::JsonWriter writer(util::JsonWriter::Style::Compact);
    writer.beginObject();
    writer.member("type", "cancel");
    writer.member("id", id);
    writer.endObject();
    return writer.str();
}

std::string
clientShutdownFrame()
{
    util::JsonWriter writer(util::JsonWriter::Style::Compact);
    writer.beginObject();
    writer.member("type", "shutdown");
    writer.endObject();
    return writer.str();
}

std::string
helloFrame()
{
    util::JsonWriter writer(util::JsonWriter::Style::Compact);
    writer.beginObject();
    writer.member("type", "hello");
    writer.member("service", serviceName);
    writer.member("version", util::buildVersion());
    writer.member("schemaVersion",
                  std::uint64_t{sim::reportSchemaVersion});
    writer.member("protocolVersion", std::uint64_t{protocolVersion});
    writer.endObject();
    return writer.str();
}

std::string
acceptedFrame(std::uint64_t id, std::size_t position)
{
    util::JsonWriter writer(util::JsonWriter::Style::Compact);
    writer.beginObject();
    writer.member("type", "accepted");
    writer.member("id", id);
    writer.member("position", std::uint64_t{position});
    writer.endObject();
    return writer.str();
}

std::string
rejectedFrame(int code, const std::string &reason)
{
    util::JsonWriter writer(util::JsonWriter::Style::Compact);
    writer.beginObject();
    writer.member("type", "rejected");
    writer.member("code", std::uint64_t{static_cast<unsigned>(code)});
    writer.member("reason", reason);
    writer.endObject();
    return writer.str();
}

std::string
progressFrame(std::uint64_t id, const std::string &stage,
              std::size_t completed, std::size_t total)
{
    util::JsonWriter writer(util::JsonWriter::Style::Compact);
    writer.beginObject();
    writer.member("type", "progress");
    writer.member("id", id);
    writer.member("stage", stage);
    writer.member("completed", std::uint64_t{completed});
    writer.member("total", std::uint64_t{total});
    writer.endObject();
    return writer.str();
}

std::string
heartbeatFrame(std::uint64_t id, std::uint64_t sequence)
{
    util::JsonWriter writer(util::JsonWriter::Style::Compact);
    writer.beginObject();
    writer.member("type", "heartbeat");
    writer.member("id", id);
    writer.member("seq", sequence);
    writer.endObject();
    return writer.str();
}

std::string
resultFrame(std::uint64_t id, const util::Json &report_json,
            std::uint64_t cache_hits, std::uint64_t cache_misses,
            std::uint64_t cache_inserts, bool cache_hit,
            std::uint64_t predictions)
{
    util::JsonWriter writer(util::JsonWriter::Style::Compact);
    writer.beginObject();
    writer.member("type", "result");
    writer.member("id", id);
    writer.member("status", "ok");
    writer.member("cacheHits", cache_hits);
    writer.member("cacheMisses", cache_misses);
    writer.member("cacheInserts", cache_inserts);
    writer.member("cacheHit", cache_hit);
    writer.member("predictions", predictions);
    writer.key("report");
    writeJson(writer, report_json);
    writer.endObject();
    return writer.str();
}

std::string
statusReportFrame(std::uint64_t id, const std::string &state,
                  std::size_t position)
{
    util::JsonWriter writer(util::JsonWriter::Style::Compact);
    writer.beginObject();
    writer.member("type", "status-report");
    writer.member("id", id);
    writer.member("state", state);
    if (state == "queued")
        writer.member("position", std::uint64_t{position});
    writer.endObject();
    return writer.str();
}

std::string
serverStatusFrame(std::size_t queue_depth, std::size_t inflight_bytes,
                  std::uint64_t accepted, std::uint64_t rejected,
                  std::uint64_t completed, std::uint64_t cancelled,
                  bool draining)
{
    util::JsonWriter writer(util::JsonWriter::Style::Compact);
    writer.beginObject();
    writer.member("type", "status-report");
    writer.member("queueDepth", std::uint64_t{queue_depth});
    writer.member("inflightBytes", std::uint64_t{inflight_bytes});
    writer.member("accepted", accepted);
    writer.member("rejected", rejected);
    writer.member("completed", completed);
    writer.member("cancelled", cancelled);
    writer.member("draining", draining);
    writer.endObject();
    return writer.str();
}

std::string
cancelledFrame(std::uint64_t id, const std::string &state)
{
    util::JsonWriter writer(util::JsonWriter::Style::Compact);
    writer.beginObject();
    writer.member("type", "cancelled");
    writer.member("id", id);
    writer.member("state", state);
    writer.endObject();
    return writer.str();
}

std::string
shuttingDownFrame()
{
    util::JsonWriter writer(util::JsonWriter::Style::Compact);
    writer.beginObject();
    writer.member("type", "shutting-down");
    writer.endObject();
    return writer.str();
}

std::string
errorFrame(std::uint64_t id, const std::string &message)
{
    util::JsonWriter writer(util::JsonWriter::Style::Compact);
    writer.beginObject();
    writer.member("type", "error");
    writer.member("id", id);
    writer.member("message", message);
    writer.endObject();
    return writer.str();
}

} // namespace serve
} // namespace vlp
