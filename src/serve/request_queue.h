/**
 * @file
 * Bounded priority queue with admission control for the serve daemon.
 *
 * The queue is the daemon's only buffering point, so its limits *are*
 * the daemon's overload policy: a request is admitted only when the
 * queue has depth headroom and its declared payload fits under the
 * in-flight byte budget. Everything else is rejected at push() time
 * with a structured reason the server maps to a 429-style frame —
 * overload surfaces as an explicit client-visible decision, never as
 * unbounded memory or silent latency.
 *
 * Byte accounting covers queued *and* running work: bytes are
 * reserved at admission and released by finish() after the request
 * completes, so a flood of small submits cannot starve memory while
 * large requests execute.
 *
 * Ordering: higher priority first, FIFO within a priority (a strict
 * total order — ties broken by admission sequence — so scheduling is
 * deterministic for any arrival history).
 *
 * The queue knows nothing about sockets or experiment specs; items
 * carry an opaque work closure. That keeps it unit-testable without a
 * daemon around it.
 */

#ifndef VLPSIM_SERVE_REQUEST_QUEUE_H
#define VLPSIM_SERVE_REQUEST_QUEUE_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

namespace vlp {
namespace serve {

/** Admission-control limits (0 = unlimited for either bound). */
struct QueueLimits
{
    /** Maximum queued (not yet popped) requests. */
    std::size_t maxDepth = 16;
    /** Maximum bytes reserved across queued + running requests. */
    std::size_t maxInflightBytes = 64u << 20;
};

/** One admitted unit of work. */
struct QueueItem
{
    /** Request id (queue-unique; assigned by the caller). */
    std::uint64_t id = 0;
    /** Higher runs first; FIFO within equal priorities. */
    int priority = 0;
    /** Declared payload cost, reserved until finish(). */
    std::size_t bytes = 0;
    /** Opaque work; the queue never invokes it. */
    std::function<void()> work;
};

/** push() verdict; everything but Accepted is a rejection. */
enum class Admission {
    Accepted,
    /** Queue depth limit reached (429: retry later). */
    QueueFull,
    /** Byte budget exhausted (429: retry later or shrink). */
    BytesExhausted,
    /** Daemon is draining for shutdown (503: no new work). */
    Draining,
    /** Queue closed; the daemon is gone. */
    Closed,
};

/** Human-readable admission verdict (wire `reason` field). */
const char *describeAdmission(Admission admission);

class RequestQueue
{
  public:
    explicit RequestQueue(QueueLimits limits) : limits_(limits) {}

    RequestQueue(const RequestQueue &) = delete;
    RequestQueue &operator=(const RequestQueue &) = delete;

    /**
     * Admit @p item or reject it. On Accepted the item's bytes are
     * reserved until finish(); on any rejection the queue is
     * untouched.
     */
    Admission push(QueueItem item);

    /**
     * Block until an item is available and return the highest
     * priority one; nullopt once the queue is closed and empty (the
     * worker-thread exit signal). The popped item's bytes stay
     * reserved — pair every successful pop() with finish().
     */
    std::optional<QueueItem> pop();

    /**
     * Remove a still-queued item (cancel-before-start). Returns true
     * and releases the item's bytes when @p id was waiting; false
     * when it already started (or never existed) — the caller must
     * then cancel cooperatively instead.
     */
    bool remove(std::uint64_t id);

    /** Release @p bytes reserved by a popped item that finished. */
    void finish(std::size_t bytes);

    /**
     * Stop admitting (pushes return Draining) while pop() keeps
     * serving queued work. Idempotent; close() supersedes it.
     */
    void drain();

    /** Stop admitting and wake every blocked pop() (which drains
     *  remaining items, then returns nullopt). */
    void close();

    /**
     * Block until nothing is queued and every popped item has been
     * finish()ed — the drain barrier. Popping and the active count
     * share one mutex, so there is no instant where a request is
     * neither queued nor counted as active.
     */
    void awaitIdle();

    /** Queued (not yet popped) request count. */
    std::size_t depth() const;

    /** Bytes reserved across queued + running requests. */
    std::size_t inflightBytes() const;

    /** 0-based position of @p id among queued items in pop order;
     *  nullopt when not queued. */
    std::optional<std::size_t> position(std::uint64_t id) const;

    bool draining() const;

  private:
    struct Entry
    {
        QueueItem item;
        /** Admission order, the FIFO tie-break within a priority. */
        std::uint64_t sequence = 0;
    };

    /** True when a runs before b (priority desc, sequence asc). */
    static bool before(const Entry &a, const Entry &b);

    QueueLimits limits_;
    mutable std::mutex mutex_;
    std::condition_variable available_;
    std::condition_variable idle_;
    std::deque<Entry> entries_; // kept in pop order
    std::size_t inflightBytes_ = 0;
    std::uint64_t nextSequence_ = 0;
    /** Items popped but not yet finish()ed. */
    std::size_t active_ = 0;
    bool draining_ = false;
    bool closed_ = false;
};

} // namespace serve
} // namespace vlp

#endif // VLPSIM_SERVE_REQUEST_QUEUE_H
