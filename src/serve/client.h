/**
 * @file
 * Synchronous client for the vlpsim serve daemon.
 *
 * ServeClient owns one connection: it reads the server's hello on
 * construction (verifying the protocol version), then exposes the
 * request verbs — submit, await, status, cancel, shutdown. Frame
 * multiplexing is the caller's concern only insofar as await(id)
 * forwards every non-terminal frame (progress, heartbeats, frames
 * for other requests) to an optional event callback while it waits
 * for the terminal result/cancelled/error frame of the given id.
 *
 * Used by the `vlpsim submit|status|cancel` subcommands, the serve
 * tests, and the CI smoke script.
 */

#ifndef VLPSIM_SERVE_CLIENT_H
#define VLPSIM_SERVE_CLIENT_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "util/json.h"
#include "util/socket.h"

namespace vlp {
namespace serve {

class ServeClient
{
  public:
    /** Admission verdict for one submit. */
    struct Submission
    {
        bool accepted = false;
        /** Request id (valid when accepted). */
        std::uint64_t id = 0;
        /** Queue position at admission (valid when accepted). */
        std::size_t position = 0;
        /** Rejection code (429 capacity, 503 draining). */
        int code = 0;
        /** Rejection reason text. */
        std::string reason;
    };

    /**
     * Connect and consume the hello frame. A non-zero
     * @p recv_timeout_ms bounds every receive (including the hello):
     * a daemon that accepts but never speaks makes reads throw
     * util::net::TimeoutError instead of hanging the client forever.
     * @throws util::net::TimeoutError when the receive timeout
     *         expires waiting on the daemon
     * @throws std::runtime_error when the endpoint is unreachable,
     *         the greeting is malformed, or the protocol version
     *         does not match
     */
    explicit ServeClient(const util::net::Endpoint &endpoint,
                         unsigned recv_timeout_ms = 0);

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** The server's hello frame (service, version, schema). */
    const util::Json &hello() const { return hello_; }

    /** Submit @p spec; never throws on rejection (see Submission). */
    Submission submit(const SubmitSpec &spec);

    /**
     * Read frames until the terminal frame (result, cancelled, or
     * error) for @p id arrives and return it. Every other frame —
     * progress, heartbeats, frames for other ids — goes to @p event
     * when provided.
     * @throws std::runtime_error when the connection closes first
     */
    util::Json await(std::uint64_t id,
                     const std::function<void(const util::Json &)>
                         &event = {});

    /** Server-wide status (id 0) or one request's status. */
    util::Json status(std::uint64_t id = 0);

    /** Cancel @p id; returns the ack (cancelled, status-report, or
     *  error frame). */
    util::Json cancel(std::uint64_t id);

    /** Ask the daemon to drain and shut down; waits for the ack. */
    void shutdownServer();

    /** Send one raw frame line (tests exercise malformed input). */
    void sendFrame(const std::string &frame);

    /**
     * Read one frame.
     * @throws std::runtime_error when the connection is closed
     */
    util::Json readFrame();

  private:
    /**
     * Read until a frame whose type is @p want — and, when @p id is
     * nonzero, whose id matches — forwarding everything else to
     * @p event. An error frame for the id (or for the connection,
     * id 0) is also returned.
     */
    util::Json awaitFrame(const std::vector<std::string> &want,
                          std::uint64_t id,
                          const std::function<void(const util::Json &)>
                              &event);

    util::net::Socket socket_;
    util::net::LineReader reader_;
    util::Json hello_;
};

} // namespace serve
} // namespace vlp

#endif // VLPSIM_SERVE_CLIENT_H
