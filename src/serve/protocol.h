/**
 * @file
 * vlpsim-serve wire protocol: newline-delimited JSON frames.
 *
 * Transport is a byte stream (TCP loopback or a Unix-domain socket);
 * every frame is one compact JSON object on one line, terminated by
 * `\n`. The server greets each connection with a `hello` frame that
 * names the service, build version, report schema version, and
 * protocol version — clients check the protocol version before
 * submitting. Full frame vocabulary and examples live in
 * docs/FORMATS.md §"serve wire protocol".
 *
 * Client frames:  submit, status, cancel, shutdown
 * Server frames:  hello, accepted, rejected, progress, heartbeat,
 *                 result, status-report, cancelled, shutting-down,
 *                 error
 *
 * This header owns frame *construction and parsing* only — builders
 * return the one-line JSON text (no trailing newline) and
 * parseSubmit() turns a client submit frame into a typed spec. No
 * sockets, no threads: the codec is unit-testable in isolation and
 * shared verbatim by server and client.
 */

#ifndef VLPSIM_SERVE_PROTOCOL_H
#define VLPSIM_SERVE_PROTOCOL_H

#include <cstddef>
#include <cstdint>
#include <string>

#include "serve/request_queue.h"
#include "sim/service.h"
#include "util/json.h"

namespace vlp {
namespace serve {

/** Bumped on any incompatible frame change. */
inline constexpr std::uint32_t protocolVersion = 1;

/** Service identifier in the hello frame. */
inline constexpr const char *serviceName = "vlpsim-serve";

/** One parsed submit frame: which experiment to run. */
struct SubmitSpec
{
    /** "suite", "sweep", "trace-suite", or "sleep" (debug). */
    std::string op;
    /** op == "suite": synthetic-suite comparison. */
    sim::SuiteCompareSpec suite;
    /** op == "sweep": table-budget sweep. */
    sim::SweepSpec sweep;
    /** op == "trace-suite": external corpus by directory reference. */
    std::string tracesDirectory;
    /** Optional pair manifest for trace-suite. */
    std::string pairsManifest;
    /** Table budget for trace-suite. */
    std::size_t traceBytes = 8 * 1024;
    /** Worker threads for trace-suite. */
    unsigned traceJobs = 1;
    /** Trace backend for trace-suite: "auto", "mmap", or "stdio".
     *  Optional on the wire ("readMode"; absent = auto), so protocol
     *  version 1 peers interoperate unchanged. */
    std::string traceReadMode = "auto";
    /**
     * op == "sleep": hold a worker for this many milliseconds, then
     * return an empty report. Exists so tests and the CI smoke job
     * can deterministically fill the queue and cancel mid-run without
     * depending on experiment runtimes.
     */
    unsigned sleepMs = 0;
    /** Scheduling priority (higher first; default 0). */
    int priority = 0;

    /**
     * Admission cost in bytes: the frame's own size plus a
     * deterministic working-set estimate per op (predictor table
     * budget for suite, summed budgets for sweep, the table budget
     * for trace-suite, nothing for sleep). Used against
     * QueueLimits::maxInflightBytes.
     */
    std::size_t cost(std::size_t frame_bytes) const;
};

/**
 * Parse a client submit frame.
 * @throws std::runtime_error naming the missing/malformed field
 */
SubmitSpec parseSubmit(const util::Json &frame);

/** HTTP-flavored rejection code for a failed admission (429 for
 *  capacity, 503 for drain/shutdown). */
int admissionCode(Admission admission);

// --- frame builders (one-line JSON, no trailing newline) ------------

/** Client submit frame for @p spec (inverse of parseSubmit()). */
std::string submitFrame(const SubmitSpec &spec);

/** Client status query; @p id 0 asks for server-wide status. */
std::string clientStatusFrame(std::uint64_t id);

std::string clientCancelFrame(std::uint64_t id);

std::string clientShutdownFrame();

/** Server greeting: service, build version, schema + protocol. */
std::string helloFrame();

std::string acceptedFrame(std::uint64_t id, std::size_t position);

/** Admission rejection; @p code is admissionCode(). */
std::string rejectedFrame(int code, const std::string &reason);

std::string progressFrame(std::uint64_t id, const std::string &stage,
                          std::size_t completed, std::size_t total);

std::string heartbeatFrame(std::uint64_t id, std::uint64_t sequence);

/**
 * Final success frame. @p report_json is the full vlpsim-report
 * document (as produced by JsonReportSink) embedded as an object.
 * Cache counters are this request's own store activity; cache_hit is
 * the warm-answer flag (every artifact came from the store).
 */
std::string resultFrame(std::uint64_t id, const util::Json &report_json,
                        std::uint64_t cache_hits,
                        std::uint64_t cache_misses,
                        std::uint64_t cache_inserts, bool cache_hit,
                        std::uint64_t predictions);

/** Per-request status answer. @p position is meaningful only for
 *  state "queued" (npos-like SIZE_MAX = not queued). */
std::string statusReportFrame(std::uint64_t id,
                              const std::string &state,
                              std::size_t position);

/** Server-wide status answer (status frame without an id). */
std::string serverStatusFrame(std::size_t queue_depth,
                              std::size_t inflight_bytes,
                              std::uint64_t accepted,
                              std::uint64_t rejected,
                              std::uint64_t completed,
                              std::uint64_t cancelled, bool draining);

/** Cancellation ack; @p state is "queued" (never started) or
 *  "running" (token fired, request unwound). */
std::string cancelledFrame(std::uint64_t id, const std::string &state);

std::string shuttingDownFrame();

/** Request-scoped failure (id 0 = connection-scoped, e.g. a frame
 *  that could not be parsed). */
std::string errorFrame(std::uint64_t id, const std::string &message);

} // namespace serve
} // namespace vlp

#endif // VLPSIM_SERVE_PROTOCOL_H
