/**
 * @file
 * vlpsim serve daemon implementation.
 */

#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <sstream>
#include <stdexcept>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "sim/report.h"
#include "sim/suite_runner.h"
#include "store/artifact_store.h"
#include "util/logging.h"

namespace vlp {
namespace serve {

namespace {

/** Periodic heartbeat frames for one running request. */
class HeartbeatGuard
{
  public:
    HeartbeatGuard(unsigned period_ms,
                   const std::function<void(std::uint64_t)> &beat)
    {
        if (period_ms == 0)
            return;
        thread_ = std::thread([this, period_ms, beat] {
            std::unique_lock<std::mutex> lock(mutex_);
            std::uint64_t sequence = 0;
            while (!done_) {
                if (stop_.wait_for(
                        lock, std::chrono::milliseconds(period_ms),
                        [this] { return done_; })) {
                    break;
                }
                // Chaos: the heartbeat thread stalls for one period —
                // clients must tolerate a silent-but-healthy request.
                if (CHAOS_SECTION("serve.heartbeat.stall"))
                    continue;
                beat(++sequence);
            }
        });
    }

    ~HeartbeatGuard()
    {
        if (!thread_.joinable())
            return;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            done_ = true;
        }
        stop_.notify_all();
        thread_.join();
    }

  private:
    std::thread thread_;
    std::mutex mutex_;
    std::condition_variable stop_;
    bool done_ = false;
};

} // anonymous namespace

void
ExperimentServer::Connection::sendLine(const std::string &frame) noexcept
{
    std::lock_guard<std::mutex> lock(writeMutex);
    sendLineLocked(frame);
}

void
ExperimentServer::Connection::sendLineLocked(
    const std::string &frame) noexcept
{
    if (!alive)
        return;
    try {
        const std::string data = frame + "\n";
        // Chaos: the kernel takes the frame in two short writes with
        // a stall between them — clients reassemble off the stream,
        // so a split must never corrupt framing.
        if (data.size() > 1 && CHAOS_SECTION("serve.send.slow")) {
            const std::size_t half = data.size() / 2;
            socket.sendAll(data.substr(0, half));
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
            socket.sendAll(data.substr(half));
        } else {
            socket.sendAll(data);
        }
    } catch (const std::exception &error) {
        // The peer vanished (or timed out a send without reading);
        // the request itself keeps running — its artifacts still
        // land in the store for the next asker.
        alive = false;
        util::debug(std::string("serve: dropped peer: ")
                    + error.what());
    }
}

const char *
ExperimentServer::describeState(State state)
{
    switch (state) {
    case State::Queued:
        return "queued";
    case State::Running:
        return "running";
    case State::Done:
        return "done";
    case State::Cancelled:
        return "cancelled";
    case State::Failed:
        return "failed";
    }
    return "unknown";
}

ExperimentServer::ExperimentServer(ServerOptions options)
    : options_(std::move(options)), queue_(options_.limits)
{
    if (options_.workers == 0)
        options_.workers = 1;
}

ExperimentServer::~ExperimentServer()
{
    stop();
}

void
ExperimentServer::start()
{
    {
        std::lock_guard<std::mutex> lock(lifecycleMutex_);
        if (started_)
            return;
        started_ = true;
    }
    if (options_.chaos.enabled) {
        util::chaos::configure(options_.chaos);
        util::inform("serve: chaos enabled (seed "
                     + std::to_string(options_.chaos.seed) + ")");
    }
    if (::pipe(shutdownPipe_) != 0)
        throw std::runtime_error("serve: cannot create shutdown pipe");
    // The write end is poked from signal handlers: it must fail with
    // EAGAIN on a full pipe, never block inside a handler.
    const int flags = ::fcntl(shutdownPipe_[1], F_GETFL);
    if (flags >= 0)
        ::fcntl(shutdownPipe_[1], F_SETFL, flags | O_NONBLOCK);
    listen_.emplace(util::net::ListenSocket::listen(options_.listen));
    local_ = listen_->local();
    util::inform("serve: listening on " + local_.describe() + " ("
                 + std::to_string(options_.workers) + " workers, depth "
                 + std::to_string(options_.limits.maxDepth) + ")");
    for (unsigned i = 0; i < options_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
ExperimentServer::run()
{
    start();
    // Block until the self-pipe becomes readable: SIGTERM (the CLI
    // wires it to notifyShutdown()), a client shutdown frame, or any
    // direct notifyShutdown() call. The byte is never consumed, so
    // every other poller (the accept loop) sees the same signal.
    pollfd poller{};
    poller.fd = shutdownPipe_[0];
    poller.events = POLLIN;
    while (::poll(&poller, 1, -1) < 0 && errno == EINTR)
        continue;
    util::inform("serve: shutdown requested; draining "
                 + std::to_string(queue_.depth()) + " queued requests");
    requestDrain();
    awaitIdle();
    stop();
    util::inform("serve: stopped");
}

void
ExperimentServer::notifyShutdown() noexcept
{
    if (shutdownPipe_[1] >= 0) {
        // Async-signal-safe: a single write, result deliberately
        // ignored (the pipe being full already means "signalled").
        [[maybe_unused]] const ssize_t n =
            ::write(shutdownPipe_[1], "x", 1);
    }
}

void
ExperimentServer::requestDrain()
{
    queue_.drain();
}

void
ExperimentServer::awaitIdle()
{
    queue_.awaitIdle();
}

void
ExperimentServer::stop()
{
    {
        std::lock_guard<std::mutex> lock(lifecycleMutex_);
        if (!started_ || stopped_)
            return;
        stopped_ = true;
    }
    notifyShutdown();
    queue_.close();
    if (acceptThread_.joinable())
        acceptThread_.join();
    for (std::thread &worker : workers_) {
        if (worker.joinable())
            worker.join();
    }
    {
        // Unblock every connection reader; their threads then exit.
        // writeMutex serializes against a concurrent self-close in
        // serveConnection (fd reuse would make shutdown() misfire).
        std::lock_guard<std::mutex> lock(connectionsMutex_);
        for (const auto &connection : connections_) {
            std::lock_guard<std::mutex> write(connection->writeMutex);
            connection->alive = false;
            if (connection->socket.valid())
                ::shutdown(connection->socket.fd(), SHUT_RDWR);
        }
    }
    std::vector<ConnectionThread> threads;
    {
        // Join outside connectionsMutex_: exiting connection threads
        // take it to deregister themselves.
        std::lock_guard<std::mutex> lock(connectionsMutex_);
        threads.swap(connectionThreads_);
    }
    for (ConnectionThread &entry : threads) {
        if (entry.thread.joinable())
            entry.thread.join();
    }
    {
        std::lock_guard<std::mutex> lock(connectionsMutex_);
        connections_.clear();
    }
    listen_.reset();
    for (int &fd : shutdownPipe_) {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }
}

ServerStats
ExperimentServer::stats() const
{
    std::lock_guard<std::mutex> lock(registryMutex_);
    return stats_;
}

void
ExperimentServer::reapConnectionThreadsLocked()
{
    auto it = connectionThreads_.begin();
    while (it != connectionThreads_.end()) {
        if (it->done->load(std::memory_order_acquire)) {
            it->thread.join();
            it = connectionThreads_.erase(it);
        } else {
            ++it;
        }
    }
}

void
ExperimentServer::acceptLoop()
{
    for (;;) {
        std::optional<util::net::Socket> client;
        try {
            client = listen_->accept(shutdownPipe_[0]);
        } catch (const std::exception &error) {
            util::error(std::string("serve: accept failed: ")
                        + error.what());
            // Back off: persistent failures (e.g. EMFILE) must not
            // become a busy error loop. The shutdown pipe still
            // wakes the next accept() immediately.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
            continue;
        }
        if (!client)
            return; // woken by the shutdown pipe
        // Chaos: the connection dies right after accept (EMFILE-class
        // fallout); the peer sees an immediate close and must retry.
        if (CHAOS_SECTION("serve.accept.drop")) {
            util::warn("serve: chaos dropped an accepted connection");
            continue;
        }
        if (options_.sendTimeoutMs != 0) {
            try {
                client->setSendTimeout(options_.sendTimeoutMs);
            } catch (const std::exception &error) {
                util::error(std::string("serve: ") + error.what());
                continue;
            }
        }
        auto connection =
            std::make_shared<Connection>(std::move(*client));
        auto done = std::make_shared<std::atomic<bool>>(false);
        std::lock_guard<std::mutex> lock(connectionsMutex_);
        reapConnectionThreadsLocked();
        connections_.push_back(connection);
        ConnectionThread entry;
        entry.done = done;
        entry.thread = std::thread([this, connection, done] {
            serveConnection(connection);
            done->store(true, std::memory_order_release);
        });
        connectionThreads_.push_back(std::move(entry));
    }
}

void
ExperimentServer::serveConnection(std::shared_ptr<Connection> connection)
{
    connection->sendLine(helloFrame());
    util::net::LineReader reader(connection->socket);
    std::string line;
    for (;;) {
        try {
            if (!reader.readLine(line))
                break; // orderly peer shutdown
        } catch (const std::exception &) {
            break; // reset, or unblocked by stop()
        }
        if (line.empty())
            continue;
        handleFrame(connection, line);
    }
    {
        // Close under writeMutex (sendAll runs under it), so the fd
        // is released the moment the client disconnects instead of
        // accumulating until stop().
        std::lock_guard<std::mutex> lock(connection->writeMutex);
        connection->alive = false;
        connection->socket.close();
    }
    {
        std::lock_guard<std::mutex> lock(connectionsMutex_);
        connections_.erase(std::remove(connections_.begin(),
                                       connections_.end(), connection),
                           connections_.end());
    }
    // Running requests submitted on this connection hold their own
    // shared_ptr; their sends become no-ops (!alive) and the object
    // dies with its last reference.
}

void
ExperimentServer::handleFrame(
    const std::shared_ptr<Connection> &connection,
    const std::string &line)
{
    util::Json frame;
    try {
        frame = util::Json::parse(line);
        if (!frame.isObject())
            throw std::runtime_error("frame must be a JSON object");
    } catch (const std::exception &error) {
        connection->sendLine(errorFrame(0, error.what()));
        return;
    }
    const util::Json *type = frame.find("type");
    if (type == nullptr || !type->isString()) {
        connection->sendLine(
            errorFrame(0, "frame needs a string 'type'"));
        return;
    }
    try {
        const std::string &name = type->asString();
        if (name == "submit") {
            handleSubmit(connection, frame, line.size());
        } else if (name == "status") {
            handleStatus(connection, frame);
        } else if (name == "cancel") {
            handleCancel(connection, frame);
        } else if (name == "shutdown") {
            connection->sendLine(shuttingDownFrame());
            util::inform("serve: shutdown frame received");
            notifyShutdown();
        } else {
            connection->sendLine(
                errorFrame(0, "unknown frame type '" + name + "'"));
        }
    } catch (const std::exception &error) {
        connection->sendLine(errorFrame(0, error.what()));
    }
}

void
ExperimentServer::handleSubmit(
    const std::shared_ptr<Connection> &connection,
    const util::Json &frame, std::size_t frame_bytes)
{
    SubmitSpec spec;
    try {
        spec = parseSubmit(frame);
    } catch (const std::exception &error) {
        connection->sendLine(errorFrame(0, error.what()));
        return;
    }

    auto request = std::make_shared<Request>();
    request->spec = std::move(spec);
    request->cost = request->spec.cost(frame_bytes);
    request->connection = connection;
    request->cancel = std::make_shared<util::CancelToken>();
    {
        std::lock_guard<std::mutex> lock(registryMutex_);
        request->id = nextId_++;
        requests_[request->id] = request;
    }

    QueueItem item;
    item.id = request->id;
    item.priority = request->spec.priority;
    item.bytes = request->cost;
    item.work = [this, request] { execute(request); };
    Admission admission;
    {
        // Hold the connection's writeMutex across push + accepted:
        // a worker can pop and finish the request immediately, but
        // its result frame blocks on this mutex, so the accepted
        // frame is always first on the wire for this request.
        std::lock_guard<std::mutex> write(connection->writeMutex);
        // Chaos: admission control reports a full queue — the client
        // must treat the 429 as a clean terminal answer and retry.
        if (CHAOS_SECTION("serve.admission.queue-full",
                          request->spec.op)) {
            admission = Admission::QueueFull;
        } else {
            admission = queue_.push(std::move(item));
        }
        if (admission == Admission::Accepted) {
            {
                std::lock_guard<std::mutex> lock(registryMutex_);
                ++stats_.accepted;
            }
            connection->sendLineLocked(acceptedFrame(
                request->id, queue_.position(request->id).value_or(0)));
        }
    }
    if (admission != Admission::Accepted) {
        {
            std::lock_guard<std::mutex> lock(registryMutex_);
            requests_.erase(request->id);
            ++stats_.rejected;
        }
        util::warn("serve: rejected " + request->spec.op + " ("
                   + describeAdmission(admission) + ")");
        connection->sendLine(rejectedFrame(admissionCode(admission),
                                           describeAdmission(admission)));
        return;
    }
    util::inform("serve: accepted request "
                 + std::to_string(request->id) + " ("
                 + request->spec.op + ")");
}

void
ExperimentServer::handleStatus(
    const std::shared_ptr<Connection> &connection,
    const util::Json &frame)
{
    const util::Json *id_field = frame.find("id");
    if (id_field == nullptr) {
        std::lock_guard<std::mutex> lock(registryMutex_);
        connection->sendLine(serverStatusFrame(
            queue_.depth(), queue_.inflightBytes(), stats_.accepted,
            stats_.rejected, stats_.completed, stats_.cancelled,
            queue_.draining()));
        return;
    }
    if (!id_field->isNumber()) {
        connection->sendLine(
            errorFrame(0, "status frame 'id' must be a number"));
        return;
    }
    const std::uint64_t id = id_field->asUint();
    std::shared_ptr<Request> request;
    {
        std::lock_guard<std::mutex> lock(registryMutex_);
        const auto it = requests_.find(id);
        if (it != requests_.end())
            request = it->second;
    }
    if (!request) {
        connection->sendLine(errorFrame(id, "unknown request"));
        return;
    }
    State state;
    {
        std::lock_guard<std::mutex> lock(registryMutex_);
        state = request->state;
    }
    connection->sendLine(statusReportFrame(
        id, describeState(state),
        queue_.position(id).value_or(std::size_t(-1))));
}

void
ExperimentServer::handleCancel(
    const std::shared_ptr<Connection> &connection,
    const util::Json &frame)
{
    const util::Json *id_field = frame.find("id");
    if (id_field == nullptr || !id_field->isNumber()) {
        connection->sendLine(
            errorFrame(0, "cancel frame needs a numeric 'id'"));
        return;
    }
    const std::uint64_t id = id_field->asUint();
    std::shared_ptr<Request> request;
    {
        std::lock_guard<std::mutex> lock(registryMutex_);
        const auto it = requests_.find(id);
        if (it != requests_.end())
            request = it->second;
    }
    if (!request) {
        connection->sendLine(errorFrame(id, "unknown request"));
        return;
    }

    // Fire the token first: if the request slips from queued to
    // running between our remove() attempt and now, it still unwinds
    // at its first step boundary.
    request->cancel->cancel();
    if (queue_.remove(id)) {
        setState(request, State::Cancelled);
        {
            std::lock_guard<std::mutex> lock(registryMutex_);
            ++stats_.cancelled;
        }
        util::inform("serve: cancelled queued request "
                     + std::to_string(id));
        const std::string line = cancelledFrame(id, "queued");
        connection->sendLine(line);
        if (request->connection != connection)
            request->connection->sendLine(line);
        retireRequest(request);
        return;
    }

    State state;
    {
        std::lock_guard<std::mutex> lock(registryMutex_);
        state = request->state;
    }
    if (state == State::Queued || state == State::Running) {
        // Popped (possibly mid-run); the worker acks the submitter
        // with a cancelled frame when it unwinds. Tell the canceller
        // the cancellation is in flight.
        util::inform("serve: cancelling running request "
                     + std::to_string(id));
        connection->sendLine(
            statusReportFrame(id, "cancelling", std::size_t(-1)));
        return;
    }
    // Already terminal; report the final state instead.
    connection->sendLine(
        statusReportFrame(id, describeState(state), std::size_t(-1)));
}

ExperimentServer::State
ExperimentServer::setState(const std::shared_ptr<Request> &request,
                           State state)
{
    std::lock_guard<std::mutex> lock(registryMutex_);
    const State previous = request->state;
    request->state = state;
    return previous;
}

void
ExperimentServer::retireRequest(const std::shared_ptr<Request> &request)
{
    if (options_.finishedWindow == 0)
        return; // unbounded: keep every request (tests, short runs)
    std::lock_guard<std::mutex> lock(registryMutex_);
    finishedOrder_.push_back(request->id);
    while (finishedOrder_.size() > options_.finishedWindow) {
        requests_.erase(finishedOrder_.front());
        finishedOrder_.pop_front();
    }
}

void
ExperimentServer::workerLoop()
{
    for (;;) {
        std::optional<QueueItem> item = queue_.pop();
        if (!item)
            return;
        item->work();
        queue_.finish(item->bytes);
    }
}

sim::Report
ExperimentServer::runOperation(
    const Request &request,
    const std::shared_ptr<store::ArtifactStore> &store,
    std::uint64_t &predictions)
{
    const SubmitSpec &spec = request.spec;
    const auto clampJobs = [this](unsigned jobs) {
        if (options_.maxJobsPerRequest == 0)
            return jobs;
        if (jobs == 0 || jobs > options_.maxJobsPerRequest)
            return options_.maxJobsPerRequest;
        return jobs;
    };
    const sim::ProgressFn progress =
        [&request](const sim::ServiceProgress &tick) {
            // Chaos: cancellation lands exactly at a step boundary —
            // the request must unwind to a clean cancelled frame from
            // any stage.
            if (CHAOS_SECTION("serve.cancel.step", request.spec.op))
                request.cancel->cancel();
            request.connection->sendLine(
                progressFrame(request.id, tick.stage, tick.completed,
                              tick.total));
        };

    if (spec.op == "suite") {
        sim::SuiteCompareSpec suite = spec.suite;
        suite.jobs = clampJobs(suite.jobs);
        sim::ServiceResult result = sim::runSuiteCompare(
            suite, store, request.cancel, progress);
        predictions = result.predictions;
        return std::move(result.report);
    }
    if (spec.op == "sweep") {
        sim::SweepSpec sweep = spec.sweep;
        sweep.jobs = clampJobs(sweep.jobs);
        sim::ServiceResult result =
            sim::runSweep(sweep, store, request.cancel, progress);
        predictions = result.predictions;
        return std::move(result.report);
    }
    if (spec.op == "trace-suite") {
        sim::TraceSuiteOptions options;
        options.directory = spec.tracesDirectory;
        options.manifest = spec.pairsManifest;
        options.bytes = spec.traceBytes;
        options.jobs = clampJobs(spec.traceJobs);
        options.readMode = trace::parseReadMode(spec.traceReadMode);
        options.store = store;
        options.cancel = request.cancel;
        progress({"trace suite", 0, 1});
        sim::TraceSuiteRunner runner(std::move(options));
        const sim::SuiteReport suite = runner.run();
        progress({"done", 1, 1});
        return suite.toReport();
    }
    if (spec.op == "sleep") {
        // Debug op: hold this worker slot, checking the token every
        // slice, so tests can fill the queue and cancel mid-run
        // deterministically.
        unsigned remaining_ms = spec.sleepMs;
        progress({"sleep", 0, 1});
        while (remaining_ms > 0) {
            request.cancel->throwIfCancelled();
            const unsigned slice = remaining_ms < 5 ? remaining_ms : 5;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(slice));
            remaining_ms -= slice;
        }
        request.cancel->throwIfCancelled();
        sim::Report report;
        report.title = "sleep";
        report.setMeta("ms", std::uint64_t{spec.sleepMs});
        return report;
    }
    throw std::runtime_error("unknown op '" + spec.op + "'");
}

void
ExperimentServer::execute(const std::shared_ptr<Request> &request)
{
    // Cancel raced the pop: the token fired but remove() was too
    // late. Honor it without starting.
    if (request->cancel->cancelled()) {
        setState(request, State::Cancelled);
        {
            std::lock_guard<std::mutex> lock(registryMutex_);
            ++stats_.cancelled;
        }
        request->connection->sendLine(
            cancelledFrame(request->id, "queued"));
        retireRequest(request);
        return;
    }
    setState(request, State::Running);

    HeartbeatGuard heartbeat(
        options_.heartbeatMs,
        [request](std::uint64_t sequence) {
            request->connection->sendLine(
                heartbeatFrame(request->id, sequence));
        });

    try {
        std::shared_ptr<store::ArtifactStore> store;
        if (!options_.cacheDirectory.empty()) {
            store::StoreOptions store_options;
            store_options.directory = options_.cacheDirectory;
            store_options.maxBytes = options_.cacheMaxBytes;
            store = std::make_shared<store::ArtifactStore>(
                store_options);
        }

        std::uint64_t predictions = 0;
        sim::Report report =
            runOperation(*request, store, predictions);
        // Same stamp the CLI applies on export, so a saved serve
        // report is byte-identical to `vlpsim suite --format json`.
        sim::stampBuildInfo(report);

        std::ostringstream json;
        sim::JsonReportSink sink;
        sink.write(report, json);
        const util::Json document = util::Json::parse(json.str());

        store::StoreCounters counters;
        if (store)
            counters = store->counters();
        const bool warm = store != nullptr && counters.misses == 0
            && counters.hits > 0;
        // State and counter first, frame second (like the cancel and
        // failure paths): a client that has its result frame must
        // never read a status that does not count it yet.
        setState(request, State::Done);
        {
            std::lock_guard<std::mutex> lock(registryMutex_);
            ++stats_.completed;
        }
        request->connection->sendLine(resultFrame(
            request->id, document, counters.hits, counters.misses,
            counters.inserts, warm, predictions));
        util::inform("serve: request " + std::to_string(request->id)
                     + " done (" + (warm ? "warm" : "cold") + ", "
                     + std::to_string(counters.hits) + " cache hits)");
    } catch (const util::CancelledError &) {
        setState(request, State::Cancelled);
        {
            std::lock_guard<std::mutex> lock(registryMutex_);
            ++stats_.cancelled;
        }
        util::inform("serve: request " + std::to_string(request->id)
                     + " cancelled mid-run");
        request->connection->sendLine(
            cancelledFrame(request->id, "running"));
    } catch (const std::exception &error) {
        setState(request, State::Failed);
        {
            std::lock_guard<std::mutex> lock(registryMutex_);
            ++stats_.failed;
        }
        util::error("serve: request " + std::to_string(request->id)
                    + " failed: " + error.what());
        request->connection->sendLine(
            errorFrame(request->id, error.what()));
    }
    retireRequest(request);
}

} // namespace serve
} // namespace vlp
